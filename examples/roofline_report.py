"""One-command roofline attribution report for the zoo models.

Calibrates (or reloads the cached) host roofline — measured GEMM peak
FLOP/s and stream bandwidth — then compiles, instruments, runs, and
attributes each requested model: every layer gets its wall time,
measured FLOPs/bytes, arithmetic intensity, attained fraction of the
attainable roof, and a compute/memory-bound verdict.  The summary line
per model reports the attribution engine's own health metric,
``span coverage`` (the fraction of wall time explained by spans).

Run::

    PYTHONPATH=src python examples/roofline_report.py
    PYTHONPATH=src python examples/roofline_report.py --models vgg16 --workers 2 \\
        --jsonl vgg16_attrib.jsonl
"""

import argparse

from repro.obs.attrib import attribute_model_run
from repro.obs.roofline import get_roofline

DEFAULT_MODELS = ("lenet5", "vgg16", "googlenet")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--models", nargs="+", default=list(DEFAULT_MODELS), help="zoo model names"
    )
    parser.add_argument("--bits", type=int, default=0, help="quantization bits (0 = off)")
    parser.add_argument("--batch", type=int, default=8, help="forward-pass batch size")
    parser.add_argument("--workers", type=int, default=1, help="parallel plan workers")
    parser.add_argument(
        "--no-sim", action="store_true", help="skip the accelerator-simulator rows"
    )
    parser.add_argument("--jsonl", help="also export the per-row table(s) as JSONL")
    args = parser.parse_args()

    roofline = get_roofline()
    prov = roofline.provenance
    print(
        f"host roofline: peak {roofline.peak_flops / 1e9:.2f} GFLOP/s, "
        f"stream {roofline.stream_bandwidth / 1e9:.2f} GB/s, "
        f"ridge {roofline.ridge_intensity:.2f} FLOP/byte "
        f"({prov.get('cpu_count', '?')} core(s), {prov.get('machine', '?')})"
    )
    for name in args.models:
        print()
        report = attribute_model_run(
            name,
            bits=args.bits,
            workers=args.workers,
            batch=args.batch,
            roofline=roofline,
            simulate=not args.no_sim,
            root=name,
        )
        print(report.render())
        print(
            f"{name}: span coverage {100 * report.span_coverage:.1f}%, "
            f"{report.unexplained_us / 1e3:.3f} ms unexplained of "
            f"{report.total_us / 1e3:.3f} ms"
        )
        if args.jsonl:
            out = args.jsonl
            if len(args.models) > 1:
                stem, dot, ext = out.rpartition(".")
                out = f"{stem}_{name}.{ext}" if dot else f"{out}_{name}"
            rows = report.write_jsonl(out)
            print(f"wrote {rows} rows to {out}")


if __name__ == "__main__":
    main()
