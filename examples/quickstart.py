#!/usr/bin/env python3
"""Quickstart: the full MLCNN optimization pipeline in ~40 lines.

Builds LeNet-5, reorders activation/pooling (Section III), fuses the
conv-pool pairs (Section IV: RME + LAR + GAR), verifies functional
equivalence, and reports the operation savings and the modelled
accelerator speedup.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    build_model,
    compare_networks,
    fuse_network,
    get_config,
    reorder_activation_pooling,
)
from repro.core.opcount import network_ops
from repro.models import specs
from repro.nn.tensor import Tensor, no_grad


def main() -> None:
    # 1. Build the original network (Conv -> ReLU -> AvgPool blocks).
    model = build_model("lenet5", num_classes=10, image_size=32)
    x = Tensor(np.random.default_rng(0).normal(size=(4, 3, 32, 32)))

    # 2. Reorder: Conv -> AvgPool -> ReLU (accuracy-neutral, Section III).
    reorder_activation_pooling(model)
    with no_grad():
        before = model(x).data

    # 3. Fuse: each conv-pool pair now runs the RME/LAR/GAR kernel.
    _, replaced = fuse_network(model)
    with no_grad():
        after = model(x).data
    assert np.allclose(before, after, atol=1e-9), "fusion must not change outputs"
    print(f"fused {len(replaced)} conv-pool blocks: {[name for name, _ in replaced]}")
    print(f"max output deviation after fusion: {np.abs(before - after).max():.2e}")

    # 4. Operation savings on the full-size network.
    layer_specs = specs.get_specs("lenet5")
    dense = network_ops(layer_specs, fused=False)
    fused = network_ops(layer_specs, fused=True)
    print(f"\nmultiplications: {dense.multiplications:>12,} -> {fused.multiplications:,} "
          f"({1 - fused.multiplications / dense.multiplications:.1%} removed)")
    total_fused_adds = fused.additions + fused.preprocessing_additions
    print(f"additions:       {dense.additions:>12,} -> {total_fused_adds:,} "
          f"({1 - total_fused_adds / dense.additions:.1%} removed)")

    # 5. Accelerator-level speedup (Table VII configurations).
    for cand in ("mlcnn-fp32", "mlcnn-fp16", "mlcnn-int8"):
        cmp = compare_networks(layer_specs, get_config("dcnn-fp32"), get_config(cand))
        print(f"{cand}: {cmp.speedup:.2f}x speedup, "
              f"{cmp.energy_efficiency:.2f}x energy efficiency (whole network)")


if __name__ == "__main__":
    main()
