#!/usr/bin/env python3
"""Composing MLCNN with pruning and quantization (Section VIII claim).

The paper argues MLCNN is orthogonal to other acceleration techniques.
This demo stacks all three on LeNet-5:

1. train an FP32 reordered model;
2. magnitude-prune 50% of conv weights and fine-tune with masks held;
3. quantize to INT8 (DoReFa) and fine-tune again;
4. report accuracy at each stage and the combined multiplication
   reduction (RME x sparsity) plus the modelled INT8 accelerator gain.

Run:  python examples/prune_and_quantize.py [--sparsity 0.5] [--epochs 8]
"""

import argparse

import numpy as np

from repro import QuantConfig, build_model, get_config, quantize_model, reorder_activation_pooling
from repro.accel import compare_networks
from repro.core.opcount import dcnn_layer_ops
from repro.core.prune import capture_masks, combined_reduction, magnitude_prune, restore_masks
from repro.data import SyntheticImageConfig, make_synth_cifar, train_val_split
from repro.models import specs
from repro.nn import functional as F
from repro.nn.optim import SGD
from repro.nn.tensor import Tensor
from repro.train import TrainConfig, Trainer, evaluate


def train(model, train_set, val_set, epochs, lr, masks=None, seed=0):
    """Plain training loop; re-applies pruning masks after each step."""
    from repro.data import DataLoader

    opt = SGD(model.parameters(), lr=lr, momentum=0.9)
    loader = DataLoader(train_set, batch_size=32, seed=seed)
    for _ in range(epochs):
        model.train()
        for images, labels in loader:
            loss = F.cross_entropy(model(Tensor(images)), labels)
            opt.zero_grad()
            loss.backward()
            opt.step()
            if masks is not None:
                restore_masks(model, masks)
    _, top1, _ = evaluate(model, val_set)
    return top1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sparsity", type=float, default=0.5)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--lr", type=float, default=0.02)
    args = parser.parse_args()

    cfg = SyntheticImageConfig(num_classes=10, samples_per_class=40, image_size=32, seed=0)
    train_set, val_set = train_val_split(make_synth_cifar(cfg), 0.25, seed=0)

    model = build_model("lenet5", num_classes=10, seed=1)
    reorder_activation_pooling(model)
    top1 = train(model, train_set, val_set, args.epochs, args.lr)
    print(f"stage 1 — MLCNN FP32:               top-1 {top1:.1%}")

    report = magnitude_prune(model, args.sparsity)
    masks = capture_masks(model)
    top1 = train(model, train_set, val_set, max(2, args.epochs // 2), args.lr / 2, masks=masks)
    print(f"stage 2 — + {report.sparsity:.0%} pruning (fine-tuned): top-1 {top1:.1%}")

    quantize_model(model, QuantConfig(8, 8))
    top1 = train(model, train_set, val_set, max(2, args.epochs // 2), args.lr / 2, masks=masks)
    print(f"stage 3 — + INT8 quantization:      top-1 {top1:.1%}")

    # combined arithmetic savings on the full-size network
    fused = specs.fusable_layers(specs.get_specs("lenet5"))
    base = sum(dcnn_layer_ops(s).multiplications for s in fused)
    combo = np.mean([combined_reduction(s, report.sparsity) for s in fused])
    print(f"\nfused layers: {combo:.1%} of baseline multiplications removed "
          f"(RME 75% x {report.sparsity:.0%} sparsity)")
    cmp = compare_networks(specs.get_specs("lenet5"), get_config("dcnn-fp32"), get_config("mlcnn-int8"))
    print(f"INT8 accelerator vs DCNN FP32 (whole LeNet-5): {cmp.speedup:.1f}x speed, "
          f"{cmp.energy_efficiency:.1f}x energy")


if __name__ == "__main__":
    main()
