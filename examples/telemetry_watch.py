#!/usr/bin/env python3
"""Live telemetry end-to-end: watch a training run, profile it, and
catch a latency SLO breach.

Two acts, sharing one process-wide telemetry registry
(:mod:`repro.obs.telemetry`):

1. **Clean run** — a small LeNet trains on synthetic data with the
   per-batch latency histogram streaming p50/p95/p99, a background
   exporter scraping every 0.2 s into a JSONL time series, the
   sampling profiler collecting stacks, and an SLO rule watching p99
   batch latency.  Nothing breaches: **zero alerts**.
2. **Injected stall** — the same training run, but the data loader
   stalls one batch by ~1.2 s (a stand-in for a page-in, a GC pause, a
   noisy neighbour).  The histogram's p99 blows through the SLO
   threshold and the hysteresis-debounced rule fires **exactly one**
   page alert naming the metric.

Artifacts written to the working directory (override with ``--outdir``):

* ``telemetry.jsonl``   — scraped snapshot time series (clean run)
* ``telemetry.prom``    — final Prometheus text-format snapshot
* ``profile.txt``       — collapsed stacks (flamegraph.pl/speedscope)
* ``flamegraph.html``   — self-contained HTML flamegraph
* ``dashboard.html``    — trend dashboard with the Live telemetry section

Exits non-zero if the alert contract is violated, so CI can run this
as a smoke test.

Run:  PYTHONPATH=src python examples/telemetry_watch.py [--epochs 2]
"""

import argparse
import os
import sys
import time

import numpy as np

from repro.data import SyntheticImageConfig, make_synth_cifar, train_val_split
from repro.models import build_model
from repro.obs.dashboard import write_dashboard
from repro.obs.metrics import MetricRegistry
from repro.obs.telemetry import (
    AlertEngine,
    SamplingProfiler,
    SloRule,
    TelemetryExporter,
    get_telemetry,
    parse_prometheus,
    read_telemetry_jsonl,
)
from repro.train import TrainConfig, Trainer

#: p99 batch latency objective: page when one batch costs > 500 ms
#: sustained for 0.25 s of scrapes; recover only below 250 ms (hysteresis)
SLO_RULES = [
    SloRule(
        "batch-p99-latency",
        "train.batch_latency_ms",
        threshold=500.0,
        quantile=0.99,
        for_seconds=0.25,
        clear=250.0,
        severity="page",
        description="p99 training batch latency objective",
    ),
]


def _settle(engine: AlertEngine) -> None:
    """Give a pending (debouncing) breach its for-duration, then
    re-evaluate so a sustained breach always lands before we assert."""
    now = time.time()
    engine.evaluate(now=now)
    engine.evaluate(now=now + max(r.for_seconds for r in SLO_RULES) + 0.05)


def _train(args, engine, jsonl_path=None, stall_at_batch=None):
    """One telemetry-watched fit; returns the registry snapshot."""
    registry = get_telemetry()
    registry.clear()
    registry.enable()
    seen = {"batches": 0}

    def maybe_stall(images: np.ndarray) -> np.ndarray:
        seen["batches"] += 1
        if stall_at_batch is not None and seen["batches"] == stall_at_batch:
            time.sleep(args.stall_s)
        return images

    cfg = SyntheticImageConfig(
        num_classes=10, samples_per_class=args.samples, image_size=32, seed=args.seed
    )
    train_set, val_set = train_val_split(make_synth_cifar(cfg), 0.25, seed=args.seed)
    model = build_model("lenet5", seed=args.seed)
    trainer = Trainer(
        model,
        train_set,
        val_set,
        TrainConfig(epochs=args.epochs, batch_size=16, lr=0.01, seed=args.seed),
        transform=maybe_stall,
    )
    exporter = TelemetryExporter(
        registry, jsonl_path=jsonl_path, period_s=0.2, engine=engine
    )
    try:
        with exporter:
            trainer.fit()
    finally:
        registry.disable()
    _settle(engine)
    return registry.snapshot()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--samples", type=int, default=12, help="samples per class")
    parser.add_argument("--stall-s", type=float, default=1.2, help="injected stall")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--outdir", default=".", help="artifact directory")
    args = parser.parse_args()
    out = lambda name: os.path.join(args.outdir, name)  # noqa: E731

    registry = get_telemetry()

    # -- 1. clean run: telemetry + profiler, zero alerts ---------------------
    print("== act 1: clean training run under full telemetry ==")
    engine = AlertEngine(SLO_RULES, registry)
    profiler = SamplingProfiler(interval_s=0.005)
    with profiler:
        snap = _train(args, engine, jsonl_path=out("telemetry.jsonl"))

    lat = snap.find("train.batch_latency_ms")["series"][0]
    print(
        f"  {int(lat['count'])} batches: p50 {lat['p50']:.1f} ms, "
        f"p95 {lat['p95']:.1f} ms, p99 {lat['p99']:.1f} ms"
    )
    with open(out("telemetry.prom"), "w") as fh:
        fh.write(snap.to_prometheus())
    profiler.write_collapsed(out("profile.txt"))
    profiler.write_flamegraph(out("flamegraph.html"))
    print(f"  profiler: {profiler.sample_count} samples, "
          f"{100 * profiler.overhead_fraction:.2f}% measured overhead; top frames:")
    for frame, count in profiler.top_functions(3):
        print(f"    {count:5d}  {frame}")
    clean_alerts = list(engine.history)
    print(f"  alerts fired: {len(clean_alerts)} (expected 0)")

    # exports must parse — the same checks the CI smoke runs
    snapshots = read_telemetry_jsonl(out("telemetry.jsonl"))
    parse_prometheus(open(out("telemetry.prom")).read())
    print(f"  exports parse: {len(snapshots)} JSONL snapshot(s) + prometheus text")

    # -- 2. injected stall: the SLO breach pages, exactly once ---------------
    print(f"\n== act 2: same run with a {args.stall_s:.1f}s stall injected ==")
    engine_stall = AlertEngine(SLO_RULES, registry)
    _train(args, engine_stall, stall_at_batch=3)
    stall_alerts = list(engine_stall.history)
    print(f"  alerts fired: {len(stall_alerts)} (expected exactly 1)")
    for alert in stall_alerts:
        print(f"  {alert.message}")

    # -- dashboard with the Live telemetry section ---------------------------
    write_dashboard(
        out("dashboard.html"),
        MetricRegistry("."),
        telemetry=snapshots,
        alerts=stall_alerts,
    )
    print(f"\ndashboard -> {out('dashboard.html')}")

    if clean_alerts:
        print(f"FAIL: clean run fired {len(clean_alerts)} alert(s)", file=sys.stderr)
        return 1
    if len(stall_alerts) != 1:
        print(
            f"FAIL: stall run fired {len(stall_alerts)} alert(s), wanted exactly 1",
            file=sys.stderr,
        )
        return 1
    print("OK: zero alerts clean, exactly one on the injected stall")
    return 0


if __name__ == "__main__":
    sys.exit(main())
