#!/usr/bin/env python3
"""Quantized MLCNN (Section VII.A): train FP32, quantize, compare.

Trains a reordered model, then retrains a DoReFa INT8-quantized copy
(Eqs. 8-9 with straight-through estimation) and compares validation
accuracy — the Fig. 12 experiment — plus the modelled accelerator gain
of the INT8 configuration (128 MAC slices in the same 1.52 mm^2).

Run:  python examples/quantized_inference.py [--bits 8] [--epochs 12]
"""

import argparse

from repro import QuantConfig, build_model, get_config, quantize_model, reorder_activation_pooling
from repro.accel import compare_networks
from repro.data import SyntheticImageConfig, make_synth_cifar, train_val_split
from repro.models import specs
from repro.train import TrainConfig, Trainer, evaluate


def train(model, train_set, val_set, epochs, lr, seed=0):
    Trainer(model, train_set, val_set, TrainConfig(epochs=epochs, batch_size=32, lr=lr, seed=seed)).fit()
    return evaluate(model, val_set)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bits", type=int, default=8)
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--lr", type=float, default=0.02)
    parser.add_argument("--samples", type=int, default=40)
    args = parser.parse_args()

    cfg = SyntheticImageConfig(num_classes=10, samples_per_class=args.samples, image_size=32, seed=0)
    train_set, val_set = train_val_split(make_synth_cifar(cfg), 0.25, seed=0)

    # FP32 MLCNN (reordered)
    fp32 = build_model("lenet5", num_classes=10, image_size=32, seed=1)
    reorder_activation_pooling(fp32)
    _, fp32_top1, _ = train(fp32, train_set, val_set, args.epochs, args.lr)
    print(f"MLCNN FP32 top-1: {fp32_top1:.1%}")

    # quantized MLCNN (same architecture, k-bit weights/activations)
    quant = build_model("lenet5", num_classes=10, image_size=32, seed=1)
    reorder_activation_pooling(quant)
    quantize_model(quant, QuantConfig(args.bits, args.bits))
    _, q_top1, _ = train(quant, train_set, val_set, args.epochs, args.lr)
    print(f"MLCNN INT{args.bits} top-1: {q_top1:.1%}  (delta {q_top1 - fp32_top1:+.1%})")

    # accelerator gain of the quantized configuration
    layer_specs = specs.get_specs("lenet5")
    cmp = compare_networks(layer_specs, get_config("dcnn-fp32"), get_config("mlcnn-int8"))
    print(f"\nmlcnn-int8 accelerator vs dcnn-fp32 on full-size LeNet-5: "
          f"{cmp.speedup:.1f}x speedup, {cmp.energy_efficiency:.1f}x energy efficiency")
    print("paper headline (averaged over optimized layers of 4 CNNs): 12.8x / 11.3x")


if __name__ == "__main__":
    main()
