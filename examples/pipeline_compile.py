#!/usr/bin/env python3
"""Compile a model through a custom pass pipeline with validation.

Demonstrates the `repro.compiler` pass manager:

1. the canonical MLCNN pipeline (`mlcnn_pipeline`) with its per-pass
   CompileReport — wall time, rewrite counts, FLOP deltas, probe
   deviations;
2. a custom ordering built from registered pass names plus a
   user-defined pass (channel-wise weight standardization) written
   against the `Pass` protocol;
3. the plan cache: recompiling the same architecture skips
   re-validation.

Run:  python examples/pipeline_compile.py
"""

import numpy as np

from repro import build_model
from repro.compiler import (
    CompileContext,
    Pass,
    PassResult,
    Pipeline,
    mlcnn_pipeline,
)
from repro.nn.layers import Conv2d


def main() -> None:
    # 1. The canonical MLCNN preparation, instrumented. --------------------
    model = build_model("vgg16", width_mult=0.25, seed=0)
    model, report = mlcnn_pipeline(bits=8).run(model, CompileContext(seed=0, quant_bits=8))
    report.to_experiment_report().show()

    # Every record carries structured data, not just the rendered table:
    fuse = report.record_for("fuse")
    print(
        f"\nfuse pass: {fuse.rewrites} blocks rewritten, "
        f"{-fuse.flop_delta:,} MACs removed (RME), "
        f"max probe deviation {fuse.probe_max_dev:.2e}"
    )

    # 2. A custom pass + custom ordering. ----------------------------------
    class StandardizeWeightsPass(Pass):
        """Zero-mean every conv filter (a la weight standardization)."""

        name = "standardize-weights"
        preserves_semantics = False  # changes outputs by design
        preserves_params = True

        def run(self, model, ctx):
            touched = 0
            for _, mod in model.named_modules():
                if isinstance(mod, Conv2d):
                    w = mod.weight.data
                    w -= w.mean(axis=(1, 2, 3), keepdims=True)
                    touched += 1
            return PassResult(self.name, touched)

    custom = Pipeline(
        ["set-pooling", "reorder", StandardizeWeightsPass(), "fuse", "prune"],
        name="custom",
    )
    model2 = build_model("lenet5", seed=1)
    model2, report2 = custom.run(model2, CompileContext(seed=1, sparsity=0.5))
    report2.to_experiment_report().show()

    # 3. Plan cache: same architecture + spec => validation skipped. -------
    model3 = build_model("lenet5", seed=2)  # fresh weights, same architecture
    model3, report3 = custom.run(model3, CompileContext(seed=1, sparsity=0.5))
    print(
        f"\nrecompile of the same architecture: plan-cache hit={report3.cached}, "
        f"{1e3 * report2.total_time_s:.1f} ms -> {1e3 * report3.total_time_s:.1f} ms"
    )


if __name__ == "__main__":
    main()
