#!/usr/bin/env python3
"""Fig. 3-style study: does reordering ReLU and average pooling hurt?

Trains the same architecture three ways on a synthetic CIFAR-like task
(see DESIGN.md for the substitution) and prints top-1/top-5 accuracy:

* ``ReLU+AP``  — the original Conv -> ReLU -> AvgPool network,
* ``AP+ReLU``  — the MLCNN-reordered network,
* ``All-Conv`` — pooling folded into convolution strides [7].

The paper's claim to observe: the reordered network matches the
original, while All-Conv trails (it loses pooling's shift tolerance —
the synthetic data applies random shifts exactly to exercise that).

Run:  python examples/accuracy_reordering.py [--model lenet5] [--epochs 10]
"""

import argparse

from repro.analysis.report import format_table
from repro.data import SyntheticImageConfig, make_synth_cifar, train_val_split
from repro.models import build_model, reorder_activation_pooling, to_allconv
from repro.train import TrainConfig, Trainer, evaluate


def train_variant(name: str, variant: str, train_set, val_set, args):
    model = build_model(
        name,
        num_classes=args.classes,
        image_size=args.image_size,
        width_mult=args.width,
        pooling="avg",
        seed=args.seed,
    )
    if variant == "AP+ReLU":
        reorder_activation_pooling(model)
    elif variant == "All-Conv":
        to_allconv(model)
    trainer = Trainer(
        model,
        train_set,
        val_set,
        TrainConfig(epochs=args.epochs, batch_size=32, lr=args.lr, seed=args.seed),
    )
    trainer.fit()
    _, top1, top5 = evaluate(model, val_set)
    return top1, top5


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="lenet5", help="model name (see repro.models)")
    parser.add_argument("--classes", type=int, default=10)
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--width", type=float, default=1.0)
    parser.add_argument("--image-size", type=int, default=32)
    parser.add_argument("--samples", type=int, default=40, help="samples per class")
    parser.add_argument("--lr", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    cfg = SyntheticImageConfig(
        num_classes=args.classes,
        samples_per_class=args.samples,
        image_size=args.image_size,
        seed=args.seed,
    )
    train_set, val_set = train_val_split(make_synth_cifar(cfg), 0.25, seed=args.seed)
    print(f"dataset: {args.classes} classes x {args.samples} samples, "
          f"{args.image_size}x{args.image_size}; model: {args.model} (width {args.width})\n")

    rows = []
    for variant in ("ReLU+AP", "AP+ReLU", "All-Conv"):
        top1, top5 = train_variant(args.model, variant, train_set, val_set, args)
        rows.append([variant, f"{top1:.1%}", f"{top5:.1%}"])
        print(f"  trained {variant}: top-1 {top1:.1%}")

    print("\n" + format_table(["variant", "top-1", "top-5"], rows))
    print("\npaper shape: AP+ReLU ~= ReLU+AP; All-Conv trails on hard tasks")


if __name__ == "__main__":
    main()
