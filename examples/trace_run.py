"""End-to-end trace: compile + run + simulate a zoo model, export a trace.

Enables the process-wide :mod:`repro.obs` tracer, then does one of
everything the tracer instruments:

1. compiles the model through the MLCNN pass pipeline (compiler-pass
   spans),
2. instruments every layer and runs a forward pass (nested per-module
   ``*.forward`` spans),
3. runs the accelerator simulator over the model's layer specs
   (``sim.network`` span + per-layer ``sim.layer`` attribution events),

and writes the unified timeline as a Chrome trace — open the file in
``chrome://tracing`` or https://ui.perfetto.dev — plus a top-N summary
on stdout.  ``--format jsonl`` writes the greppable JSONL event log
instead, the input format ``python -m repro.experiments --diff-trace``
and :func:`repro.obs.build_attribution` consume.

Run::

    PYTHONPATH=src python examples/trace_run.py --model lenet5 --out trace.json
    PYTHONPATH=src python examples/trace_run.py --format jsonl --out run.jsonl
"""

import argparse

import numpy as np

from repro import CompileContext, build_model, mlcnn_pipeline, obs
from repro.accel import get_config, simulate_network
from repro.models import specs as model_specs
from repro.nn.tensor import Tensor, no_grad


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="lenet5", help="zoo model name")
    parser.add_argument("--out", default="trace.json", help="Chrome trace output path")
    parser.add_argument("--bits", type=int, default=8, help="quantization bits (0 = off)")
    parser.add_argument(
        "--format",
        choices=("chrome", "jsonl"),
        default="chrome",
        help="chrome trace-event JSON (default) or JSONL event log",
    )
    args = parser.parse_args()

    tracer = obs.get_tracer()
    tracer.clear()
    tracer.enable()

    # 1. compile: every pass records a compile.pass.<name> span
    model = build_model(args.model)
    ctx = CompileContext(quant_bits=args.bits)
    model, report = mlcnn_pipeline(bits=args.bits, strict=False).run(model, ctx)
    print(f"compiled {args.model}: {report.passes_run} passes, "
          f"{report.total_rewrites} rewrites")

    # 2. instrumented forward: one span per module, nested by call tree
    obs.instrument_model(model, prefix=args.model)
    model.eval()
    with no_grad():
        model(Tensor(np.random.default_rng(0).normal(size=(2, 3, 32, 32))))

    # 3. simulate: per-layer cycle/energy attribution events
    result = simulate_network(model_specs.get_specs(args.model), get_config("mlcnn-fp32"))
    print(f"simulated {len(result.layers)} layers: "
          f"{result.cycles:.3g} cycles, {result.energy.total_j:.3g} J")

    tracer.disable()
    if args.format == "jsonl":
        n = obs.write_jsonl(args.out, tracer)
        print(f"wrote {n} events to {args.out} (JSONL; feed to --diff-trace)")
    else:
        n = obs.write_chrome_trace(args.out, tracer)
        print(f"wrote {n} events to {args.out} (open in chrome://tracing)")
    print()
    print(obs.summary(tracer, top=10))


if __name__ == "__main__":
    main()
