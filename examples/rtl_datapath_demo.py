#!/usr/bin/env python3
"""RTL datapath demo: stream a feature map through the AR unit + MAC slice.

Drives the cycle-stepped micro-simulator of Fig. 7(b)/Fig. 11 — FIFOs,
shift registers, half/full additions, a 3-stage multiplier pipeline —
over one channel of a fused conv-pool layer, then checks the streamed
outputs against the vectorized fused kernel and prints the cycle and
reuse statistics the RTL prototype would report.

Run:  python examples/rtl_datapath_demo.py [--size 16] [--kernel 3]
"""

import argparse

import numpy as np

from repro.accel.rtl import RTLFusedConvPool
from repro.core.fusion import fused_conv_pool, fused_conv_pool_counted
from repro.nn.tensor import Tensor, no_grad


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=16, help="input feature map size")
    parser.add_argument("--kernel", type=int, default=3, help="conv filter size")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    image = rng.normal(size=(args.size, args.size))
    weights = rng.normal(size=(args.kernel, args.kernel))
    bias = float(rng.normal())

    report = RTLFusedConvPool(weights, bias).run(image)
    with no_grad():
        ref = fused_conv_pool(
            Tensor(image[None, None]),
            Tensor(weights[None, None]),
            Tensor(np.array([bias])),
            pool=2,
        ).data[0, 0]
    err = np.abs(report.outputs - ref).max()

    print(f"input {args.size}x{args.size}, filter {args.kernel}x{args.kernel}, 2x2 average pool")
    print(f"pooled output {report.outputs.shape[0]}x{report.outputs.shape[1]}; "
          f"max |RTL - vectorized| = {err:.2e}")
    assert err < 1e-9

    print(f"\ncycles:            {report.cycles}")
    print(f"input reads:       {report.input_reads} (each element streamed once per vertical pair)")
    print(f"half additions:    {report.ar_stats.half_additions}")
    print(f"full additions:    {report.ar_stats.full_additions}")
    print(f"multiplications:   {report.mac_stats.multiplications}")
    print(f"accumulations:     {report.mac_stats.accumulations}")
    print(f"FIFO high water:   {report.fifo_high_water}")

    # Compare against the demand-driven instrumented kernel.
    _, counter = fused_conv_pool_counted(image[None], weights[None, None], np.array([bias]))
    print(f"\ninstrumented-kernel reference (LAR+GAR): "
          f"{counter.multiplications} mults, {counter.additions} adds, "
          f"{counter.reuse_hits} additions avoided by reuse")

    dense_mults = counter.multiplications * 4  # RME removes 3 of every 4
    print(f"RME check: dense conv would need {dense_mults} multiplications; "
          f"the datapath performed {report.mac_stats.multiplications} "
          f"({1 - report.mac_stats.multiplications / dense_mults:.0%} removed)")

    # Waveform-style trace of the first cycles (record_trace=True).
    traced = RTLFusedConvPool(weights, bias).run(image, record_trace=True)
    print("\nfirst 12 trace events (VCD-style):")
    for event in traced.trace[:12]:
        print("  " + event.format())


if __name__ == "__main__":
    main()
