#!/usr/bin/env python3
"""Numerics health monitoring end-to-end: watch a training run, audit a
quantized forward, and measure the reorder divergence.

Three acts, all driven by one :class:`repro.obs.numerics.NumericsCollector`:

1. **Watched training** — a small LeNet trains on synthetic data with
   every layer instrumented; the collector streams per-layer
   forward/backward statistics (Welford moments + P² percentiles, no
   tensors retained) and the NaN/inf watchdog stamps any anomaly with
   its (layer, epoch, batch) position.
2. **Quantized clip audit** — the model is compiled through the MLCNN
   pipeline with DoReFa quantization; the collector counts how often
   activations/weights hit the clip boundaries, per layer.
3. **Reorder-divergence probe** — the compiled network runs in both
   activation/pooling orders and reports how far the outputs drift
   (exactly 0 for max pooling; real but small for average pooling).

Run:  PYTHONPATH=src python examples/numerics_watch.py [--epochs 2]
"""

import argparse

from repro.compiler import CompileContext, Pipeline
from repro.compiler.passes import (
    QuantizePass,
    ReorderActivationPoolingPass,
    ReorderDivergenceProbePass,
    SetPoolingPass,
)
from repro.data import SyntheticImageConfig, make_synth_cifar, train_val_split
from repro.models import build_model
from repro.nn.tensor import Tensor, no_grad
from repro.obs import instrument_model
from repro.obs.numerics import NumericsCollector
from repro.train import TrainConfig, Trainer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--samples", type=int, default=8, help="samples per class")
    parser.add_argument("--bits", type=int, default=8, help="DoReFa quantization bits")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    cfg = SyntheticImageConfig(
        num_classes=10, samples_per_class=args.samples, image_size=32, seed=args.seed
    )
    train_set, val_set = train_val_split(make_synth_cifar(cfg), 0.25, seed=args.seed)

    # -- 1. watched training -------------------------------------------------
    model = build_model("lenet5", seed=args.seed)
    collector = NumericsCollector(watchdog="warn")
    instrument_model(model, prefix="lenet5", numerics=collector)
    trainer = Trainer(
        model,
        train_set,
        val_set,
        TrainConfig(epochs=args.epochs, batch_size=16, lr=0.01, seed=args.seed),
        numerics=collector,
    )
    trainer.fit()
    streams = sorted({layer for layer, _ in collector.stats})
    print(f"watched {args.epochs} epoch(s): {len(streams)} instrumented layers, "
          f"{len(collector.stats)} forward/backward streams")
    anomaly = collector.first_anomaly
    print("watchdog:", "clean run, no NaN/inf" if anomaly is None else anomaly)

    # -- 2. quantized clip audit --------------------------------------------
    # fresh collector: training stats and inference clip rates are
    # different questions
    audit = NumericsCollector(watchdog="warn")
    ctx = CompileContext(seed=args.seed, quant_bits=args.bits)
    pipeline = Pipeline(
        [
            SetPoolingPass("avg"),
            ReorderActivationPoolingPass(),
            ReorderDivergenceProbePass(),
            QuantizePass(args.bits),
        ],
        name="numerics-watch",
    )
    with audit:
        pipeline.run(model, ctx)
        model.eval()
        with no_grad():
            model(Tensor(ctx.probe_batch()))
    print(f"\nquantized forward (INT{args.bits}):")
    print(f"  activation clip rate: {audit.clip_rate('dorefa.act_clip'):.2%}")
    print(f"  weight saturation:    {audit.clip_rate('dorefa.weight_sat'):.2%}")

    # -- 3. reorder-divergence probe ----------------------------------------
    div = ctx.state["reorder_divergence"]
    print(f"\nreorder divergence over {div['layers']} conv/pool block(s):")
    for layer, dev in div["per_layer"].items():
        print(f"  {layer:<24s} max|dev| {dev:.3e}")
    print(f"  end-to-end max|dev| {div['end_to_end_max_abs']:.3e}, "
          f"top-1 flips {div['top1_flip_rate']:.1%}")
    print("\n(avg pooling: ReLU/avg do not commute, so nonzero divergence "
          "is expected; rerun the probe on a max-pool net for exact zeros)")


if __name__ == "__main__":
    main()
