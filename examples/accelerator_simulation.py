#!/usr/bin/env python3
"""Accelerator walkthrough: per-layer cycles, speedup, energy breakdown.

Simulates a full-size network on the four Table VII accelerator
configurations and prints Fig. 13/15-style per-layer results: which
layers fuse, where the speedup comes from (compute vs memory bound),
and how the DRAM/Buffer/MAC/static energy shares move.

Run:  python examples/accelerator_simulation.py [--model googlenet]
"""

import argparse

from repro.accel import compare_networks, get_config, simulate_network
from repro.analysis.report import format_table
from repro.models import specs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="googlenet", choices=sorted(specs.MODEL_SPECS))
    args = parser.parse_args()

    layer_specs = specs.get_specs(args.model)
    base_cfg = get_config("dcnn-fp32")
    cand_cfg = get_config("mlcnn-fp32")
    cmp = compare_networks(layer_specs, base_cfg, cand_cfg)
    speed = cmp.layer_speedups()

    rows = []
    for spec, base, fused in zip(layer_specs, cmp.baseline.layers, cmp.candidate.layers):
        bound = "compute" if fused.compute_cycles >= fused.memory_cycles else "memory"
        rows.append([
            spec.name,
            f"{spec.kernel}x{spec.kernel}",
            f"{spec.pool}x{spec.pool}" if spec.pool else "-",
            "yes" if fused.fused else "no",
            f"{base.cycles:,.0f}",
            f"{fused.cycles:,.0f}",
            f"{speed[spec.name]:.2f}x",
            bound,
        ])
    print(f"== {args.model}: DCNN FP32 vs MLCNN FP32, per layer ==")
    print(format_table(
        ["layer", "K", "pool", "fused", "DCNN cycles", "MLCNN cycles", "speedup", "MLCNN bound"],
        rows,
    ))
    print(f"\nwhole-network speedup: {cmp.speedup:.2f}x; "
          f"energy efficiency: {cmp.energy_efficiency:.2f}x")

    print("\n== energy breakdown (Fig. 15 style) ==")
    rows = []
    for cfg_name in ("dcnn-fp32", "mlcnn-fp32", "mlcnn-fp16", "mlcnn-int8"):
        res = simulate_network(layer_specs, get_config(cfg_name))
        e = res.energy
        rows.append([
            cfg_name,
            f"{res.cycles:,.0f}",
            f"{e.dram_j * 1e6:.1f}",
            f"{e.buffer_j * 1e6:.1f}",
            f"{e.mac_j * 1e6:.1f}",
            f"{e.static_j * 1e6:.1f}",
            f"{e.total_j * 1e6:.1f}",
        ])
    print(format_table(
        ["config", "cycles", "DRAM uJ", "Buffer uJ", "MAC uJ", "static uJ", "total uJ"],
        rows,
    ))


if __name__ == "__main__":
    main()
