#!/usr/bin/env python3
"""Multi-core inference with the worker-pool execution engine.

Demonstrates `repro.core.parallel` end to end:

1. sharded kernel execution — `parallel_fused_conv_pool` against the
   serial lowered kernel, with the determinism contract checked on the
   spot (float: allclose to round-off; int: bit-identical);
2. the compiler route — `mlcnn_pipeline(parallel_workers=N)` appends a
   `parallelize` stage that wraps every bound kernel in a
   `ParallelKernel`, and the per-layer sharding decision lands in the
   compile context;
3. full-plan data parallelism — `ParallelPlanExecutor` ships the
   compiled model to the workers once and shards the batch axis;
4. a small worker-scaling sweep with per-shard tracer spans.

The `if __name__ == "__main__"` guard is load-bearing: worker
processes are started via forkserver/spawn, which re-imports this
module — module level must stay side-effect free.

Run:  python examples/parallel_infer.py [--workers N]
"""

import argparse
from time import perf_counter

import numpy as np

from repro import build_model
from repro.compiler import CompileContext, mlcnn_pipeline
from repro.core.fixedpoint import quantize_tensor
from repro.core.parallel import (
    ParallelPlanExecutor,
    available_workers,
    parallel_fused_conv_pool,
    parallel_fused_conv_pool_int,
    shutdown_pools,
)
from repro.nn.tensor import Tensor, no_grad
from repro.obs import get_tracer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers", type=int, default=max(2, available_workers()),
        help="worker count for the sharded runs (default: max(2, nproc))",
    )
    args = parser.parse_args()
    workers = args.workers
    print(f"host reports {available_workers()} usable core(s); using workers={workers}\n")

    # 1. Sharded kernel vs serial: the determinism contract. ---------------
    rng = np.random.default_rng(0)
    x = rng.normal(size=(16, 16, 32, 32))
    w = rng.normal(size=(32, 16, 3, 3))
    b = rng.normal(size=32)

    serial = parallel_fused_conv_pool(x, w, b, pool=2, padding=1, workers=1)
    sharded = parallel_fused_conv_pool(x, w, b, pool=2, padding=1, workers=workers)
    print(
        "float kernel: sharded vs serial max|dev| = "
        f"{np.abs(sharded - serial).max():.3e}  (round-off only; "
        "per-shard GEMMs associate additions differently)"
    )

    xq = quantize_tensor(x, bits=8)
    wq = quantize_tensor(w, bits=8)
    int_sharded = parallel_fused_conv_pool_int(xq, wq, b, pool=2, workers=workers)
    int_serial = parallel_fused_conv_pool_int(xq, wq, b, pool=2, workers=1)
    assert np.array_equal(int_sharded, int_serial)
    print("int kernel:   sharded vs serial -> bit-identical (int64 adds are associative)\n")

    # 2. Compiler route: parallelize as a pipeline stage. ------------------
    model = build_model("lenet5", seed=0)
    ctx = CompileContext(seed=0)
    model, report = mlcnn_pipeline(parallel_workers=workers).run(model, ctx)
    plan = ctx.state.get("parallel_plan", {})
    print(f"pipeline: {' | '.join(r.name for r in report.records if r.ran)}")
    for path, entry in plan.items():
        print(
            f"  {path}: kernel={entry['kernel']} workers={entry['workers']} "
            f"axis={entry['axis']} shards={entry['shards']}"
        )

    # 3. Full-plan data parallelism + a tiny scaling sweep. ----------------
    batch = rng.normal(size=(32, 3, 32, 32))
    with no_grad():
        ref = model(Tensor(batch)).data

    tracer = get_tracer()
    tracer.enable()
    try:
        for n in sorted({1, 2, workers}):
            executor = ParallelPlanExecutor(model, workers=n)
            executor.run(batch)  # warm the pool + arenas
            start = perf_counter()
            out = executor.run(batch)
            elapsed = perf_counter() - start
            assert np.allclose(out, ref, atol=1e-9)
            rate = batch.shape[0] / elapsed
            shard_events = [e for e in tracer.events if e.name.startswith("parallel.shard.")]
            print(
                f"full plan, workers={n}: {rate:8.1f} samples/s "
                f"({len(shard_events)} shard span(s) this run)"
            )
            tracer.clear()
    finally:
        tracer.disable()
        shutdown_pools()


if __name__ == "__main__":
    main()
