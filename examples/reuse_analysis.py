#!/usr/bin/env python3
"""Reuse-analysis sweeps: the curves behind Tables II-VI as ASCII plots.

Sweeps filter size and input dimension through the analytical LAR/GAR
models and the accelerator model, rendering each series as an ASCII
chart — the continuous picture the paper samples at a few points.

Run:  python examples/reuse_analysis.py
"""

import numpy as np

from repro.analysis.sweep import (
    addition_reduction_vs_kernel,
    gar_rate_vs_filter,
    gar_rate_vs_input,
    lar_rate_vs_filter,
    speedup_vs_pool_size,
)


def ascii_plot(xs, ys, title: str, width: int = 60, height: int = 12, fmt="{:.2f}") -> None:
    ys = np.asarray(ys, dtype=float)
    lo, hi = ys.min(), ys.max()
    span = hi - lo or 1.0
    print(f"\n{title}")
    print(f"  max {fmt.format(hi)}")
    grid = [[" "] * width for _ in range(height)]
    for i, y in enumerate(ys):
        col = int(i * (width - 1) / max(len(ys) - 1, 1))
        row = height - 1 - int((y - lo) / span * (height - 1))
        grid[row][col] = "*"
    for row in grid:
        print("  |" + "".join(row))
    print("  +" + "-" * width)
    print(f"  min {fmt.format(lo)};  x: {xs[0]} .. {xs[-1]}")


def main() -> None:
    ks, lar = lar_rate_vs_filter(range(2, 41))
    ascii_plot(ks, 100 * lar, "LAR addition reduction vs filter size K (limit: 25%)")

    ks, gar = gar_rate_vs_filter(d=28)
    ascii_plot(ks, 100 * gar, "GAR addition reduction vs K at D=28 (apex near K=15)")

    ds, gar_d = gar_rate_vs_input(k=13)
    ascii_plot(ds, 100 * gar_d, "GAR addition reduction vs input dimension D at K=13 (limit: 63.6%)")

    ps, sp = speedup_vs_pool_size((2, 3, 4, 5, 6, 8))
    ascii_plot(ps, sp, "modelled FP32 layer speedup vs pooling window p (RME: 1 - 1/p^2)")

    ks, add = addition_reduction_vs_kernel((1, 2, 3, 5, 7, 9))
    ascii_plot(ks, 100 * add, "layer-level addition reduction vs conv kernel (1x1 lowest)")

    print("\npaper checkpoints: Table II row K=11 -> 22.8%; Table IV apex ~55.8%;")
    print("Table VI D=224 -> 63.0%; GoogLeNet 8x8 pool drives its Fig. 13 peak")


if __name__ == "__main__":
    main()
