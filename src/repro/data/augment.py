"""Data augmentation transforms (NCHW batches).

CIFAR training pipelines conventionally use random crops with padding
and horizontal flips; the accuracy experiments can enable the same on
the synthetic datasets.  All transforms are pure functions over batches
with an explicit ``numpy.random.Generator`` for reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np


def random_horizontal_flip(
    images: np.ndarray, rng: np.random.Generator, p: float = 0.5
) -> np.ndarray:
    """Flip each image left-right with probability ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    out = images.copy()
    flip = rng.random(len(images)) < p
    out[flip] = out[flip, :, :, ::-1]
    return out


def random_crop(
    images: np.ndarray, rng: np.random.Generator, padding: int = 4
) -> np.ndarray:
    """Pad reflectively by ``padding`` and crop back at a random offset."""
    if padding < 1:
        raise ValueError("padding must be >= 1")
    n, c, h, w = images.shape
    padded = np.pad(
        images, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="reflect"
    )
    out = np.empty_like(images)
    ys = rng.integers(0, 2 * padding + 1, size=n)
    xs = rng.integers(0, 2 * padding + 1, size=n)
    for i in range(n):
        out[i] = padded[i, :, ys[i] : ys[i] + h, xs[i] : xs[i] + w]
    return out


def cutout(
    images: np.ndarray, rng: np.random.Generator, size: int = 8
) -> np.ndarray:
    """Zero a random ``size x size`` square per image (DeVries & Taylor)."""
    n, c, h, w = images.shape
    if size < 1 or size > min(h, w):
        raise ValueError(f"cutout size {size} invalid for {h}x{w} images")
    out = images.copy()
    ys = rng.integers(0, h - size + 1, size=n)
    xs = rng.integers(0, w - size + 1, size=n)
    for i in range(n):
        out[i, :, ys[i] : ys[i] + size, xs[i] : xs[i] + size] = 0.0
    return out


@dataclass
class Augmentation:
    """A reproducible composition of batch transforms.

    >>> aug = Augmentation(flip=True, crop_padding=4, seed=0)
    >>> batch = aug(images)            # fresh randomness per call
    """

    flip: bool = True
    crop_padding: int = 0
    cutout_size: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        out = np.asarray(images)
        if out.ndim != 4:
            raise ValueError(f"expected an NCHW batch, got ndim={out.ndim}")
        if self.crop_padding:
            out = random_crop(out, self._rng, self.crop_padding)
        if self.flip:
            out = random_horizontal_flip(out, self._rng)
        if self.cutout_size:
            out = cutout(out, self._rng, self.cutout_size)
        return out
