"""Dataset/DataLoader utilities (array-backed, NumPy-native)."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np


class ArrayDataset:
    """A dataset of (images, labels) held as contiguous arrays."""

    def __init__(self, images: np.ndarray, labels: np.ndarray) -> None:
        images = np.asarray(images)
        labels = np.asarray(labels)
        if len(images) != len(labels):
            raise ValueError(f"images ({len(images)}) and labels ({len(labels)}) disagree")
        if labels.ndim != 1:
            raise ValueError("labels must be a 1-D integer array")
        self.images = images
        self.labels = labels.astype(np.int64)

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, idx) -> Tuple[np.ndarray, np.ndarray]:
        return self.images[idx], self.labels[idx]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        return ArrayDataset(self.images[indices], self.labels[indices])


def train_val_split(
    dataset: ArrayDataset, val_fraction: float = 0.2, seed: int = 0
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Shuffle and split into train/validation datasets."""
    if not 0.0 < val_fraction < 1.0:
        raise ValueError(f"val_fraction must be in (0, 1), got {val_fraction}")
    rng = np.random.default_rng(seed)
    idx = rng.permutation(len(dataset))
    n_val = max(1, int(round(len(dataset) * val_fraction)))
    return dataset.subset(idx[n_val:]), dataset.subset(idx[:n_val])


class DataLoader:
    """Mini-batch iterator with optional shuffling.

    Each epoch re-shuffles with a stream drawn from the seed so runs
    are reproducible but epochs differ.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = False,
        transform: Optional[callable] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.transform = transform
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        stop = n - n % self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            batch = order[start : start + self.batch_size]
            images = self.dataset.images[batch]
            if self.transform is not None:
                images = self.transform(images)
            yield images, self.dataset.labels[batch]
