"""repro.data — dataset substrate.

The paper trains on CIFAR-10/100; this environment has no network
access, so :mod:`repro.data.synthetic` generates structured synthetic
image-classification tasks ("synth-CIFAR") that exercise the identical
training/inference code paths: class-specific spatial patterns, random
shifts (which make pooling's shift tolerance matter, as in the paper's
All-Conv comparison), and additive noise.
"""

from repro.data.dataset import ArrayDataset, DataLoader, train_val_split
from repro.data.synthetic import SyntheticImageConfig, make_synth_cifar, synth_cifar10, synth_cifar100
from repro.data.augment import Augmentation, cutout, random_crop, random_horizontal_flip

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "train_val_split",
    "SyntheticImageConfig",
    "make_synth_cifar",
    "synth_cifar10",
    "synth_cifar100",
    "Augmentation",
    "cutout",
    "random_crop",
    "random_horizontal_flip",
]
