"""Synthetic CIFAR-like image classification tasks.

The paper's accuracy experiments (Figs. 3, 4, 12) compare *the same
model trained three ways* (original, reordered, all-conv) on CIFAR.
What those comparisons need from the data is (a) class structure that a
small CNN can learn, (b) spatial translation jitter so that pooling's
shift tolerance matters, and (c) a "hard" many-class variant mirroring
CIFAR-100.  ``make_synth_cifar`` provides all three without network
access:

* each class owns a prototype built from a small random bank of 2-D
  sinusoidal gratings (Gabor-like energy at class-specific frequencies
  and orientations) plus a class color cast;
* each sample is the prototype under a random circular shift, per-sample
  gain, and additive Gaussian pixel noise;
* the 100-class variant draws prototypes from a shared low-dimensional
  basis, so classes crowd together and errors become likely — small
  modelling differences (e.g. dropping pooling) then show up in
  accuracy, as on CIFAR-100 in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.data.dataset import ArrayDataset


@dataclass(frozen=True)
class SyntheticImageConfig:
    """Parameters of the synthetic task generator."""

    num_classes: int = 10
    samples_per_class: int = 64
    image_size: int = 32
    channels: int = 3
    #: number of sinusoidal gratings mixed into each class prototype
    gratings_per_class: int = 4
    #: dimension of the shared grating basis (small => crowded classes)
    basis_size: int = 48
    #: maximum circular shift (pixels) applied per sample
    max_shift: int = 3
    #: additive Gaussian noise sigma (images are roughly unit-scale)
    noise_sigma: float = 0.35
    #: per-sample multiplicative gain jitter
    gain_jitter: float = 0.15
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("need at least 2 classes")
        if self.image_size < 8:
            raise ValueError("image_size must be >= 8")
        if self.max_shift >= self.image_size // 2:
            raise ValueError("max_shift too large for the image size")


def _grating_basis(cfg: SyntheticImageConfig, rng: np.random.Generator) -> np.ndarray:
    """Build ``basis_size`` unit-norm gratings of shape (C, H, W)."""
    h = w = cfg.image_size
    yy, xx = np.mgrid[0:h, 0:w].astype(np.float64)
    basis = np.empty((cfg.basis_size, cfg.channels, h, w))
    for b in range(cfg.basis_size):
        freq = rng.uniform(0.5, 3.0)  # cycles across the image
        theta = rng.uniform(0.0, np.pi)
        phase = rng.uniform(0.0, 2.0 * np.pi)
        k = 2.0 * np.pi * freq / h
        wave = np.sin(k * (np.cos(theta) * xx + np.sin(theta) * yy) + phase)
        color = rng.normal(0.0, 1.0, size=cfg.channels)
        color /= np.linalg.norm(color) + 1e-12
        pat = color[:, None, None] * wave[None, :, :]
        basis[b] = pat / (np.linalg.norm(pat) + 1e-12)
    return basis


def make_synth_cifar(cfg: SyntheticImageConfig) -> ArrayDataset:
    """Generate a synthetic dataset according to ``cfg``.

    Returns images of shape ``(N, C, H, W)`` normalized to roughly zero
    mean / unit variance, with integer labels.
    """
    rng = np.random.default_rng(cfg.seed)
    basis = _grating_basis(cfg, rng)

    # Class prototypes: sparse mixtures over the shared basis.
    protos = np.zeros((cfg.num_classes, cfg.channels, cfg.image_size, cfg.image_size))
    for c in range(cfg.num_classes):
        picks = rng.choice(cfg.basis_size, size=cfg.gratings_per_class, replace=False)
        coefs = rng.normal(1.0, 0.3, size=cfg.gratings_per_class) * rng.choice(
            [-1.0, 1.0], size=cfg.gratings_per_class
        )
        protos[c] = np.tensordot(coefs, basis[picks], axes=(0, 0))
        protos[c] /= np.abs(protos[c]).max() + 1e-12

    n = cfg.num_classes * cfg.samples_per_class
    images = np.empty((n, cfg.channels, cfg.image_size, cfg.image_size))
    labels = np.repeat(np.arange(cfg.num_classes), cfg.samples_per_class)
    shifts = rng.integers(-cfg.max_shift, cfg.max_shift + 1, size=(n, 2))
    gains = 1.0 + cfg.gain_jitter * rng.standard_normal(n)
    for i in range(n):
        img = protos[labels[i]]
        img = np.roll(img, (shifts[i, 0], shifts[i, 1]), axis=(1, 2))
        images[i] = gains[i] * img
    images += cfg.noise_sigma * rng.standard_normal(images.shape)

    # Per-dataset standardization mirrors CIFAR's mean/std normalization.
    images -= images.mean()
    images /= images.std() + 1e-12
    order = rng.permutation(n)
    return ArrayDataset(images[order].astype(np.float64), labels[order])


def synth_cifar10(
    samples_per_class: int = 64, image_size: int = 32, seed: int = 0
) -> ArrayDataset:
    """A 10-class synthetic stand-in for CIFAR-10."""
    return make_synth_cifar(
        SyntheticImageConfig(
            num_classes=10,
            samples_per_class=samples_per_class,
            image_size=image_size,
            seed=seed,
        )
    )


def synth_cifar100(
    samples_per_class: int = 16, image_size: int = 32, seed: int = 0
) -> ArrayDataset:
    """A 100-class synthetic stand-in for CIFAR-100 (crowded classes)."""
    return make_synth_cifar(
        SyntheticImageConfig(
            num_classes=100,
            samples_per_class=samples_per_class,
            image_size=image_size,
            basis_size=64,
            gratings_per_class=3,
            noise_sigma=0.45,
            seed=seed,
        )
    )
