"""Plan cache: skip re-validation of already-compiled architectures.

The hot path in :mod:`repro.experiments` sweeps compiles the *same* zoo
architecture through the *same* pipeline many times (fresh weights each
run).  Validation — probe forwards and MAC counting after every pass —
dominates that cost, and its outcome depends only on the architecture,
the pipeline spec, and the context knobs, not on the weight values.
So a successful validated compilation records the key
``(architecture signature, pipeline spec, ctx.cache_key())``; later
compilations with the same key run the passes but skip validation.

:func:`architecture_signature` hashes the module tree (class names,
``extra_repr`` configuration, parameter shapes) — weights do not enter
the hash, two same-architecture models collide on purpose.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

from repro.nn.layers import Module

CacheKey = Tuple[str, str, tuple]

#: module path -> selected kernel spec name, per cache key
KernelPlan = Dict[str, str]


def architecture_signature(model: Module) -> str:
    """Stable hex digest of a model's architecture (not its weights)."""
    h = hashlib.sha256()
    for name, mod in model.named_modules():
        h.update(f"{name}:{type(mod).__name__}:{mod.extra_repr()}".encode())
    for name, param in model.named_parameters():
        h.update(f"{name}:{param.data.shape}:{param.data.dtype}".encode())
    return h.hexdigest()


class PlanCache:
    """Set of compilation keys whose validation already succeeded.

    Besides the validation-skip set, the cache stores the *kernel plan*
    the lowering pass computed for a key (module path -> selected
    kernel name).  Because the key covers the architecture signature,
    the full pipeline spec (including the ``lower`` pass's
    ``impl``/``bits`` signature) and the context knobs, a stored plan
    can never be replayed for a different lowering configuration or
    shape class — changing any of them changes the key.
    """

    def __init__(self) -> None:
        self._plans: Dict[CacheKey, int] = {}
        #: key -> (registry signature at selection time, path -> kernel name)
        self._kernel_plans: Dict[CacheKey, Tuple[Optional[str], KernelPlan]] = {}
        #: key -> sharding decision recorded by the parallelize pass
        self._parallel_plans: Dict[CacheKey, Dict[str, Dict[str, object]]] = {}
        self.hits = 0
        self.misses = 0

    def contains(self, key: CacheKey) -> bool:
        if key in self._plans:
            self.hits += 1
            self._plans[key] += 1
            return True
        self.misses += 1
        return False

    def add(self, key: CacheKey) -> None:
        self._plans.setdefault(key, 0)

    def store_kernel_plan(
        self, key: CacheKey, plan: KernelPlan, registry_sig: Optional[str] = None
    ) -> None:
        """Record the lowering selection computed for ``key``.

        ``registry_sig`` is the :meth:`KernelRegistry.signature
        <repro.core.kernels.registry.KernelRegistry.signature>` digest
        at selection time; a later :meth:`kernel_plan` lookup under a
        *different* registry population returns None, forcing a fresh
        selection (registering or removing kernels invalidates plans).
        """
        self._kernel_plans[key] = (registry_sig, dict(plan))

    def kernel_plan(
        self, key: CacheKey, registry_sig: Optional[str] = None
    ) -> Optional[KernelPlan]:
        """The stored lowering selection for ``key``.

        None when absent, or when the stored plan was selected under a
        registry whose signature differs from ``registry_sig`` (pass
        None to skip the signature check).
        """
        entry = self._kernel_plans.get(key)
        if entry is None:
            return None
        stored_sig, plan = entry
        if registry_sig is not None and stored_sig is not None and stored_sig != registry_sig:
            return None
        return dict(plan)

    def store_parallel_plan(
        self, key: CacheKey, plan: Dict[str, Dict[str, object]]
    ) -> None:
        """Record the sharding the parallelize pass chose for ``key``."""
        self._parallel_plans[key] = {p: dict(d) for p, d in plan.items()}

    def parallel_plan(self, key: CacheKey) -> Optional[Dict[str, Dict[str, object]]]:
        """The stored sharding decision for ``key`` (None if absent)."""
        plan = self._parallel_plans.get(key)
        return {p: dict(d) for p, d in plan.items()} if plan is not None else None

    def __len__(self) -> int:
        return len(self._plans)

    def clear(self) -> None:
        self._plans.clear()
        self._kernel_plans.clear()
        self._parallel_plans.clear()
        self.hits = 0
        self.misses = 0


#: process-wide cache consulted by :meth:`repro.compiler.Pipeline.run`
PLAN_CACHE = PlanCache()


def clear_plan_cache() -> None:
    """Drop all cached plans (tests; or after changing validation knobs)."""
    PLAN_CACHE.clear()
