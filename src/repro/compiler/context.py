"""Shared state for a compilation run.

A :class:`CompileContext` carries everything a pass may legitimately
depend on — the seeded RNG, target bit widths, pruning budget, the
probe batch used for functional-equivalence spot checks — so passes
themselves stay stateless and reorderable.  Two runs with equal
contexts over equal models produce bit-identical results (the
determinism guarantee the tests in ``tests/compiler`` assert).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

#: offset mixed into the context seed for the probe batch, so that a
#: pass consuming ``ctx.rng`` never perturbs the validation data.
_PROBE_SEED_OFFSET = 0x9E3779B9


class PassValidationError(RuntimeError):
    """A pass violated an invariant it declared (semantics or params)."""


@dataclass
class CompileContext:
    """Mutable per-compilation state shared by every pass in a pipeline.

    Parameters
    ----------
    seed:
        Seeds both ``rng`` (used by passes that create parameters, e.g.
        the all-conv downsample convs) and the generated probe batch.
    quant_bits / sparsity / pooling:
        Defaults for passes constructed without an explicit setting.
    probe / probe_shape:
        Validation input: an explicit batch wins; otherwise a standard
        normal batch of ``probe_shape`` is generated from ``seed``.
    validate:
        Master switch for the per-pass validation hooks (functional
        spot-check, parameter invariance, MAC deltas).
    atol:
        Absolute tolerance of the functional-equivalence check for
        passes that declare ``preserves_semantics``.
    """

    seed: int = 0
    quant_bits: int = 0
    sparsity: float = 0.0
    pooling: str = "avg"
    probe: Optional[np.ndarray] = None
    probe_shape: Tuple[int, ...] = (2, 3, 32, 32)
    validate: bool = True
    use_cache: bool = True
    atol: float = 1e-8
    rng: Optional[np.random.Generator] = None
    state: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rng is None:
            self.rng = np.random.default_rng(self.seed)

    def probe_batch(self) -> np.ndarray:
        """The validation input batch (deterministic in ``seed``)."""
        if self.probe is not None:
            return self.probe
        cached = self.state.get("_probe_batch")
        if cached is None or cached.shape != self.probe_shape:
            gen = np.random.default_rng(self.seed + _PROBE_SEED_OFFSET)
            cached = gen.normal(size=self.probe_shape)
            self.state["_probe_batch"] = cached
        return cached

    def cache_key(self) -> Tuple[int, int, float, str]:
        """The context fields a cached plan is allowed to depend on."""
        return (self.seed, self.quant_bits, self.sparsity, self.pooling)


@dataclass
class PassResult:
    """What a single pass reports back to the pipeline."""

    name: str
    rewrites: int = 0
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def changed(self) -> bool:
        return self.rewrites > 0
