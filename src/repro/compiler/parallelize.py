"""The parallelize stage: shard lowered kernels across worker processes.

:class:`ParallelizePass` runs after ``lower``.  For every fused module
with a bound kernel it decides a sharding (via
:func:`repro.core.parallel.plan_shards` on the context's probe batch
geometry) and rebinds the kernel wrapped in a
:class:`~repro.core.parallel.ParallelKernel` — gradient-free forwards
then fan out across the persistent worker pool, while training
forwards keep the serial autograd path untouched.

The sharding decision per layer (axis, shard count, worker count) is
recorded in the plan cache
(:meth:`~repro.compiler.cache.PlanCache.store_parallel_plan`) under
the same key the kernel plan uses, so sweep recompilations replay the
decision without re-planning, and tooling can inspect what a compiled
plan will do before running it.

``workers <= 1`` makes the pass a no-op (it does not even wrap), so a
pipeline built with ``parallel_workers=1`` is byte-for-byte the serial
pipeline.  The pass preserves semantics: each shard runs the serial
kernel on a disjoint slice, so outputs match within float round-off
(the pipeline's probe validation enforces the bound).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.compiler.context import CompileContext, PassResult
from repro.compiler.pass_base import Pass, register_pass
from repro.core.fusion import FusedConvPool
from repro.nn.layers import Module

__all__ = ["ParallelizePass"]


@register_pass
class ParallelizePass(Pass):
    """Wrap bound kernels for sharded execution (see module doc)."""

    name = "parallelize"
    preserves_semantics = True  # disjoint shards, same kernel per shard
    preserves_params = True

    def __init__(self, workers: Optional[int] = None) -> None:
        from repro.core.parallel import available_workers

        self.workers = available_workers() if workers is None else int(workers)

    def applies_to(self, model: Module) -> bool:
        return self.workers > 1 and any(
            isinstance(m, FusedConvPool) and m.kernel is not None
            for _, m in model.named_modules()
        )

    def signature(self) -> str:
        return f"{self.name}(workers={self.workers})"

    def run(self, model: Module, ctx: CompileContext) -> PassResult:
        from repro.compiler.cache import PLAN_CACHE
        from repro.core.parallel import ParallelKernel, plan_shards

        probe_n = ctx.probe_batch().shape[0]
        plan: Dict[str, Dict[str, object]] = {}
        wrapped = 0
        for path, mod in model.named_modules():
            if not (isinstance(mod, FusedConvPool) and mod.kernel is not None):
                continue
            inner = mod.kernel
            if isinstance(inner, ParallelKernel):
                inner = inner.inner  # re-wrap idempotently
            shards = plan_shards(probe_n, mod.weight.shape[0], self.workers)
            mod.attach_kernel(ParallelKernel(inner, inner.name, self.workers))
            plan[path] = {
                "kernel": inner.name,
                "workers": self.workers,
                "axis": shards[0].axis,
                "shards": len(shards),
            }
            wrapped += 1

        cache_key = ctx.state.get("plan_cache_key")
        if cache_key is not None and plan:
            PLAN_CACHE.store_parallel_plan(cache_key, plan)
        ctx.state["parallel_plan"] = dict(plan)
        return PassResult(self.name, wrapped, {"workers": self.workers, "plan": plan})
