"""Built-in passes: the six existing graph mutators as registered passes.

Each pass wraps one in-place mutator from :mod:`repro.models.reorder`,
:mod:`repro.core.transform`, :mod:`repro.core.quantize` or
:mod:`repro.core.prune`, adds an ``applies_to`` pre-check and an honest
rewrite count, and declares which invariants the pipeline should
enforce afterwards:

=================  ====================  =================
pass               preserves semantics   preserves params
=================  ====================  =================
``set-pooling``    no (avg ≠ max)        yes
``reorder``        no (Jensen, for avg)  yes
``restore-order``  no                    yes
``to-allconv``     no                    no (may add convs)
``fuse``           **yes** (exact)       yes (shared)
``quantize``       no (k-bit rounding)   yes (shared)
``prune``          no (zeroed weights)   yes (count only)
``reorder-probe``  **yes** (read-only)   yes
=================  ====================  =================

``reorder-probe`` is the validation counterpart of ``reorder``: it
mutates nothing, but *measures* the per-layer and end-to-end divergence
between the two activation orders on the context's probe batch
(:func:`repro.obs.numerics.reorder_divergence`) and stores the result
in ``ctx.state["reorder_divergence"]`` — the quantified version of the
paper's "negligible accuracy impact" claim, recorded at compile time.
"""

from __future__ import annotations

from typing import Optional

from repro.compiler.context import CompileContext, PassResult
from repro.compiler.pass_base import Pass, register_pass
from repro.models.blocks import ConvBlock
from repro.models.reorder import (
    conv_pool_blocks,
    reorder_activation_pooling,
    restore_original_order,
    set_pooling,
    to_allconv,
)
from repro.nn.layers import Module


@register_pass
class SetPoolingPass(Pass):
    """Switch every pooling layer to ``kind`` (default from ctx)."""

    name = "set-pooling"
    preserves_semantics = False  # avg and max pooling differ
    preserves_params = True

    def __init__(self, kind: Optional[str] = None) -> None:
        self.kind = kind

    def _kind(self, ctx: CompileContext) -> str:
        return self.kind or ctx.pooling

    def applies_to(self, model: Module) -> bool:
        return bool(conv_pool_blocks(model))

    def run(self, model: Module, ctx: CompileContext) -> PassResult:
        kind = self._kind(ctx)
        rewrites = sum(1 for b in conv_pool_blocks(model) if b.pool.kind != kind)
        set_pooling(model, kind)
        return PassResult(self.name, rewrites, {"kind": kind})

    def signature(self) -> str:
        return f"{self.name}({self.kind or 'ctx'})"


@register_pass
class ReorderActivationPoolingPass(Pass):
    """Conv -> ReLU -> Pool  ⇒  Conv -> Pool -> ReLU (Section III)."""

    name = "reorder"
    preserves_semantics = False  # exact for max pooling, not for avg
    preserves_params = True

    def applies_to(self, model: Module) -> bool:
        return any(b.order != "pool_act" for b in conv_pool_blocks(model))

    def run(self, model: Module, ctx: CompileContext) -> PassResult:
        rewrites = sum(1 for b in conv_pool_blocks(model) if b.order != "pool_act")
        reorder_activation_pooling(model)
        return PassResult(self.name, rewrites)


@register_pass
class RestoreOrderPass(Pass):
    """Undo the reordering (back to the conventional ReLU+AP order)."""

    name = "restore-order"
    preserves_semantics = False
    preserves_params = True

    def applies_to(self, model: Module) -> bool:
        return any(b.order != "act_pool" for b in conv_pool_blocks(model))

    def run(self, model: Module, ctx: CompileContext) -> PassResult:
        rewrites = sum(1 for b in conv_pool_blocks(model) if b.order != "act_pool")
        restore_original_order(model)
        return PassResult(self.name, rewrites)


@register_pass
class AllConvPass(Pass):
    """Fold pooling into conv strides (All-Conv baseline transform).

    New downsample convolutions (inception stages) draw their weights
    from ``ctx.rng`` — deterministic under a fixed context seed.
    """

    name = "to-allconv"
    preserves_semantics = False
    preserves_params = False  # inception stages gain a downsample conv

    def applies_to(self, model: Module) -> bool:
        return bool(conv_pool_blocks(model))

    def run(self, model: Module, ctx: CompileContext) -> PassResult:
        rewrites = len(conv_pool_blocks(model))
        to_allconv(model, rng=ctx.rng)
        return PassResult(self.name, rewrites)


@register_pass
class FuseConvPoolPass(Pass):
    """Replace fusable blocks with the RME/LAR/GAR fused kernel.

    The only semantics-preserving pass (outputs equal up to fp
    association); parameters are shared, not copied.  ``strict=True``
    keeps the historical loud failure when nothing is fusable;
    ``strict=False`` lets pipelines compose over unfusable models.
    """

    name = "fuse"
    preserves_semantics = True
    preserves_params = True

    def __init__(self, strict: bool = True, overlap: bool = False) -> None:
        self.strict = strict
        self.overlap = overlap

    def run(self, model: Module, ctx: CompileContext) -> PassResult:
        from repro.core.transform import fuse_network

        _, replaced = fuse_network(model, strict=self.strict, overlap=self.overlap)
        return PassResult(self.name, len(replaced), {"paths": [p for p, _ in replaced]})

    def signature(self) -> str:
        # overlap=False keeps the historical spec string (cache keys stable)
        extra = ",overlap=True" if self.overlap else ""
        return f"{self.name}(strict={self.strict}{extra})"


@register_pass
class QuantizePass(Pass):
    """Wrap conv blocks for k-bit DoReFa execution (Eqs. 8-9)."""

    name = "quantize"
    preserves_semantics = False  # k-bit rounding changes outputs
    preserves_params = True  # wrapped blocks share parameters

    def __init__(self, bits: Optional[int] = None, quantize_first_input: bool = False) -> None:
        self.bits = bits
        self.quantize_first_input = quantize_first_input

    def _bits(self, ctx: CompileContext) -> int:
        return self.bits if self.bits is not None else ctx.quant_bits

    def applies_to(self, model: Module) -> bool:
        from repro.core.quantize import QuantizedConvBlock

        mods = [m for _, m in model.named_modules()]
        if any(isinstance(m, QuantizedConvBlock) for m in mods):
            return False  # already quantized; re-wrapping would double-quantize
        return any(isinstance(m, ConvBlock) for m in mods)

    def run(self, model: Module, ctx: CompileContext) -> PassResult:
        from repro.core.quantize import QuantConfig, QuantizedConvBlock, quantize_model

        bits = self._bits(ctx)
        if not bits:
            return PassResult(self.name, 0, {"bits": 0})
        quantize_model(model, QuantConfig(bits, bits), self.quantize_first_input)
        wrapped = sum(
            1 for _, m in model.named_modules() if isinstance(m, QuantizedConvBlock)
        )
        return PassResult(self.name, wrapped, {"bits": bits})

    def signature(self) -> str:
        return f"{self.name}({self.bits if self.bits is not None else 'ctx'})"


@register_pass
class PrunePass(Pass):
    """Global magnitude pruning of conv weights (Section VIII)."""

    name = "prune"
    preserves_semantics = False
    preserves_params = True  # weights are zeroed, not removed

    def __init__(self, sparsity: Optional[float] = None) -> None:
        self.sparsity = sparsity

    def _sparsity(self, ctx: CompileContext) -> float:
        return self.sparsity if self.sparsity is not None else ctx.sparsity

    def run(self, model: Module, ctx: CompileContext) -> PassResult:
        from repro.core.prune import magnitude_prune

        sparsity = self._sparsity(ctx)
        if sparsity <= 0.0:
            return PassResult(self.name, 0, {"sparsity": 0.0})
        report = magnitude_prune(model, sparsity)
        return PassResult(
            self.name, report.pruned_weights, {"sparsity": report.sparsity}
        )

    def signature(self) -> str:
        return f"{self.name}({self.sparsity if self.sparsity is not None else 'ctx'})"


@register_pass
class ReorderDivergenceProbePass(Pass):
    """Measure act/pool reorder divergence on the probe batch (read-only).

    Runs the model in both activation orders on ``ctx.probe_batch()``
    and records per-layer max-abs deviation, end-to-end max-abs
    deviation and the top-1 flip rate into
    ``ctx.state["reorder_divergence"]``, any enabled numerics
    collectors, and a tracer event.  The model is left exactly as it
    was (orders and train/eval mode restored), so the pass is
    semantics- and parameter-preserving by construction.
    """

    name = "reorder-probe"
    preserves_semantics = True
    preserves_params = True

    def applies_to(self, model: Module) -> bool:
        return bool(conv_pool_blocks(model))

    def run(self, model: Module, ctx: CompileContext) -> PassResult:
        from repro.obs.numerics import active_collectors, reorder_divergence
        from repro.obs.tracer import event

        result = reorder_divergence(model, ctx.probe_batch())
        ctx.state["reorder_divergence"] = result
        for collector in active_collectors():
            collector.divergence = result
        event(
            "compile.reorder_divergence",
            category="compiler",
            end_to_end_max_abs=result["end_to_end_max_abs"],
            top1_flip_rate=result["top1_flip_rate"],
            layers=result["layers"],
        )
        return PassResult(
            self.name,
            0,
            {
                "end_to_end_max_abs": result["end_to_end_max_abs"],
                "top1_flip_rate": result["top1_flip_rate"],
                "layers": result["layers"],
            },
        )
