"""The pass manager: ordered execution, validation, instrumentation.

:class:`Pipeline` runs a list of passes over a model with a shared
:class:`~repro.compiler.context.CompileContext` and produces a
:class:`CompileReport`:

* **validation hooks** (``ctx.validate``) — after each pass the model is
  re-run on the probe batch; passes declaring ``preserves_semantics``
  must match the previous output to ``ctx.atol`` (else
  :class:`PassValidationError`), passes declaring ``preserves_params``
  must leave ``num_parameters()`` unchanged, and every pass gets its
  MAC (FLOP) delta measured via :func:`repro.analysis.flops.probe_forward`.
* **instrumentation** — per-pass wall time, rewrite counts, parameter
  and MAC before/after, and the max probe deviation, all recorded as
  :class:`PassRecord` rows consumable by
  :class:`repro.analysis.report.ExperimentReport`.

Repeated compilations of the same architecture under the same pipeline
spec hit the plan cache (:mod:`repro.compiler.cache`) and skip
re-validation — the hot path in :mod:`repro.experiments` sweeps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.compiler.context import CompileContext, PassResult, PassValidationError
from repro.compiler.pass_base import Pass, get_pass
from repro.nn.layers import Module
from repro.obs.tracer import get_tracer


@dataclass
class PassRecord:
    """Instrumentation for one pass in one compilation."""

    name: str
    ran: bool
    wall_time_s: float = 0.0
    rewrites: int = 0
    params_before: Optional[int] = None
    params_after: Optional[int] = None
    macs_before: Optional[int] = None
    macs_after: Optional[int] = None
    probe_max_dev: Optional[float] = None
    validated: bool = False
    notes: str = ""

    @property
    def flop_delta(self) -> Optional[int]:
        """MAC change introduced by this pass (negative = reduction)."""
        if self.macs_before is None or self.macs_after is None:
            return None
        return self.macs_after - self.macs_before

    @property
    def param_delta(self) -> Optional[int]:
        if self.params_before is None or self.params_after is None:
            return None
        return self.params_after - self.params_before


@dataclass
class CompileReport:
    """Structured result of one :meth:`Pipeline.run`."""

    pipeline: str
    signature: str
    records: List[PassRecord] = field(default_factory=list)
    total_time_s: float = 0.0
    cached: bool = False
    validated: bool = False
    notes: List[str] = field(default_factory=list)

    @property
    def passes_run(self) -> int:
        return sum(1 for r in self.records if r.ran)

    @property
    def total_rewrites(self) -> int:
        return sum(r.rewrites for r in self.records if r.ran)

    def record_for(self, name: str) -> PassRecord:
        for r in self.records:
            if r.name == name:
                return r
        raise KeyError(f"no record for pass {name!r}")

    def to_experiment_report(self):
        """Render as a :class:`repro.analysis.report.ExperimentReport`."""
        from repro.analysis.report import ExperimentReport

        rep = ExperimentReport(
            "Compile",
            f"pipeline [{self.pipeline}] on {self.signature[:12]}",
            headers=[
                "pass", "ran", "ms", "rewrites", "Δparams", "ΔMACs", "max|dev|", "validated",
            ],
        )
        for r in self.records:
            rep.add_row(
                r.name,
                "yes" if r.ran else "skip",
                f"{1e3 * r.wall_time_s:.2f}",
                r.rewrites,
                r.param_delta if r.param_delta is not None else "-",
                r.flop_delta if r.flop_delta is not None else "-",
                f"{r.probe_max_dev:.3g}" if r.probe_max_dev is not None else "-",
                "yes" if r.validated else "no",
            )
        rep.add_note(
            f"total {1e3 * self.total_time_s:.1f} ms, "
            f"{self.passes_run} passes ran, {self.total_rewrites} rewrites"
            + (", plan-cache hit (validation skipped)" if self.cached else "")
        )
        for note in self.notes:
            rep.add_note(note)
        return rep

    def summary(self) -> str:
        return self.to_experiment_report().render()


PassLike = Union[Pass, str]


class Pipeline:
    """An ordered list of passes executed with shared context."""

    def __init__(self, passes: Sequence[PassLike], name: str = "pipeline") -> None:
        self.name = name
        self.passes: List[Pass] = [
            p if isinstance(p, Pass) else get_pass(p) for p in passes
        ]

    def spec(self) -> str:
        """Stable spec string — part of the plan-cache key."""
        return " | ".join(p.signature() for p in self.passes)

    def __repr__(self) -> str:
        return f"<Pipeline {self.name}: {self.spec()}>"

    # -- execution -----------------------------------------------------------

    def run(
        self, model: Module, ctx: Optional[CompileContext] = None
    ) -> Tuple[Module, CompileReport]:
        """Run every pass over ``model`` (in place); return it + report."""
        from repro.compiler.cache import PLAN_CACHE, architecture_signature

        ctx = ctx or CompileContext()
        tracer = get_tracer()
        t0 = time.perf_counter()
        signature = architecture_signature(model)
        cache_key = (signature, self.spec(), ctx.cache_key())
        # Passes that cache per-key derived state (e.g. the lowering
        # pass's kernel plan) key it off the same tuple validation uses.
        ctx.state["plan_cache_key"] = cache_key
        cached = ctx.use_cache and PLAN_CACHE.contains(cache_key)
        validate = ctx.validate and not cached

        report = CompileReport(
            pipeline=self.spec(), signature=signature, cached=cached, validated=validate
        )
        with tracer.span(
            "compile.pipeline",
            category="compiler",
            pipeline=self.name,
            signature=signature[:12],
            cached=cached,
        ) as pipe_span:
            probe, out_before, macs_before = None, None, None
            if validate:
                probe = ctx.probe_batch()
                with tracer.span("compile.probe", category="compiler"):
                    out_before, macs_before = self._try_probe(model, probe, report)
                if out_before is None:
                    probe = None  # model rejects the probe batch: skip functional checks

            for p in self.passes:
                if not p.applies_to(model):
                    report.records.append(
                        PassRecord(p.name, ran=False, notes="not applicable")
                    )
                    continue
                params_before = model.num_parameters() if validate else None
                t_pass = time.perf_counter()
                with tracer.span(f"compile.pass.{p.name}", category="compiler") as pspan:
                    result: PassResult = p.run(model, ctx)
                    pspan.set(rewrites=result.rewrites)
                wall = time.perf_counter() - t_pass
                record = PassRecord(
                    p.name,
                    ran=True,
                    wall_time_s=wall,
                    rewrites=result.rewrites,
                    params_before=params_before,
                    macs_before=macs_before,
                )
                if validate:
                    record.params_after = model.num_parameters()
                    if p.preserves_params and record.params_after != params_before:
                        raise PassValidationError(
                            f"pass {p.name!r} declares parameter invariance but changed "
                            f"num_parameters from {params_before} to {record.params_after}"
                        )
                    if probe is not None:
                        with tracer.span("compile.probe", category="compiler"):
                            out_after, macs_after = self._try_probe(model, probe, report)
                        if out_after is None:
                            probe = None  # stop functional checks from here on
                        else:
                            record.macs_after = macs_after
                            if out_before is not None and out_after.shape == out_before.shape:
                                record.probe_max_dev = float(
                                    np.max(np.abs(out_after - out_before))
                                )
                            if p.preserves_semantics and out_before is not None:
                                if (
                                    out_after.shape != out_before.shape
                                    or not np.allclose(out_after, out_before, atol=ctx.atol)
                                ):
                                    raise PassValidationError(
                                        f"pass {p.name!r} declares semantics preservation "
                                        f"but changed the probe output "
                                        f"(max dev {record.probe_max_dev})"
                                    )
                            out_before, macs_before = out_after, macs_after
                    record.validated = True
                report.records.append(record)

            report.total_time_s = time.perf_counter() - t0
            pipe_span.set(
                passes_run=report.passes_run,
                rewrites=report.total_rewrites,
                validated=validate,
            )
            # Publish the compiled plan into the trace: which
            # shape-class kernel each module was lowered to (and the
            # parallel shard plan, when present).  Run forensics diffs
            # these selections across traces, so "layer X got a
            # different kernel" localizes without rerunning anything.
            kernel_plan = ctx.state.get("kernel_plan")
            if kernel_plan is not None:
                tracer.event(
                    "compile.plan",
                    category="compiler",
                    kernels=dict(kernel_plan.get("kernels") or {}),
                    from_cache=kernel_plan.get("from_cache"),
                    impl=kernel_plan.get("impl"),
                    bits=kernel_plan.get("bits"),
                    parallel=ctx.state.get("parallel_plan"),
                )
        if validate and ctx.use_cache:
            PLAN_CACHE.add(cache_key)
        return model, report

    @staticmethod
    def _try_probe(model: Module, probe: np.ndarray, report: CompileReport):
        from repro.analysis.flops import probe_forward

        try:
            return probe_forward(model, probe)
        except Exception as exc:  # model/probe shape mismatch etc.
            note = f"probe forward failed ({type(exc).__name__}: {exc}); functional checks skipped"
            if note not in report.notes:
                report.notes.append(note)
            return None, None


#: alias matching the compiler-literature name
PassManager = Pipeline


def mlcnn_pipeline(
    bits: int = 0,
    sparsity: float = 0.0,
    strict: bool = True,
    probe_divergence: bool = False,
    lower: bool = True,
    lower_impl: str = "vectorized",
    lower_bits: int = 64,
    parallel_workers: int = 1,
    overlap: bool = False,
) -> Pipeline:
    """The canonical MLCNN preparation pipeline (Sections III-IV, VII).

    ``set-pooling(avg)`` -> ``reorder`` -> ``fuse`` [-> ``prune``]
    [-> ``quantize(bits)``] -> ``lower`` — the sequence
    :func:`repro.core.transform.prepare_mlcnn` has always applied, now
    as composable passes, terminated by the lowering stage that binds
    plan-selected vectorized kernels to the fused modules.
    ``probe_divergence=True`` inserts the read-only ``reorder-probe``
    validation pass right after ``reorder``, quantifying what the
    reordering changed on the probe batch
    (``ctx.state["reorder_divergence"]``).  ``lower_bits=32`` selects
    the fp32 NHWC kernel specialization (inexact vs the f64 probe);
    ``lower=False`` omits the lowering stage entirely.
    ``overlap=True`` lets ``fuse`` take overlapping-pool
    (stride != pool) blocks too; ``parallel_workers > 1`` appends the
    ``parallelize`` stage, wrapping every bound kernel for sharded
    execution on the persistent worker pool
    (:mod:`repro.core.parallel`).
    """
    from repro.compiler.lower import LowerFusedKernelPass
    from repro.compiler.parallelize import ParallelizePass
    from repro.compiler.passes import (
        FuseConvPoolPass,
        PrunePass,
        QuantizePass,
        ReorderActivationPoolingPass,
        ReorderDivergenceProbePass,
        SetPoolingPass,
    )

    passes: List[Pass] = [
        SetPoolingPass("avg"),
        ReorderActivationPoolingPass(),
    ]
    if probe_divergence:
        passes.append(ReorderDivergenceProbePass())
    passes.append(FuseConvPoolPass(strict=strict, overlap=overlap))
    if sparsity:
        passes.append(PrunePass(sparsity))
    if bits:
        passes.append(QuantizePass(bits))
    if lower:
        passes.append(LowerFusedKernelPass(impl=lower_impl, bits=lower_bits))
        if parallel_workers and parallel_workers > 1:
            passes.append(ParallelizePass(parallel_workers))
    return Pipeline(passes, name="mlcnn")
