"""repro.compiler — compiler-style pass pipeline over model graphs.

The paper's contribution is a *sequence* of cross-layer rewrites —
reorder activation/pooling, switch to average pooling, fuse conv+pool
(RME/LAR/GAR), then quantize.  This package turns each rewrite into a
registered :class:`Pass` and executes them with a
:class:`Pipeline`/:class:`PassManager` that validates (functional
spot-check on a probe batch, parameter invariance, MAC deltas) and
instruments (per-pass wall time, rewrite counts) every step, producing
a structured :class:`CompileReport`.

Quickstart::

    from repro.compiler import CompileContext, mlcnn_pipeline
    model, report = mlcnn_pipeline(bits=8).run(model, CompileContext(seed=0))
    print(report.summary())

Custom orderings compose from registered pass names or instances::

    from repro.compiler import Pipeline
    pipe = Pipeline(["set-pooling", "reorder", "fuse", "prune"])
"""

from repro.compiler.context import CompileContext, PassResult, PassValidationError
from repro.compiler.pass_base import (
    Pass,
    FunctionPass,
    PASS_REGISTRY,
    register_pass,
    get_pass,
    available_passes,
)
from repro.compiler.passes import (
    SetPoolingPass,
    ReorderActivationPoolingPass,
    RestoreOrderPass,
    AllConvPass,
    FuseConvPoolPass,
    QuantizePass,
    PrunePass,
    ReorderDivergenceProbePass,
)
from repro.compiler.lower import LowerFusedKernelPass, lowered_kernels
from repro.compiler.parallelize import ParallelizePass
from repro.compiler.pipeline import (
    Pipeline,
    PassManager,
    PassRecord,
    CompileReport,
    mlcnn_pipeline,
)
from repro.compiler.cache import (
    PLAN_CACHE,
    PlanCache,
    architecture_signature,
    clear_plan_cache,
)

__all__ = [
    "CompileContext",
    "PassResult",
    "PassValidationError",
    "Pass",
    "FunctionPass",
    "PASS_REGISTRY",
    "register_pass",
    "get_pass",
    "available_passes",
    "SetPoolingPass",
    "ReorderActivationPoolingPass",
    "RestoreOrderPass",
    "AllConvPass",
    "FuseConvPoolPass",
    "QuantizePass",
    "PrunePass",
    "ReorderDivergenceProbePass",
    "LowerFusedKernelPass",
    "ParallelizePass",
    "lowered_kernels",
    "Pipeline",
    "PassManager",
    "PassRecord",
    "CompileReport",
    "mlcnn_pipeline",
    "PLAN_CACHE",
    "PlanCache",
    "architecture_signature",
    "clear_plan_cache",
]
