"""The ``Pass`` protocol and the pass registry.

A pass is a named, reorderable graph rewrite with two declared
invariants the pipeline enforces after each run:

* ``preserves_semantics`` — the model computes the same function on the
  probe batch (to ``ctx.atol``); violated ⇒ :class:`PassValidationError`.
* ``preserves_params`` — ``model.num_parameters()`` is unchanged.

Passes register under a stable name (``@register_pass``) so pipelines
can be specified as plain strings (``["set-pooling", "reorder",
"fuse"]``) — the spelling the plan cache and the CLI use.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Type

from repro.compiler.context import CompileContext, PassResult
from repro.nn.layers import Module


class Pass(ABC):
    """One composable graph rewrite (mutates the model in place)."""

    #: stable registry name (set by subclasses)
    name: str = "pass"
    #: model outputs on the probe batch are unchanged (to fp tolerance)
    preserves_semantics: bool = False
    #: ``num_parameters()`` is unchanged
    preserves_params: bool = True

    def applies_to(self, model: Module) -> bool:
        """Whether running this pass on ``model`` could do anything.

        A pass returning ``False`` is recorded as skipped, not run.
        Strict passes (e.g. ``fuse`` with ``strict=True``) return
        ``True`` unconditionally so their failure stays loud.
        """
        return True

    @abstractmethod
    def run(self, model: Module, ctx: CompileContext) -> PassResult:
        """Apply the rewrite; report how many sites were rewritten."""

    def signature(self) -> str:
        """Stable spec string (name + config) used in plan-cache keys."""
        return self.name

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.signature()}>"


PASS_REGISTRY: Dict[str, Type[Pass]] = {}


def register_pass(cls: Type[Pass]) -> Type[Pass]:
    """Class decorator: register ``cls`` under ``cls.name``."""
    if not cls.name or cls.name == "pass":
        raise ValueError(f"{cls.__name__} must set a unique `name`")
    if cls.name in PASS_REGISTRY:
        raise ValueError(f"duplicate pass name {cls.name!r}")
    PASS_REGISTRY[cls.name] = cls
    return cls


def get_pass(name: str, **kwargs) -> Pass:
    """Instantiate a registered pass by name."""
    if name not in PASS_REGISTRY:
        raise KeyError(f"unknown pass {name!r}; available: {available_passes()}")
    return PASS_REGISTRY[name](**kwargs)


def available_passes() -> List[str]:
    return sorted(PASS_REGISTRY)


class FunctionPass(Pass):
    """Adapter wrapping a plain ``fn(model, ctx) -> int`` as a pass."""

    def __init__(
        self,
        name: str,
        fn: Callable[[Module, CompileContext], int],
        preserves_semantics: bool = False,
        preserves_params: bool = True,
    ) -> None:
        self.name = name
        self._fn = fn
        self.preserves_semantics = preserves_semantics
        self.preserves_params = preserves_params

    def run(self, model: Module, ctx: CompileContext) -> PassResult:
        rewrites = self._fn(model, ctx)
        return PassResult(self.name, int(rewrites or 0))
