"""The lowering stage: bind plan-selected kernels to fused modules.

:class:`LowerFusedKernelPass` runs at the end of the MLCNN pipeline,
after ``fuse``.  For every :class:`~repro.core.fusion.FusedConvPool`
it derives the layer's :class:`~repro.core.kernels.registry.ShapeClass`
``(k, pool, stride, bits)``, asks the
:data:`~repro.core.kernels.registry.KERNEL_REGISTRY` to select an
implementation, and attaches the instantiated kernel to the module —
gradient-free forwards then execute the lowered kernel directly, while
training forwards keep the autograd path.

Plan-cache interaction: the pipeline exposes its cache key in
``ctx.state["plan_cache_key"]``; on the first compilation of a key the
pass stores its per-layer selection in the
:class:`~repro.compiler.cache.PlanCache`, and later compilations with
the same key replay the stored selection by name without consulting
the registry again — repeated sweep compilations pay kernel selection
once.  The key already includes this pass's
:meth:`~LowerFusedKernelPass.signature` (``impl`` and ``bits``) and
the architecture signature (which covers ``k``/``pool``/``stride`` per
layer), so changing any lowering knob or shape class changes the key
and can never serve a stale selection.  The stored plan additionally
carries the kernel registry's content signature: registering or
removing a spec invalidates every stored plan, so a newly-registered
higher-priority kernel is always re-selected.

Semantics declaration: the default float64 lowering is exact (the
generic kernel and the vectorized autograd path share one code path),
so the pass declares ``preserves_semantics`` and the pipeline's probe
check enforces it.  ``bits=32`` selects the fp32 NHWC specialization,
which deviates by single-precision round-off — the pass then declares
``preserves_semantics = False``.  ``impl="reference"`` detaches any
kernels and pins modules to the golden loop-free reference
composition.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.compiler.context import CompileContext, PassResult
from repro.compiler.pass_base import Pass, register_pass
from repro.core.fusion import FusedConvPool
from repro.core.kernels import KERNEL_REGISTRY, ShapeClass
from repro.nn.layers import Module

__all__ = ["LowerFusedKernelPass", "lowered_kernels"]


def lowered_kernels(model: Module) -> List[Tuple[str, object]]:
    """(path, bound kernel) for every lowered fused module in ``model``."""
    out = []
    for path, mod in model.named_modules():
        if isinstance(mod, FusedConvPool) and mod.kernel is not None:
            out.append((path, mod.kernel))
    return out


@register_pass
class LowerFusedKernelPass(Pass):
    """Select and bind a lowered kernel per fused layer (see module doc)."""

    name = "lower"
    preserves_params = True

    def __init__(self, impl: str = "vectorized", bits: int = 64) -> None:
        if impl not in ("vectorized", "reference"):
            raise ValueError(f"impl must be 'vectorized' or 'reference', got {impl!r}")
        if bits not in (32, 64):
            raise ValueError(f"lowering bits must be 32 or 64, got {bits}")
        self.impl = impl
        self.bits = bits
        # fp32 kernels round differently from the f64 probe reference
        self.preserves_semantics = bits == 64 or impl == "reference"

    def applies_to(self, model: Module) -> bool:
        return any(isinstance(m, FusedConvPool) for _, m in model.named_modules())

    def signature(self) -> str:
        return f"{self.name}(impl={self.impl},bits={self.bits})"

    def run(self, model: Module, ctx: CompileContext) -> PassResult:
        from repro.compiler.cache import PLAN_CACHE

        cache_key = ctx.state.get("plan_cache_key")
        registry_sig = KERNEL_REGISTRY.signature()
        # A stored plan is replayed only when the registry still holds
        # the same spec population it was selected from — registering
        # (or removing) kernels invalidates every stored plan.
        stored = (
            PLAN_CACHE.kernel_plan(cache_key, registry_sig)
            if cache_key is not None
            else None
        )
        from_cache = stored is not None

        plan: Dict[str, str] = {}
        lowered = 0
        for path, mod in model.named_modules():
            if not isinstance(mod, FusedConvPool):
                continue
            mod.impl = self.impl
            if self.impl == "reference":
                mod.attach_kernel(None)
                plan[path] = "reference"
                lowered += 1
                continue
            sc = ShapeClass(
                kernel=mod.weight.shape[-1],
                pool=mod.pool,
                stride=getattr(mod, "pool_stride", mod.pool) or mod.pool,
                bits=self.bits,
                kind="float",
            )
            if from_cache and path in stored:
                spec = KERNEL_REGISTRY.get(stored[path])  # replay, no selection
            else:
                spec = KERNEL_REGISTRY.select(sc)
            mod.attach_kernel(spec.make(sc))
            plan[path] = spec.name
            lowered += 1

        if cache_key is not None and not from_cache:
            PLAN_CACHE.store_kernel_plan(cache_key, plan, registry_sig)
        ctx.state["kernel_plan"] = {
            "kernels": dict(plan),
            "from_cache": from_cache,
            "impl": self.impl,
            "bits": self.bits,
        }
        return PassResult(
            self.name,
            lowered,
            {"kernels": plan, "from_cache": from_cache, "impl": self.impl, "bits": self.bits},
        )
