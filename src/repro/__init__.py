"""MLCNN reproduction: cross-layer cooperative CNN optimization.

Reproduces Jiang et al., *MLCNN: Cross-Layer Cooperative Optimization
and Accelerator Architecture for Speeding Up Deep Learning
Applications* (IPDPS 2022):

* :mod:`repro.nn` — NumPy deep-learning substrate (autograd, layers,
  optimizers) standing in for PyTorch.
* :mod:`repro.data` — synthetic CIFAR-like datasets.
* :mod:`repro.train` — training/evaluation harness.
* :mod:`repro.models` — LeNet-5 / VGG / GoogLeNet / DenseNet /
  ResNet-18 zoo, layer reordering and all-conv transforms.
* :mod:`repro.core` — the paper's contribution: RME/LAR/GAR op-count
  models, the fused conv-pool kernel, network fusion, DoReFa
  quantization.
* :mod:`repro.compiler` — compiler-style pass pipeline over model
  graphs: registered passes, validation hooks, plan cache,
  :class:`CompileReport` instrumentation.
* :mod:`repro.accel` — accelerator cycle/energy/area model and the
  RTL-level AR-unit/MAC-slice micro-simulator.
* :mod:`repro.analysis` — FLOP audits and report formatting.
* :mod:`repro.obs` — observability: process-wide tracer (spans,
  counters, histograms), per-layer model instrumentation, JSONL /
  Chrome-trace / summary exporters.

Quickstart::

    from repro import build_model, mlcnn_pipeline
    model = build_model("lenet5")
    model, report = mlcnn_pipeline(bits=8).run(model)
    print(report.summary())            # per-pass time/rewrites/FLOP deltas
"""

__version__ = "1.0.0"

from repro.core import (
    fuse_network,
    prepare_mlcnn,
    fused_conv_pool,
    quantize_model,
    QuantConfig,
    rme_multiplication_reduction,
)
from repro.models import (
    build_model,
    reorder_activation_pooling,
    to_allconv,
    set_pooling,
)
from repro.accel import (
    get_config,
    simulate_network,
    compare_networks,
)
from repro.compiler import (
    CompileContext,
    CompileReport,
    Pipeline,
    mlcnn_pipeline,
)

__all__ = [
    "CompileContext",
    "CompileReport",
    "Pipeline",
    "mlcnn_pipeline",
    "__version__",
    "build_model",
    "reorder_activation_pooling",
    "to_allconv",
    "set_pooling",
    "fuse_network",
    "prepare_mlcnn",
    "fused_conv_pool",
    "quantize_model",
    "QuantConfig",
    "rme_multiplication_reduction",
    "get_config",
    "simulate_network",
    "compare_networks",
]
