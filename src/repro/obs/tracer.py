"""Process-wide tracer: nested spans, counters, histograms.

One :class:`Tracer` collects every timing signal a run produces —
compiler passes, per-layer forwards, training epochs, simulator layer
attributions — into a single ordered event list that the exporters in
:mod:`repro.obs.export` turn into JSONL, a Chrome trace, or a top-N
summary table.

Design constraints:

* **Near-zero overhead when disabled.**  ``tracer.span(...)`` on a
  disabled tracer returns a shared no-op context manager without
  recording anything; instrumented code paths check ``tracer.enabled``
  before doing any per-call work.  The overhead guard in
  ``tests/obs/test_overhead.py`` keeps this honest.
* **Thread safety.**  Each thread keeps its own span stack (nesting and
  parent attribution are per-thread); the shared event list, counters
  and histograms are guarded by one lock.
* **Exception safety.**  A span closes (and is recorded, tagged with
  the exception type) even when the body raises.

Timestamps come from :func:`time.perf_counter` (monotonic) and are
stored as microseconds since the tracer's epoch, which is exactly the
``ts`` unit the Chrome trace-event format expects.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["SpanEvent", "Tracer", "get_tracer", "span", "event", "add", "observe"]


@dataclass
class SpanEvent:
    """One completed span (``dur_us`` set) or instant event (``None``)."""

    name: str
    ts_us: float
    dur_us: Optional[float]
    tid: int
    depth: int
    parent: Optional[str]
    category: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_span(self) -> bool:
        return self.dur_us is not None


class _NullSpan:
    """Shared no-op returned by ``span()`` on a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _Span:
    """Live span context manager; records itself on exit."""

    __slots__ = ("_tracer", "name", "category", "attrs", "_start_s", "_depth", "_parent")

    def __init__(self, tracer: "Tracer", name: str, category: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.category = category
        self.attrs = attrs

    def set(self, **attrs) -> "_Span":
        """Attach attributes discovered mid-span (e.g. rewrite counts)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        stack = self._tracer._stack()
        self._depth = len(stack)
        self._parent = stack[-1].name if stack else None
        stack.append(self)
        self._start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_s = time.perf_counter()
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._record(
            SpanEvent(
                name=self.name,
                ts_us=(self._start_s - self._tracer._epoch_s) * 1e6,
                dur_us=(end_s - self._start_s) * 1e6,
                tid=threading.get_ident(),
                depth=self._depth,
                parent=self._parent,
                category=self.category,
                attrs=self.attrs,
            )
        )
        return False


class Tracer:
    """Collects spans, instant events, counters and histogram samples."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._local = threading.local()
        self._events: List[SpanEvent] = []
        self._counters: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}
        self._epoch_s = time.perf_counter()

    # -- state ---------------------------------------------------------------
    def enable(self) -> "Tracer":
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        self.enabled = False
        return self

    def clear(self) -> None:
        """Drop all recorded events/counters and reset the epoch."""
        with self._lock:
            self._events = []
            self._counters = {}
            self._histograms = {}
            self._epoch_s = time.perf_counter()

    # -- recording -----------------------------------------------------------
    def span(self, name: str, category: str = "", **attrs):
        """Context manager timing a region; no-op when disabled.

        Usage::

            with tracer.span("conv1.forward", bytes=n) as sp:
                ...
                sp.set(rewrites=3)   # attach results discovered mid-span
        """
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, category, attrs)

    def event(self, name: str, category: str = "", **attrs) -> None:
        """Record an instant (zero-duration) structured event."""
        if not self.enabled:
            return
        stack = self._stack()
        self._record(
            SpanEvent(
                name=name,
                ts_us=(time.perf_counter() - self._epoch_s) * 1e6,
                dur_us=None,
                tid=threading.get_ident(),
                depth=len(stack),
                parent=stack[-1].name if stack else None,
                category=category,
                attrs=attrs,
            )
        )

    def record_span(
        self, name: str, dur_us: float, category: str = "", **attrs
    ) -> None:
        """Record an already-measured span (duration known, body elsewhere).

        Used to merge work that happened outside this tracer — e.g. a
        worker process's shard, whose wall time travelled back as a
        number — into the timeline as a real span.  The span is
        backdated to end *now*: the caller invokes this right after the
        foreign work completed, so ``[now - dur, now]`` lies inside the
        currently open parent span and tree reconstruction by interval
        containment (:mod:`repro.obs.attrib`) still works.
        """
        if not self.enabled:
            return
        stack = self._stack()
        end_us = (time.perf_counter() - self._epoch_s) * 1e6
        self._record(
            SpanEvent(
                name=name,
                ts_us=end_us - max(0.0, float(dur_us)),
                dur_us=max(0.0, float(dur_us)),
                tid=threading.get_ident(),
                depth=len(stack),
                parent=stack[-1].name if stack else None,
                category=category,
                attrs=attrs,
            )
        )

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` by ``value``."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""
        if not self.enabled:
            return
        with self._lock:
            self._histograms.setdefault(name, []).append(float(value))

    # -- inspection ----------------------------------------------------------
    @property
    def events(self) -> List[SpanEvent]:
        """Snapshot of all recorded events, in completion order."""
        with self._lock:
            return list(self._events)

    @property
    def counters(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._counters)

    @property
    def histograms(self) -> Dict[str, List[float]]:
        with self._lock:
            return {k: list(v) for k, v in self._histograms.items()}

    def histogram_stats(self, name: str) -> Dict[str, float]:
        """count / total / mean / min / max of one histogram series."""
        values = self.histograms.get(name, [])
        if not values:
            return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": len(values),
            "total": sum(values),
            "mean": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
        }

    def summary(self, top: int = 10) -> str:
        """Rendered top-N-spans table (see :func:`repro.obs.export.summary`)."""
        from repro.obs.export import summary

        return summary(self, top=top)

    # -- internals -----------------------------------------------------------
    def _stack(self) -> List[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(self, ev: SpanEvent) -> None:
        with self._lock:
            self._events.append(ev)


#: the process-wide tracer every subsystem reports to; disabled by default
_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled unless something enables it)."""
    return _TRACER


def span(name: str, category: str = "", **attrs):
    """``get_tracer().span(...)`` — the common instrumentation call."""
    return _TRACER.span(name, category, **attrs)


def event(name: str, category: str = "", **attrs) -> None:
    _TRACER.event(name, category, **attrs)


def add(name: str, value: float = 1.0) -> None:
    _TRACER.add(name, value)


def observe(name: str, value: float) -> None:
    _TRACER.observe(name, value)
