"""Tolerance-policy regression gate over the benchmark run registry.

Compares the metrics a benchmark run just emitted (``--metrics-jsonl``)
against the committed ``BENCH_<area>.json`` baselines and classifies
every metric::

    improved          moved past tolerance in the good direction
    ok                within tolerance of the baseline
    regressed         moved past tolerance in the bad direction  -> fails
    invalid           current value is NaN/inf                   -> fails
    missing_baseline  metric has no baseline yet (new metric)
    missing_current   baseline metric the run did not emit

Per-metric :class:`TolerancePolicy` decides the good direction
(``higher`` or ``lower`` is better) and the relative/absolute
thresholds; policies resolve by exact key, then longest registered
prefix, then a keyword heuristic over the metric name (``energy``,
``cycles``, ``adds`` ... are lower-better; everything else defaults to
higher-better).  Noisy wall-clock metrics register advisory policies
(``required=False``) so CI host variance cannot fail a build.

CI entry point: ``python -m repro.experiments --bench-compare
metrics.jsonl`` — exits non-zero iff :attr:`RegressionReport.failed`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs.metrics import MetricRegistry, load_metrics_jsonl

__all__ = [
    "TolerancePolicy",
    "Verdict",
    "RegressionReport",
    "policy_for",
    "compare_metrics",
    "gate_metrics",
    "gate_jsonl",
    "host_mismatch",
    "POLICY_OVERRIDES",
    "HOST_SENSITIVE_PREFIXES",
]


@dataclass(frozen=True)
class TolerancePolicy:
    """How one metric is judged against its baseline."""

    #: "higher" or "lower" — which direction is an improvement
    direction: str = "higher"
    #: relative tolerance (fraction of the baseline magnitude)
    rel_tol: float = 0.05
    #: absolute tolerance floor (dominates for near-zero baselines)
    abs_tol: float = 1e-9
    #: False: report regressions but never fail the gate (noisy metrics)
    required: bool = True

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower"):
            raise ValueError(f"direction must be 'higher' or 'lower', got {self.direction!r}")
        if self.rel_tol < 0 or self.abs_tol < 0:
            raise ValueError("tolerances must be non-negative")

    def margin(self, baseline: float) -> float:
        return max(self.abs_tol, self.rel_tol * abs(baseline))


#: exact-key or prefix policies (longest prefix wins). Wall-clock
#: throughput varies wildly across CI hosts: advisory with a wide band.
#: Numerics health metrics (clip rates, reorder divergence) are
#: lower-is-better and deterministic given seeds — drifting upward past
#: 25% of baseline means quantization or reordering got numerically
#: worse, which fails the gate like a performance regression.
POLICY_OVERRIDES: Dict[str, TolerancePolicy] = {
    "kernel.": TolerancePolicy(direction="higher", rel_tol=0.90, required=False),
    # Parallel scaling depends entirely on the host's core count (a
    # 1-core runner legitimately measures < 0.5 at workers=2), so the
    # curve is trended with a wide advisory band rather than gated.
    "kernel.parallel_scaling_efficiency": TolerancePolicy(
        direction="higher", rel_tol=0.75, abs_tol=0.05, required=False
    ),
    "numerics.": TolerancePolicy(direction="lower", rel_tol=0.25, abs_tol=1e-6),
    # Span coverage is the attribution engine's self-check: the
    # fraction of measured wall time explained by instrumented spans.
    # It is deterministic tooling behaviour, not host speed — a drop
    # means instrumentation coverage was lost (e.g. worker shard
    # merge-back broke), which fails the gate.
    "attrib.span_coverage": TolerancePolicy(
        direction="higher", rel_tol=0.05, abs_tol=0.02
    ),
    "attrib.unexplained_fraction": TolerancePolicy(
        direction="lower", rel_tol=0.50, abs_tol=0.02, required=False
    ),
    # Attained-roofline fractions depend on the host's measured roofs:
    # advisory trend lines, never gate failures.
    "roofline.": TolerancePolicy(
        direction="higher", rel_tol=0.90, abs_tol=0.02, required=False
    ),
    # Telemetry overhead is a relative measurement (enabled vs disabled
    # on the same host, best-of-N), so it gates required: instrumenting
    # the batch loop must stay in the low single digits everywhere.
    # The absolute floor absorbs timer noise around a near-zero cost.
    "telemetry.overhead_pct": TolerancePolicy(
        direction="lower", rel_tol=0.75, abs_tol=2.5
    ),
    # Absolute batch latency and profiler duty cycle are host speed:
    # advisory wide-band trend lines, auto-downgraded on core mismatch.
    "telemetry.p99_batch_ms": TolerancePolicy(
        direction="lower", rel_tol=0.90, abs_tol=5.0, required=False
    ),
    "telemetry.profiler_overhead_pct": TolerancePolicy(
        direction="lower", rel_tol=0.90, abs_tol=1.0, required=False
    ),
}

#: metric-key prefixes whose values are a property of the machine shape
#: (core count) rather than the code.  When the baseline was recorded
#: on a host with a different ``cpu_count``, the gate auto-downgrades
#: these to advisory — comparing a 2-core scaling curve against a
#: 16-core baseline measures the hardware, not the change under test.
HOST_SENSITIVE_PREFIXES = (
    "kernel.parallel_samples_per_sec",
    "kernel.parallel_scaling_efficiency",
    "roofline.",
    "telemetry.p99_batch_ms",
    "telemetry.profiler_overhead_pct",
)


def host_mismatch(
    baseline_provenance: Optional[Mapping[str, str]],
    current_provenance: Optional[Mapping[str, str]] = None,
) -> Optional[str]:
    """Why host-sensitive metrics should be advisory, or None if same.

    A baseline without ``cpu_count`` provenance (recorded before the
    field existed) is treated as mismatched: its host shape is unknown,
    so host-sensitive comparisons against it cannot be trusted to fail
    a build.
    """
    if current_provenance is None:
        from repro.obs.metrics import provenance

        current_provenance = provenance()
    base_cpu = (baseline_provenance or {}).get("cpu_count")
    cur_cpu = current_provenance.get("cpu_count")
    if base_cpu is None:
        return "baseline records no cpu_count"
    if str(base_cpu) != str(cur_cpu):
        return f"baseline cpu_count={base_cpu}, host cpu_count={cur_cpu}"
    return None

#: metric-name keywords implying lower-is-better when no policy matches
_LOWER_IS_BETTER = (
    "energy",
    "cycles",
    "adds",
    "additions",
    "mults",
    "bytes",
    "time",
    "wall",
    "latency",
    "area",
    "conflict",
    "miss",
)

_DEFAULT = TolerancePolicy()


def policy_for(
    key: str, overrides: Optional[Mapping[str, TolerancePolicy]] = None
) -> TolerancePolicy:
    """Resolve the policy for a metric key.

    Precedence: exact key in ``overrides``/``POLICY_OVERRIDES``, then
    the longest matching prefix, then the keyword heuristic.
    """
    table: Dict[str, TolerancePolicy] = dict(POLICY_OVERRIDES)
    if overrides:
        table.update(overrides)
    if key in table:
        return table[key]
    best: Tuple[int, Optional[TolerancePolicy]] = (-1, None)
    for prefix, policy in table.items():
        if key.startswith(prefix) and len(prefix) > best[0]:
            best = (len(prefix), policy)
    if best[1] is not None:
        return best[1]
    lowered = key.lower()
    if any(word in lowered for word in _LOWER_IS_BETTER):
        return TolerancePolicy(direction="lower")
    return _DEFAULT


@dataclass
class Verdict:
    """Gate outcome for one metric."""

    area: str
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    policy: TolerancePolicy
    status: str  # improved | ok | regressed | invalid | missing_baseline | missing_current
    #: explanatory annotation (e.g. the host-mismatch downgrade reason)
    note: str = ""

    @property
    def fails(self) -> bool:
        if self.status == "invalid":
            return True
        return self.status == "regressed" and self.policy.required

    @property
    def delta_rel(self) -> Optional[float]:
        """Signed relative change vs the baseline (None if undefined)."""
        if self.baseline is None or self.current is None or self.baseline == 0:
            return None
        return (self.current - self.baseline) / abs(self.baseline)


def _is_bad_float(x: float) -> bool:
    return math.isnan(x) or math.isinf(x)


def compare_metrics(
    area: str,
    baseline: Optional[Mapping[str, float]],
    current: Mapping[str, float],
    overrides: Optional[Mapping[str, TolerancePolicy]] = None,
) -> List[Verdict]:
    """Judge every metric of one area; returns verdicts sorted by key.

    ``baseline=None`` means the whole area has no committed baseline:
    every metric reports ``missing_baseline`` (the gate passes — seed
    the baseline with ``--bench-update`` to arm it).
    """
    verdicts: List[Verdict] = []
    base = dict(baseline) if baseline is not None else None
    for key in sorted(current):
        value = float(current[key])
        policy = policy_for(key, overrides)
        if _is_bad_float(value):
            verdicts.append(Verdict(area, key, None if base is None else base.get(key), value, policy, "invalid"))
            continue
        if base is None or key not in base or _is_bad_float(base[key]):
            ref = None if base is None else base.get(key)
            verdicts.append(Verdict(area, key, ref, value, policy, "missing_baseline"))
            continue
        ref = float(base[key])
        margin = policy.margin(ref)
        delta = value - ref
        good = delta if policy.direction == "higher" else -delta
        if good > margin:
            status = "improved"
        elif good < -margin:
            status = "regressed"
        else:
            status = "ok"
        verdicts.append(Verdict(area, key, ref, value, policy, status))
    if base is not None:
        for key in sorted(set(base) - set(current)):
            verdicts.append(
                Verdict(area, key, float(base[key]), None, policy_for(key, overrides), "missing_current")
            )
    return verdicts


@dataclass
class RegressionReport:
    """All verdicts of one gate invocation."""

    verdicts: List[Verdict]

    @property
    def failed(self) -> bool:
        return any(v.fails for v in self.verdicts)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for v in self.verdicts:
            out[v.status] = out.get(v.status, 0) + 1
        return out

    def by_status(self, *statuses: str) -> List[Verdict]:
        return [v for v in self.verdicts if v.status in statuses]

    def render(self) -> str:
        from repro.analysis.report import format_table

        def fmt(x: Optional[float]) -> str:
            return "-" if x is None else f"{x:.6g}"

        rows = []
        order = {"regressed": 0, "invalid": 1, "improved": 2, "ok": 3,
                 "missing_baseline": 4, "missing_current": 5}
        for v in sorted(self.verdicts, key=lambda v: (order[v.status], v.area, v.metric)):
            d = v.delta_rel
            rows.append(
                [
                    v.status + ("" if v.policy.required else " (advisory)"),
                    v.area,
                    v.metric,
                    fmt(v.baseline),
                    fmt(v.current),
                    "-" if d is None else f"{100 * d:+.2f}%",
                    v.policy.direction,
                    v.note or "-",
                ]
            )
        table = format_table(
            ["status", "area", "metric", "baseline", "current", "delta", "better", "note"],
            rows,
        )
        counts = ", ".join(f"{k}={n}" for k, n in sorted(self.counts().items()))
        verdict_line = "REGRESSION GATE: FAIL" if self.failed else "regression gate: pass"
        return f"{table}\n{counts or 'no metrics'}\n{verdict_line}"


def gate_metrics(
    per_area: Mapping[str, Mapping[str, float]],
    registry: MetricRegistry,
    overrides: Optional[Mapping[str, TolerancePolicy]] = None,
) -> RegressionReport:
    """Gate already-parsed per-area metrics against the registry.

    Host-shape awareness: when an area's baseline was recorded on a
    host with a different (or unrecorded) ``cpu_count``, every verdict
    on a :data:`HOST_SENSITIVE_PREFIXES` metric is downgraded to
    advisory with the mismatch reason in its note — the metric is still
    reported and trended, it just cannot fail the gate.
    """
    verdicts: List[Verdict] = []
    for area in sorted(per_area):
        doc = registry.load(area)
        baseline = None if doc is None else {
            str(k): float(v) for k, v in (doc.get("metrics") or {}).items()
        }
        area_verdicts = compare_metrics(area, baseline, per_area[area], overrides)
        mismatch = host_mismatch(None if doc is None else doc.get("provenance"))
        if mismatch is not None:
            for v in area_verdicts:
                if v.metric.startswith(HOST_SENSITIVE_PREFIXES):
                    # annotate every host-sensitive metric (the dashboard
                    # surfaces these notes); downgrade only those that
                    # could otherwise fail the gate
                    if v.policy.required:
                        v.policy = replace(v.policy, required=False)
                    if not v.note:
                        v.note = f"host mismatch: {mismatch}"
        verdicts.extend(area_verdicts)
    return RegressionReport(verdicts)


def gate_jsonl(
    jsonl_path: str,
    root: str = ".",
    overrides: Optional[Mapping[str, TolerancePolicy]] = None,
) -> RegressionReport:
    """Gate a ``--metrics-jsonl`` file against ``BENCH_*.json`` in ``root``."""
    return gate_metrics(load_metrics_jsonl(jsonl_path), MetricRegistry(root), overrides)
