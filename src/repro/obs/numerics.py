"""Per-layer numerics health monitoring (the third observability axis).

The tracer (:mod:`repro.obs.tracer`) answers *where time goes*, the
measured counters (:mod:`repro.obs.metrics`) answer *what work
happened*; this module answers *where numerical damage happens* — the
evidence behind the paper's two accuracy claims (the
``Conv→ReLU→AvgPool`` → ``Conv→AvgPool→ReLU`` swap is benign, and INT8
DoReFa quantization stays accuracy-equivalent).

Three layers:

* **Streaming estimators** — :class:`Welford` (count/mean/std/min/max
  in one pass, mergeable across shards) and :class:`P2Quantile` (the
  P² algorithm: approximate percentiles from five markers, no sample
  retention).  :class:`TensorStats` composes them with NaN/inf/zero
  accounting over a stream of arrays; memory is O(1) per stream no
  matter how many batches flow through.
* **The collector** — :class:`NumericsCollector` holds one
  :class:`TensorStats` per ``(layer, kind)`` stream.  Attach it with
  ``instrument_model(model, numerics=collector)`` and every module's
  forward output and backward gradient is observed; the quantized
  execution paths (:mod:`repro.core.quantize`,
  :mod:`repro.core.fixedpoint`) report clip/saturation/overflow events
  into every *enabled* collector via :func:`record_quant_event`,
  attributed to the layer currently executing.  A configurable NaN/inf
  **watchdog** (``record`` / ``warn`` / ``raise``) fires on the first
  non-finite value, naming the offending layer and batch.
* **The reorder-divergence probe** — :func:`reorder_divergence` runs a
  network in *both* activation orders on a probe batch and reports
  per-layer and end-to-end max-abs divergence plus the top-1 flip
  rate.  :class:`repro.compiler.passes.ReorderDivergenceProbePass`
  exposes it as a compiler validation step.

Everything exports through the existing surfaces: ``report()`` is a
JSON document, ``to_jsonl()`` a greppable event log,
``summary_report()`` the standard top-N table, and the dashboard gains
a "Numerics health" section.  Disabled collectors cost one attribute
check per call (guarded by ``tests/obs/test_numerics_overhead.py``).
"""

from __future__ import annotations

import json
import logging
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Welford",
    "P2Quantile",
    "TensorStats",
    "ClipCounter",
    "NumericsError",
    "NumericsCollector",
    "WATCHDOG_POLICIES",
    "record_quant_event",
    "active_collectors",
    "reorder_divergence",
]

logger = logging.getLogger("repro.obs.numerics")

#: valid NaN/inf watchdog policies
WATCHDOG_POLICIES = ("record", "warn", "raise")


# ---------------------------------------------------------------------------
# Streaming estimators
# ---------------------------------------------------------------------------

class Welford:
    """Streaming count / mean / variance / min / max (Welford's method).

    ``update`` consumes whole arrays (batched Chan/parallel update, no
    Python-level loop); ``merge`` combines two independently-built
    estimators exactly, so per-shard statistics can be reduced to a
    global one.  Variance is the population variance (``ddof=0``),
    matching ``numpy.std``'s default.
    """

    __slots__ = ("n", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def update(self, values: np.ndarray) -> None:
        """Fold a batch of finite values into the running statistics."""
        values = np.asarray(values, dtype=np.float64).ravel()
        nb = values.size
        if nb == 0:
            return
        mb = float(values.mean())
        m2b = float(((values - mb) ** 2).sum())
        self._combine(nb, mb, m2b)
        self.minimum = min(self.minimum, float(values.min()))
        self.maximum = max(self.maximum, float(values.max()))

    def merge(self, other: "Welford") -> "Welford":
        """Fold ``other``'s statistics into self (exact); returns self."""
        if other.n:
            self._combine(other.n, other.mean, other._m2)
            self.minimum = min(self.minimum, other.minimum)
            self.maximum = max(self.maximum, other.maximum)
        return self

    def _combine(self, nb: int, mb: float, m2b: float) -> None:
        na = self.n
        total = na + nb
        delta = mb - self.mean
        self.mean += delta * nb / total
        self._m2 += m2b + delta * delta * na * nb / total
        self.n = total

    @property
    def variance(self) -> float:
        return self._m2 / self.n if self.n else 0.0

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))


class P2Quantile:
    """The P² algorithm (Jain & Chlamtac 1985): one streaming quantile.

    Five markers track the target quantile ``q`` with parabolic
    (fallback linear) height adjustment — O(1) memory, no sample
    retention.  Exact while fewer than five observations have been
    seen.  Accuracy degrades gracefully on pathological distributions;
    ``tests/obs/test_numerics.py`` pins the behaviour on constant,
    bimodal and heavy-tailed streams.
    """

    __slots__ = ("q", "n", "_heights", "_pos", "_want", "_inc")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self.n = 0
        self._heights: List[float] = []
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._want = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._inc = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def add(self, x: float) -> None:
        """Observe one value."""
        x = float(x)
        self.n += 1
        if self.n <= 5:
            self._heights.append(x)
            self._heights.sort()
            return
        h = self._heights
        # locate the cell, extending the extremes when needed
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self._pos[i] += 1.0
        for i in range(5):
            self._want[i] += self._inc[i]
        # adjust the three interior markers
        for i in (1, 2, 3):
            d = self._want[i] - self._pos[i]
            if (d >= 1.0 and self._pos[i + 1] - self._pos[i] > 1.0) or (
                d <= -1.0 and self._pos[i - 1] - self._pos[i] < -1.0
            ):
                step = 1.0 if d > 0 else -1.0
                cand = self._parabolic(i, step)
                if not h[i - 1] < cand < h[i + 1]:
                    cand = self._linear(i, step)
                h[i] = cand
                self._pos[i] += step

    def update(self, values: Sequence[float]) -> None:
        """Observe a batch of values."""
        for v in np.asarray(values, dtype=np.float64).ravel():
            self.add(v)

    def _parabolic(self, i: int, d: float) -> float:
        h, p = self._heights, self._pos
        return h[i] + d / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, p = self._heights, self._pos
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (p[j] - p[i])

    @property
    def value(self) -> float:
        """Current quantile estimate (NaN before any observation)."""
        if self.n == 0:
            return float("nan")
        if self.n <= 5:
            return float(np.quantile(self._heights, self.q))
        return self._heights[2]


class TensorStats:
    """Streaming health statistics for one stream of arrays.

    Tracks count, NaN/inf/zero counts, and — over the *finite* values
    only, so one stray inf cannot poison the distribution view —
    Welford mean/std/min/max plus P² percentile estimates.  Percentile
    estimators see at most ``sample_limit`` evenly-strided values per
    update (the P² inner loop is per-observation Python); the moment
    statistics always see every finite value.
    """

    __slots__ = ("count", "nan_count", "inf_count", "zero_count",
                 "moments", "quantiles", "sample_limit")

    def __init__(
        self,
        percentiles: Sequence[float] = (0.01, 0.5, 0.99),
        sample_limit: int = 256,
    ) -> None:
        self.count = 0
        self.nan_count = 0
        self.inf_count = 0
        self.zero_count = 0
        self.moments = Welford()
        self.quantiles: Dict[float, P2Quantile] = {
            float(q): P2Quantile(float(q)) for q in percentiles
        }
        self.sample_limit = int(sample_limit)

    def update(self, arr: np.ndarray) -> Tuple[int, int]:
        """Fold one array in; returns this update's (nan, inf) counts."""
        arr = np.asarray(arr)
        n = arr.size
        if n == 0:
            return 0, 0
        self.count += n
        finite_mask = np.isfinite(arr)
        n_finite = int(np.count_nonzero(finite_mask))
        nan = inf = 0
        if n_finite != n:
            nan = int(np.count_nonzero(np.isnan(arr)))
            inf = n - n_finite - nan
            self.nan_count += nan
            self.inf_count += inf
            finite = np.asarray(arr[finite_mask], dtype=np.float64).ravel()
        else:
            finite = np.asarray(arr, dtype=np.float64).ravel()
        self.zero_count += int(np.count_nonzero(finite == 0.0))
        if finite.size:
            self.moments.update(finite)
            if self.quantiles:
                if finite.size > self.sample_limit:
                    step = finite.size // self.sample_limit
                    sample = finite[::step][: self.sample_limit]
                else:
                    sample = finite
                for est in self.quantiles.values():
                    est.update(sample)
        return nan, inf

    @property
    def finite_count(self) -> int:
        return self.count - self.nan_count - self.inf_count

    @property
    def zero_fraction(self) -> float:
        return self.zero_count / self.finite_count if self.finite_count else 0.0

    def percentile(self, q: float) -> float:
        return self.quantiles[float(q)].value

    def as_dict(self) -> Dict[str, float]:
        doc: Dict[str, float] = {
            "count": self.count,
            "nan": self.nan_count,
            "inf": self.inf_count,
            "zero_fraction": self.zero_fraction,
            "mean": self.moments.mean,
            "std": self.moments.std,
            "min": self.moments.minimum if self.moments.n else float("nan"),
            "max": self.moments.maximum if self.moments.n else float("nan"),
        }
        for q in sorted(self.quantiles):
            doc[f"p{q * 100:g}"] = self.quantiles[q].value
        return doc


# ---------------------------------------------------------------------------
# Quantization clip / saturation / overflow counters
# ---------------------------------------------------------------------------

@dataclass
class ClipCounter:
    """Accumulated clip/saturation events for one quantized path."""

    clipped: int = 0
    total: int = 0
    low: int = 0
    high: int = 0

    @property
    def rate(self) -> float:
        return self.clipped / self.total if self.total else 0.0

    def add(self, clipped: int, total: int, low: int = 0, high: int = 0) -> None:
        self.clipped += int(clipped)
        self.total += int(total)
        self.low += int(low)
        self.high += int(high)

    def as_dict(self) -> Dict[str, float]:
        return {
            "clipped": self.clipped,
            "total": self.total,
            "low": self.low,
            "high": self.high,
            "rate": self.rate,
        }


#: enabled collectors that quantized execution paths report into
_ACTIVE: List["NumericsCollector"] = []
_ACTIVE_LOCK = threading.Lock()


def active_collectors() -> List["NumericsCollector"]:
    """Snapshot of the collectors currently receiving quant events."""
    with _ACTIVE_LOCK:
        return list(_ACTIVE)


def record_quant_event(
    name: str, clipped: int, total: int, low: int = 0, high: int = 0
) -> None:
    """Report a clip/saturation/overflow observation from a quantized path.

    No-op (one truthiness check) unless a collector is enabled.  Events
    are attributed to the layer currently executing when the reporting
    code runs under an instrumented module's forward.
    """
    if not _ACTIVE:
        return
    for collector in active_collectors():
        collector.record_quant(name, clipped=clipped, total=total, low=low, high=high)


# ---------------------------------------------------------------------------
# The collector
# ---------------------------------------------------------------------------

class NumericsError(RuntimeError):
    """The NaN/inf watchdog tripped (policy ``raise``)."""

    def __init__(self, layer: str, kind: str, nan: int, inf: int,
                 epoch: Optional[int] = None, batch: Optional[int] = None) -> None:
        self.layer = layer
        self.kind = kind
        self.nan = nan
        self.inf = inf
        self.epoch = epoch
        self.batch = batch
        where = ""
        if epoch is not None or batch is not None:
            where = f" at epoch {epoch if epoch is not None else '?'}, batch {batch if batch is not None else '?'}"
        super().__init__(
            f"non-finite values in {layer}.{kind} ({nan} NaN, {inf} inf){where}"
        )


class NumericsCollector:
    """Per-layer numerics health: streaming stats, clip counters, watchdog.

    Attach with ``instrument_model(model, numerics=collector)``; enable
    with :meth:`enable` or as a context manager.  While enabled it also
    receives clip/saturation events from the quantized execution paths
    (:func:`record_quant_event`).  Disabled, instrumented forwards pay
    one attribute check.

    Parameters
    ----------
    percentiles:
        Quantiles estimated per stream via P² (empty tuple disables the
        per-observation estimator loop entirely — the cheap mode for
        training-time monitoring).
    watchdog:
        ``"record"`` (remember the first anomaly), ``"warn"`` (log a
        warning once per stream), or ``"raise"`` (raise
        :class:`NumericsError` naming the layer and batch).
    sample_limit:
        Max values per update fed to each percentile estimator.
    """

    def __init__(
        self,
        percentiles: Sequence[float] = (0.01, 0.5, 0.99),
        watchdog: str = "record",
        sample_limit: int = 256,
    ) -> None:
        if watchdog not in WATCHDOG_POLICIES:
            raise ValueError(
                f"unknown watchdog policy {watchdog!r}; valid: {WATCHDOG_POLICIES}"
            )
        self.percentiles = tuple(float(q) for q in percentiles)
        self.watchdog = watchdog
        self.sample_limit = sample_limit
        self.enabled = False
        self.stats: "Dict[Tuple[str, str], TensorStats]" = {}
        self.quant: Dict[str, ClipCounter] = {}
        self.divergence: Optional[Dict[str, Any]] = None
        self.first_anomaly: Optional[Dict[str, Any]] = None
        self.epoch: Optional[int] = None
        self.batch: Optional[int] = None
        self._warned: set = set()
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- lifecycle -----------------------------------------------------------
    def enable(self) -> "NumericsCollector":
        self.enabled = True
        with _ACTIVE_LOCK:
            if self not in _ACTIVE:
                _ACTIVE.append(self)
        return self

    def disable(self) -> "NumericsCollector":
        self.enabled = False
        with _ACTIVE_LOCK:
            if self in _ACTIVE:
                _ACTIVE.remove(self)
        return self

    def __enter__(self) -> "NumericsCollector":
        return self.enable()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.disable()
        return False

    def set_context(self, epoch: Optional[int] = None, batch: Optional[int] = None) -> None:
        """Stamp subsequent anomalies with the training position."""
        self.epoch = epoch
        self.batch = batch

    # -- layer attribution (set by the instrument wrappers) ------------------
    def _layer_stack(self) -> List[str]:
        stack = getattr(self._local, "layers", None)
        if stack is None:
            stack = []
            self._local.layers = stack
        return stack

    def _push_layer(self, label: str) -> None:
        self._layer_stack().append(label)

    def _pop_layer(self) -> None:
        stack = self._layer_stack()
        if stack:
            stack.pop()

    def current_layer(self) -> Optional[str]:
        stack = self._layer_stack()
        return stack[-1] if stack else None

    # -- observation ---------------------------------------------------------
    def observe(self, layer: str, kind: str, arr: np.ndarray) -> None:
        """Fold one array into the ``(layer, kind)`` stream.

        May raise :class:`NumericsError` under the ``raise`` policy.
        """
        if not self.enabled:
            return
        key = (layer, kind)
        with self._lock:
            stats = self.stats.get(key)
            if stats is None:
                stats = TensorStats(self.percentiles, self.sample_limit)
                self.stats[key] = stats
            nan, inf = stats.update(arr)
        if nan or inf:
            self._handle_anomaly(layer, kind, nan, inf)

    def record_quant(
        self, name: str, clipped: int, total: int, low: int = 0, high: int = 0
    ) -> None:
        """Accumulate a clip/saturation event, attributed to the current layer."""
        if not self.enabled:
            return
        layer = self.current_layer()
        key = f"{layer}/{name}" if layer else name
        with self._lock:
            counter = self.quant.get(key)
            if counter is None:
                counter = ClipCounter()
                self.quant[key] = counter
            counter.add(clipped, total, low, high)

    def check_value(self, layer: str, kind: str, value: float) -> None:
        """Watchdog check for a scalar (e.g. the training loss)."""
        if not self.enabled or np.isfinite(value):
            return
        nan = int(np.isnan(value))
        self._handle_anomaly(layer, kind, nan, 1 - nan)

    def _handle_anomaly(self, layer: str, kind: str, nan: int, inf: int) -> None:
        if self.first_anomaly is None:
            self.first_anomaly = {
                "layer": layer,
                "kind": kind,
                "nan": nan,
                "inf": inf,
                "epoch": self.epoch,
                "batch": self.batch,
            }
        if self.watchdog == "warn":
            key = (layer, kind)
            if key not in self._warned:
                self._warned.add(key)
                logger.warning(
                    "non-finite values in %s.%s (%d NaN, %d inf)", layer, kind, nan, inf
                )
        elif self.watchdog == "raise":
            raise NumericsError(layer, kind, nan, inf, self.epoch, self.batch)

    # -- aggregation ---------------------------------------------------------
    def clip_rate(self, suffix: str) -> float:
        """Aggregate clip rate over every counter whose name ends with
        ``suffix`` (e.g. ``"dorefa.act_clip"``); 0.0 when none matched."""
        clipped = total = 0
        with self._lock:
            for key, counter in self.quant.items():
                if key.endswith(suffix):
                    clipped += counter.clipped
                    total += counter.total
        return clipped / total if total else 0.0

    # -- export --------------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """The full health report as one JSON-ready document."""
        with self._lock:
            layers = [
                {"layer": layer, "kind": kind, **stats.as_dict()}
                for (layer, kind), stats in self.stats.items()
            ]
            quant = {key: counter.as_dict() for key, counter in self.quant.items()}
        return {
            "layers": layers,
            "quant": quant,
            "divergence": self.divergence,
            "anomaly": self.first_anomaly,
        }

    def to_jsonl(self) -> str:
        """One JSON object per stream / clip counter / probe result."""
        lines: List[str] = []
        doc = self.report()
        for row in doc["layers"]:
            lines.append(json.dumps({"type": "numerics", **row}))
        for key, counter in sorted(doc["quant"].items()):
            lines.append(json.dumps({"type": "quant_clip", "name": key, **counter}))
        if doc["divergence"] is not None:
            lines.append(json.dumps({"type": "reorder_divergence", **doc["divergence"]}))
        if doc["anomaly"] is not None:
            lines.append(json.dumps({"type": "anomaly", **doc["anomaly"]}))
        return "\n".join(lines) + ("\n" if lines else "")

    def write_report(self, path: str) -> str:
        """Write the report to ``path`` (JSONL for ``.jsonl``, else JSON)."""
        with open(path, "w") as fh:
            if path.endswith(".jsonl"):
                fh.write(self.to_jsonl())
            else:
                json.dump(self.report(), fh, indent=2)
                fh.write("\n")
        return path

    def summary_report(self):
        """Per-layer table as a :class:`repro.analysis.report.ExperimentReport`."""
        from repro.analysis.report import ExperimentReport

        headers = ["layer", "kind", "count", "mean", "std", "min", "max", "zero%", "nan", "inf"]
        headers += [f"p{q * 100:g}" for q in sorted(self.percentiles)]
        rep = ExperimentReport("Numerics", "per-layer value-distribution health", headers=headers)
        with self._lock:
            items = list(self.stats.items())
        for (layer, kind), stats in items:
            d = stats.as_dict()
            row = [
                layer,
                kind,
                int(d["count"]),
                f"{d['mean']:.4g}",
                f"{d['std']:.4g}",
                f"{d['min']:.4g}",
                f"{d['max']:.4g}",
                f"{100 * d['zero_fraction']:.1f}",
                int(d["nan"]),
                int(d["inf"]),
            ]
            row += [f"{d[f'p{q * 100:g}']:.4g}" for q in sorted(self.percentiles)]
            rep.add_row(*row)
        with self._lock:
            quant = sorted(self.quant.items())
        for key, counter in quant:
            rep.add_note(
                f"quant {key}: {counter.clipped}/{counter.total} clipped "
                f"({100 * counter.rate:.2f}%)"
            )
        if self.divergence is not None:
            d = self.divergence
            rep.add_note(
                f"reorder divergence: end-to-end max|dev| {d['end_to_end_max_abs']:.4g}, "
                f"top-1 flips {100 * d['top1_flip_rate']:.1f}% over {d['layers']} pooled layer(s)"
            )
        if self.first_anomaly is not None:
            a = self.first_anomaly
            rep.add_note(
                f"ANOMALY: {a['layer']}.{a['kind']} ({a['nan']} NaN, {a['inf']} inf) "
                f"at epoch {a['epoch']}, batch {a['batch']}"
            )
        return rep

    def summary(self) -> str:
        """Rendered text of :meth:`summary_report`."""
        return self.summary_report().render()


# ---------------------------------------------------------------------------
# Reorder-divergence probe
# ---------------------------------------------------------------------------

def _pooled_units(model) -> List[Tuple[str, Any]]:
    """Outermost modules whose forward realizes one pool+activation pair."""
    from repro.core.quantize import QuantizedConvBlock
    from repro.models.blocks import ConvBlock, PooledInception

    units: List[Tuple[str, Any]] = []
    selected: List[str] = []
    for name, mod in model.named_modules():
        if any(name == p or name.startswith(p + ".") for p in selected if p):
            continue
        pooled = False
        if isinstance(mod, QuantizedConvBlock):
            pooled = mod.block.pool is not None
        elif isinstance(mod, (ConvBlock, PooledInception)):
            pooled = mod.pool is not None
        if pooled:
            units.append((name or type(mod).__name__.lower(), mod))
            selected.append(name)
    return units


def reorder_divergence(
    model,
    probe: np.ndarray,
    collector: Optional[NumericsCollector] = None,
) -> Dict[str, Any]:
    """Run ``model`` in both activation orders; report the divergence.

    Executes the network on ``probe`` with every pooled block set to
    ``act_pool`` (conventional ``ReLU→Pool``) and again with
    ``pool_act`` (the MLCNN reordering), capturing each pooled block's
    output both times.  Returns::

        {"per_layer": {name: max_abs_dev},
         "end_to_end_max_abs": float,
         "top1_flip_rate": float,    # fraction of probe rows whose argmax flips
         "layers": int}

    The model is fully restored afterwards (orders, train/eval mode);
    exact for max pooling (ReLU and max commute), nonzero for average
    pooling — the quantity the paper's Fig. 3 retraining argument is
    about.  Works on plain and DoReFa-quantized models.
    """
    from repro.models.reorder import conv_pool_blocks
    from repro.nn.tensor import Tensor, no_grad

    units = _pooled_units(model)
    blocks = conv_pool_blocks(model)
    result: Dict[str, Any] = {
        "per_layer": {},
        "end_to_end_max_abs": 0.0,
        "top1_flip_rate": 0.0,
        "layers": len(units),
    }
    if not units or not blocks:
        if collector is not None:
            collector.divergence = result
        return result

    saved_orders = [(b, b.order) for b in blocks]
    was_training = model.training
    model.eval()

    def run(order: str) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
        for b in blocks:
            b.order = order
        captured: Dict[str, np.ndarray] = {}
        previous = []
        for name, mod in units:
            prev = mod.__dict__.get("forward")
            orig = mod.forward

            def wrapped(*args, _orig=orig, _name=name, **kwargs):
                out = _orig(*args, **kwargs)
                captured[_name] = np.array(out.data, copy=True)
                return out

            object.__setattr__(mod, "forward", wrapped)
            previous.append((mod, prev))
        try:
            with no_grad():
                final = np.array(model(Tensor(np.asarray(probe))).data, copy=True)
        finally:
            for mod, prev in previous:
                if prev is None:
                    del mod.__dict__["forward"]
                else:
                    object.__setattr__(mod, "forward", prev)
        return captured, final

    try:
        outs_a, final_a = run("act_pool")
        outs_b, final_b = run("pool_act")
    finally:
        for b, order in saved_orders:
            b.order = order
        model.train(was_training)

    per_layer: Dict[str, float] = {}
    for name, _ in units:
        a, b = outs_a.get(name), outs_b.get(name)
        if a is None or b is None or a.shape != b.shape:
            per_layer[name] = float("inf")
        else:
            per_layer[name] = float(np.max(np.abs(a - b)))
    result["per_layer"] = per_layer
    if final_a.shape == final_b.shape:
        result["end_to_end_max_abs"] = float(np.max(np.abs(final_a - final_b)))
        if final_a.ndim >= 2:
            flips = np.argmax(final_a, axis=1) != np.argmax(final_b, axis=1)
            result["top1_flip_rate"] = float(np.mean(flips))
    else:
        result["end_to_end_max_abs"] = float("inf")
    if collector is not None:
        collector.divergence = result
    return result
