"""Measured hardware counters and the benchmark run registry.

Two layers live here, both feeding the perf-engineering loop that the
regression gate (:mod:`repro.obs.regress`) and the dashboard
(:mod:`repro.obs.dashboard`) close:

1. **Measured counters** — :class:`OpCounters` collected by a
   process-wide :class:`CounterRecorder` (disabled by default, same
   design as :class:`repro.obs.tracer.Tracer`).  The instrumented fused
   kernel (:mod:`repro.core.fusion`), the accelerator simulator, the
   dataflow timeline, the multi-bank buffer and the DRAM model all
   report *measured* event counts into it: multiplications actually
   performed and eliminated by RME, half/full additions spent and
   reused by LAR/GAR, SRAM bank accesses and conflicts, DRAM bytes and
   row hits.  Unlike the closed-form :mod:`repro.core.opcount`
   formulas, these numbers come from real executions, so the analytic
   claims are auditable (``tests/obs/test_counters_crosscheck.py``
   keeps the two within 1%)::

       from repro.obs.metrics import collect_counters

       with collect_counters() as oc:
           fused_conv_pool_counted(x, w, b, pool=2)
           simulate_network(specs, get_config("mlcnn-fp32"))
       print(oc.mults_eliminated, oc.dram_bytes)

2. **Run registry** — :class:`MetricRegistry` persists headline
   benchmark metrics to ``BENCH_<area>.json`` files at the repo root,
   each run stamped with git SHA, UTC timestamp, host and Python
   version (:func:`provenance`).  Previous runs rotate into a bounded
   ``history`` list so the dashboard can render trend series, and the
   committed files are the baselines the CI regression gate compares
   every PR against.
"""

from __future__ import annotations

import getpass
import json
import os
import platform
import socket
import subprocess
import threading
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field, fields
from datetime import datetime, timezone
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "OpCounters",
    "CounterRecorder",
    "get_recorder",
    "collect_counters",
    "provenance",
    "RunRecord",
    "MetricRegistry",
    "metric_key",
    "area_for_figure",
    "load_metrics_jsonl",
    "PROVENANCE_FIELDS",
    "HISTORY_LIMIT",
]


# ---------------------------------------------------------------------------
# Measured counters
# ---------------------------------------------------------------------------

@dataclass
class OpCounters:
    """Measured event counts from instrumented executions.

    Arithmetic fields are filled by the counted kernel executors in
    :mod:`repro.core.fusion`; memory fields by the accelerator models.
    All fields are additive, so one collection can span a whole run
    (many kernels + a simulation) and still decompose meaningfully.
    """

    # -- arithmetic (instrumented kernel executors) -----------------------
    #: multiplications actually performed
    mults: int = 0
    #: multiplications a dense execution of the same geometry would have
    #: performed but RME eliminated (0 for dense executions)
    mults_eliminated: int = 0
    half_additions: int = 0
    full_additions: int = 0
    major_additions: int = 0
    bias_additions: int = 0
    #: additions avoided because a half addition was found in the LAR cache
    lar_reuse_hits: int = 0
    #: additions avoided because a full box sum was found in the GAR cache
    gar_reuse_hits: int = 0

    # -- on-chip buffer (MultiBankBuffer + simulator model) ---------------
    buffer_reads: int = 0
    buffer_writes: int = 0
    buffer_conflicts: int = 0
    #: SRAM accesses attributed by the cycle simulator's buffer model
    buffer_accesses: float = 0.0

    # -- DRAM (DramModel + simulator traffic model) -----------------------
    dram_accesses: int = 0
    dram_row_hits: int = 0
    dram_row_misses: int = 0
    dram_cycles: int = 0
    #: bytes moved per the simulator's tiling-derived traffic model
    dram_bytes: float = 0.0

    # -- dataflow schedule (timeline makespan decomposition) --------------
    sched_load_cycles: float = 0.0
    sched_compute_cycles: float = 0.0
    sched_store_cycles: float = 0.0

    @property
    def additions(self) -> int:
        """All additions actually performed by instrumented kernels."""
        return (
            self.half_additions
            + self.full_additions
            + self.major_additions
            + self.bias_additions
        )

    @property
    def reuse_hits(self) -> int:
        """All additions avoided by LAR + GAR caches."""
        return self.lar_reuse_hits + self.gar_reuse_hits

    def merge(self, other: "OpCounters") -> "OpCounters":
        """Add ``other``'s counts into self (returns self)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    @classmethod
    def from_dict(cls, doc: Mapping[str, float]) -> "OpCounters":
        """Rebuild from :meth:`as_dict` output (or any field mapping).

        Tolerates the derived keys (``additions``, ``reuse_hits``) and
        any unknown keys — required for round-tripping counters through
        worker processes, whose serialized dicts may carry derived
        totals the constructor does not accept.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in known})

    def as_dict(self, include_derived: bool = True) -> Dict[str, float]:
        doc: Dict[str, float] = asdict(self)
        if include_derived:
            doc["additions"] = self.additions
            doc["reuse_hits"] = self.reuse_hits
        return doc


class CounterRecorder:
    """Process-wide sink stack for :class:`OpCounters`.

    Disabled (zero overhead beyond one attribute check) until a
    collection is active; :func:`collect_counters` pushes a fresh
    :class:`OpCounters` and nested collections each receive every
    record, so an outer scope sees the totals of its inner scopes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sinks: List[OpCounters] = []

    @property
    def enabled(self) -> bool:
        return bool(self._sinks)

    def record(self, **counts: float) -> None:
        """Add the named field increments into every active sink."""
        if not self._sinks:
            return
        with self._lock:
            for sink in self._sinks:
                for name, value in counts.items():
                    setattr(sink, name, getattr(sink, name) + value)

    def _push(self, sink: OpCounters) -> None:
        with self._lock:
            self._sinks.append(sink)

    def _pop(self, sink: OpCounters) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)


_RECORDER = CounterRecorder()


def get_recorder() -> CounterRecorder:
    """The process-wide counter recorder (inactive unless collecting)."""
    return _RECORDER


@contextmanager
def collect_counters() -> Iterator[OpCounters]:
    """Collect measured counters from everything executed in the body."""
    sink = OpCounters()
    _RECORDER._push(sink)
    try:
        yield sink
    finally:
        _RECORDER._pop(sink)


# ---------------------------------------------------------------------------
# Run provenance
# ---------------------------------------------------------------------------

#: metadata keys stamped on rows/records; excluded from metric identity
PROVENANCE_FIELDS = (
    "git_sha",
    "timestamp",
    "host",
    "user",
    "python",
    "cpu_count",
    "machine",
)


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def provenance() -> Dict[str, str]:
    """Stamp for one run: git SHA, UTC timestamp, host identity, python.

    ``cpu_count`` and ``machine`` make baselines host-shape-aware: the
    regression gate downgrades host-sensitive metrics (parallel scaling
    curves) to advisory when the current core count differs from the
    baseline's, instead of failing the build on hardware variance.
    """
    try:
        user = getpass.getuser()
    except (KeyError, OSError):  # no passwd entry in some containers
        user = "unknown"
    return {
        "git_sha": _git_sha(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": socket.gethostname(),
        "user": user,
        "python": platform.python_version(),
        "cpu_count": str(os.cpu_count() or 1),
        "machine": platform.machine(),
    }


# ---------------------------------------------------------------------------
# Metric naming
# ---------------------------------------------------------------------------

#: benchmark areas: figure/table prefix -> BENCH_<area>.json
_ACCEL_PREFIXES = (
    "fig13",
    "fig15",
    "table7",
    "kernel",
    "operating",
    "related",
    "resnet18",
)


def area_for_figure(figure: str) -> str:
    """Which ``BENCH_<area>.json`` a figure's metrics persist to.

    Cycle/energy/throughput figures ride on the accelerator model
    (``accel``); the analytic LAR/GAR/RME tables and FLOP reductions
    ride on :mod:`repro.core` (``core``).
    """
    return "accel" if figure.startswith(_ACCEL_PREFIXES) else "core"


def metric_key(figure: str, metric: str, extra: Mapping[str, Any] = ()) -> str:
    """Canonical metric identity: ``figure.metric[k=v]...``.

    Provenance fields never enter the key, so re-runs of the same
    benchmark on different hosts/commits compare against each other.
    """
    parts = [f"{figure}.{metric}"]
    extra = dict(extra or {})
    for k in sorted(extra):
        if k in PROVENANCE_FIELDS:
            continue
        parts.append(f"[{k}={extra[k]}]")
    return "".join(parts)


def load_metrics_jsonl(path: str) -> Dict[str, Dict[str, float]]:
    """Parse a ``--metrics-jsonl`` file into per-area metric dicts.

    Returns ``{area: {metric_key: value}}``; a key emitted more than
    once keeps its last value (later rows supersede earlier re-runs).
    Malformed lines raise — a truncated metrics file must not silently
    gate against a partial run.
    """
    per_area: Dict[str, Dict[str, float]] = {}
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            try:
                figure, metric, value = row["figure"], row["metric"], row["value"]
            except (KeyError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: metric rows need figure/metric/value"
                ) from exc
            extra = {
                k: v
                for k, v in row.items()
                if k not in ("figure", "metric", "value") and k not in PROVENANCE_FIELDS
            }
            area = area_for_figure(str(figure))
            per_area.setdefault(area, {})[metric_key(figure, metric, extra)] = float(value)
    return per_area


# ---------------------------------------------------------------------------
# Run registry
# ---------------------------------------------------------------------------

#: how many previous runs a BENCH_<area>.json keeps for trend series
HISTORY_LIMIT = 20


@dataclass
class RunRecord:
    """One benchmark run's headline metrics with provenance."""

    area: str
    metrics: Dict[str, float] = field(default_factory=dict)
    provenance: Dict[str, str] = field(default_factory=provenance)

    def to_doc(self) -> Dict[str, Any]:
        return {"provenance": dict(self.provenance), "metrics": dict(self.metrics)}

    @classmethod
    def from_doc(cls, area: str, doc: Mapping[str, Any]) -> "RunRecord":
        return cls(
            area=area,
            metrics={str(k): float(v) for k, v in (doc.get("metrics") or {}).items()},
            provenance=dict(doc.get("provenance") or {}),
        )


class MetricRegistry:
    """Reads and refreshes the ``BENCH_<area>.json`` baseline files.

    File schema::

        {
          "area": "core",
          "provenance": {"git_sha": ..., "timestamp": ..., ...},
          "metrics": {"<figure>.<metric>[k=v]": value, ...},
          "history": [{"provenance": {...}, "metrics": {...}}, ...]
        }

    ``metrics`` is the current baseline the gate compares against;
    ``history`` holds the previous runs, newest first, bounded by
    :data:`HISTORY_LIMIT`.
    """

    def __init__(self, root: str = ".") -> None:
        self.root = root

    def path(self, area: str) -> str:
        return os.path.join(self.root, f"BENCH_{area}.json")

    def areas(self) -> List[str]:
        """Areas with a committed baseline file, sorted."""
        found = []
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        for name in names:
            if name.startswith("BENCH_") and name.endswith(".json"):
                found.append(name[len("BENCH_"):-len(".json")])
        return sorted(found)

    def load(self, area: str) -> Optional[Dict[str, Any]]:
        """Full document for ``area``, or None when no baseline exists."""
        try:
            with open(self.path(area)) as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None

    def baseline(self, area: str) -> Optional[Dict[str, float]]:
        """Current baseline metrics for ``area`` (None = no baseline)."""
        doc = self.load(area)
        if doc is None:
            return None
        return {str(k): float(v) for k, v in (doc.get("metrics") or {}).items()}

    def history(self, area: str) -> List[RunRecord]:
        """All recorded runs, oldest first, current run last."""
        doc = self.load(area)
        if doc is None:
            return []
        records = [
            RunRecord.from_doc(area, entry) for entry in reversed(doc.get("history") or [])
        ]
        records.append(
            RunRecord.from_doc(
                area, {"metrics": doc.get("metrics"), "provenance": doc.get("provenance")}
            )
        )
        return records

    def update(
        self,
        area: str,
        metrics: Mapping[str, float],
        stamp: Optional[Mapping[str, str]] = None,
    ) -> str:
        """Make ``metrics`` the new baseline; rotate the old one into
        history.  Returns the file path written."""
        doc = self.load(area)
        history: List[Dict[str, Any]] = []
        if doc is not None:
            history = list(doc.get("history") or [])
            if doc.get("metrics"):
                history.insert(
                    0,
                    {
                        "provenance": doc.get("provenance") or {},
                        "metrics": doc.get("metrics"),
                    },
                )
        new_doc = {
            "area": area,
            "provenance": dict(stamp) if stamp is not None else provenance(),
            "metrics": {k: float(v) for k, v in sorted(metrics.items())},
            "history": history[:HISTORY_LIMIT],
        }
        path = self.path(area)
        with open(path, "w") as fh:
            json.dump(new_doc, fh, indent=2, sort_keys=False)
            fh.write("\n")
        return path

    def series(self, area: str, key: str) -> List[Tuple[str, float]]:
        """(git_sha, value) trend of one metric, oldest first."""
        out: List[Tuple[str, float]] = []
        for record in self.history(area):
            if key in record.metrics:
                out.append((record.provenance.get("git_sha", "?"), record.metrics[key]))
        return out
