"""Cross-run regression forensics: *what changed, and where*.

Two entry points, one output shape — a ranked "what changed" report:

* :func:`diff_runs` — compare two traces (live tracers, JSONL trace
  files, or pre-built :class:`~repro.obs.attrib.AttributionReport`\\ s).
  Every span identity (layer, compiler pass, kernel shape-class,
  worker shard, simulated layer) becomes one diff entry with its wall
  time delta; entries are ranked by absolute delta so the top entry
  *is* the localized regression.  Kernel selection changes (a layer
  lowered to a different shape-class kernel) and ops/bytes drift are
  annotated on the entry — the usual root causes travel with the
  ranking.
* :func:`diff_bench` — compare a working tree's fresh benchmark
  metrics (a ``--metrics-jsonl`` file) against the committed
  ``BENCH_*.json`` baseline registry, ranked by relative delta.  This
  is the "is my branch slower, and on which metric" view; the
  regression *gate* (:mod:`repro.obs.regress`) stays the pass/fail
  authority, this is the forensic ordering.

Both renders are plain text tables (CI-log friendly) via the standard
:class:`~repro.analysis.report.ExperimentReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.obs.attrib import AttributionReport, build_attribution
from repro.obs.tracer import Tracer

__all__ = ["DiffEntry", "RunDiff", "diff_runs", "BenchDiffEntry", "BenchDiff", "diff_bench"]


@dataclass
class DiffEntry:
    """One span identity's change between run A and run B."""

    name: str
    kind: str
    wall_a_us: float
    wall_b_us: float
    count_a: int = 0
    count_b: int = 0
    #: annotations: kernel selection changes, ops/bytes drift, add/remove
    notes: List[str] = field(default_factory=list)

    @property
    def delta_us(self) -> float:
        return self.wall_b_us - self.wall_a_us

    @property
    def delta_rel(self) -> Optional[float]:
        if self.wall_a_us <= 0:
            return None
        return self.delta_us / self.wall_a_us

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "wall_a_us": self.wall_a_us,
            "wall_b_us": self.wall_b_us,
            "delta_us": self.delta_us,
            "delta_rel": self.delta_rel,
            "count_a": self.count_a,
            "count_b": self.count_b,
            "notes": list(self.notes),
        }


@dataclass
class RunDiff:
    """Ranked span-level diff of two runs (B relative to A)."""

    entries: List[DiffEntry] = field(default_factory=list)
    total_a_us: float = 0.0
    total_b_us: float = 0.0
    coverage_a: float = 0.0
    coverage_b: float = 0.0

    @property
    def total_delta_us(self) -> float:
        return self.total_b_us - self.total_a_us

    def top(self, n: int = 10) -> List[DiffEntry]:
        return self.entries[:n]

    @property
    def culprit(self) -> Optional[DiffEntry]:
        """The top-ranked entry — the localized change, if any."""
        return self.entries[0] if self.entries else None

    def to_experiment_report(self, top: int = 15):
        from repro.analysis.report import ExperimentReport

        rep = ExperimentReport(
            "Run diff",
            "per-span wall time change, B vs A, ranked by |delta|",
            headers=["row", "kind", "A ms", "B ms", "delta ms", "delta %", "notes"],
        )
        for e in self.entries[:top]:
            rel = "-" if e.delta_rel is None else f"{100 * e.delta_rel:+.1f}"
            rep.add_row(
                e.name,
                e.kind,
                f"{e.wall_a_us / 1e3:.3f}",
                f"{e.wall_b_us / 1e3:.3f}",
                f"{e.delta_us / 1e3:+.3f}",
                rel,
                "; ".join(e.notes) or "-",
            )
        rep.add_note(
            f"total {self.total_a_us / 1e3:.3f} ms -> {self.total_b_us / 1e3:.3f} ms "
            f"({self.total_delta_us / 1e3:+.3f} ms); "
            f"span coverage A {100 * self.coverage_a:.1f}% / B {100 * self.coverage_b:.1f}%"
        )
        return rep

    def render(self, top: int = 15) -> str:
        return self.to_experiment_report(top=top).render()


def _as_report(run: Union[AttributionReport, Tracer, str]) -> AttributionReport:
    if isinstance(run, AttributionReport):
        return run
    return build_attribution(run)


def diff_runs(
    a: Union[AttributionReport, Tracer, str],
    b: Union[AttributionReport, Tracer, str],
    min_delta_us: float = 0.0,
) -> RunDiff:
    """Rank every span identity by how much its wall time moved A→B.

    ``a`` and ``b`` may each be a live tracer, a JSONL trace path, or a
    pre-built attribution report.  Rows present in only one run are
    kept (noted ``added``/``removed``) — a span that vanishes is
    exactly the kind of change forensics must surface.
    """
    ra, rb = _as_report(a), _as_report(b)
    rows_a = {r.name: r for r in ra.rows}
    rows_b = {r.name: r for r in rb.rows}
    entries: List[DiffEntry] = []
    for name in sorted(set(rows_a) | set(rows_b)):
        row_a, row_b = rows_a.get(name), rows_b.get(name)
        any_row = row_b or row_a
        entry = DiffEntry(
            name=name,
            kind=any_row.kind,
            wall_a_us=row_a.wall_us if row_a else 0.0,
            wall_b_us=row_b.wall_us if row_b else 0.0,
            count_a=row_a.count if row_a else 0,
            count_b=row_b.count if row_b else 0,
        )
        if row_a is None:
            entry.notes.append("added in B")
        elif row_b is None:
            entry.notes.append("removed in B")
        else:
            if row_a.kernel != row_b.kernel and (row_a.kernel or row_b.kernel):
                entry.notes.append(
                    f"kernel {row_a.kernel or 'none'} -> {row_b.kernel or 'none'}"
                )
            for label, va, vb in (
                ("ops", row_a.ops, row_b.ops),
                ("bytes", row_a.bytes_moved, row_b.bytes_moved),
            ):
                if va and vb and abs(vb - va) > 0.01 * va:
                    entry.notes.append(f"{label} x{vb / va:.2f}")
            if row_a.count != row_b.count:
                entry.notes.append(f"count {row_a.count} -> {row_b.count}")
        if abs(entry.delta_us) >= min_delta_us or entry.notes:
            entries.append(entry)
    # Compiled kernel-plan changes (from ``compile.plan`` events) cover
    # modules the instrumented spans may not — annotate the matching
    # span entry, or surface a zero-wall entry so the change is never
    # silent.
    for path in sorted(set(ra.kernel_plan) | set(rb.kernel_plan)):
        ka, kb = ra.kernel_plan.get(path), rb.kernel_plan.get(path)
        if ka == kb:
            continue
        note = f"plan kernel {ka or 'none'} -> {kb or 'none'}"
        target = next((e for e in entries if path in e.name), None)
        if target is not None:
            if not any(n.startswith("kernel") or n.startswith("plan kernel") for n in target.notes):
                target.notes.append(note)
        else:
            entries.append(
                DiffEntry(name=f"plan.{path}", kind="pass", wall_a_us=0.0,
                          wall_b_us=0.0, notes=[note])
            )
    entries.sort(key=lambda e: (-abs(e.delta_us), e.name))
    return RunDiff(
        entries=entries,
        total_a_us=ra.total_us,
        total_b_us=rb.total_us,
        coverage_a=ra.span_coverage,
        coverage_b=rb.span_coverage,
    )


@dataclass
class BenchDiffEntry:
    """One benchmark metric's change vs its committed baseline."""

    key: str
    area: str
    baseline: float
    current: float

    @property
    def delta(self) -> float:
        return self.current - self.baseline

    @property
    def delta_rel(self) -> Optional[float]:
        if self.baseline == 0:
            return None
        return self.delta / abs(self.baseline)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "area": self.area,
            "baseline": self.baseline,
            "current": self.current,
            "delta": self.delta,
            "delta_rel": self.delta_rel,
        }


@dataclass
class BenchDiff:
    """Ranked metric diff of a working tree vs the baseline registry."""

    entries: List[BenchDiffEntry] = field(default_factory=list)
    missing_baseline: List[str] = field(default_factory=list)
    missing_current: List[str] = field(default_factory=list)

    def to_experiment_report(self, top: int = 20):
        from repro.analysis.report import ExperimentReport

        rep = ExperimentReport(
            "Bench diff",
            "working-tree metrics vs committed BENCH_* baselines, ranked by |delta %|",
            headers=["metric", "area", "baseline", "current", "delta %"],
        )
        for e in self.entries[:top]:
            rel = "-" if e.delta_rel is None else f"{100 * e.delta_rel:+.2f}"
            rep.add_row(e.key, e.area, f"{e.baseline:.6g}", f"{e.current:.6g}", rel)
        if self.missing_baseline:
            rep.add_note(
                f"{len(self.missing_baseline)} metric(s) with no baseline: "
                + ", ".join(self.missing_baseline[:8])
            )
        if self.missing_current:
            rep.add_note(
                f"{len(self.missing_current)} baseline metric(s) not re-measured: "
                + ", ".join(self.missing_current[:8])
            )
        return rep

    def render(self, top: int = 20) -> str:
        return self.to_experiment_report(top=top).render()


def diff_bench(metrics_jsonl: str, root: str = ".") -> BenchDiff:
    """Diff freshly measured metrics against the committed baselines.

    ``metrics_jsonl`` is a benchmark run's ``--metrics-jsonl`` output
    from the working tree; baselines come from the ``BENCH_<area>.json``
    registry under ``root``.  Unlike the gate, every overlapping metric
    is reported, ranked by relative movement.
    """
    from repro.obs.metrics import MetricRegistry, load_metrics_jsonl

    registry = MetricRegistry(root)
    current = load_metrics_jsonl(metrics_jsonl)

    diff = BenchDiff()
    seen_baseline_keys: set = set()
    areas = sorted(set(current) | set(registry.areas()))
    for area in areas:
        baseline = registry.baseline(area) or {}
        for key, value in (current.get(area) or {}).items():
            if key in baseline:
                seen_baseline_keys.add((area, key))
                diff.entries.append(
                    BenchDiffEntry(
                        key=key, area=area, baseline=float(baseline[key]), current=value
                    )
                )
            else:
                diff.missing_baseline.append(key)
        for key in baseline:
            if (area, key) not in seen_baseline_keys:
                diff.missing_current.append(key)
    diff.entries.sort(
        key=lambda e: (-(abs(e.delta_rel) if e.delta_rel is not None else float("inf")), e.key)
    )
    return diff
