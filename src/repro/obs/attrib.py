"""Roofline attribution: join spans + counters + the accel model.

The repo *collects* everything — tracer spans (measured wall time),
measured :class:`~repro.obs.metrics.OpCounters` (ops and bytes), the
accelerator simulator's per-layer cycle/energy events — but none of it
is joined.  This module is the join: one
:class:`AttributionReport` per run, with a per-layer/per-kernel table
of

* **measured wall time** (total and self time, worker-shard spans
  included — :func:`repro.core.parallel._absorb_shard_results` merges
  them back as real spans),
* **ops and bytes** (measured counters attached to leaf spans by
  :func:`~repro.obs.instrument.instrument_model` with
  ``counters=True``, or the analytic fallback for plain dense layers),
* **arithmetic intensity** (FLOPs/byte) and **attained vs attainable
  FLOP/s** against the host's measured roofline
  (:mod:`repro.obs.roofline`), classifying each row compute- or
  memory-bound — the ops-vs-bytes view that says which MLCNN lever
  (multiply elimination vs data-movement reuse) each layer needs,
* the simulator's modeled layers (``sim.layer`` events) as their own
  rows, bound-classified by the accel model's own compute/memory roofs.

Coverage is itself a metric: ``span_coverage`` is the fraction of the
root spans' wall time explained by their descendants (a parent is
explained by the sum of its children, capped at its own duration; a
leaf explains itself), and ``unexplained_us`` is the residual.  A
tracing gap — a lost worker shard, an uninstrumented subsystem — shows
up as coverage loss instead of silently vanishing.

The engine is trace-driven: it accepts a live
:class:`~repro.obs.tracer.Tracer`, a JSONL trace file written by
:func:`repro.obs.export.write_jsonl`, or an iterable of already-parsed
event dicts — which is what makes cross-run forensics
(:mod:`repro.obs.forensics`) a diff of two of these tables.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.obs.roofline import Roofline
from repro.obs.tracer import Tracer

__all__ = [
    "AttribRow",
    "AttributionReport",
    "normalize_events",
    "build_attribution",
    "attribute_model_run",
]

#: span categories -> row kind (the localization axis forensics ranks on)
_KIND_BY_CATEGORY = {
    "nn": "layer",
    "compiler": "pass",
    "parallel": "shard",
    "accel": "sim",
    "train": "train",
    "experiments": "experiment",
    "obs": "obs",
}

#: tolerance for interval containment when rebuilding the span tree
_EPS_US = 0.5


def _counters_ops(counters: Mapping[str, float]) -> float:
    """Executed FLOPs implied by one measured counter set.

    Counted executors report multiplications and additions separately;
    the vectorized kernels report only their RME multiplication tally
    (the paired GEMM accumulate-adds are implicit), so a mult-only set
    counts 2 FLOPs per multiplication.
    """
    mults = float(counters.get("mults", 0))
    adds = float(
        counters.get("half_additions", 0)
        + counters.get("full_additions", 0)
        + counters.get("major_additions", 0)
        + counters.get("bias_additions", 0)
    )
    if mults and not adds:
        return 2.0 * mults
    return mults + adds


def normalize_events(
    source: Union[Tracer, str, Iterable[Mapping[str, Any]]],
) -> List[Dict[str, Any]]:
    """Event dicts (span/instant rows) from any supported trace source.

    Accepts a :class:`Tracer`, a path to a JSONL trace, or an iterable
    of already-parsed rows; counter/histogram aggregate rows are
    dropped.  Returns rows shaped like the JSONL exporter's output.
    """
    if isinstance(source, Tracer):
        rows: List[Dict[str, Any]] = []
        for ev in source.events:
            rows.append(
                {
                    "type": "span" if ev.is_span else "instant",
                    "name": ev.name,
                    "ts_us": ev.ts_us,
                    "dur_us": ev.dur_us,
                    "tid": ev.tid,
                    "depth": ev.depth,
                    "parent": ev.parent,
                    "cat": ev.category,
                    "attrs": dict(ev.attrs),
                }
            )
        return rows
    if isinstance(source, str):
        rows = []
        with open(source) as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(f"{source}:{lineno}: invalid JSON: {exc}") from exc
                if row.get("type") in ("span", "instant"):
                    rows.append(row)
        return rows
    return [dict(r) for r in source if r.get("type") in ("span", "instant")]


class _Node:
    """One span occurrence in the reconstructed call tree."""

    __slots__ = ("row", "children", "instants")

    def __init__(self, row: Dict[str, Any]) -> None:
        self.row = row
        self.children: List["_Node"] = []
        self.instants: List[Dict[str, Any]] = []

    @property
    def dur_us(self) -> float:
        return float(self.row.get("dur_us") or 0.0)

    @property
    def ts_us(self) -> float:
        return float(self.row.get("ts_us") or 0.0)

    @property
    def end_us(self) -> float:
        return self.ts_us + self.dur_us


def _build_forest(rows: Sequence[Mapping[str, Any]]) -> List[_Node]:
    """Rebuild the span tree per thread by interval containment.

    The tracer records spans in *completion* order; sorting by start
    time (longer spans first on ties) lets a single stack sweep assign
    every span to its tightest enclosing parent.  Instant events attach
    to the deepest span covering their timestamp.
    """
    forest: List[_Node] = []
    by_tid: Dict[Any, List[Dict[str, Any]]] = {}
    for row in rows:
        by_tid.setdefault(row.get("tid"), []).append(dict(row))
    for tid_rows in by_tid.values():
        spans = [r for r in tid_rows if r["type"] == "span"]
        instants = [r for r in tid_rows if r["type"] == "instant"]
        spans.sort(key=lambda r: (float(r.get("ts_us") or 0.0), -float(r.get("dur_us") or 0.0)))
        stack: List[_Node] = []
        roots: List[_Node] = []
        for row in spans:
            node = _Node(row)
            while stack and not (
                node.ts_us >= stack[-1].ts_us - _EPS_US
                and node.end_us <= stack[-1].end_us + _EPS_US
            ):
                stack.pop()
            if stack:
                stack[-1].children.append(node)
            else:
                roots.append(node)
            stack.append(node)

        def _attach_instant(nodes: List[_Node], row: Mapping[str, Any]) -> bool:
            ts = float(row.get("ts_us") or 0.0)
            for node in nodes:
                if node.ts_us - _EPS_US <= ts <= node.end_us + _EPS_US:
                    if not _attach_instant(node.children, row):
                        node.instants.append(dict(row))
                    return True
            return False

        for row in instants:
            _attach_instant(roots, row)
        forest.extend(roots)
    return forest


def _attributed_us(node: _Node) -> float:
    """Wall time of ``node`` explained by measured work.

    A leaf explains its whole duration; an inner span is explained by
    the sum of its children, capped at its own duration (concurrent
    children — worker shards recorded back-to-back — may sum past the
    parent they overlap inside).
    """
    if not node.children:
        return node.dur_us
    return min(node.dur_us, sum(_attributed_us(c) for c in node.children))


@dataclass
class AttribRow:
    """Aggregated attribution for one span identity (one name)."""

    name: str
    kind: str
    count: int = 0
    #: total measured wall time across occurrences
    wall_us: float = 0.0
    #: wall time not inside child spans (the row's own work)
    self_us: float = 0.0
    #: executed FLOPs (measured counters, or analytic for dense layers)
    ops: Optional[float] = None
    #: bytes moved (leaf ``bytes_io`` estimate, or simulator DRAM bytes)
    bytes_moved: Optional[float] = None
    #: kernel name(s) that executed under this span, if lowered
    kernel: Optional[str] = None
    #: accel-model cycles (simulator rows only)
    cycles: Optional[float] = None
    energy_j: Optional[float] = None
    #: bound classification: host roofline for measured rows, the accel
    #: model's own compute/memory comparison for simulator rows
    bound: Optional[str] = None
    intensity: Optional[float] = None
    attained_flops: Optional[float] = None
    attained_fraction: Optional[float] = None

    def finish(self, roofline: Optional[Roofline]) -> None:
        """Derive the roofline columns once accumulation is complete."""
        if self.ops and self.bytes_moved:
            self.intensity = self.ops / self.bytes_moved
        if self.kind == "sim":
            return  # bound comes from the accel model's own roofs
        if self.ops and self.wall_us > 0:
            self.attained_flops = self.ops / (self.wall_us * 1e-6)
        if roofline is not None and self.intensity and self.attained_flops:
            self.bound = roofline.classify(self.intensity)
            self.attained_fraction = roofline.attained_fraction(
                self.attained_flops, self.intensity
            )

    def as_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"name": self.name, "kind": self.kind, "count": self.count}
        for key in (
            "wall_us",
            "self_us",
            "ops",
            "bytes_moved",
            "kernel",
            "cycles",
            "energy_j",
            "bound",
            "intensity",
            "attained_flops",
            "attained_fraction",
        ):
            value = getattr(self, key)
            if value is not None:
                doc[key] = value
        return doc


def _accumulate(
    rows: Dict[str, AttribRow], node: _Node
) -> None:
    row_doc = node.row
    name = str(row_doc.get("name"))
    kind = _KIND_BY_CATEGORY.get(str(row_doc.get("cat") or ""), "other")
    row = rows.get(name)
    if row is None:
        row = rows[name] = AttribRow(name=name, kind=kind)
    row.count += 1
    row.wall_us += node.dur_us
    row.self_us += max(0.0, node.dur_us - sum(c.dur_us for c in node.children))
    attrs = row_doc.get("attrs") or {}
    counters = attrs.get("counters")
    ops: Optional[float] = None
    if isinstance(counters, Mapping):
        ops = _counters_ops(counters)
    elif attrs.get("flops") is not None:
        ops = float(attrs["flops"])
    if ops:
        row.ops = (row.ops or 0.0) + ops
    bytes_io = attrs.get("bytes_io")
    if isinstance(counters, Mapping) and counters.get("dram_bytes"):
        bytes_io = counters["dram_bytes"]
    if bytes_io:
        row.bytes_moved = (row.bytes_moved or 0.0) + float(bytes_io)
    kern = attrs.get("kernel")
    if kern:
        row.kernel = str(kern) if row.kernel in (None, str(kern)) else f"{row.kernel}+{kern}"
    for child in node.children:
        _accumulate(rows, child)


def _sim_rows(rows: Sequence[Mapping[str, Any]]) -> List[AttribRow]:
    """One row per simulated layer from ``sim.layer`` events."""
    out: Dict[str, AttribRow] = {}
    for ev in rows:
        if ev.get("name") != "sim.layer":
            continue
        attrs = ev.get("attrs") or {}
        name = f"sim.layer.{attrs.get('layer', '?')}"
        row = out.get(name)
        if row is None:
            row = out[name] = AttribRow(name=name, kind="sim")
        row.count += 1
        row.ops = (row.ops or 0.0) + float(
            attrs.get("multiplications", 0)
            + attrs.get("additions", 0)
            + attrs.get("preprocessing_additions", 0)
        )
        row.bytes_moved = (row.bytes_moved or 0.0) + float(attrs.get("dram_bytes", 0))
        row.cycles = (row.cycles or 0.0) + float(attrs.get("cycles", 0))
        row.energy_j = (row.energy_j or 0.0) + float(attrs.get("energy_total_j", 0))
        row.bound = str(attrs.get("bound")) if attrs.get("bound") else row.bound
    return list(out.values())


@dataclass
class AttributionReport:
    """The joined per-layer/per-kernel attribution of one run."""

    rows: List[AttribRow] = field(default_factory=list)
    total_us: float = 0.0
    attributed_us: float = 0.0
    roofline: Optional[Roofline] = None
    roots: List[str] = field(default_factory=list)
    #: module path -> selected kernel name, from ``compile.plan`` events
    kernel_plan: Dict[str, str] = field(default_factory=dict)

    @property
    def span_coverage(self) -> float:
        """Fraction of root wall time explained by descendants (0-1)."""
        if self.total_us <= 0:
            return 0.0
        return min(1.0, self.attributed_us / self.total_us)

    @property
    def unexplained_us(self) -> float:
        """Root wall time no measured span accounts for."""
        return max(0.0, self.total_us - self.attributed_us)

    def row(self, name: str) -> AttribRow:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(f"no attribution row named {name!r}")

    def layer_rows(self) -> List[AttribRow]:
        return [r for r in self.rows if r.kind == "layer"]

    def attained_fraction(self) -> Optional[float]:
        """Wall-weighted mean roofline fraction over classified rows."""
        pairs = [
            (r.wall_us, r.attained_fraction)
            for r in self.rows
            if r.attained_fraction is not None and r.wall_us > 0
        ]
        total = sum(w for w, _ in pairs)
        if not total:
            return None
        return sum(w * f for w, f in pairs) / total

    def metrics(self) -> Dict[str, float]:
        """Headline numbers in regression-gate shape (``attrib.*``)."""
        out = {
            "span_coverage": self.span_coverage,
            "unexplained_fraction": 1.0 - self.span_coverage,
        }
        frac = self.attained_fraction()
        if frac is not None:
            out["attained_fraction"] = frac
        return out

    def as_dict(self) -> Dict[str, Any]:
        return {
            "total_us": self.total_us,
            "attributed_us": self.attributed_us,
            "span_coverage": self.span_coverage,
            "unexplained_us": self.unexplained_us,
            "roots": list(self.roots),
            "kernel_plan": dict(self.kernel_plan),
            "roofline": self.roofline.as_dict() if self.roofline else None,
            "rows": [r.as_dict() for r in self.rows],
        }

    def write_jsonl(self, path: str) -> int:
        """One JSON row per attribution row plus a summary row."""
        lines = [json.dumps({"type": "attrib_summary", **{
            k: v for k, v in self.as_dict().items() if k != "rows"
        }})]
        lines.extend(
            json.dumps({"type": "attrib_row", **r.as_dict()}) for r in self.rows
        )
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        return len(lines)

    def to_experiment_report(self, top: int = 20):
        """Render as the standard experiment table."""
        from repro.analysis.report import ExperimentReport

        rep = ExperimentReport(
            "Attribution",
            "per-layer/per-kernel roofline attribution (top rows by wall time)",
            headers=[
                "row", "kind", "n", "wall ms", "self ms",
                "MFLOPs", "MB", "FLOP/B", "GFLOP/s", "%roof", "bound",
            ],
        )

        def fmt(x: Optional[float], scale: float, digits: int = 2) -> str:
            return "-" if x is None else f"{x / scale:.{digits}f}"

        ranked = sorted(self.rows, key=lambda r: (-r.wall_us, r.name))[:top]
        for r in ranked:
            rep.add_row(
                r.name,
                r.kind,
                r.count,
                f"{r.wall_us / 1e3:.3f}",
                f"{r.self_us / 1e3:.3f}",
                fmt(r.ops, 1e6),
                fmt(r.bytes_moved, 1e6),
                fmt(r.intensity, 1.0),
                fmt(r.attained_flops, 1e9, 3),
                "-" if r.attained_fraction is None else f"{100 * r.attained_fraction:.1f}",
                r.bound or "-",
            )
        rep.add_note(
            f"span coverage {100 * self.span_coverage:.1f}% "
            f"({self.total_us / 1e3:.3f} ms total, "
            f"{self.unexplained_us / 1e3:.3f} ms unexplained) "
            f"over root(s): {', '.join(self.roots) or 'none'}"
        )
        if self.roofline is not None:
            rl = self.roofline
            rep.add_note(
                f"host roofline: peak {rl.peak_flops / 1e9:.2f} GFLOP/s, "
                f"stream {rl.stream_bandwidth / 1e9:.2f} GB/s, "
                f"ridge {rl.ridge_intensity:.2f} FLOP/B"
            )
        sims = [r for r in self.rows if r.kind == "sim"]
        if sims:
            n_mem = sum(1 for r in sims if r.bound == "memory")
            rep.add_note(
                f"accel model: {len(sims)} simulated layer(s), "
                f"{n_mem} memory-bound / {len(sims) - n_mem} compute-bound"
            )
        return rep

    def render(self, top: int = 20) -> str:
        return self.to_experiment_report(top=top).render()


def build_attribution(
    source: Union[Tracer, str, Iterable[Mapping[str, Any]]],
    roofline: Optional[Roofline] = None,
    root: Optional[str] = None,
) -> AttributionReport:
    """Join a trace into an :class:`AttributionReport`.

    ``root`` restricts coverage accounting (and row accumulation) to
    top-level spans whose name starts with it — e.g. ``"lenet5"`` for
    just the instrumented forward; default is every top-level span.
    An empty or span-free trace yields an empty report with
    ``span_coverage == 0`` rather than raising: a disabled tracer
    degrades the metric, not the tooling.
    """
    rows = normalize_events(source)
    forest = _build_forest(rows)
    if root is not None:
        forest = [n for n in forest if str(n.row.get("name", "")).startswith(root)]
    report = AttributionReport(roofline=roofline)
    agg: Dict[str, AttribRow] = {}
    for node in forest:
        report.total_us += node.dur_us
        report.attributed_us += _attributed_us(node)
        if node.row.get("name") not in report.roots:
            report.roots.append(str(node.row.get("name")))
        _accumulate(agg, node)
    report.rows = list(agg.values())
    report.rows.extend(_sim_rows(rows))
    for ev in rows:
        if ev.get("name") == "compile.plan":
            kernels = (ev.get("attrs") or {}).get("kernels") or {}
            report.kernel_plan.update({str(k): str(v) for k, v in kernels.items()})
    for row in report.rows:
        row.finish(roofline)
    report.rows.sort(key=lambda r: (-r.wall_us, r.name))
    return report


def attribute_model_run(
    model_name: str,
    bits: int = 0,
    workers: int = 1,
    batch: int = 8,
    roofline: Optional[Roofline] = None,
    simulate: bool = True,
    seed: int = 0,
    root: Optional[str] = None,
) -> AttributionReport:
    """One-call unified attribution: compile, run, simulate, join.

    Compiles ``model_name`` through the canonical MLCNN pipeline
    (compiler-pass spans), instruments it with per-layer counter
    collection, runs one inference batch (through the
    :class:`~repro.core.parallel.ParallelPlanExecutor` when
    ``workers > 1``, so shard merge-back is part of the measurement),
    optionally simulates the model's layer specs on the accelerator
    model, and returns the joined report.  Uses the process-wide
    tracer; any previously collected events are cleared.
    """
    import numpy as np

    from repro import obs
    from repro.compiler import CompileContext, mlcnn_pipeline
    from repro.models import build_model
    from repro.nn.tensor import Tensor, no_grad

    model = build_model(model_name)
    ctx = CompileContext(quant_bits=bits)
    tracer = obs.get_tracer()
    was_enabled = tracer.enabled
    tracer.clear()
    tracer.enable()
    try:
        mlcnn_pipeline(bits=bits, strict=False).run(model, ctx)
        x = np.random.default_rng(seed).normal(size=(batch, 3, 32, 32))
        if workers > 1:
            # The executor pickles the model for its worker pool, so it
            # must snapshot *before* instrumentation wraps forwards with
            # local closures; per-shard work comes back as
            # ``parallel.shard.*`` spans with merged counters instead of
            # in-process layer spans.
            from repro.core.parallel import ParallelPlanExecutor

            executor = ParallelPlanExecutor(model, workers)
            obs.instrument_model(model, prefix=model_name, counters=True)
            model.eval()
            # Warm the worker pool untraced: process spawn + plan
            # shipping is one-time setup, not per-run work, and would
            # otherwise swamp the measured shard spans.
            tracer.disable()
            try:
                executor.run(x)
            finally:
                tracer.enable()
            executor.run(x)
        else:
            obs.instrument_model(model, prefix=model_name, counters=True)
            model.eval()
            with no_grad():
                model(Tensor(x))
        if simulate:
            try:
                from repro.accel import get_config, simulate_network
                from repro.models import specs as model_specs

                layer_specs = model_specs.get_specs(model_name)
            except (KeyError, ValueError):
                pass  # no analytic specs for this model
            else:
                simulate_network(layer_specs, get_config("mlcnn-fp32"))
    finally:
        tracer.enabled = was_enabled
    return build_attribution(tracer, roofline=roofline, root=root)
