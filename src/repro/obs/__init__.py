"""Observability: spans, metrics and trace export for every subsystem.

One process-wide :class:`Tracer` (disabled by default, near-zero
overhead while off) that the compiler pipeline, the nn layers (via
:func:`instrument_model`), the :class:`~repro.train.Trainer` and the
accelerator simulator all report into, so a single run yields a single
unified timeline.  Export it three ways::

    from repro import obs

    obs.get_tracer().enable()
    ...                                   # compile / train / simulate
    obs.write_chrome_trace("trace.json")  # open in chrome://tracing
    obs.write_jsonl("trace.jsonl")        # greppable event log
    print(obs.summary())                  # top-N spans table

or from the CLI::

    python -m repro.experiments --pipeline lenet5 --trace out.json \\
        --trace-format chrome
"""

from repro.obs.dashboard import write_dashboard
from repro.obs.export import (
    summary,
    summary_report,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.instrument import deinstrument_model, instrument_model
from repro.obs.numerics import (
    NumericsCollector,
    NumericsError,
    P2Quantile,
    TensorStats,
    Welford,
    record_quant_event,
    reorder_divergence,
)
from repro.obs.metrics import (
    MetricRegistry,
    OpCounters,
    RunRecord,
    collect_counters,
    get_recorder,
    provenance,
)
from repro.obs.regress import (
    RegressionReport,
    TolerancePolicy,
    Verdict,
    gate_jsonl,
    gate_metrics,
)
from repro.obs.tracer import (
    SpanEvent,
    Tracer,
    add,
    event,
    get_tracer,
    observe,
    span,
)

__all__ = [
    "MetricRegistry",
    "NumericsCollector",
    "NumericsError",
    "OpCounters",
    "P2Quantile",
    "RegressionReport",
    "RunRecord",
    "SpanEvent",
    "TensorStats",
    "TolerancePolicy",
    "Tracer",
    "Verdict",
    "Welford",
    "add",
    "collect_counters",
    "deinstrument_model",
    "event",
    "gate_jsonl",
    "gate_metrics",
    "get_recorder",
    "get_tracer",
    "instrument_model",
    "observe",
    "provenance",
    "record_quant_event",
    "reorder_divergence",
    "span",
    "summary",
    "summary_report",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_dashboard",
    "write_jsonl",
]
