"""Observability: spans, metrics and trace export for every subsystem.

One process-wide :class:`Tracer` (disabled by default, near-zero
overhead while off) that the compiler pipeline, the nn layers (via
:func:`instrument_model`), the :class:`~repro.train.Trainer` and the
accelerator simulator all report into, so a single run yields a single
unified timeline.  Export it three ways::

    from repro import obs

    obs.get_tracer().enable()
    ...                                   # compile / train / simulate
    obs.write_chrome_trace("trace.json")  # open in chrome://tracing
    obs.write_jsonl("trace.jsonl")        # greppable event log
    print(obs.summary())                  # top-N spans table

or from the CLI::

    python -m repro.experiments --pipeline lenet5 --trace out.json \\
        --trace-format chrome

On top of collection sits the analysis layer: the roofline attribution
engine (:func:`build_attribution` / :func:`attribute_model_run` — join
spans with measured op counters against this host's calibrated
roofline) and cross-run forensics (:func:`diff_runs` /
:func:`diff_bench` — ranked "what changed" reports localizing a
regression to a layer, pass, kernel or shard)::

    python -m repro.experiments --attrib lenet5
    python -m repro.experiments --diff-trace before.jsonl after.jsonl
    python -m repro.experiments --diff-bench metrics.jsonl
"""

from repro.obs.attrib import (
    AttributionReport,
    attribute_model_run,
    build_attribution,
)
from repro.obs.dashboard import write_dashboard
from repro.obs.forensics import BenchDiff, RunDiff, diff_bench, diff_runs
from repro.obs.roofline import Roofline, calibrate, get_roofline
from repro.obs.export import (
    summary,
    summary_report,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.instrument import deinstrument_model, instrument_model
from repro.obs.numerics import (
    NumericsCollector,
    NumericsError,
    P2Quantile,
    TensorStats,
    Welford,
    record_quant_event,
    reorder_divergence,
)
from repro.obs.metrics import (
    MetricRegistry,
    OpCounters,
    RunRecord,
    collect_counters,
    get_recorder,
    provenance,
)
from repro.obs.regress import (
    RegressionReport,
    TolerancePolicy,
    Verdict,
    gate_jsonl,
    gate_metrics,
)
from repro.obs.telemetry import (
    Alert,
    AlertEngine,
    SamplingProfiler,
    SloRule,
    TelemetryExporter,
    TelemetryRegistry,
    TelemetrySnapshot,
    get_telemetry,
    read_telemetry_jsonl,
)
from repro.obs.tracer import (
    SpanEvent,
    Tracer,
    add,
    event,
    get_tracer,
    observe,
    span,
)

__all__ = [
    "Alert",
    "AlertEngine",
    "AttributionReport",
    "BenchDiff",
    "MetricRegistry",
    "NumericsCollector",
    "NumericsError",
    "OpCounters",
    "P2Quantile",
    "RegressionReport",
    "Roofline",
    "RunDiff",
    "RunRecord",
    "SamplingProfiler",
    "SloRule",
    "SpanEvent",
    "TelemetryExporter",
    "TelemetryRegistry",
    "TelemetrySnapshot",
    "TensorStats",
    "TolerancePolicy",
    "Tracer",
    "Verdict",
    "Welford",
    "add",
    "attribute_model_run",
    "build_attribution",
    "calibrate",
    "collect_counters",
    "deinstrument_model",
    "diff_bench",
    "diff_runs",
    "event",
    "gate_jsonl",
    "gate_metrics",
    "get_recorder",
    "get_roofline",
    "get_telemetry",
    "get_tracer",
    "instrument_model",
    "observe",
    "provenance",
    "read_telemetry_jsonl",
    "record_quant_event",
    "reorder_divergence",
    "span",
    "summary",
    "summary_report",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_dashboard",
    "write_jsonl",
]
