"""Host-calibrated roofline model: peak FLOP/s, stream bandwidth, ridge.

The attribution engine (:mod:`repro.obs.attrib`) classifies every
layer/kernel as compute- or memory-bound by placing its *measured*
arithmetic intensity (FLOPs per byte moved) and attained FLOP/s against
this machine's roofline [Williams et al., CACM 2009].  The two roofs
are measured, not assumed:

* **peak FLOP/s** — best-of-N dense f64 GEMM (``x @ y`` through the
  same BLAS every kernel in :mod:`repro.core.kernels` bottoms out in),
* **stream bandwidth** — best-of-N large-array copy (reads + writes
  counted, the STREAM "copy" convention).

Calibration costs well under a second and is cached with provenance
(host, machine, cpu count, numpy version); a cache entry from a
different host or core count is discarded, so a committed or stale
cache can never misclassify layers on a new machine.  Set
``REPRO_ROOFLINE_CACHE`` to override the cache location (tests point it
at a tmp dir).

The ridge intensity ``peak_flops / stream_bandwidth`` is the break-even
point: below it a kernel cannot reach peak no matter how good its
schedule is — the lever is data movement (the paper's LAR/GAR reuse
story); above it the lever is arithmetic (the paper's RME multiply
elimination).  This is the communication-lower-bound view of Demmel &
Dinh applied as a diagnostic.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

__all__ = [
    "Roofline",
    "measure_peak_flops",
    "measure_stream_bandwidth",
    "calibrate",
    "roofline_cache_path",
    "load_cached",
    "get_roofline",
]

#: provenance keys that must match for a cached calibration to be reused
_IDENTITY_KEYS = ("host", "machine", "cpu_count", "numpy")


def _host_identity() -> Dict[str, str]:
    return {
        "host": socket.gethostname(),
        "machine": platform.machine(),
        "cpu_count": str(os.cpu_count() or 1),
        "numpy": np.__version__,
        "python": platform.python_version(),
    }


@dataclass(frozen=True)
class Roofline:
    """One host's measured roofline: two roofs and their crossing."""

    #: attainable dense-GEMM throughput, FLOP/s
    peak_flops: float
    #: attainable memory bandwidth, bytes/s
    stream_bandwidth: float
    #: calibration provenance (host identity + timestamp)
    provenance: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not (self.peak_flops > 0 and self.stream_bandwidth > 0):
            raise ValueError("roofline roofs must be positive")

    @property
    def ridge_intensity(self) -> float:
        """FLOP/byte where the memory roof meets the compute roof."""
        return self.peak_flops / self.stream_bandwidth

    def attainable_flops(self, intensity: float) -> float:
        """The roofline cap for a kernel of the given intensity."""
        if intensity <= 0:
            return 0.0
        return min(self.peak_flops, intensity * self.stream_bandwidth)

    def classify(self, intensity: float) -> str:
        """``"compute"`` above the ridge, ``"memory"`` below it."""
        return "compute" if intensity >= self.ridge_intensity else "memory"

    def attained_fraction(self, attained_flops: float, intensity: float) -> float:
        """attained / attainable for that intensity (0 when undefined)."""
        cap = self.attainable_flops(intensity)
        if cap <= 0:
            return 0.0
        return attained_flops / cap

    def as_dict(self) -> Dict[str, Any]:
        return {
            "peak_flops": self.peak_flops,
            "stream_bandwidth": self.stream_bandwidth,
            "ridge_intensity": self.ridge_intensity,
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Roofline":
        return cls(
            peak_flops=float(doc["peak_flops"]),
            stream_bandwidth=float(doc["stream_bandwidth"]),
            provenance=dict(doc.get("provenance") or {}),
        )


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_peak_flops(n: int = 384, repeats: int = 5) -> float:
    """Best-of-N dense f64 GEMM throughput in FLOP/s.

    ``2 n^3`` FLOPs per multiply; n=384 keeps the working set in cache
    so the number approximates the compute roof, not memory.
    """
    rng = np.random.default_rng(0)
    x = rng.standard_normal((n, n))
    y = rng.standard_normal((n, n))
    x @ y  # warm up BLAS thread pool / allocator
    best = _best_of(lambda: x @ y, repeats)
    return 2.0 * n**3 / best


def measure_stream_bandwidth(nbytes: int = 1 << 25, repeats: int = 5) -> float:
    """Best-of-N large-copy bandwidth in bytes/s (STREAM "copy").

    A 32 MiB f64 copy defeats every cache level that matters here; each
    pass moves ``2 * nbytes`` (read source + write destination).
    """
    n = max(1, nbytes // 8)
    src = np.zeros(n, dtype=np.float64)
    dst = np.empty_like(src)
    np.copyto(dst, src)  # fault in both buffers
    best = _best_of(lambda: np.copyto(dst, src), repeats)
    return 2.0 * n * 8 / best


def calibrate(gemm_n: int = 384, stream_bytes: int = 1 << 25, repeats: int = 5) -> Roofline:
    """Run both microbenchmarks and stamp the result with provenance."""
    from repro.obs.tracer import get_tracer

    with get_tracer().span("roofline.calibrate", category="obs"):
        peak = measure_peak_flops(n=gemm_n, repeats=repeats)
        bw = measure_stream_bandwidth(nbytes=stream_bytes, repeats=repeats)
    prov = _host_identity()
    prov["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
    prov["gemm_n"] = str(gemm_n)
    prov["stream_bytes"] = str(stream_bytes)
    return Roofline(peak_flops=peak, stream_bandwidth=bw, provenance=prov)


def roofline_cache_path() -> str:
    """Cache file location (override with ``REPRO_ROOFLINE_CACHE``)."""
    override = os.environ.get("REPRO_ROOFLINE_CACHE")
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro", "roofline.json")


def load_cached(path: Optional[str] = None) -> Optional[Roofline]:
    """The cached calibration, or None when absent/corrupt/foreign.

    A cache written on a different host, architecture, core count or
    numpy build is treated as absent — both roofs are properties of
    exactly that configuration.
    """
    path = path or roofline_cache_path()
    try:
        with open(path) as fh:
            doc = json.load(fh)
        roof = Roofline.from_dict(doc)
    except (OSError, ValueError, KeyError, TypeError):
        return None
    identity = _host_identity()
    for key in _IDENTITY_KEYS:
        if roof.provenance.get(key) != identity[key]:
            return None
    return roof


def get_roofline(path: Optional[str] = None, refresh: bool = False) -> Roofline:
    """The host roofline: cached when valid, else calibrate and cache."""
    path = path or roofline_cache_path()
    if not refresh:
        cached = load_cached(path)
        if cached is not None:
            return cached
    roof = calibrate()
    try:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as fh:
            json.dump(roof.as_dict(), fh, indent=2)
            fh.write("\n")
    except OSError:
        pass  # read-only cache dir: calibration still returned
    return roof
