"""Opt-in per-layer tracing for :class:`repro.nn.layers.Module` trees.

:func:`instrument_model` walks ``named_modules()`` and wraps every
module's ``forward`` with a tracer span — no layer code changes, works
on any zoo model.  Container modules (``Sequential`` etc.) get a
``<name>.forward`` span that *encloses* their children's spans, so the
exported trace shows the model's call tree as nested slices.

Leaf modules additionally get backward attribution: the autograd
closure (``Tensor._backward``) their forward produced is wrapped so the
reverse pass records ``<name>.backward`` spans.  (For the layers in
:mod:`repro.nn`, that closure performs essentially all of the layer's
backward arithmetic.)

Passing ``numerics=`` attaches a
:class:`~repro.obs.numerics.NumericsCollector` through the same
wrappers: each leaf's forward output and backward gradient are folded
into streaming per-layer statistics, and quantized paths executing
inside a layer's forward get attributed to it.

Passing ``counters=True`` arms the attribution join
(:mod:`repro.obs.attrib`): while the tracer is enabled, each *leaf*
forward runs under :func:`repro.obs.metrics.collect_counters` and the
measured :class:`~repro.obs.metrics.OpCounters` (non-zero fields only)
are attached to the span as a ``counters`` attr, alongside a
``bytes_io`` estimate (input + parameter + output array bytes — the
compulsory-traffic lower bound) and, for plain Conv2d/Linear layers
that record no counters, an analytic ``flops`` count.  Kernel-lowered
modules also report which shape-class kernel executed (``kernel``
attr), so a trace localizes regressions to kernel selections.

The wrappers check ``tracer.enabled`` (and ``numerics.enabled``) first
and delegate straight to the original ``forward`` when both are off,
keeping an instrumented model usable on the hot path;
:func:`deinstrument_model` removes the wrappers entirely.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Conv2d, Linear, Module
from repro.nn.tensor import Tensor
from repro.obs.numerics import NumericsCollector
from repro.obs.tracer import Tracer, get_tracer

__all__ = ["instrument_model", "deinstrument_model"]

#: attribute stashing the original forward on instrumented modules
_ORIG_ATTR = "_obs_orig_forward"


def _tensor_nbytes(value) -> int:
    if isinstance(value, Tensor):
        return int(value.data.nbytes)
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    return 0


def _analytic_flops(mod: Module, out) -> Optional[float]:
    """Closed-form FLOPs (mult + add) for plain dense layers.

    Covers the layers whose execution records no measured counters;
    counted paths (fused kernels, the simulator) take precedence in
    the attribution join.
    """
    if not isinstance(out, Tensor):
        return None
    if isinstance(mod, Conv2d):
        n, m, ho, wo = out.shape
        kh, kw = mod.kernel_size
        return 2.0 * n * m * ho * wo * mod.in_channels * kh * kw
    if isinstance(mod, Linear):
        batch = out.shape[0] if out.ndim else 1
        return 2.0 * batch * mod.in_features * mod.out_features
    return None


def _wrap_backward(
    out: Tensor, label: str, tracer: Tracer, numerics: Optional[NumericsCollector]
) -> None:
    orig_bw = out._backward

    def traced_backward(grad) -> None:
        watch = numerics is not None and numerics.enabled
        if watch:
            numerics.observe(label, "backward", grad)
        if not tracer.enabled:
            return orig_bw(grad)
        with tracer.span(label + ".backward", category="nn"):
            orig_bw(grad)

    out._backward = traced_backward


def _wrap_forward(
    mod: Module,
    label: str,
    tracer: Tracer,
    numerics: Optional[NumericsCollector],
    counters: bool,
) -> None:
    orig = mod.forward
    # Modules that inline their children's computation (e.g.
    # QuantizedConvBlock) set ``_numerics_leaf``: no child forward runs
    # inside them, so they are the observation point themselves.
    is_leaf = not mod._modules or getattr(mod, "_numerics_leaf", False)
    cls_name = type(mod).__name__
    param_bytes = sum(int(p.data.nbytes) for p in mod.parameters()) if is_leaf else 0

    def traced_forward(*args, **kwargs):
        watch = numerics is not None and numerics.enabled
        if not tracer.enabled and not watch:
            return orig(*args, **kwargs)
        if watch:
            numerics._push_layer(label)
        try:
            if tracer.enabled:
                with tracer.span(label + ".forward", category="nn", cls=cls_name) as sp:
                    if counters and is_leaf:
                        from repro.obs.metrics import collect_counters

                        with collect_counters() as oc:
                            out = orig(*args, **kwargs)
                        nonzero = {
                            k: v
                            for k, v in oc.as_dict(include_derived=False).items()
                            if v
                        }
                        if nonzero:
                            sp.set(counters=nonzero)
                        else:
                            flops = _analytic_flops(mod, out)
                            if flops is not None:
                                sp.set(flops=flops)
                        in_bytes = sum(_tensor_nbytes(a) for a in args)
                        sp.set(
                            bytes_io=in_bytes + param_bytes + _tensor_nbytes(out)
                        )
                        kern = getattr(mod, "kernel", None)
                        if kern is not None:
                            sp.set(kernel=getattr(kern, "name", str(kern)))
                    else:
                        out = orig(*args, **kwargs)
            else:
                out = orig(*args, **kwargs)
        finally:
            if watch:
                numerics._pop_layer()
        if is_leaf and isinstance(out, Tensor):
            if watch:
                numerics.observe(label, "forward", out.data)
            if out._backward is not None:
                _wrap_backward(out, label, tracer, numerics)
        return out

    object.__setattr__(mod, _ORIG_ATTR, orig)
    object.__setattr__(mod, "forward", traced_forward)


def instrument_model(
    model: Module,
    tracer: Optional[Tracer] = None,
    prefix: str = "",
    numerics: Optional[NumericsCollector] = None,
    counters: bool = False,
) -> Module:
    """Attach forward/backward spans to every module of ``model``.

    Span names are the dotted module paths from ``named_modules()``
    (``features.0.forward`` …), optionally under ``prefix``.  The root
    module's span is ``prefix`` itself, or the lowercased class name
    when no prefix is given.  When ``numerics`` is given, leaf forward
    outputs and backward gradients additionally feed its streaming
    per-layer statistics whenever the collector is enabled.  When
    ``counters=True``, leaf spans carry measured
    :class:`~repro.obs.metrics.OpCounters`, a ``bytes_io`` traffic
    estimate and the executing kernel name while the tracer is enabled
    — the inputs of the attribution/roofline join.  Idempotent:
    already-instrumented modules are left alone (so pass ``numerics``
    and ``counters`` at first instrumentation).  Returns ``model``.
    """
    tracer = tracer or get_tracer()
    for name, mod in model.named_modules():
        if getattr(mod, _ORIG_ATTR, None) is not None:
            continue
        label = ".".join(p for p in (prefix, name) if p) or type(mod).__name__.lower()
        _wrap_forward(mod, label, tracer, numerics, counters)
    return model


def deinstrument_model(model: Module) -> Module:
    """Remove the wrappers installed by :func:`instrument_model`."""
    for _, mod in model.named_modules():
        orig = getattr(mod, _ORIG_ATTR, None)
        if orig is not None:
            if "forward" in mod.__dict__:
                del mod.__dict__["forward"]
            del mod.__dict__[_ORIG_ATTR]
    return model
