"""SLO rule engine: threshold + hysteresis + for-duration alerts.

A rule watches one metric family (optionally one quantile of a
histogram) and walks a per-series state machine:

    ok --breach--> pending --sustained for_seconds--> firing --clear--> ok

* **pending** debounces blips: the breach must hold for ``for_seconds``
  before the alert fires, so one slow batch does not page anyone.
* **firing** emits exactly one :class:`Alert` per episode — evaluation
  while already firing does not re-emit.
* **hysteresis**: the alert resolves only when the value crosses the
  ``clear`` threshold (defaults to the fire threshold), so a series
  oscillating around the threshold cannot flap.

Evaluation is pull-based — :meth:`AlertEngine.evaluate` reads current
instrument state, typically driven by the
:class:`~repro.obs.telemetry.registry.TelemetryExporter` scrape loop —
and takes an injectable ``now`` so tests advance time deterministically.
Alert messages name the offending metric, its labels, the observed
value, and the threshold: the on-call line of first contact.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    TelemetryRegistry,
    get_telemetry,
)

__all__ = ["SloRule", "Alert", "AlertEngine"]

#: series state-machine states
_OK, _PENDING, _FIRING = "ok", "pending", "firing"


@dataclass(frozen=True)
class SloRule:
    """One service-level objective.

    ``metric`` names a registry family; for histograms set ``quantile``
    (e.g. ``0.99``) to watch a percentile.  ``direction`` is ``"above"``
    (alert when value > threshold — latency, queue depth) or ``"below"``
    (throughput floor).  ``labels`` restricts the rule to series whose
    labels are a superset of it; None watches every series of the
    family.  ``clear`` is the hysteresis threshold the value must cross
    back over to resolve (defaults to ``threshold``).
    """

    name: str
    metric: str
    threshold: float
    direction: str = "above"
    for_seconds: float = 0.0
    clear: Optional[float] = None
    severity: str = "warn"
    labels: Optional[Mapping[str, str]] = None
    quantile: Optional[float] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.direction not in ("above", "below"):
            raise ValueError(f"direction must be 'above' or 'below', got {self.direction!r}")
        if self.severity not in ("warn", "page"):
            raise ValueError(f"severity must be 'warn' or 'page', got {self.severity!r}")
        if self.quantile is not None and not 0.0 <= self.quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {self.quantile}")
        if self.clear is not None:
            if self.direction == "above" and self.clear > self.threshold:
                raise ValueError("clear must be <= threshold for direction='above'")
            if self.direction == "below" and self.clear < self.threshold:
                raise ValueError("clear must be >= threshold for direction='below'")

    def breached(self, value: float) -> bool:
        if math.isnan(value):
            return False
        return value > self.threshold if self.direction == "above" else value < self.threshold

    def cleared(self, value: float) -> bool:
        if math.isnan(value):
            return False
        limit = self.threshold if self.clear is None else self.clear
        return value <= limit if self.direction == "above" else value >= limit


@dataclass
class Alert:
    """One fired SLO episode."""

    rule: str
    severity: str
    metric: str
    labels: Dict[str, str]
    value: float
    threshold: float
    fired_at: float
    resolved_at: Optional[float] = None
    message: str = ""

    @property
    def active(self) -> bool:
        return self.resolved_at is None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "metric": self.metric,
            "labels": dict(self.labels),
            "value": self.value,
            "threshold": self.threshold,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "message": self.message,
        }


@dataclass
class _SeriesState:
    state: str = _OK
    pending_since: float = 0.0
    alert: Optional[Alert] = None


class AlertEngine:
    """Evaluates :class:`SloRule` sets against a registry.

    ``evaluate(now=...)`` returns the alerts that fired *on this call*
    (the debounce contract: a sustained breach yields exactly one);
    ``active()`` lists currently-firing alerts and ``history`` keeps
    every episode, resolved ones included.
    """

    def __init__(
        self,
        rules: List[SloRule],
        registry: Optional[TelemetryRegistry] = None,
    ) -> None:
        self.rules = list(rules)
        self.registry = registry if registry is not None else get_telemetry()
        self.history: List[Alert] = []
        self._states: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], _SeriesState] = {}

    # -- reading metric series -----------------------------------------------
    def _series_values(self, rule: SloRule) -> List[Tuple[Dict[str, str], float]]:
        fam = self.registry.get(rule.metric)
        if fam is None:
            return []
        want = dict(rule.labels) if rule.labels else None
        out: List[Tuple[Dict[str, str], float]] = []
        for key, child in fam.series():
            labels = dict(key)
            if want is not None and any(labels.get(k) != v for k, v in want.items()):
                continue
            if isinstance(fam, Histogram):
                q = 0.99 if rule.quantile is None else rule.quantile
                if child.count == 0:
                    continue
                value = child.quantile(q)
            elif isinstance(fam, (Gauge, Counter)):
                value = child.value
            else:  # pragma: no cover - no other instrument kinds exist
                continue
            out.append((labels, value))
        return out

    # -- evaluation ----------------------------------------------------------
    def evaluate(self, now: Optional[float] = None) -> List[Alert]:
        """Advance every rule's state machines; return newly fired alerts."""
        now = time.time() if now is None else float(now)
        fired: List[Alert] = []
        for rule in self.rules:
            for labels, value in self._series_values(rule):
                key = (rule.name, tuple(sorted(labels.items())))
                st = self._states.setdefault(key, _SeriesState())
                if st.state == _OK:
                    if rule.breached(value):
                        if rule.for_seconds > 0:
                            st.state = _PENDING
                            st.pending_since = now
                        else:
                            fired.append(self._fire(rule, labels, value, now, st))
                elif st.state == _PENDING:
                    if not rule.breached(value):
                        st.state = _OK
                    elif now - st.pending_since >= rule.for_seconds:
                        fired.append(self._fire(rule, labels, value, now, st))
                elif st.state == _FIRING:
                    if rule.cleared(value):
                        assert st.alert is not None
                        st.alert.resolved_at = now
                        st.alert = None
                        st.state = _OK
        return fired

    def _fire(
        self,
        rule: SloRule,
        labels: Dict[str, str],
        value: float,
        now: float,
        st: _SeriesState,
    ) -> Alert:
        tag = "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}" if labels else ""
        what = rule.metric + (f" p{rule.quantile * 100:g}" if rule.quantile is not None else "")
        cmp = ">" if rule.direction == "above" else "<"
        held = f" for {rule.for_seconds:g}s" if rule.for_seconds > 0 else ""
        alert = Alert(
            rule=rule.name,
            severity=rule.severity,
            metric=rule.metric,
            labels=dict(labels),
            value=value,
            threshold=rule.threshold,
            fired_at=now,
            message=(
                f"[{rule.severity}] {rule.name}: {what}{tag} = {value:.3f} "
                f"{cmp} {rule.threshold:g}{held}"
                + (f" — {rule.description}" if rule.description else "")
            ),
        )
        st.state = _FIRING
        st.alert = alert
        self.history.append(alert)
        return alert

    def active(self) -> List[Alert]:
        return [a for a in self.history if a.active]
