"""Low-overhead background sampling profiler.

A daemon thread wakes every ``interval_s`` seconds, grabs
``sys._current_frames()``, and folds each thread's Python stack into a
root→leaf tuple counted in a dict.  No tracing hooks are installed, so
the profiled code runs at full speed between samples — the only cost
is the sampler's own wall time, which the profiler measures about
itself (:attr:`overhead_fraction`) so the bound can be asserted rather
than assumed (``benchmarks/test_telemetry.py`` gates
``telemetry.profiler_overhead_pct``).

Exports:

* :meth:`SamplingProfiler.collapsed` — the collapsed-stack format
  (``frame;frame;frame count`` per line) consumed by every flamegraph
  tool (Brendan Gregg's ``flamegraph.pl``, speedscope, …).
* :meth:`SamplingProfiler.write_flamegraph` — a self-contained HTML
  flamegraph (nested divs, no external assets) for the CI artifact.
* :meth:`SamplingProfiler.top_functions` — self-sample ranking, the
  quick "where is the time going" answer.

Frames inside this repository render as dotted module paths
(``repro.core.kernels.fused:fused_conv_pool_f32``), so the acceptance
check "top frame of a lenet5 forward run is a ``repro.core.kernels``
function" is a string prefix test.
"""

from __future__ import annotations

import html
import sys
import threading
import time
from collections import Counter as _TallyCounter
from typing import Dict, List, Optional, Tuple

__all__ = ["SamplingProfiler"]

#: frames whose function lives in these files are dropped from stacks
#: (the sampler observing itself, threading scaffolding)
_SKIP_NAMES = {"_sample_once", "_loop"}


def _frame_name(frame) -> str:
    """``repro.core.kernels.fused:fn`` for repo frames, ``file.py:fn`` otherwise."""
    path = frame.f_code.co_filename.replace("\\", "/")
    marker = "/repro/"
    idx = path.rfind(marker)
    if idx >= 0 and path.endswith(".py"):
        module = path[idx + 1 : -3].replace("/", ".")
        if module.endswith(".__init__"):
            module = module[: -len(".__init__")]
        return f"{module}:{frame.f_code.co_name}"
    short = path.rsplit("/", 1)[-1]
    return f"{short}:{frame.f_code.co_name}"


class SamplingProfiler:
    """Background stack sampler with collapsed-stack/flamegraph export.

    >>> with SamplingProfiler(interval_s=0.005) as prof:
    ...     work()
    >>> prof.write_collapsed("profile.txt")
    >>> prof.top_functions(5)

    ``interval_s`` trades resolution for overhead: 5 ms (the default)
    resolves anything that takes more than a few dozen milliseconds
    while keeping measured overhead well under a percent on workloads
    that spend their time in numpy.
    """

    def __init__(self, interval_s: float = 0.005) -> None:
        self.interval_s = max(0.0005, float(interval_s))
        #: root→leaf stack tuple -> number of samples observed there
        self.stacks: "_TallyCounter[Tuple[str, ...]]" = _TallyCounter()
        self.sample_count = 0
        #: wall seconds spent inside the sampler itself
        self.sampling_wall_s = 0.0
        self._started_at: Optional[float] = None
        self.elapsed_s = 0.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._own_tid: Optional[int] = None

    # -- sampling ------------------------------------------------------------
    def _sample_once(self) -> None:
        t0 = time.perf_counter()
        frames = sys._current_frames()
        for tid, top in frames.items():
            if tid == self._own_tid:
                continue
            stack: List[str] = []
            frame = top
            while frame is not None:
                name = frame.f_code.co_name
                if name not in _SKIP_NAMES:
                    stack.append(_frame_name(frame))
                frame = frame.f_back
            if stack:
                stack.reverse()
                self.stacks[tuple(stack)] += 1
                self.sample_count += 1
        del frames
        self.sampling_wall_s += time.perf_counter() - t0

    def _loop(self) -> None:
        self._own_tid = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self._sample_once()

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self._started_at = time.perf_counter()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="telemetry-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self._started_at is not None:
            self.elapsed_s = time.perf_counter() - self._started_at
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- analysis ------------------------------------------------------------
    @property
    def overhead_fraction(self) -> float:
        """Sampler wall time / profiled wall time (measured, not modeled)."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.sampling_wall_s / self.elapsed_s

    def top_functions(self, n: int = 10) -> List[Tuple[str, int]]:
        """Functions ranked by *self* samples (observed on top of stack)."""
        leaf: "_TallyCounter[str]" = _TallyCounter()
        for stack, count in self.stacks.items():
            leaf[stack[-1]] += count
        return leaf.most_common(n)

    def top_frame(self) -> Optional[str]:
        """The single hottest leaf frame, or None without samples."""
        top = self.top_functions(1)
        return top[0][0] if top else None

    # -- export --------------------------------------------------------------
    def collapsed(self) -> str:
        """Collapsed-stack text: ``root;child;leaf count`` per line,
        sorted by count descending then stack for determinism."""
        rows = sorted(self.stacks.items(), key=lambda kv: (-kv[1], kv[0]))
        return "\n".join(f"{';'.join(stack)} {count}" for stack, count in rows) + (
            "\n" if rows else ""
        )

    def write_collapsed(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.collapsed())

    def write_flamegraph(self, path: str, title: str = "repro sampling profile") -> None:
        """Self-contained HTML flamegraph (no external assets).

        Widths are proportional to sample counts; hover shows
        ``frame (samples, pct)``.  Deliberately minimal — the collapsed
        export feeds real tooling; this is the one-click CI artifact.
        """
        total = sum(self.stacks.values())

        # fold the stack multiset into a tree of (name -> [count, children])
        root: Dict[str, list] = {}
        for stack, count in self.stacks.items():
            level = root
            for frame in stack:
                node = level.setdefault(frame, [0, {}])
                node[0] += count
                level = node[1]

        def render(level: Dict[str, list], depth: int) -> str:
            parts = []
            for name in sorted(level, key=lambda n: -level[n][0]):
                count, children = level[name]
                pct = 100.0 * count / total if total else 0.0
                if pct < 0.25:
                    continue
                hue = 20 + (hash(name) % 25)
                label = html.escape(name)
                parts.append(
                    f'<div class="fr" style="width:{pct:.2f}%;'
                    f'background:hsl({hue},85%,{70 - min(depth, 8) * 2}%)" '
                    f'title="{label} ({count} samples, {pct:.1f}%)">'
                    f"<span>{label}</span>"
                    + render(children, depth + 1)
                    + "</div>"
                )
            return "".join(parts)

        body = render(root, 0) if total else "<p>no samples collected</p>"
        doc = (
            "<!doctype html><html><head><meta charset='utf-8'>"
            f"<title>{html.escape(title)}</title><style>"
            "body{font:12px monospace;margin:12px}"
            ".fr{box-sizing:border-box;border:1px solid #fff;overflow:hidden;"
            "white-space:nowrap;min-height:16px}"
            ".fr span{padding:0 3px}"
            "</style></head><body>"
            f"<h1>{html.escape(title)}</h1>"
            f"<p>{self.sample_count} samples, {self.elapsed_s:.2f}s wall, "
            f"measured sampler overhead {100 * self.overhead_fraction:.3f}%</p>"
            f"{body}</body></html>"
        )
        with open(path, "w") as fh:
            fh.write(doc)
