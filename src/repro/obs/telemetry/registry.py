"""Push-based labeled metric registry for long-running processes.

Everything observability built so far is batch-shaped: run, dump,
analyze.  This module is the *continuous* counterpart — the substrate a
serving process scrapes every second instead of reading once at exit:

* **Instruments** — :class:`Counter` (monotone), :class:`Gauge`
  (last-write-wins) and :class:`Histogram` (exponential latency
  buckets with streaming p50/p95/p99 derived from the bucket counts,
  optionally cross-checked against the P² estimators from
  :mod:`repro.obs.numerics`).  Each is a *family*: children are keyed
  by their label set (``hist.labels(pool="plan").observe(ms)``), the
  Prometheus data model.
* **The registry** — :class:`TelemetryRegistry`, process-wide via
  :func:`get_telemetry` and **disabled by default**: every instrument
  checks ``registry.enabled`` before doing any work, so permanently
  instrumented hot paths (the ``Trainer`` batch loop, the parallel
  worker pools) cost one attribute check when telemetry is off —
  the same contract as the tracer, guarded by
  ``tests/obs/test_telemetry_overhead.py``.
* **The scraper** — :meth:`TelemetryRegistry.snapshot` freezes the
  world into a :class:`TelemetrySnapshot`; :class:`TelemetryExporter`
  scrapes periodically from a background thread, appending each
  snapshot to a JSONL time series and rewriting a Prometheus
  text-format file (the node-exporter textfile contract), and feeds
  every scrape through an optional
  :class:`~repro.obs.telemetry.rules.AlertEngine`.

Nothing here retains samples: histograms are fixed-size bucket arrays,
quantiles are interpolated from them, and the optional P² cross-check
estimators are O(1) per stream.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "exponential_buckets",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "TelemetryRegistry",
    "TelemetrySnapshot",
    "TelemetryExporter",
    "get_telemetry",
    "read_telemetry_jsonl",
    "parse_prometheus",
]

#: label sets are canonicalized to sorted (key, value) tuples
LabelKey = Tuple[Tuple[str, str], ...]


def exponential_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """``count`` upper bounds growing geometrically from ``start``.

    The standard latency-bucket shape: constant *relative* resolution
    (each bucket is ``factor``-times wider than the last), so p99 of a
    100 µs path and p99 of a 10 s path carry the same fractional error.
    """
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    bounds, b = [], float(start)
    for _ in range(count):
        bounds.append(b)
        b *= factor
    return tuple(bounds)


#: default latency buckets: 0.05 ms .. ~14 s at ~±20% resolution
DEFAULT_LATENCY_BUCKETS_MS = exponential_buckets(0.05, 1.5, 32)


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared child bookkeeping: a family hands out one child per label set."""

    kind = "untyped"

    def __init__(self, registry: "TelemetryRegistry", name: str, help: str) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self._children: "Dict[LabelKey, Any]" = {}

    def labels(self, **labels: Any):
        """The child instrument for this label set (created on first use)."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            with self._registry._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _default(self):
        """The label-less child — the common single-series case."""
        return self.labels()

    def series(self) -> List[Tuple[LabelKey, Any]]:
        with self._registry._lock:
            return list(self._children.items())


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Counter(_Instrument):
    """Monotonically increasing count (requests served, batches run)."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        (self.labels(**labels) if labels else self._default()).inc(amount)

    @property
    def value(self) -> float:
        """Sum over every labeled child."""
        return sum(child.value for _, child in self.series())


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Gauge(_Instrument):
    """Last-write-wins level (queue depth, throughput, loss)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        (self.labels(**labels) if labels else self._default()).set(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        (self.labels(**labels) if labels else self._default()).inc(amount)

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        (self.labels(**labels) if labels else self._default()).dec(amount)

    @property
    def value(self) -> float:
        """The label-less child's value (0.0 before any set)."""
        series = self.series()
        for key, child in series:
            if key == ():
                return child.value
        return series[0][1].value if series else 0.0


class _HistogramChild:
    """One label set's bucket array + moment accumulators.

    ``bounds`` are inclusive upper edges (Prometheus ``le`` semantics);
    ``counts`` has one extra slot for the +Inf overflow bucket.  The
    observed min/max tighten quantile interpolation at the edges, and
    the optional P² estimators provide an independent streaming
    cross-check of the bucket-derived percentiles.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "minimum", "maximum", "p2")

    def __init__(self, bounds: Tuple[float, ...], crosscheck: Sequence[float]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.p2: Dict[float, Any] = {}
        if crosscheck:
            from repro.obs.numerics import P2Quantile

            self.p2 = {float(q): P2Quantile(float(q)) for q in crosscheck}

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        for est in self.p2.values():
            est.add(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile interpolated from the bucket counts.

        Linear interpolation inside the bucket that holds the target
        rank, with the observed min/max replacing the open edges (first
        bucket and +Inf overflow).  Exact to within one bucket width —
        :meth:`bucket_resolution` of the returned value.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        target = q * self.count
        cum = 0
        for i, c in enumerate(self.counts):
            if c and cum + c >= target:
                lower = self.bounds[i - 1] if i > 0 else self.minimum
                upper = self.bounds[i] if i < len(self.bounds) else self.maximum
                lower = max(lower, self.minimum)
                upper = min(upper, self.maximum)
                if upper <= lower:
                    return lower
                return lower + (upper - lower) * max(0.0, target - cum) / c
            cum += c
        return self.maximum

    def bucket_resolution(self, value: float) -> float:
        """Width of the bucket that ``value`` falls in — the quantile
        error bound at that point of the distribution."""
        i = bisect_left(self.bounds, value)
        lower = self.bounds[i - 1] if i > 0 else 0.0
        upper = self.bounds[i] if i < len(self.bounds) else max(self.maximum, value)
        return max(upper - lower, 0.0)

    def p2_quantile(self, q: float) -> float:
        """The independent P² estimate (NaN unless cross-check is on)."""
        est = self.p2.get(float(q))
        return est.value if est is not None else math.nan

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper bound, cumulative count) pairs, +Inf last."""
        out, cum = [], 0
        for bound, c in zip(self.bounds, self.counts):
            cum += c
            out.append((bound, cum))
        out.append((math.inf, cum + self.counts[-1]))
        return out


class Histogram(_Instrument):
    """Latency distribution in exponential buckets, scraped as quantiles.

    ``crosscheck=(0.5, 0.95, 0.99)`` additionally streams every
    observation through P² estimators so the bucket-derived percentiles
    can be audited against an independent algorithm
    (``tests/obs/test_telemetry_crosscheck.py``); off by default — the
    bucket path is O(log buckets) per observe, the P² loop is not free.
    """

    kind = "histogram"

    def __init__(
        self,
        registry: "TelemetryRegistry",
        name: str,
        help: str,
        buckets: Optional[Sequence[float]] = None,
        crosscheck: Sequence[float] = (),
    ) -> None:
        super().__init__(registry, name, help)
        bounds = tuple(float(b) for b in (buckets or DEFAULT_LATENCY_BUCKETS_MS))
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly increasing")
        self.bounds = bounds
        self.crosscheck = tuple(float(q) for q in crosscheck)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.bounds, self.crosscheck)

    def observe(self, value: float, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        (self.labels(**labels) if labels else self._default()).observe(value)

    def quantile(self, q: float, **labels: Any) -> float:
        """Quantile of one child (the label-less one by default)."""
        key = _label_key(labels)
        for child_key, child in self.series():
            if child_key == key:
                return child.quantile(q)
        return math.nan


#: quantiles every histogram snapshot reports
_SNAPSHOT_QUANTILES = (0.5, 0.95, 0.99)

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Prometheus metric names cannot contain dots; ours do."""
    sanitized = _PROM_NAME_RE.sub("_", name)
    return sanitized if not sanitized[:1].isdigit() else "_" + sanitized


def _prom_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_prom_name(k)}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


class TelemetrySnapshot:
    """A frozen point-in-time view of one registry.

    ``doc`` is the JSON-ready document (one JSONL line per scrape);
    :meth:`to_prometheus` renders the text exposition format.
    """

    def __init__(self, doc: Dict[str, Any]) -> None:
        self.doc = doc

    @property
    def ts(self) -> float:
        return float(self.doc["ts"])

    @property
    def metrics(self) -> List[Dict[str, Any]]:
        return list(self.doc["metrics"])

    def find(self, name: str) -> Optional[Dict[str, Any]]:
        """The metric family document named ``name``, or None."""
        for fam in self.doc["metrics"]:
            if fam["name"] == name:
                return fam
        return None

    def as_dict(self) -> Dict[str, Any]:
        return self.doc

    def to_jsonl_line(self) -> str:
        return json.dumps(self.doc)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (histograms as
        ``_bucket``/``_sum``/``_count`` with cumulative ``le`` labels)."""
        lines: List[str] = []
        for fam in self.doc["metrics"]:
            name = _prom_name(fam["name"])
            if fam.get("help"):
                lines.append(f"# HELP {name} {fam['help']}")
            lines.append(f"# TYPE {name} {fam['type']}")
            for row in fam["series"]:
                labels = row.get("labels") or {}
                if fam["type"] == "histogram":
                    for bound, cum in row["buckets"]:
                        le = dict(labels)
                        le["le"] = _fmt(float(bound))
                        lines.append(f"{name}_bucket{_prom_labels(le)} {cum}")
                    lines.append(f"{name}_sum{_prom_labels(labels)} {_fmt(row['sum'])}")
                    lines.append(f"{name}_count{_prom_labels(labels)} {row['count']}")
                else:
                    lines.append(f"{name}{_prom_labels(labels)} {_fmt(row['value'])}")
        return "\n".join(lines) + ("\n" if lines else "")


class TelemetryRegistry:
    """Process-wide labeled metric registry (disabled by default).

    Families are created idempotently — asking twice for the same name
    returns the same object, asking with a conflicting type raises —
    so hot paths can look instruments up lazily without coordination.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: "Dict[str, _Instrument]" = {}

    # -- lifecycle -----------------------------------------------------------
    def enable(self) -> "TelemetryRegistry":
        self.enabled = True
        return self

    def disable(self) -> "TelemetryRegistry":
        self.enabled = False
        return self

    def __enter__(self) -> "TelemetryRegistry":
        return self.enable()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.disable()
        return False

    def clear(self) -> None:
        """Drop every family (tests / fresh serving epoch)."""
        with self._lock:
            self._families = {}

    # -- family constructors -------------------------------------------------
    def _family(self, cls, name: str, help: str, **kwargs) -> Any:
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = cls(self, name, help, **kwargs)
                self._families[name] = fam
                return fam
        if not isinstance(fam, cls):
            raise ValueError(
                f"metric {name!r} already registered as {fam.kind}, not {cls.kind}"
            )
        return fam

    def counter(self, name: str, help: str = "") -> Counter:
        return self._family(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._family(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        crosscheck: Sequence[float] = (),
    ) -> Histogram:
        return self._family(Histogram, name, help, buckets=buckets, crosscheck=crosscheck)

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._families.get(name)

    def families(self) -> List[_Instrument]:
        with self._lock:
            return list(self._families.values())

    # -- scraping ------------------------------------------------------------
    def snapshot(self, ts: Optional[float] = None) -> TelemetrySnapshot:
        """Freeze every family into a :class:`TelemetrySnapshot`."""
        doc: Dict[str, Any] = {
            "ts": time.time() if ts is None else float(ts),
            "metrics": [],
        }
        for fam in self.families():
            series: List[Dict[str, Any]] = []
            for key, child in fam.series():
                labels = dict(key)
                if fam.kind == "histogram":
                    row: Dict[str, Any] = {
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "min": child.minimum if child.count else None,
                        "max": child.maximum if child.count else None,
                        "buckets": [
                            [b, c] for b, c in child.cumulative_buckets()
                        ],
                    }
                    for q in _SNAPSHOT_QUANTILES:
                        v = child.quantile(q)
                        row[f"p{q * 100:g}"] = None if math.isnan(v) else v
                    series.append(row)
                else:
                    series.append({"labels": labels, "value": child.value})
            doc["metrics"].append(
                {"name": fam.name, "type": fam.kind, "help": fam.help, "series": series}
            )
        return TelemetrySnapshot(doc)

    def summary(self) -> str:
        """One line per series — the quick CLI glance."""
        lines: List[str] = []
        for fam in self.doc_rows():
            lines.append(fam)
        return "\n".join(lines)

    def doc_rows(self) -> List[str]:
        rows: List[str] = []
        for fam in self.snapshot().metrics:
            for row in fam["series"]:
                labels = row.get("labels") or {}
                tag = "".join(f"[{k}={v}]" for k, v in sorted(labels.items()))
                if fam["type"] == "histogram":
                    rows.append(
                        f"{fam['name']}{tag}: count={row['count']} "
                        f"mean={(row['sum'] / row['count']) if row['count'] else 0.0:.3f} "
                        f"p50={row['p50'] if row['p50'] is not None else float('nan'):.3f} "
                        f"p95={row['p95'] if row['p95'] is not None else float('nan'):.3f} "
                        f"p99={row['p99'] if row['p99'] is not None else float('nan'):.3f}"
                    )
                else:
                    rows.append(f"{fam['name']}{tag}: {row['value']:.6g}")
        return rows


#: the process-wide registry every subsystem reports to; off by default
_TELEMETRY = TelemetryRegistry(enabled=False)


def get_telemetry() -> TelemetryRegistry:
    """The process-wide telemetry registry (disabled unless enabled)."""
    return _TELEMETRY


class TelemetryExporter:
    """Periodic scraper: JSONL time series + Prometheus textfile + alerts.

    A daemon thread snapshots the registry every ``period_s`` seconds,
    appending each snapshot as one line to ``jsonl_path`` (the
    append-only time series the dashboard renders) and atomically
    rewriting ``prom_path`` with the current Prometheus text exposition
    (the node-exporter textfile-collector contract).  When an
    ``engine`` (:class:`~repro.obs.telemetry.rules.AlertEngine`) is
    attached, every scrape also evaluates the SLO rules.  ``stop()``
    performs one final scrape so short runs always export at least one
    snapshot.
    """

    def __init__(
        self,
        registry: Optional[TelemetryRegistry] = None,
        jsonl_path: Optional[str] = None,
        prom_path: Optional[str] = None,
        period_s: float = 1.0,
        engine: Optional[Any] = None,
    ) -> None:
        self.registry = registry if registry is not None else get_telemetry()
        self.jsonl_path = jsonl_path
        self.prom_path = prom_path
        self.period_s = max(0.01, float(period_s))
        self.engine = engine
        self.scrapes = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._io_lock = threading.Lock()

    # -- scraping ------------------------------------------------------------
    def scrape(self, now: Optional[float] = None) -> TelemetrySnapshot:
        """One scrape: snapshot, export, evaluate rules."""
        snap = self.registry.snapshot(ts=now)
        with self._io_lock:
            if self.jsonl_path:
                with open(self.jsonl_path, "a") as fh:
                    fh.write(snap.to_jsonl_line() + "\n")
            if self.prom_path:
                tmp = self.prom_path + ".tmp"
                with open(tmp, "w") as fh:
                    fh.write(snap.to_prometheus())
                import os

                os.replace(tmp, self.prom_path)
        if self.engine is not None:
            self.engine.evaluate(now=snap.ts)
        self.scrapes += 1
        return snap

    def _loop(self) -> None:
        while not self._stop.wait(self.period_s):
            self.scrape()

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "TelemetryExporter":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="telemetry-exporter", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> TelemetrySnapshot:
        """Stop the thread and take one final scrape."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        return self.scrape()

    def __enter__(self) -> "TelemetryExporter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


# ---------------------------------------------------------------------------
# Readers (dashboard / CI smoke)
# ---------------------------------------------------------------------------

def read_telemetry_jsonl(path: str) -> List[TelemetrySnapshot]:
    """Parse an exporter's JSONL time series back into snapshots.

    Malformed lines raise — a truncated telemetry file must not render
    as a clean-looking dashboard.
    """
    out: List[TelemetrySnapshot] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            if "ts" not in doc or "metrics" not in doc:
                raise ValueError(f"{path}:{lineno}: not a telemetry snapshot")
            out.append(TelemetrySnapshot(doc))
    return out


_PROM_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+"
    r"(?P<value>[+-]?(?:Inf|NaN|[0-9.eE+-]+))$"
)


def parse_prometheus(text: str) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Strict parser for the text exposition format we emit.

    Returns ``{metric_name: [(labels, value), ...]}``; raises
    ``ValueError`` on any non-comment line that does not parse.  Used
    by the CI smoke test to prove the export is well-formed.
    """
    out: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _PROM_LINE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: not prometheus text format: {line!r}")
        labels: Dict[str, str] = {}
        if m.group("labels"):
            for part in m.group("labels").split(","):
                if not part:
                    continue
                k, _, v = part.partition("=")
                if not v.startswith('"') or not v.endswith('"'):
                    raise ValueError(f"line {lineno}: bad label {part!r}")
                labels[k.strip()] = v[1:-1]
        raw = m.group("value")
        value = float("inf") if raw == "+Inf" else float("-inf") if raw == "-Inf" else float(raw)
        out.setdefault(m.group("name"), []).append((labels, value))
    return out
