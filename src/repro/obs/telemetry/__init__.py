"""Live telemetry runtime for long-running processes.

See :mod:`repro.obs.telemetry.registry` (labeled metrics + scraper),
:mod:`repro.obs.telemetry.profiler` (sampling profiler), and
:mod:`repro.obs.telemetry.rules` (SLO alert engine).
"""

from repro.obs.telemetry.registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    TelemetryExporter,
    TelemetryRegistry,
    TelemetrySnapshot,
    exponential_buckets,
    get_telemetry,
    parse_prometheus,
    read_telemetry_jsonl,
)
from repro.obs.telemetry.profiler import SamplingProfiler
from repro.obs.telemetry.rules import Alert, AlertEngine, SloRule

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "TelemetryExporter",
    "TelemetryRegistry",
    "TelemetrySnapshot",
    "exponential_buckets",
    "get_telemetry",
    "parse_prometheus",
    "read_telemetry_jsonl",
    "SamplingProfiler",
    "Alert",
    "AlertEngine",
    "SloRule",
]
