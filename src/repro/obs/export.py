"""Trace exporters: JSONL, Chrome trace-event format, summary table.

Three consumers of one :class:`~repro.obs.tracer.Tracer`:

* :func:`write_jsonl` — one JSON object per line (spans, instants,
  then counter/histogram aggregates); greppable, diffable, the format
  the benchmark trend-tracking option emits.
* :func:`write_chrome_trace` — the Chrome trace-event format
  (``chrome://tracing`` / https://ui.perfetto.dev): spans become
  complete (``"ph": "X"``) events with microsecond ``ts``/``dur``,
  instant events become ``"ph": "i"``.
* :func:`summary_report` — top-N spans by total wall time rendered with
  the same :class:`repro.analysis.report.ExperimentReport` table
  machinery every experiment uses.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.tracer import SpanEvent, Tracer, get_tracer

__all__ = [
    "to_jsonl",
    "write_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "summary_report",
    "summary",
]


def _json_safe(value):
    """Coerce attr values to something json.dumps accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    try:  # numpy scalars
        return value.item()
    except AttributeError:
        return str(value)


def to_jsonl(tracer: Optional[Tracer] = None) -> str:
    """Serialize the tracer's events + aggregates, one JSON doc per line."""
    tracer = tracer or get_tracer()
    lines: List[str] = []
    for ev in tracer.events:
        doc = {
            "type": "span" if ev.is_span else "instant",
            "name": ev.name,
            "ts_us": round(ev.ts_us, 3),
            "tid": ev.tid,
            "depth": ev.depth,
            "parent": ev.parent,
        }
        if ev.is_span:
            doc["dur_us"] = round(ev.dur_us, 3)
        if ev.category:
            doc["cat"] = ev.category
        if ev.attrs:
            doc["attrs"] = _json_safe(ev.attrs)
        lines.append(json.dumps(doc))
    for name, value in sorted(tracer.counters.items()):
        lines.append(json.dumps({"type": "counter", "name": name, "value": value}))
    for name in sorted(tracer.histograms):
        stats = tracer.histogram_stats(name)
        lines.append(json.dumps({"type": "histogram", "name": name, **stats}))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(path: str, tracer: Optional[Tracer] = None) -> int:
    """Write the JSONL export to ``path``; returns the line count."""
    text = to_jsonl(tracer)
    with open(path, "w") as fh:
        fh.write(text)
    return text.count("\n")


def to_chrome_trace(tracer: Optional[Tracer] = None) -> Dict:
    """Build a Chrome trace-event document (load in chrome://tracing)."""
    tracer = tracer or get_tracer()
    # Chrome renders raw thread ids poorly; remap to small ordinals.
    tid_map: Dict[int, int] = {}
    trace_events: List[Dict] = []
    for ev in tracer.events:
        tid = tid_map.setdefault(ev.tid, len(tid_map))
        doc = {
            "name": ev.name,
            "cat": ev.category or "repro",
            "ph": "X" if ev.is_span else "i",
            "ts": round(ev.ts_us, 3),
            "pid": 0,
            "tid": tid,
        }
        if ev.is_span:
            doc["dur"] = round(ev.dur_us, 3)
        else:
            doc["s"] = "t"  # instant scope: thread
        if ev.attrs:
            doc["args"] = _json_safe(ev.attrs)
        trace_events.append(doc)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, tracer: Optional[Tracer] = None) -> int:
    """Write the Chrome trace to ``path``; returns the event count."""
    doc = to_chrome_trace(tracer)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])


def summary_report(tracer: Optional[Tracer] = None, top: int = 10):
    """Top-N span names by total wall time as an ExperimentReport."""
    from repro.analysis.report import ExperimentReport

    tracer = tracer or get_tracer()
    agg: Dict[str, List[float]] = {}
    for ev in tracer.events:
        if ev.is_span:
            agg.setdefault(ev.name, []).append(ev.dur_us)
    rep = ExperimentReport(
        "Trace",
        f"top {top} spans by total wall time",
        headers=["span", "count", "total ms", "mean ms", "max ms"],
    )
    # Tie-break equal totals by name so report diffs are stable across runs.
    ranked = sorted(agg.items(), key=lambda kv: (-sum(kv[1]), kv[0]))[:top]
    for name, durs in ranked:
        rep.add_row(
            name,
            len(durs),
            f"{sum(durs) / 1e3:.3f}",
            f"{sum(durs) / len(durs) / 1e3:.3f}",
            f"{max(durs) / 1e3:.3f}",
        )
    n_instant = sum(1 for ev in tracer.events if not ev.is_span)
    rep.add_note(
        f"{len(tracer.events)} events ({n_instant} instant), "
        f"{len(agg)} distinct spans"
    )
    for name, value in sorted(tracer.counters.items()):
        rep.add_note(f"counter {name} = {value:g}")
    for name in sorted(tracer.histograms):
        s = tracer.histogram_stats(name)
        rep.add_note(
            f"histogram {name}: n={s['count']} mean={s['mean']:.4g} "
            f"min={s['min']:.4g} max={s['max']:.4g}"
        )
    return rep


def summary(tracer: Optional[Tracer] = None, top: int = 10) -> str:
    """Rendered text of :func:`summary_report`."""
    return summary_report(tracer, top=top).render()
