"""Benchmark dashboard: metric trends + counter breakdown as MD/HTML.

Renders the state of the run registry (``BENCH_<area>.json``) — latest
baseline vs the current run, relative deltas, and a unicode sparkline
of each metric's history — plus, when supplied, the regression-gate
verdicts and a measured :class:`~repro.obs.metrics.OpCounters`
breakdown.  CI writes the markdown flavour as a build artifact::

    python -m repro.experiments --bench-compare metrics.jsonl \\
        --bench-dashboard dashboard.md

The HTML flavour (``--bench-dashboard dash.html``) wraps the same
tables in a minimal standalone page; format is chosen by extension.
"""

from __future__ import annotations

import html
from typing import Dict, List, Mapping, Optional, Sequence

from repro.obs.metrics import MetricRegistry, OpCounters, provenance

__all__ = ["sparkline", "build_dashboard", "render_markdown", "render_html", "write_dashboard"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Unicode block sparkline of a metric series (empty for < 2 points)."""
    vals = [float(v) for v in values]
    if len(vals) < 2:
        return ""
    lo, hi = min(vals), max(vals)
    if hi - lo <= 1e-12 * max(abs(hi), abs(lo), 1.0):
        return _BLOCKS[3] * len(vals)
    span = hi - lo
    return "".join(_BLOCKS[int((v - lo) / span * (len(_BLOCKS) - 1))] for v in vals)


class _Section:
    """One titled table plus optional lead-in lines."""

    def __init__(self, title: str, headers: List[str], rows: List[List[str]], notes: List[str]):
        self.title = title
        self.headers = headers
        self.rows = rows
        self.notes = notes


def _area_section(
    registry: MetricRegistry,
    area: str,
    current: Optional[Mapping[str, float]],
) -> _Section:
    baseline = registry.baseline(area) or {}
    cur = dict(current or {})
    keys = sorted(set(baseline) | set(cur))
    rows: List[List[str]] = []
    for key in keys:
        base_v = baseline.get(key)
        cur_v = cur.get(key)
        if base_v is not None and cur_v is not None and base_v != 0:
            delta = f"{100 * (cur_v - base_v) / abs(base_v):+.2f}%"
        else:
            delta = "-"
        series = [v for _, v in registry.series(area, key)]
        if cur_v is not None:
            series = series + [cur_v]
        rows.append(
            [
                key,
                "-" if base_v is None else f"{base_v:.6g}",
                "-" if cur_v is None else f"{cur_v:.6g}",
                delta,
                sparkline(series) or "·",
            ]
        )
    doc = registry.load(area)
    notes: List[str] = []
    if doc is not None:
        prov = doc.get("provenance") or {}
        notes.append(
            f"baseline: {prov.get('git_sha', '?')} @ {prov.get('timestamp', '?')} "
            f"on {prov.get('host', '?')} ({len(doc.get('history') or [])} prior run(s))"
        )
    else:
        notes.append("no committed baseline yet (seed with --bench-update)")
    return _Section(
        f"Area `{area}`",
        ["metric", "baseline", "current", "delta", "trend"],
        rows,
        notes,
    )


#: metric stems of the worker-scaling curve (qualified by [workers=N])
_PARALLEL_STEMS = (
    "kernel.parallel_samples_per_sec",
    "kernel.parallel_scaling_efficiency",
)


def _parallel_workers_of(key: str, stem: str) -> Optional[int]:
    """N from ``<stem>[workers=N]``, else None."""
    prefix = f"{stem}[workers="
    if key.startswith(prefix) and key.endswith("]"):
        try:
            return int(key[len(prefix):-1])
        except ValueError:
            return None
    return None


def _parallel_section(
    registry: MetricRegistry, current: Optional[Mapping[str, float]]
) -> Optional[_Section]:
    """The worker-scaling curve, one row per worker count.

    Collates ``kernel.parallel_samples_per_sec[workers=N]`` and
    ``kernel.parallel_scaling_efficiency[workers=N]`` from the ``accel``
    area (current run first, committed baseline as fallback); None when
    no parallel metrics exist yet.
    """
    baseline = registry.baseline("accel") or {}
    cur = dict(current or {})
    merged = {**baseline, **cur}
    per_worker: Dict[int, Dict[str, float]] = {}
    for key, value in merged.items():
        for stem in _PARALLEL_STEMS:
            n = _parallel_workers_of(key, stem)
            if n is not None:
                per_worker.setdefault(n, {})[stem] = value
    if not per_worker:
        return None
    rows: List[List[str]] = []
    for n in sorted(per_worker):
        vals = per_worker[n]
        rate = vals.get(_PARALLEL_STEMS[0])
        eff = vals.get(_PARALLEL_STEMS[1])
        rate_key = f"{_PARALLEL_STEMS[0]}[workers={n}]"
        series = [v for _, v in registry.series("accel", rate_key)]
        if rate_key in cur:
            series = series + [cur[rate_key]]
        rows.append(
            [
                str(n),
                "-" if rate is None else f"{rate:.6g}",
                "-" if eff is None else f"{eff:.3f}",
                "-" if eff is None else f"{n * eff:.2f}x",
                sparkline(series) or "·",
            ]
        )
    return _Section(
        "Parallel scaling",
        ["workers", "samples/s", "efficiency", "speedup", "trend"],
        rows,
        [
            "efficiency = rate / (workers x serial rate); 1.0 is linear "
            "scaling. Host-dependent: advisory in the gate."
        ],
    )


def _numerics_section(report: Mapping) -> _Section:
    """Numerics health: per-layer streams, clip counters, divergence."""
    rows: List[List[str]] = []
    for row in report.get("layers") or []:
        rows.append(
            [
                f"{row['layer']}.{row['kind']}",
                f"{int(row['count'])}",
                f"{row['mean']:.4g}",
                f"{row['std']:.4g}",
                f"[{row['min']:.4g}, {row['max']:.4g}]",
                f"{100 * row['zero_fraction']:.1f}%",
                f"{int(row['nan'])}/{int(row['inf'])}",
            ]
        )
    notes: List[str] = []
    for name, counter in sorted((report.get("quant") or {}).items()):
        notes.append(
            f"quant `{name}`: {counter['clipped']}/{counter['total']} clipped "
            f"({100 * counter['rate']:.2f}%)"
        )
    div = report.get("divergence")
    if div:
        notes.append(
            f"reorder divergence: end-to-end max|dev| {div['end_to_end_max_abs']:.4g}, "
            f"top-1 flips {100 * div['top1_flip_rate']:.1f}% "
            f"over {div['layers']} pooled layer(s)"
        )
    anomaly = report.get("anomaly")
    if anomaly:
        notes.append(
            f"**ANOMALY**: {anomaly['layer']}.{anomaly['kind']} "
            f"({anomaly['nan']} NaN, {anomaly['inf']} inf) "
            f"at epoch {anomaly['epoch']}, batch {anomaly['batch']}"
        )
    return _Section(
        "Numerics health",
        ["stream", "count", "mean", "std", "range", "zeros", "nan/inf"],
        rows,
        notes,
    )


def _attribution_section(attribution: Mapping) -> _Section:
    """Attribution / roofline: the joined per-row table + coverage.

    ``attribution`` is an
    :meth:`~repro.obs.attrib.AttributionReport.as_dict` document.
    """
    rows: List[List[str]] = []

    def fmt(row: Mapping, key: str, scale: float, digits: int = 2) -> str:
        value = row.get(key)
        return "-" if value is None else f"{value / scale:.{digits}f}"

    for row in (attribution.get("rows") or [])[:25]:
        frac = row.get("attained_fraction")
        rows.append(
            [
                str(row.get("name")),
                str(row.get("kind")),
                fmt(row, "wall_us", 1e3, 3),
                fmt(row, "ops", 1e6),
                fmt(row, "bytes_moved", 1e6),
                fmt(row, "intensity", 1.0),
                "-" if frac is None else f"{100 * frac:.1f}%",
                str(row.get("bound") or "-"),
            ]
        )
    coverage = float(attribution.get("span_coverage") or 0.0)
    notes = [
        f"span coverage {100 * coverage:.1f}% "
        f"({(attribution.get('total_us') or 0.0) / 1e3:.3f} ms total, "
        f"{(attribution.get('unexplained_us') or 0.0) / 1e3:.3f} ms unexplained)"
    ]
    roof = attribution.get("roofline")
    if roof:
        notes.append(
            f"host roofline: peak {roof['peak_flops'] / 1e9:.2f} GFLOP/s, "
            f"stream {roof['stream_bandwidth'] / 1e9:.2f} GB/s, "
            f"ridge {roof['ridge_intensity']:.2f} FLOP/B"
        )
    plan = attribution.get("kernel_plan") or {}
    if plan:
        notes.append(
            "kernel plan: "
            + ", ".join(f"{k}→{v}" for k, v in sorted(plan.items()))
        )
    return _Section(
        "Attribution / Roofline",
        ["row", "kind", "wall ms", "MFLOPs", "MB", "FLOP/B", "%roof", "bound"],
        rows,
        notes,
    )


def _run_diff_section(run_diff) -> _Section:
    """Run diff: ranked per-span wall-time changes (a ``RunDiff``)."""
    rows: List[List[str]] = []
    for e in run_diff.top(20):
        rel = "-" if e.delta_rel is None else f"{100 * e.delta_rel:+.1f}%"
        rows.append(
            [
                e.name,
                e.kind,
                f"{e.wall_a_us / 1e3:.3f}",
                f"{e.wall_b_us / 1e3:.3f}",
                f"{e.delta_us / 1e3:+.3f}",
                rel,
                "; ".join(e.notes) or "-",
            ]
        )
    return _Section(
        "Run diff",
        ["row", "kind", "A ms", "B ms", "delta ms", "delta %", "notes"],
        rows,
        [
            f"total {run_diff.total_a_us / 1e3:.3f} ms → "
            f"{run_diff.total_b_us / 1e3:.3f} ms "
            f"({run_diff.total_delta_us / 1e3:+.3f} ms), ranked by |delta|"
        ],
    )


def _telemetry_section(snapshots: Sequence, alerts: Optional[Sequence] = None) -> _Section:
    """Live telemetry: per-series time evolution + active SLO alerts.

    ``snapshots`` is a sequence of
    :class:`~repro.obs.telemetry.registry.TelemetrySnapshot` (or their
    ``as_dict`` documents), e.g. from
    :func:`~repro.obs.telemetry.registry.read_telemetry_jsonl`; the last
    one supplies current values and the whole sequence feeds the trend
    sparkline.  ``alerts`` is a sequence of
    :class:`~repro.obs.telemetry.rules.Alert` (or dicts).
    """
    docs = [s.as_dict() if hasattr(s, "as_dict") else dict(s) for s in snapshots]
    rows: List[List[str]] = []
    if docs:
        # series key -> value per snapshot, in snapshot order
        def _rows_of(doc) -> Dict[str, Mapping]:
            out: Dict[str, Mapping] = {}
            for fam in doc.get("metrics") or []:
                for srow in fam.get("series") or []:
                    labels = srow.get("labels") or {}
                    tag = "".join(f"[{k}={v}]" for k, v in sorted(labels.items()))
                    out[f"{fam['name']}{tag}"] = {"type": fam["type"], **srow}
            return out

        history = [_rows_of(doc) for doc in docs]
        latest = history[-1]
        for key in sorted(latest):
            row = latest[key]
            if row["type"] == "histogram":
                track = [
                    h[key]["p99"]
                    for h in history
                    if key in h and h[key].get("p99") is not None
                ]
                count = int(row.get("count") or 0)
                mean = (row["sum"] / count) if count else 0.0
                rows.append(
                    [
                        key,
                        "histogram",
                        f"n={count} mean={mean:.3f} "
                        f"p50={row.get('p50') if row.get('p50') is not None else float('nan'):.3f} "
                        f"p95={row.get('p95') if row.get('p95') is not None else float('nan'):.3f} "
                        f"p99={row.get('p99') if row.get('p99') is not None else float('nan'):.3f}",
                        sparkline(track) or "·",
                    ]
                )
            else:
                track = [h[key]["value"] for h in history if key in h]
                rows.append([key, row["type"], f"{row['value']:.6g}", sparkline(track) or "·"])
    notes: List[str] = []
    span_s = docs[-1]["ts"] - docs[0]["ts"] if len(docs) > 1 else 0.0
    notes.append(
        f"{len(docs)} snapshot(s) over {span_s:.1f}s "
        "(histogram trend tracks p99)"
    )
    alert_docs = [a.as_dict() if hasattr(a, "as_dict") else dict(a) for a in (alerts or [])]
    active = [a for a in alert_docs if a.get("resolved_at") is None]
    if alert_docs:
        notes.append(f"alerts: {len(active)} active / {len(alert_docs)} fired")
        for a in alert_docs:
            state = "ACTIVE" if a.get("resolved_at") is None else "resolved"
            notes.append(f"{state}: {a.get('message') or a.get('rule')}")
    else:
        notes.append("alerts: none fired")
    return _Section(
        "Live telemetry",
        ["series", "type", "current", "trend"],
        rows,
        notes,
    )


def _counters_section(counters: OpCounters) -> _Section:
    rows = [[name, f"{value:.6g}"] for name, value in counters.as_dict().items() if value]
    denom = counters.mults + counters.mults_eliminated
    notes = []
    if denom:
        notes.append(f"RME eliminated {100 * counters.mults_eliminated / denom:.1f}% of dense multiplications")
    spent_plus_saved = counters.additions + counters.reuse_hits
    if spent_plus_saved and counters.reuse_hits:
        notes.append(
            f"LAR+GAR avoided {100 * counters.reuse_hits / spent_plus_saved:.1f}% of no-reuse additions"
        )
    return _Section("Measured counters", ["counter", "value"], rows, notes)


def build_dashboard(
    registry: MetricRegistry,
    current: Optional[Mapping[str, Mapping[str, float]]] = None,
    counters: Optional[OpCounters] = None,
    gate_report=None,
    numerics: Optional[Mapping] = None,
    attribution: Optional[Mapping] = None,
    run_diff=None,
    telemetry: Optional[Sequence] = None,
    alerts: Optional[Sequence] = None,
) -> List[_Section]:
    """Assemble dashboard sections (shared by both output formats).

    ``numerics`` is a :meth:`NumericsCollector.report()
    <repro.obs.numerics.NumericsCollector.report>` document;
    ``attribution`` an
    :meth:`~repro.obs.attrib.AttributionReport.as_dict` document;
    ``run_diff`` a :class:`~repro.obs.forensics.RunDiff`; ``telemetry``
    a sequence of telemetry snapshots (see :func:`_telemetry_section`)
    with ``alerts`` the matching SLO alert episodes.  Each renders as
    its own section when given.
    """
    sections: List[_Section] = []
    areas = sorted(set(registry.areas()) | set(current or {}))
    for area in areas:
        sections.append(_area_section(registry, area, (current or {}).get(area)))
    parallel = _parallel_section(registry, (current or {}).get("accel"))
    if parallel is not None:
        sections.append(parallel)
    if telemetry is not None:
        sections.append(_telemetry_section(telemetry, alerts))
    if numerics is not None:
        sections.append(_numerics_section(numerics))
    if attribution is not None:
        sections.append(_attribution_section(attribution))
    if run_diff is not None:
        sections.append(_run_diff_section(run_diff))
    if gate_report is not None:
        order = {"regressed": 0, "invalid": 1, "improved": 2, "ok": 3,
                 "missing_baseline": 4, "missing_current": 5}
        rows = [
            [
                v.status + ("" if v.policy.required else " (advisory)"),
                v.area,
                v.metric,
                "-" if v.baseline is None else f"{v.baseline:.6g}",
                "-" if v.current is None else f"{v.current:.6g}",
                v.policy.direction,
                getattr(v, "note", "") or "-",
            ]
            for v in sorted(gate_report.verdicts, key=lambda v: (order[v.status], v.area, v.metric))
        ]
        verdict = "**FAIL**" if gate_report.failed else "pass"
        notes = [f"gate verdict: {verdict}"]
        # Surface auto-downgrades (host-sensitive metrics judged on a
        # machine shaped unlike the baseline's) with their reason —
        # previously only the CLI report mentioned why a metric that
        # normally gates required showed up advisory.
        downgraded = [
            v for v in gate_report.verdicts
            if not v.policy.required and (getattr(v, "note", "") or "").startswith("host mismatch")
        ]
        if downgraded:
            reasons = sorted({getattr(v, "note", "") for v in downgraded})
            notes.append(
                f"{len(downgraded)} metric(s) auto-downgraded to advisory — "
                + "; ".join(reasons)
            )
        sections.append(
            _Section(
                "Regression gate",
                ["status", "area", "metric", "baseline", "current", "better", "note"],
                rows,
                notes,
            )
        )
    if counters is not None:
        sections.append(_counters_section(counters))
    return sections


def render_markdown(sections: List[_Section]) -> str:
    prov = provenance()
    out = [
        "# Benchmark dashboard",
        "",
        f"generated at {prov['timestamp']} on {prov['host']} "
        f"(commit `{prov['git_sha']}`, python {prov['python']})",
        "",
    ]
    for s in sections:
        out.append(f"## {s.title}")
        out.append("")
        for note in s.notes:
            out.append(f"_{note}_")
            out.append("")
        if s.rows:
            out.append("| " + " | ".join(s.headers) + " |")
            out.append("|" + "|".join("---" for _ in s.headers) + "|")
            for row in s.rows:
                out.append("| " + " | ".join(row) + " |")
        else:
            out.append("(no metrics)")
        out.append("")
    return "\n".join(out)


def render_html(sections: List[_Section]) -> str:
    prov = provenance()
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        "<title>Benchmark dashboard</title>",
        "<style>body{font-family:sans-serif;margin:2em}table{border-collapse:collapse}"
        "td,th{border:1px solid #ccc;padding:4px 8px;font-size:13px;text-align:left}"
        "th{background:#f0f0f0}em{color:#666}</style></head><body>",
        "<h1>Benchmark dashboard</h1>",
        f"<p><em>generated at {html.escape(prov['timestamp'])} on "
        f"{html.escape(prov['host'])} (commit {html.escape(prov['git_sha'])})</em></p>",
    ]
    for s in sections:
        parts.append(f"<h2>{html.escape(s.title)}</h2>")
        for note in s.notes:
            parts.append(f"<p><em>{html.escape(note)}</em></p>")
        if s.rows:
            parts.append("<table><tr>")
            parts.extend(f"<th>{html.escape(h)}</th>" for h in s.headers)
            parts.append("</tr>")
            for row in s.rows:
                parts.append(
                    "<tr>" + "".join(f"<td>{html.escape(c)}</td>" for c in row) + "</tr>"
                )
            parts.append("</table>")
        else:
            parts.append("<p>(no metrics)</p>")
    parts.append("</body></html>")
    return "".join(parts)


def write_dashboard(
    path: str,
    registry: MetricRegistry,
    current: Optional[Mapping[str, Mapping[str, float]]] = None,
    counters: Optional[OpCounters] = None,
    gate_report=None,
    numerics: Optional[Mapping] = None,
    attribution: Optional[Mapping] = None,
    run_diff=None,
    telemetry: Optional[Sequence] = None,
    alerts: Optional[Sequence] = None,
) -> str:
    """Write the dashboard to ``path`` (HTML iff the extension says so)."""
    sections = build_dashboard(
        registry, current, counters, gate_report, numerics, attribution, run_diff,
        telemetry, alerts,
    )
    text = (
        render_html(sections)
        if path.endswith((".html", ".htm"))
        else render_markdown(sections)
    )
    with open(path, "w") as fh:
        fh.write(text)
    return path
