"""Run every reproduction experiment from the command line.

Usage::

    python -m repro.experiments                # analytic + accelerator
    python -m repro.experiments --accuracy     # include training runs
    python -m repro.experiments --only table2 fig13
    python -m repro.experiments --list         # print experiment names
    python -m repro.experiments --pipeline lenet5 --bits 8 --report
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    ablation_reuse,
    extension_resnet18,
    related_fused_layer,
    extension_pruning,
    equation_limits,
    fig3_reordering_accuracy,
    fig4_pooling_accuracy,
    fig12_quantization_accuracy,
    fig13_speedup,
    fig14_flops_reduction,
    fig15_energy,
    table1_models,
    table2_lar_filter,
    table3_lar_stride,
    table4_gar_filter,
    table5_gar_stride,
    table6_gar_inputdim,
    table7_configs,
)
from repro.experiments.accuracy import FAST_BUDGET, AccuracyBudget

FAST_EXPERIMENTS = {
    "table1": table1_models,
    "table2": table2_lar_filter,
    "table3": table3_lar_stride,
    "table4": table4_gar_filter,
    "table5": table5_gar_stride,
    "table6": table6_gar_inputdim,
    "limits": equation_limits,
    "table7": table7_configs,
    "fig13": fig13_speedup,
    "fig14": fig14_flops_reduction,
    "fig15": fig15_energy,
    "ablation": ablation_reuse,
    "resnet18": extension_resnet18,
    "fusedlayer": related_fused_layer,
    "pruning": extension_pruning,
}

ACCURACY_EXPERIMENTS = {
    "fig3": fig3_reordering_accuracy,
    "fig4": fig4_pooling_accuracy,
    "fig12": fig12_quantization_accuracy,
}


def _list_experiments() -> None:
    print("fast (analytic + accelerator):")
    for name in sorted(FAST_EXPERIMENTS):
        print(f"  {name}")
    print("accuracy (training; needs --accuracy or --only):")
    for name in sorted(ACCURACY_EXPERIMENTS):
        print(f"  {name}")


def _compile_pipeline(model_name: str, bits: int, show_report: bool) -> int:
    """Compile a zoo model through the canonical MLCNN pipeline."""
    from repro.compiler import CompileContext, mlcnn_pipeline
    from repro.models import MODEL_REGISTRY, build_model

    if model_name not in MODEL_REGISTRY:
        print(
            f"unknown model {model_name!r}; available: {sorted(MODEL_REGISTRY)}",
            file=sys.stderr,
        )
        return 2
    model = build_model(model_name)
    # strict=False: models with no fusable ConvBlock (e.g. GoogLeNet,
    # whose pooled stages are PooledInception) still compile cleanly.
    _, report = mlcnn_pipeline(bits=bits, strict=False).run(
        model, CompileContext(quant_bits=bits)
    )
    if report.record_for("fuse").rewrites == 0:
        print("note: no fusable conv-pool blocks in this model")
    if show_report:
        report.to_experiment_report().show()
    print(
        f"compiled {model_name} [{report.pipeline}]: "
        f"{report.passes_run} passes, {report.total_rewrites} rewrites, "
        f"{1e3 * report.total_time_s:.1f} ms"
        + (" (plan-cache hit)" if report.cached else "")
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accuracy", action="store_true", help="also run the training experiments")
    parser.add_argument("--full", action="store_true", help="use the full training budget")
    parser.add_argument("--only", nargs="*", default=None, help="subset of experiment names")
    parser.add_argument(
        "--list", action="store_true", help="print available experiment names and exit"
    )
    parser.add_argument(
        "--pipeline",
        metavar="MODEL",
        default=None,
        help="compile a zoo model through the MLCNN pass pipeline and exit",
    )
    parser.add_argument(
        "--bits", type=int, default=0, help="quantization bits for --pipeline (0 = off)"
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="with --pipeline: print the full per-pass CompileReport table",
    )
    args = parser.parse_args(argv)

    if args.list:
        _list_experiments()
        return 0
    if args.bits < 0:
        parser.error(f"--bits must be >= 0, got {args.bits}")
    if args.pipeline is not None:
        return _compile_pipeline(args.pipeline, args.bits, args.report)

    experiments = dict(FAST_EXPERIMENTS)
    if args.accuracy or (args.only and set(args.only) & set(ACCURACY_EXPERIMENTS)):
        experiments.update(ACCURACY_EXPERIMENTS)
    if args.only:
        unknown = set(args.only) - set(experiments)
        if unknown:
            parser.error(f"unknown experiments {sorted(unknown)}; "
                         f"available: {sorted(experiments)}")
        experiments = {k: experiments[k] for k in args.only}

    budget = AccuracyBudget() if args.full else FAST_BUDGET
    suite_start = time.time()
    for name, fn in experiments.items():
        start = time.time()
        if name in ACCURACY_EXPERIMENTS:
            report = fn(budget=budget)
        else:
            report = fn()
        report.show()
        print(f"  [{name}: {time.time() - start:.1f}s]")
    print(
        f"\n== total: {len(experiments)} experiment(s) in "
        f"{time.time() - suite_start:.1f}s =="
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
