"""Run every reproduction experiment from the command line.

Usage::

    python -m repro.experiments                # analytic + accelerator
    python -m repro.experiments --accuracy     # include training runs
    python -m repro.experiments --only table2 fig13
    python -m repro.experiments --list         # print experiment names
    python -m repro.experiments --pipeline lenet5 --bits 8 --report
    python -m repro.experiments --pipeline lenet5 --trace out.json \\
        --trace-format chrome      # unified compile/forward/simulate trace
    python -m repro.experiments --only fig13 --trace-summary
    python -m repro.experiments --bench-compare metrics.jsonl \\
        --bench-dashboard dashboard.md   # perf regression gate (CI)

``--trace`` enables the process-wide tracer (:mod:`repro.obs`) for the
whole run and writes the collected spans/events to the given path —
JSONL by default, or the Chrome trace-event format with
``--trace-format chrome`` (open in ``chrome://tracing`` or Perfetto).
``--trace-summary`` prints the top-N-spans table after the run.

``--bench-compare`` feeds a benchmark run's ``--metrics-jsonl`` file
through the tolerance-policy regression gate (:mod:`repro.obs.regress`)
against the committed ``BENCH_<area>.json`` baselines and exits
non-zero on regression; ``--bench-update`` intentionally refreshes the
baselines, and ``--bench-dashboard`` renders the trend dashboard.

``--attrib [MODEL ...]`` (default: lenet5 vgg16) runs the roofline
attribution engine (:mod:`repro.obs.attrib`): compile + instrumented
forward + accelerator simulation under the tracer, joined with measured
op counters against this host's calibrated roofline
(:mod:`repro.obs.roofline`), printed as a per-layer/per-kernel table
with span-coverage accounting.  ``--attrib-report PATH`` writes the
rows as JSONL; ``--workers N`` routes the forward through the parallel
plan executor so shard merge-back is part of the measurement.

``--diff-trace A.jsonl B.jsonl`` is cross-run forensics
(:mod:`repro.obs.forensics`): attribute both traces and print the
ranked "what changed" report — per-span wall deltas, kernel selection
changes, ops/bytes drift.  ``--diff-bench metrics.jsonl`` ranks a
working tree's fresh benchmark metrics against the committed
``BENCH_<area>.json`` baselines.  Both honour ``--bench-dashboard``.

``--numerics [MODEL ...]`` (default: lenet5 vgg16) compiles each model
through the MLCNN pipeline with the reorder-divergence probe, runs an
instrumented forward+backward on the probe batch, and prints the
per-layer numerics health report — streaming activation/gradient
statistics, DoReFa clip/saturation rates, and the measured reorder
divergence.  ``--numerics-report PATH`` writes the report as JSON
(or JSONL for ``.jsonl`` paths); ``--bits`` selects the quantization
width (default 8)::

    python -m repro.experiments --numerics lenet5 --bits 4 \\
        --numerics-report numerics.json

``--telemetry`` enables the live metric registry
(:mod:`repro.obs.telemetry`) for the run and prints the per-series
summary at the end; ``--telemetry-report PATH`` additionally exports a
JSONL snapshot time series (``.jsonl``, scraped every 0.5 s by a
background exporter) or a final Prometheus text-format snapshot
(``.prom``).  ``--profile PATH`` runs everything under the background
sampling profiler and writes an HTML flamegraph (``.html``) or
collapsed-stack text::

    python -m repro.experiments --only fig13 --telemetry \\
        --telemetry-report telemetry.jsonl --profile profile.html
"""

from __future__ import annotations

import argparse
import sys
from time import perf_counter

from repro import obs

from repro.experiments import (
    ablation_reuse,
    extension_resnet18,
    related_fused_layer,
    extension_pruning,
    equation_limits,
    fig3_reordering_accuracy,
    fig4_pooling_accuracy,
    fig12_quantization_accuracy,
    fig13_speedup,
    fig14_flops_reduction,
    fig15_energy,
    table1_models,
    table2_lar_filter,
    table3_lar_stride,
    table4_gar_filter,
    table5_gar_stride,
    table6_gar_inputdim,
    table7_configs,
)
from repro.experiments.accuracy import FAST_BUDGET, AccuracyBudget

FAST_EXPERIMENTS = {
    "table1": table1_models,
    "table2": table2_lar_filter,
    "table3": table3_lar_stride,
    "table4": table4_gar_filter,
    "table5": table5_gar_stride,
    "table6": table6_gar_inputdim,
    "limits": equation_limits,
    "table7": table7_configs,
    "fig13": fig13_speedup,
    "fig14": fig14_flops_reduction,
    "fig15": fig15_energy,
    "ablation": ablation_reuse,
    "resnet18": extension_resnet18,
    "fusedlayer": related_fused_layer,
    "pruning": extension_pruning,
}

ACCURACY_EXPERIMENTS = {
    "fig3": fig3_reordering_accuracy,
    "fig4": fig4_pooling_accuracy,
    "fig12": fig12_quantization_accuracy,
}


def _list_experiments() -> None:
    print("fast (analytic + accelerator):")
    for name in sorted(FAST_EXPERIMENTS):
        print(f"  {name}")
    print("accuracy (training; needs --accuracy or --only):")
    for name in sorted(ACCURACY_EXPERIMENTS):
        print(f"  {name}")


def _trace_model_extras(model_name: str, model, ctx) -> None:
    """With tracing on, add per-layer forward spans and simulator events.

    Makes one ``--pipeline`` run produce the full unified timeline:
    compiler passes (already traced by :class:`Pipeline`), a per-layer
    instrumented forward on the probe batch, and the accelerator
    simulator's per-layer attribution for the model's specs.
    """
    from repro.nn.tensor import Tensor, no_grad

    obs.instrument_model(model, prefix=model_name, counters=True)
    model.eval()
    with no_grad():
        model(Tensor(ctx.probe_batch()))
    try:
        from repro.accel import get_config, simulate_network
        from repro.models import specs as model_specs

        layer_specs = model_specs.get_specs(model_name)
    except (KeyError, ValueError):
        return  # no analytic layer specs for this model; skip simulation
    simulate_network(layer_specs, get_config("mlcnn-fp32"))


def _compile_pipeline(model_name: str, bits: int, show_report: bool) -> int:
    """Compile a zoo model through the canonical MLCNN pipeline."""
    from repro.compiler import CompileContext, mlcnn_pipeline
    from repro.models import MODEL_REGISTRY, build_model

    if model_name not in MODEL_REGISTRY:
        print(
            f"unknown model {model_name!r}; available: {sorted(MODEL_REGISTRY)}",
            file=sys.stderr,
        )
        return 2
    model = build_model(model_name)
    ctx = CompileContext(quant_bits=bits)
    # strict=False: models with no fusable ConvBlock (e.g. GoogLeNet,
    # whose pooled stages are PooledInception) still compile cleanly.
    _, report = mlcnn_pipeline(bits=bits, strict=False).run(model, ctx)
    if report.record_for("fuse").rewrites == 0:
        print("note: no fusable conv-pool blocks in this model")
    if show_report:
        report.to_experiment_report().show()
    print(
        f"compiled {model_name} [{report.pipeline}]: "
        f"{report.passes_run} passes, {report.total_rewrites} rewrites, "
        f"{1e3 * report.total_time_s:.1f} ms"
        + (" (plan-cache hit)" if report.cached else "")
    )
    plan = ctx.state.get("kernel_plan")
    if plan and plan["kernels"]:
        src = "replayed from plan cache" if plan["from_cache"] else "freshly selected"
        print(f"kernel plan ({src}, impl={plan['impl']}, bits={plan['bits']}):")
        for path, kernel in sorted(plan["kernels"].items()):
            print(f"  {path}: {kernel}")
    if obs.get_tracer().enabled:
        _trace_model_extras(model_name, model, ctx)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accuracy", action="store_true", help="also run the training experiments")
    parser.add_argument("--full", action="store_true", help="use the full training budget")
    parser.add_argument("--only", nargs="*", default=None, help="subset of experiment names")
    parser.add_argument(
        "--list", action="store_true", help="print available experiment names and exit"
    )
    parser.add_argument(
        "--pipeline",
        metavar="MODEL",
        default=None,
        help="compile a zoo model through the MLCNN pass pipeline and exit",
    )
    parser.add_argument(
        "--bits", type=int, default=0, help="quantization bits for --pipeline (0 = off)"
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="with --pipeline: print the full per-pass CompileReport table",
    )
    parser.add_argument(
        "--numerics",
        nargs="*",
        metavar="MODEL",
        default=None,
        help="print the per-layer numerics health report for the given "
        "zoo models (default: lenet5 vgg16) and exit; honours --bits",
    )
    parser.add_argument(
        "--numerics-report",
        metavar="PATH",
        default=None,
        help="with --numerics: also write the report to PATH "
        "(JSON, or JSONL for .jsonl paths)",
    )
    parser.add_argument(
        "--attrib",
        nargs="*",
        metavar="MODEL",
        default=None,
        help="print the roofline attribution table for the given zoo "
        "models (default: lenet5 vgg16) and exit; honours --bits and "
        "--workers",
    )
    parser.add_argument(
        "--attrib-report",
        metavar="PATH",
        default=None,
        help="with --attrib: also write the attribution rows as JSONL",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="with --attrib: run the forward through the parallel plan "
        "executor with N workers (default 1)",
    )
    parser.add_argument(
        "--diff-trace",
        nargs=2,
        metavar=("A", "B"),
        default=None,
        help="cross-run forensics: attribute two JSONL traces and print "
        "the ranked what-changed report (B relative to A)",
    )
    parser.add_argument(
        "--diff-bench",
        metavar="JSONL",
        default=None,
        help="rank a fresh --metrics-jsonl run against the committed "
        "BENCH_<area>.json baselines (forensic ordering, not a gate)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="enable the repro.obs tracer and write the trace to PATH",
    )
    parser.add_argument(
        "--trace-format",
        choices=("jsonl", "chrome"),
        default="jsonl",
        help="trace file format: JSONL event log or Chrome trace-event JSON",
    )
    parser.add_argument(
        "--trace-summary",
        action="store_true",
        help="print the top-N-spans summary table after the run",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="enable the live telemetry registry (repro.obs.telemetry) "
        "for the run and print the metric summary at the end",
    )
    parser.add_argument(
        "--telemetry-report",
        metavar="PATH",
        default=None,
        help="implies --telemetry: export scraped snapshots to PATH — "
        "a JSONL time series (background exporter, .jsonl) or a final "
        "Prometheus text-format snapshot (.prom)",
    )
    parser.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help="run under the background sampling profiler and write the "
        "profile to PATH (HTML flamegraph for .html, collapsed-stack "
        "text otherwise); prints the top functions and measured overhead",
    )
    parser.add_argument(
        "--bench-compare",
        metavar="JSONL",
        default=None,
        help="run the perf regression gate: compare a --metrics-jsonl file "
        "against the committed BENCH_<area>.json baselines and exit "
        "non-zero on regression",
    )
    parser.add_argument(
        "--bench-root",
        metavar="DIR",
        default=".",
        help="directory holding the BENCH_<area>.json baselines (default: .)",
    )
    parser.add_argument(
        "--bench-update",
        action="store_true",
        help="with --bench-compare: refresh the baselines from the metrics "
        "file instead of gating (intentional baseline refresh)",
    )
    parser.add_argument(
        "--bench-dashboard",
        metavar="PATH",
        default=None,
        help="write the benchmark dashboard (markdown, or HTML for "
        ".html paths); usable with or without --bench-compare",
    )
    args = parser.parse_args(argv)

    if args.list:
        _list_experiments()
        return 0
    if args.bits < 0:
        parser.error(f"--bits must be >= 0, got {args.bits}")
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.diff_trace is not None or args.diff_bench is not None:
        return _run_diff(args)
    if args.attrib is not None:
        return _run_attrib(args)
    if args.bench_compare is not None or args.bench_dashboard is not None:
        return _bench_compare(args)

    tracer = obs.get_tracer()
    tracing = bool(args.trace or args.trace_summary)
    if tracing:
        tracer.clear()
        tracer.enable()
    telemetry = obs.get_telemetry()
    telemetering = bool(args.telemetry or args.telemetry_report)
    exporter = None
    if telemetering:
        telemetry.clear()
        telemetry.enable()
        if args.telemetry_report and args.telemetry_report.endswith(".jsonl"):
            exporter = obs.TelemetryExporter(
                telemetry, jsonl_path=args.telemetry_report, period_s=0.5
            ).start()
    profiler = obs.SamplingProfiler().start() if args.profile else None
    try:
        if args.pipeline is not None:
            return _compile_pipeline(args.pipeline, args.bits, args.report)
        if args.numerics is not None:
            return _run_numerics(args)
        return _run_suite(parser, args)
    finally:
        if profiler is not None:
            profiler.stop()
            if args.profile.endswith((".html", ".htm")):
                profiler.write_flamegraph(args.profile)
            else:
                profiler.write_collapsed(args.profile)
            print(
                f"profile: {profiler.sample_count} sample(s) -> {args.profile} "
                f"(measured overhead {100 * profiler.overhead_fraction:.3f}%)"
            )
            for frame, count in profiler.top_functions(5):
                print(f"  {count:6d}  {frame}")
        if telemetering:
            if exporter is not None:
                exporter.stop()
                print(
                    f"telemetry: {exporter.scrapes} snapshot(s) -> "
                    f"{args.telemetry_report}"
                )
            elif args.telemetry_report:
                snap = telemetry.snapshot()
                with open(args.telemetry_report, "w") as fh:
                    fh.write(snap.to_prometheus())
                print(f"telemetry snapshot -> {args.telemetry_report}")
            rows = telemetry.doc_rows()
            if rows:
                print("\ntelemetry:")
                for row in rows:
                    print(f"  {row}")
            telemetry.disable()
        if tracing:
            tracer.disable()
            if args.trace:
                if args.trace_format == "chrome":
                    n = obs.write_chrome_trace(args.trace, tracer)
                else:
                    n = obs.write_jsonl(args.trace, tracer)
                print(f"trace: {n} event(s) -> {args.trace} [{args.trace_format}]")
            if args.trace_summary:
                print("\n" + obs.summary(tracer))


def _run_numerics(args) -> int:
    """One-command numerics health report (the tentpole CLI surface).

    For each model: compile through the MLCNN pipeline (with the
    reorder-divergence probe inserted after ``reorder``), instrument
    the compiled model with a :class:`~repro.obs.numerics
    .NumericsCollector`, run one forward+backward on the probe batch,
    and print per-layer streaming statistics, DoReFa clip/saturation
    rates and the measured reorder divergence.
    """
    import json

    import numpy as np

    from repro.compiler import CompileContext, Pipeline
    from repro.compiler.passes import (
        QuantizePass,
        ReorderActivationPoolingPass,
        ReorderDivergenceProbePass,
        SetPoolingPass,
    )
    from repro.models import MODEL_REGISTRY, build_model
    from repro.nn import functional as F
    from repro.nn.tensor import Tensor
    from repro.obs.numerics import NumericsCollector

    models = args.numerics or ["lenet5", "vgg16"]
    unknown = [m for m in models if m not in MODEL_REGISTRY]
    if unknown:
        print(
            f"unknown model(s) {unknown}; available: {sorted(MODEL_REGISTRY)}",
            file=sys.stderr,
        )
        return 2
    bits = args.bits or 8
    combined = {}
    for name in models:
        model = build_model(name)
        ctx = CompileContext(quant_bits=bits)
        collector = NumericsCollector(watchdog="warn")
        # no fuse pass: fused blocks can't be DoReFa-wrapped, and the
        # point here is per-layer quantization health, not speed
        pipeline = Pipeline(
            [
                SetPoolingPass("avg"),
                ReorderActivationPoolingPass(),
                ReorderDivergenceProbePass(),
                QuantizePass(bits),
            ],
            name="numerics",
        )
        with collector:
            pipeline.run(model, ctx)
            obs.instrument_model(model, prefix=name, numerics=collector)
            x = ctx.probe_batch()
            model.train()
            logits = model(Tensor(x))
            rng = np.random.default_rng(ctx.seed)
            labels = rng.integers(0, logits.data.shape[-1], size=len(x))
            loss = F.cross_entropy(logits, labels)
            loss.backward()
        print(f"\n-- {name} (INT{bits}) --")
        print(collector.summary())
        combined[name] = collector.report()
    if args.numerics_report:
        path = args.numerics_report
        with open(path, "w") as fh:
            if path.endswith(".jsonl"):
                for name, rep in combined.items():
                    for row in rep["layers"]:
                        fh.write(
                            json.dumps({"type": "numerics", "model": name, **row}) + "\n"
                        )
                    for key, counter in sorted(rep["quant"].items()):
                        fh.write(
                            json.dumps(
                                {"type": "quant_clip", "model": name, "name": key, **counter}
                            )
                            + "\n"
                        )
                    if rep["divergence"] is not None:
                        fh.write(
                            json.dumps(
                                {"type": "reorder_divergence", "model": name, **rep["divergence"]}
                            )
                            + "\n"
                        )
                    if rep["anomaly"] is not None:
                        fh.write(
                            json.dumps({"type": "anomaly", "model": name, **rep["anomaly"]}) + "\n"
                        )
            else:
                json.dump({"bits": bits, "models": combined}, fh, indent=2)
                fh.write("\n")
        print(f"numerics report -> {path}")
    return 0


def _run_attrib(args) -> int:
    """One-command roofline attribution (the tentpole CLI surface).

    For each model: compile + counter-instrumented forward +
    accelerator simulation under the tracer, joined against the
    host-calibrated roofline, printed as the attribution table.
    """
    from repro.models import MODEL_REGISTRY
    from repro.obs.attrib import attribute_model_run
    from repro.obs.roofline import get_roofline

    models = args.attrib or ["lenet5", "vgg16"]
    unknown = [m for m in models if m not in MODEL_REGISTRY]
    if unknown:
        print(
            f"unknown model(s) {unknown}; available: {sorted(MODEL_REGISTRY)}",
            file=sys.stderr,
        )
        return 2
    roofline = get_roofline()
    last = None
    for name in models:
        report = attribute_model_run(
            name, bits=args.bits, workers=args.workers, roofline=roofline
        )
        print(f"\n-- {name} --")
        print(report.render())
        last = report
        if args.attrib_report:
            path = args.attrib_report
            if len(models) > 1:
                stem, dot, ext = path.rpartition(".")
                path = f"{stem}.{name}.{ext}" if dot else f"{path}.{name}"
            n = report.write_jsonl(path)
            print(f"attribution report: {n} row(s) -> {path}")
    if args.bench_dashboard and last is not None:
        from repro.obs.dashboard import write_dashboard
        from repro.obs.metrics import MetricRegistry

        path = write_dashboard(
            args.bench_dashboard,
            MetricRegistry(args.bench_root),
            attribution=last.as_dict(),
        )
        print(f"dashboard -> {path}")
    return 0


def _run_diff(args) -> int:
    """Cross-run forensics: trace diff and/or bench-vs-baseline diff."""
    from repro.obs.forensics import diff_bench, diff_runs

    run_diff = None
    if args.diff_trace is not None:
        a, b = args.diff_trace
        run_diff = diff_runs(a, b)
        print(run_diff.render())
        culprit = run_diff.culprit
        if culprit is not None and abs(culprit.delta_us) > 0:
            print(
                f"top change: {culprit.name} "
                f"({culprit.delta_us / 1e3:+.3f} ms"
                + (f"; {'; '.join(culprit.notes)}" if culprit.notes else "")
                + ")"
            )
    if args.diff_bench is not None:
        bench = diff_bench(args.diff_bench, root=args.bench_root)
        print(bench.render())
    if args.bench_dashboard and run_diff is not None:
        from repro.obs.dashboard import write_dashboard
        from repro.obs.metrics import MetricRegistry

        path = write_dashboard(
            args.bench_dashboard, MetricRegistry(args.bench_root), run_diff=run_diff
        )
        print(f"dashboard -> {path}")
    return 0


def _bench_compare(args) -> int:
    """The perf-engineering loop's CI entry point.

    ``--bench-compare metrics.jsonl`` gates the run against the
    committed ``BENCH_<area>.json`` baselines (exit 1 on regression);
    ``--bench-update`` refreshes the baselines instead;
    ``--bench-dashboard`` renders the trend dashboard either way.
    """
    from repro.obs.dashboard import write_dashboard
    from repro.obs.metrics import MetricRegistry, load_metrics_jsonl
    from repro.obs.regress import gate_metrics

    registry = MetricRegistry(args.bench_root)
    per_area = {}
    if args.bench_compare is not None:
        per_area = load_metrics_jsonl(args.bench_compare)
        if not per_area:
            print(f"no metric rows in {args.bench_compare}", file=sys.stderr)
            return 2

    rc = 0
    report = None
    if args.bench_compare is not None and args.bench_update:
        for area, metrics in sorted(per_area.items()):
            path = registry.update(area, metrics)
            print(f"baseline updated: {path} ({len(metrics)} metric(s))")
    elif args.bench_compare is not None:
        report = gate_metrics(per_area, registry)
        print(report.render())
        rc = 1 if report.failed else 0

    if args.bench_dashboard:
        path = write_dashboard(
            args.bench_dashboard, registry, current=per_area or None, gate_report=report
        )
        print(f"dashboard -> {path}")
    return rc


def _run_suite(parser: argparse.ArgumentParser, args) -> int:
    """Run the selected experiment set, timing each one."""
    experiments = dict(FAST_EXPERIMENTS)
    if args.accuracy or (args.only and set(args.only) & set(ACCURACY_EXPERIMENTS)):
        experiments.update(ACCURACY_EXPERIMENTS)
    if args.only:
        unknown = set(args.only) - set(experiments)
        if unknown:
            parser.error(f"unknown experiments {sorted(unknown)}; "
                         f"available: {sorted(experiments)}")
        experiments = {k: experiments[k] for k in args.only}

    budget = AccuracyBudget() if args.full else FAST_BUDGET
    tracer = obs.get_tracer()
    suite_start = perf_counter()
    with tracer.span("experiments.suite", category="experiments", count=len(experiments)):
        for name, fn in experiments.items():
            start = perf_counter()
            with tracer.span(f"experiment.{name}", category="experiments"):
                if name in ACCURACY_EXPERIMENTS:
                    report = fn(budget=budget)
                else:
                    report = fn()
            report.show()
            wall = perf_counter() - start
            tracer.observe("experiment.wall_s", wall)
            print(f"  [{name}: {wall:.1f}s]")
    print(
        f"\n== total: {len(experiments)} experiment(s) in "
        f"{perf_counter() - suite_start:.1f}s =="
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
