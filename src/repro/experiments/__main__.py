"""Run every reproduction experiment from the command line.

Usage::

    python -m repro.experiments                # analytic + accelerator
    python -m repro.experiments --accuracy     # include training runs
    python -m repro.experiments --only table2 fig13
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    ablation_reuse,
    extension_resnet18,
    related_fused_layer,
    extension_pruning,
    equation_limits,
    fig3_reordering_accuracy,
    fig4_pooling_accuracy,
    fig12_quantization_accuracy,
    fig13_speedup,
    fig14_flops_reduction,
    fig15_energy,
    table1_models,
    table2_lar_filter,
    table3_lar_stride,
    table4_gar_filter,
    table5_gar_stride,
    table6_gar_inputdim,
    table7_configs,
)
from repro.experiments.accuracy import FAST_BUDGET, AccuracyBudget

FAST_EXPERIMENTS = {
    "table1": table1_models,
    "table2": table2_lar_filter,
    "table3": table3_lar_stride,
    "table4": table4_gar_filter,
    "table5": table5_gar_stride,
    "table6": table6_gar_inputdim,
    "limits": equation_limits,
    "table7": table7_configs,
    "fig13": fig13_speedup,
    "fig14": fig14_flops_reduction,
    "fig15": fig15_energy,
    "ablation": ablation_reuse,
    "resnet18": extension_resnet18,
    "fusedlayer": related_fused_layer,
    "pruning": extension_pruning,
}

ACCURACY_EXPERIMENTS = {
    "fig3": fig3_reordering_accuracy,
    "fig4": fig4_pooling_accuracy,
    "fig12": fig12_quantization_accuracy,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accuracy", action="store_true", help="also run the training experiments")
    parser.add_argument("--full", action="store_true", help="use the full training budget")
    parser.add_argument("--only", nargs="*", default=None, help="subset of experiment names")
    args = parser.parse_args(argv)

    experiments = dict(FAST_EXPERIMENTS)
    if args.accuracy or (args.only and set(args.only) & set(ACCURACY_EXPERIMENTS)):
        experiments.update(ACCURACY_EXPERIMENTS)
    if args.only:
        unknown = set(args.only) - set(experiments)
        if unknown:
            parser.error(f"unknown experiments {sorted(unknown)}; "
                         f"available: {sorted(experiments)}")
        experiments = {k: experiments[k] for k in args.only}

    budget = AccuracyBudget() if args.full else FAST_BUDGET
    for name, fn in experiments.items():
        start = time.time()
        if name in ACCURACY_EXPERIMENTS:
            report = fn(budget=budget)
        else:
            report = fn()
        report.show()
        print(f"  [{name}: {time.time() - start:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
