"""repro.experiments — one entry point per paper table/figure.

Each function regenerates the rows/series of one table or figure of the
paper's evaluation and returns an
:class:`~repro.analysis.report.ExperimentReport`; the benchmark suite
(``benchmarks/``) wraps these with pytest-benchmark and prints the
rendered tables next to the paper's reference values.

Accuracy experiments (Figs. 3, 4, 12) train width-reduced models on the
synthetic datasets; their cost is controlled by the ``budget``
argument.
"""

from repro.experiments.analytic import (
    table1_models,
    table2_lar_filter,
    table3_lar_stride,
    table4_gar_filter,
    table5_gar_stride,
    table6_gar_inputdim,
    equation_limits,
)
from repro.experiments.accelerator import (
    table7_configs,
    fig13_speedup,
    fig14_flops_reduction,
    fig15_energy,
    ablation_reuse,
    extension_resnet18,
    related_fused_layer,
    extension_pruning,
)
from repro.experiments.accuracy import (
    AccuracyBudget,
    fig3_reordering_accuracy,
    fig4_pooling_accuracy,
    fig12_quantization_accuracy,
)

__all__ = [
    "table1_models",
    "table2_lar_filter",
    "table3_lar_stride",
    "table4_gar_filter",
    "table5_gar_stride",
    "table6_gar_inputdim",
    "equation_limits",
    "table7_configs",
    "fig13_speedup",
    "fig14_flops_reduction",
    "fig15_energy",
    "ablation_reuse",
    "extension_resnet18",
    "related_fused_layer",
    "extension_pruning",
    "AccuracyBudget",
    "fig3_reordering_accuracy",
    "fig4_pooling_accuracy",
    "fig12_quantization_accuracy",
]
