"""Accuracy experiments: Figs. 3, 4 and 12.

The paper's claims are *relative*: (i) reordering ReLU and average
pooling barely moves accuracy, and less so on bigger models; (ii) the
reordered network beats All-Conv, especially on the 100-class task;
(iii) average pooling generally beats max pooling; (iv) 8-bit
quantized MLCNN stays within ~1% of FP32.

We retrain the same width-reduced architecture under each variant on
the synthetic CIFAR stand-ins (see DESIGN.md for the substitution
rationale) and report top-1/top-5 accuracy.  All randomness is seeded;
``AccuracyBudget`` controls cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.report import ExperimentReport, format_percent
from repro.core.quantize import QuantConfig, quantize_model
from repro.data import make_synth_cifar, SyntheticImageConfig, train_val_split
from repro.models import build_model, reorder_activation_pooling, set_pooling, to_allconv
from repro.train import TrainConfig, Trainer, evaluate


@dataclass(frozen=True)
class AccuracyBudget:
    """Cost knobs of the training experiments.

    Adam is the default optimizer: its per-parameter scaling makes the
    three Fig. 3 variants train comparably at one learning rate (SGD
    needs per-variant tuning because reordering halves the activation
    variance reaching the ReLUs).
    """

    epochs: int = 12
    samples_per_class_10: int = 48
    samples_per_class_100: int = 8
    image_size: int = 32
    batch_size: int = 32
    lr: float = 2e-3
    optimizer: str = "adam"
    #: width multiplier per model (LeNet-5 trains at full width)
    widths: Dict[str, float] = field(
        default_factory=lambda: {
            "lenet5": 1.0,
            "vgg16": 0.25,
            "vgg19": 0.25,
            "googlenet": 0.125,
            "densenet": 0.5,
            "resnet18": 0.25,
        }
    )
    seed: int = 0

    def width(self, model: str) -> float:
        return self.widths.get(model, 0.25)


FAST_BUDGET = AccuracyBudget(
    epochs=4,
    samples_per_class_10=24,
    samples_per_class_100=4,
    image_size=32,
    widths={"lenet5": 0.5, "vgg16": 0.125, "vgg19": 0.125, "googlenet": 0.0625,
            "densenet": 0.25, "resnet18": 0.125},
)


def _dataset(num_classes: int, budget: AccuracyBudget):
    spc = budget.samples_per_class_10 if num_classes == 10 else budget.samples_per_class_100
    cfg = SyntheticImageConfig(
        num_classes=num_classes,
        samples_per_class=spc,
        image_size=budget.image_size,
        basis_size=64 if num_classes == 100 else 48,
        gratings_per_class=3 if num_classes == 100 else 4,
        noise_sigma=0.45 if num_classes == 100 else 0.35,
        seed=budget.seed,
    )
    return train_val_split(make_synth_cifar(cfg), val_fraction=0.25, seed=budget.seed)


def _train(model, train_set, val_set, budget: AccuracyBudget) -> Tuple[float, float]:
    trainer = Trainer(
        model,
        train_set,
        val_set,
        TrainConfig(
            epochs=budget.epochs,
            batch_size=budget.batch_size,
            lr=budget.lr,
            optimizer=budget.optimizer,
            seed=budget.seed,
        ),
    )
    trainer.fit()
    _, top1, top5 = evaluate(model, val_set, budget.batch_size)
    return top1, top5


def _variant_model(name: str, variant: str, num_classes: int, budget: AccuracyBudget):
    """Build one of the three Fig. 3 variants of ``name``."""
    model = build_model(
        name,
        num_classes=num_classes,
        image_size=budget.image_size,
        width_mult=budget.width(name),
        pooling="avg",
        seed=budget.seed,
    )
    if variant == "relu+ap":
        return model  # original order
    if variant == "ap+relu":
        return reorder_activation_pooling(model)
    if variant == "all-conv":
        return to_allconv(model)
    raise ValueError(f"unknown variant {variant!r}")


def fig3_reordering_accuracy(
    models: Sequence[str] = ("lenet5", "vgg16", "googlenet"),
    class_counts: Sequence[int] = (10, 100),
    budget: AccuracyBudget = AccuracyBudget(),
) -> ExperimentReport:
    """Fig. 3: original vs reordered vs All-Conv accuracy."""
    rep = ExperimentReport(
        "Fig. 3",
        "influence of reordering activation and pooling on accuracy",
        headers=["dataset", "model", "ReLU+AP top1", "AP+ReLU top1", "All-Conv top1",
                 "ReLU+AP top5", "AP+ReLU top5", "All-Conv top5"],
    )
    for num_classes in class_counts:
        train_set, val_set = _dataset(num_classes, budget)
        for name in models:
            scores = {}
            for variant in ("relu+ap", "ap+relu", "all-conv"):
                model = _variant_model(name, variant, num_classes, budget)
                scores[variant] = _train(model, train_set, val_set, budget)
            rep.add_row(
                f"synthC{num_classes}",
                name,
                format_percent(scores["relu+ap"][0]),
                format_percent(scores["ap+relu"][0]),
                format_percent(scores["all-conv"][0]),
                format_percent(scores["relu+ap"][1]),
                format_percent(scores["ap+relu"][1]),
                format_percent(scores["all-conv"][1]),
            )
    rep.add_note("paper shape: AP+ReLU within noise of ReLU+AP; All-Conv trails on the 100-class task")
    return rep


def fig4_pooling_accuracy(
    models: Sequence[str] = ("lenet5", "vgg16"),
    class_counts: Sequence[int] = (10, 100),
    budget: AccuracyBudget = AccuracyBudget(),
) -> ExperimentReport:
    """Fig. 4: average vs max pooling accuracy."""
    rep = ExperimentReport(
        "Fig. 4",
        "influence of the pooling function on accuracy",
        headers=["dataset", "model", "avg-pool top1", "max-pool top1"],
    )
    for num_classes in class_counts:
        train_set, val_set = _dataset(num_classes, budget)
        for name in models:
            scores = {}
            for pooling in ("avg", "max"):
                model = build_model(
                    name,
                    num_classes=num_classes,
                    image_size=budget.image_size,
                    width_mult=budget.width(name),
                    pooling=pooling,
                    seed=budget.seed,
                )
                scores[pooling] = _train(model, train_set, val_set, budget)
            rep.add_row(
                f"synthC{num_classes}",
                name,
                format_percent(scores["avg"][0]),
                format_percent(scores["max"][0]),
            )
    rep.add_note("paper shape: average pooling matches or beats max pooling on most models")
    return rep


def fig12_quantization_accuracy(
    models: Sequence[str] = ("lenet5", "vgg16"),
    class_counts: Sequence[int] = (10,),
    bits: int = 8,
    budget: AccuracyBudget = AccuracyBudget(),
) -> ExperimentReport:
    """Fig. 12: DCNN vs MLCNN vs k-bit quantized MLCNN accuracy."""
    rep = ExperimentReport(
        "Fig. 12",
        f"accuracy of DCNN, MLCNN and INT{bits}-quantized MLCNN",
        headers=["dataset", "model", "DCNN top1", "MLCNN top1", f"MLCNN INT{bits} top1"],
    )
    for num_classes in class_counts:
        train_set, val_set = _dataset(num_classes, budget)
        for name in models:
            dcnn = _variant_model(name, "relu+ap", num_classes, budget)
            dcnn_score = _train(dcnn, train_set, val_set, budget)

            mlcnn = _variant_model(name, "ap+relu", num_classes, budget)
            mlcnn_score = _train(mlcnn, train_set, val_set, budget)

            qmodel = _variant_model(name, "ap+relu", num_classes, budget)
            quantize_model(qmodel, QuantConfig(bits, bits))
            q_score = _train(qmodel, train_set, val_set, budget)

            rep.add_row(
                f"synthC{num_classes}",
                name,
                format_percent(dcnn_score[0]),
                format_percent(mlcnn_score[0]),
                format_percent(q_score[0]),
            )
    rep.add_note("paper shape: all three within ~1% of each other")
    return rep
