"""Accelerator experiments: Table VII and Figs. 13-15.

The paper reports per-layer speedups (Fig. 13), per-layer FLOP
reductions (Fig. 14) and energy breakdowns (Fig. 15) for the
MLCNN-optimized layers of DenseNet, VGG-16, GoogLeNet and LeNet-5, plus
averages across them.  Absolute cycle/energy values depend on our model
constants; the reproduction targets are the ratios and their ordering.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accel.area import config_area_mm2, slices_for_budget
from repro.accel.config import TABLE7_CONFIGS, get_config
from repro.accel.simulator import compare_networks, simulate_network
from repro.analysis.flops import layer_table
from repro.analysis.report import ExperimentReport, format_percent
from repro.models import specs as model_specs

EVALUATED_MODELS = ("densenet", "vgg16", "googlenet", "lenet5")

#: paper headline averages over optimized layers: config -> (speedup, energy eff)
FIG13_15_PAPER = {"mlcnn-fp32": (3.2, 2.9), "mlcnn-fp16": (6.2, 5.9), "mlcnn-int8": (12.8, 11.3)}


def table7_configs() -> ExperimentReport:
    """Table VII: accelerator configurations under one area budget."""
    rep = ExperimentReport(
        "Table VII",
        "accelerator configurations (equal area and on-chip memory)",
        headers=["config", "#MAC slices", "bitwidth", "area mm^2 (model)", "memory kB", "slices fitting budget"],
    )
    for name, cfg in TABLE7_CONFIGS.items():
        rep.add_row(
            name,
            cfg.mac_slices,
            cfg.bitwidth,
            f"{config_area_mm2(cfg.mac_slices, cfg.bitwidth):.2f}",
            cfg.onchip_memory_kb,
            slices_for_budget(cfg.bitwidth, cfg.area_mm2),
        )
    rep.add_note("paper uses 32/32/64/128 slices at a fixed 1.52 mm^2 and 134 kB")
    return rep


def _fused_layer_metrics(model: str, candidate: str) -> Dict[str, Tuple[float, float]]:
    """(speedup, energy ratio) of each fusable layer of ``model``."""
    layer_specs = model_specs.get_specs(model)
    cmp = compare_networks(layer_specs, get_config("dcnn-fp32"), get_config(candidate))
    speed = cmp.layer_speedups()
    energy = cmp.layer_energy_ratios()
    return {
        s.name: (speed[s.name], energy[s.name])
        for s in layer_specs
        if s.is_fusable
    }


def fig13_speedup(models: Sequence[str] = EVALUATED_MODELS) -> ExperimentReport:
    """Fig. 13: per-optimized-layer speedup of MLCNN over the DCNN baseline."""
    rep = ExperimentReport(
        "Fig. 13",
        "speedup of MLCNN (FP32/FP16/INT8) vs DCNN per optimized layer",
        headers=["model", "layer", "FP32", "FP16", "INT8"],
    )
    averages = {c: [] for c in FIG13_15_PAPER}
    for model in models:
        per_cfg = {c: _fused_layer_metrics(model, c) for c in FIG13_15_PAPER}
        for layer in per_cfg["mlcnn-fp32"]:
            row = [model, layer]
            for c in FIG13_15_PAPER:
                s = per_cfg[c][layer][0]
                averages[c].append(s)
                row.append(f"{s:.2f}x")
            rep.add_row(*row)
    for c, (paper_speed, _) in FIG13_15_PAPER.items():
        ours = np.mean(averages[c])
        rep.add_row("AVERAGE", c, f"{ours:.2f}x", "paper:", f"{paper_speed}x")
    rep.add_note("GoogLeNet stage-5b layers (8x8 pool) show the largest gains, as the paper's C9")
    return rep


def fig14_flops_reduction(models: Sequence[str] = EVALUATED_MODELS) -> ExperimentReport:
    """Fig. 14: percentage of multiplications/additions removed per layer."""
    rep = ExperimentReport(
        "Fig. 14",
        "FLOPs reduced by MLCNN per optimized layer",
        headers=["model", "layer", "K", "pool", "mult reduction", "add reduction"],
    )
    for model in models:
        for row in layer_table(model_specs.get_specs(model)):
            if not row["fusable"]:
                continue
            rep.add_row(
                model,
                row["layer"],
                row["kernel"],
                row["pool"],
                format_percent(row["mult_reduction"]),
                format_percent(row["add_reduction"]),
            )
    rep.add_note("paper: 75% mults for 2x2 pools, up to 98% for GoogLeNet's 8x8;")
    rep.add_note("paper: LeNet-5 C2 peaks at 51.52% additions, DenseNet 1x1 transitions at 0%")
    rep.add_note(
        "our addition reductions exceed the paper's because the layer model "
        "amortizes I_Acc over all output channels (the hardware does); the "
        "per-output single-channel accounting of Tables II-VI is reproduced "
        "exactly by repro.core.opcount"
    )
    return rep


def fig15_energy(models: Sequence[str] = EVALUATED_MODELS) -> ExperimentReport:
    """Fig. 15: energy breakdown (DRAM/Buffer/MAC/static) per network."""
    rep = ExperimentReport(
        "Fig. 15",
        "energy consumption breakdown, MLCNN vs DCNN",
        headers=["model", "config", "DRAM uJ", "Buffer uJ", "MAC uJ", "static uJ", "total uJ", "efficiency"],
    )
    for model in models:
        layer_specs = model_specs.get_specs(model)
        base = simulate_network(layer_specs, get_config("dcnn-fp32"))
        base_total = base.energy.total_j
        for cfg_name in ("dcnn-fp32", "mlcnn-fp32", "mlcnn-fp16", "mlcnn-int8"):
            res = simulate_network(layer_specs, get_config(cfg_name))
            e = res.energy
            rep.add_row(
                model,
                cfg_name,
                f"{e.dram_j * 1e6:.2f}",
                f"{e.buffer_j * 1e6:.2f}",
                f"{e.mac_j * 1e6:.2f}",
                f"{e.static_j * 1e6:.2f}",
                f"{e.total_j * 1e6:.2f}",
                f"{base_total / e.total_j:.2f}x",
            )
    # per-optimized-layer averages, the paper's headline numbers
    for c, (_, paper_eff) in FIG13_15_PAPER.items():
        vals = []
        for model in models:
            vals += [m[1] for m in _fused_layer_metrics(model, c).values()]
        rep.add_row("AVERAGE(fused layers)", c, "", "", "", "", f"{np.mean(vals):.2f}x", f"paper: {paper_eff}x")
    return rep


def related_fused_layer() -> ExperimentReport:
    """Related-work comparison (Section VIII): MLCNN vs fused-layer CNN.

    Alwani et al.'s fused-layer execution [27] keeps intermediate
    feature maps on chip (saving DRAM traffic) but performs every
    multiplication; the paper argues MLCNN (3.2x) beats it (1.5x for
    AlexNet's first two layers) because it removes the arithmetic too.
    """
    import dataclasses

    from repro.accel.simulator import simulate_network, simulate_network_layer_fused

    rep = ExperimentReport(
        "Related work",
        "MLCNN vs Alwani-style fused-layer execution (DCNN FP32 baseline)",
        headers=[
            "model",
            "fused-layer speedup",
            "fused-layer @low-BW",
            "MLCNN speedup (whole net)",
            "MLCNN (optimized layers)",
        ],
    )
    base_cfg = get_config("dcnn-fp32")
    # Fused-layer execution saves only data movement, so its benefit
    # appears at memory-bound operating points (AlexNet's large early
    # feature maps in the paper); model that with 8x lower bandwidth.
    lowbw_cfg = dataclasses.replace(base_cfg, dram_bytes_per_cycle=2.0)
    for model in EVALUATED_MODELS:
        layer_specs = model_specs.get_specs(model)
        base = simulate_network(layer_specs, base_cfg)
        alwani = simulate_network_layer_fused(layer_specs, base_cfg)
        base_low = simulate_network(layer_specs, lowbw_cfg)
        alwani_low = simulate_network_layer_fused(layer_specs, lowbw_cfg)
        mlcnn = simulate_network(layer_specs, get_config("mlcnn-fp32"))
        fused_avg = np.mean(
            [v for v in _fused_layer_metrics(model, "mlcnn-fp32").values()], axis=0
        )[0]
        rep.add_row(
            model,
            f"{base.cycles / alwani.cycles:.2f}x",
            f"{base_low.cycles / alwani_low.cycles:.2f}x",
            f"{base.cycles / mlcnn.cycles:.2f}x",
            f"{fused_avg:.2f}x",
        )
    rep.add_note("paper: fused layers gave 1.5x on AlexNet's first 2 conv layers; MLCNN 3.2x")
    rep.add_note("fused-layer helps only when memory-bound; MLCNN removes the arithmetic itself")
    return rep


def extension_pruning(sparsities=(0.0, 0.5, 0.9)) -> ExperimentReport:
    """Extension: MLCNN composed with magnitude pruning (orthogonality).

    The paper claims MLCNN is complementary to pruning [29]; with
    weight-repetition hardware skipping zero weights, the multiplication
    savings compose multiplicatively: ``1 - (1 - s) / p^2``.
    """
    from repro.core.prune import combined_reduction

    rep = ExperimentReport(
        "Extension (pruning)",
        "multiplication reduction of MLCNN composed with weight sparsity",
        headers=["model", "sparsity", "MLCNN only", "pruning only", "combined"],
    )
    from repro.core.opcount import layer_multiplication_reduction

    for model in EVALUATED_MODELS:
        fused = model_specs.fusable_layers(model_specs.get_specs(model))
        for s in sparsities:
            ml = np.mean([layer_multiplication_reduction(spec) for spec in fused])
            combined = np.mean([combined_reduction(spec, s) for spec in fused])
            rep.add_row(
                model,
                f"{s:.0%}",
                format_percent(ml),
                f"{s:.0%}",
                format_percent(combined),
            )
    return rep


def extension_resnet18() -> ExperimentReport:
    """Extension: MLCNN on ResNet-18 (paper's conclusion claim).

    The conclusions state "the convolutional layers with pooling in
    ResNet-18 can benefit from MLCNN with layer reordering and
    cross-layer optimization"; the CIFAR-style variant here has one
    such layer (the pooled stem).
    """
    layer_specs = model_specs.get_specs("resnet18")
    rep = ExperimentReport(
        "Extension (ResNet-18)",
        "MLCNN applied to ResNet-18's pooled stem",
        headers=["layer", "fused", "FP32 speedup", "INT8 speedup"],
    )
    cmp32 = compare_networks(layer_specs, get_config("dcnn-fp32"), get_config("mlcnn-fp32"))
    cmp8 = compare_networks(layer_specs, get_config("dcnn-fp32"), get_config("mlcnn-int8"))
    s32, s8 = cmp32.layer_speedups(), cmp8.layer_speedups()
    for spec in layer_specs:
        rep.add_row(
            spec.name,
            "yes" if spec.is_fusable else "no",
            f"{s32[spec.name]:.2f}x",
            f"{s8[spec.name]:.2f}x",
        )
    rep.add_row("WHOLE NET", "-", f"{cmp32.speedup:.2f}x", f"{cmp8.speedup:.2f}x")
    return rep


def ablation_reuse(models: Sequence[str] = EVALUATED_MODELS) -> ExperimentReport:
    """Ablation: additions left under RME-only / +LAR / +GAR / +both.

    Not a paper figure; quantifies how much of the addition saving each
    reuse mechanism contributes at the layer level (DESIGN.md S6).
    """
    from repro.core.opcount import dcnn_layer_ops, mlcnn_layer_ops

    rep = ExperimentReport(
        "Ablation",
        "addition reduction by reuse mechanism (fused layers, whole model)",
        headers=["model", "baseline adds", "RME only", "+LAR", "+GAR", "+LAR+GAR"],
    )
    for model in models:
        layer_specs = [s for s in model_specs.get_specs(model) if s.is_fusable]
        base = sum(dcnn_layer_ops(s).additions for s in layer_specs)

        def total(lar: bool, gar: bool) -> int:
            return sum(
                (lambda o: o.additions + o.preprocessing_additions)(
                    mlcnn_layer_ops(s, use_lar=lar, use_gar=gar)
                )
                for s in layer_specs
            )

        rep.add_row(
            model,
            base,
            format_percent(1 - total(False, False) / base),
            format_percent(1 - total(True, False) / base),
            format_percent(1 - total(False, True) / base),
            format_percent(1 - total(True, True) / base),
        )
    return rep
