"""Analytical experiments: Table I and the LAR/GAR tables (II-VI).

Every row carries the paper's reference value next to ours; for these
tables the reproduction is exact (the formulas are closed-form and the
instrumented fused kernel confirms them).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.report import ExperimentReport, format_percent
from repro.core import opcount as oc
from repro.models import specs as model_specs

#: paper Table I reference: conv layers (per stage) and parameter counts
TABLE1_PAPER = {
    "lenet5": ("1+1+1", "62K"),
    "vgg16": ("2+2+3+3+3", "14728K"),
    "vgg19": ("2+2+4+4+4", "20040K"),
    "googlenet": ("1+1+1+9x6", "6166250K (sic)"),
}

#: paper Table II reference rows: K -> (without, with, rate%)
TABLE2_PAPER = {11: (483, 373, 22.8), 9: (323, 251, 22.3), 7: (195, 153, 21.5),
                5: (99, 79, 20.2), 3: (35, 29, 17.1), 2: (15, 13, 13.3)}
#: paper Table III reference rows: S -> with (K=11, without=483)
TABLE3_PAPER = {1: 373, 2: 384, 3: 395, 4: 406, 5: 417, 6: 428, 11: 483}
#: paper Table IV: K -> (without, with, rate%) at D=28, S=1
TABLE4_PAPER = {3: (455, 347, 23.7), 5: (1188, 693, 41.7), 13: (5400, 2397, 55.6),
                15: (6293, 2783, 55.8), 17: (6930, 3105, 55.2)}
#: paper Table V: S -> (without, with, rate%) at K=13, D=28
TABLE5_PAPER = {1: (5400, 2397, 55.6), 3: (2025, 1479, 27.0), 5: (1350, 1233, 8.7)}
#: paper Table VI: D -> (without, with, rate%) at K=13, S=1
TABLE6_PAPER = {28: (5400, 2397, 55.6), 32: (6750, 2889, 57.2), 224: (71550, 26505, 63.0)}


def table1_models(image_size: int = 32) -> ExperimentReport:
    """Table I: conv-layer and learnable-parameter counts per model."""
    from repro.models import build_model

    rep = ExperimentReport(
        "Table I",
        "convolutional layers and learnable parameters of the studied CNNs",
        headers=["model", "#conv layers", "#params (ours, full-width)", "paper layers", "paper params"],
    )
    for name in ("lenet5", "vgg16", "vgg19", "googlenet"):
        layer_specs = model_specs.get_specs(name, image_size)
        model = build_model(name, image_size=image_size)
        paper_layers, paper_params = TABLE1_PAPER[name]
        rep.add_row(name, len(layer_specs), model.num_parameters(), paper_layers, paper_params)
    rep.add_note(
        "LeNet-5 matches the paper's 62K exactly; VGG/GoogLeNet differ because "
        "the paper's CIFAR head sizes are unspecified (GoogLeNet's 6166250K is "
        "a typo in the paper — the real model has ~6M parameters)."
    )
    return rep


def table2_lar_filter() -> ExperimentReport:
    """Table II: LAR addition reduction vs filter size (unit stride)."""
    rep = ExperimentReport(
        "Table II",
        "impact of filter size on local addition reuse (S=1)",
        headers=["K", "adds w/o LAR", "adds w/ LAR", "reduction", "paper w/o", "paper w/", "paper %"],
    )
    for k, (p_wo, p_w, p_rate) in sorted(TABLE2_PAPER.items(), reverse=True):
        rep.add_row(
            f"{k}x{k}",
            oc.lar_additions_without(k),
            oc.lar_additions_with(k),
            format_percent(oc.lar_reduction_rate(k)),
            p_wo,
            p_w,
            f"{p_rate}%",
        )
    rep.add_note("rate approaches 25% as K grows (Eq. 4)")
    return rep


def table3_lar_stride(k: int = 11) -> ExperimentReport:
    """Table III: LAR addition reduction vs step size (K=11)."""
    rep = ExperimentReport(
        "Table III",
        f"impact of step size on local addition reuse (K={k})",
        headers=["S", "adds w/o LAR", "adds w/ LAR", "reduction", "paper w/"],
    )
    for s in (1, 2, 3, 4, 5, 6, 11):
        rep.add_row(
            s,
            oc.lar_additions_without(k),
            oc.lar_additions_with(k, s),
            format_percent(oc.lar_reduction_rate(k, s)),
            TABLE3_PAPER.get(s, "-"),
        )
    return rep


def table4_gar_filter(d: int = 28) -> ExperimentReport:
    """Table IV: GAR addition reduction vs filter size (D=28, S=1)."""
    rep = ExperimentReport(
        "Table IV",
        f"impact of filter size on global addition reuse ({d}x{d} input, S=1)",
        headers=["K", "adds w/o GAR", "adds w/ GAR", "reduction", "paper w/o", "paper w/"],
    )
    for k in (3, 5, 13, 15, 17):
        p = TABLE4_PAPER.get(k, ("-", "-", "-"))
        rep.add_row(
            f"{k}x{k}",
            oc.gar_additions_without(d, k),
            oc.gar_additions_with(d, k),
            format_percent(oc.gar_reduction_rate(d, k)),
            p[0],
            p[1],
        )
    rep.add_note("apex near K=15, then effectiveness drops (paper Section V)")
    return rep


def table5_gar_stride(d: int = 28, k: int = 13) -> ExperimentReport:
    """Table V: GAR addition reduction vs step size (K=13, D=28)."""
    rep = ExperimentReport(
        "Table V",
        f"impact of step size on global addition reuse (K={k}, D={d})",
        headers=["S", "adds w/o GAR", "adds w/ GAR", "reduction", "paper w/o", "paper w/"],
    )
    for s in (1, 3, 5):
        p = TABLE5_PAPER.get(s, ("-", "-", "-"))
        rep.add_row(
            s,
            oc.gar_additions_without(d, k, s),
            oc.gar_additions_with(d, k, s),
            format_percent(oc.gar_reduction_rate(d, k, s)),
            p[0],
            p[1],
        )
    return rep


def table6_gar_inputdim(k: int = 13) -> ExperimentReport:
    """Table VI: GAR addition reduction vs input dimension (K=13, S=1)."""
    rep = ExperimentReport(
        "Table VI",
        f"impact of input dimension on global addition reuse (K={k}, S=1)",
        headers=["D", "adds w/o GAR", "adds w/ GAR", "reduction", "paper w/o", "paper w/"],
    )
    for d in (28, 32, 224):
        p = TABLE6_PAPER.get(d, ("-", "-", "-"))
        rep.add_row(
            f"{d}x{d}",
            oc.gar_additions_without(d, k),
            oc.gar_additions_with(d, k),
            format_percent(oc.gar_reduction_rate(d, k)),
            p[0],
            p[1],
        )
    rep.add_note(f"limit as D->inf: {format_percent(oc.gar_limit_large_input(k))} (Eq. 6: 63.6%)")
    return rep


def equation_limits() -> ExperimentReport:
    """Asymptotic limits from Eqs. 4-7 and the RME percentages."""
    rep = ExperimentReport(
        "Eqs. 4-7",
        "asymptotic reduction limits",
        headers=["quantity", "ours", "paper"],
    )
    rep.add_row("LAR limit (K->inf, Eq. 4)", format_percent(oc.lar_reduction_rate(10_000)), "25%")
    rep.add_row("GAR limit (D->inf, K=13, Eq. 6)", format_percent(oc.gar_limit_large_input(13)), "63.6%")
    rep.add_row("LAR+GAR limit (K->inf, Eq. 7)", format_percent(oc.combined_reduction_rate(10_000)), "75%")
    rep.add_row("RME, 2x2 pooling", format_percent(oc.rme_multiplication_reduction(2)), "75%")
    rep.add_row("RME, 8x8 pooling (GoogLeNet)", format_percent(oc.rme_multiplication_reduction(8)), "~98%")
    return rep
