"""Plain-text table formatting for the benchmark harness.

The benchmark suite prints the same rows/series the paper's tables and
figures report; these helpers keep the output uniform and readable in
CI logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def format_percent(x: float, digits: int = 1) -> str:
    return f"{100.0 * x:.{digits}f}%"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


@dataclass
class ExperimentReport:
    """A titled table plus paper-reference values, printed by benches."""

    experiment: str  # e.g. "Table II"
    description: str
    headers: List[str] = field(default_factory=list)
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        out = [f"== {self.experiment}: {self.description} =="]
        if self.rows:
            out.append(format_table(self.headers, self.rows))
        for note in self.notes:
            out.append(f"  note: {note}")
        return "\n".join(out)

    def show(self) -> None:
        print("\n" + self.render())
