"""repro.analysis — FLOP audits and experiment reporting."""

from repro.analysis.flops import (
    model_flops,
    count_model_macs,
    count_transformed_macs,
    probe_forward,
    layer_table,
)
from repro.analysis.report import format_table, format_percent, ExperimentReport
from repro.analysis.sweep import (
    lar_rate_vs_filter,
    gar_rate_vs_filter,
    gar_rate_vs_input,
    speedup_vs_pool_size,
    addition_reduction_vs_kernel,
    speedup_vs_bandwidth,
    speedup_vs_batch,
)

__all__ = [
    "model_flops",
    "count_model_macs",
    "count_transformed_macs",
    "probe_forward",
    "layer_table",
    "format_table",
    "format_percent",
    "ExperimentReport",
    "lar_rate_vs_filter",
    "gar_rate_vs_filter",
    "gar_rate_vs_input",
    "speedup_vs_pool_size",
    "addition_reduction_vs_kernel",
    "speedup_vs_bandwidth",
    "speedup_vs_batch",
]
