"""Parameter sweeps producing the series behind the paper's analysis.

Each function returns ``(xs, ys)`` arrays suitable for plotting or
tabulation — the continuous versions of Tables II-VI and the
speedup-vs-pool-size trend that explains Fig. 13's GoogLeNet outlier.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.accel.config import get_config
from repro.accel.simulator import simulate_layer
from repro.core import opcount as oc
from repro.models.specs import LayerSpec


def lar_rate_vs_filter(k_values: Sequence[int] = range(2, 41), s: int = 1):
    """LAR reduction rate as the filter grows (approaches 25%)."""
    ks = np.array(list(k_values))
    return ks, np.array([oc.lar_reduction_rate(int(k), s) for k in ks])


def gar_rate_vs_filter(d: int = 28, k_values: Sequence[int] | None = None, s: int = 1):
    """GAR reduction rate vs filter size at fixed input dimension."""
    if k_values is None:
        k_values = [k for k in range(2, d - 1) if (d - k) >= 2 * s]
    ks = np.array(list(k_values))
    return ks, np.array([oc.gar_reduction_rate(d, int(k), s) for k in ks])


def gar_rate_vs_input(k: int = 13, d_values: Sequence[int] | None = None, s: int = 1):
    """GAR reduction rate vs input dimension (approaches Eq. 6's limit)."""
    if d_values is None:
        d_values = list(range(k + 2 * s, 257, 4))
    ds = np.array(list(d_values))
    return ds, np.array([oc.gar_reduction_rate(int(d), k, s) for d in ds])


def speedup_vs_pool_size(
    pool_sizes: Sequence[int] = (2, 4, 8),
    in_channels: int = 64,
    out_channels: int = 64,
    kernel: int = 3,
    config: str = "mlcnn-fp32",
):
    """Modelled layer speedup as the pooling window grows.

    The input is sized so every pool size produces the same number of
    pooled outputs, isolating the RME effect — the driver behind
    GoogLeNet's stage-5b peak in Fig. 13.
    """
    base_cfg = get_config("dcnn-fp32")
    cand_cfg = get_config(config)
    ps = np.array(list(pool_sizes))
    speedups = []
    for p in ps:
        outputs = 4  # pooled outputs per row
        d = int(p) * outputs + kernel - 1
        spec = LayerSpec("sweep", in_channels, out_channels, d, kernel, pool=int(p))
        base = simulate_layer(spec, base_cfg)
        cand = simulate_layer(spec, cand_cfg, input_preprocessed=True)
        speedups.append(base.cycles / cand.cycles)
    return ps, np.array(speedups)


def addition_reduction_vs_kernel(
    kernels: Sequence[int] = (1, 2, 3, 5, 7),
    input_size: int = 32,
    channels: int = 16,
):
    """Layer-level addition reduction vs conv kernel (Fig. 14 trend)."""
    ks = np.array(list(kernels))
    out = []
    for k in ks:
        spec = LayerSpec("sweep", channels, channels, input_size, int(k),
                         padding=int(k) // 2, pool=2)
        out.append(oc.layer_addition_reduction(spec))
    return ks, np.array(out)


def speedup_vs_bandwidth(
    bandwidths: Sequence[float] = (0.5, 1, 2, 4, 8, 16, 32, 64),
    model: str = "vgg16",
):
    """MLCNN whole-network speedup as DRAM bandwidth varies.

    Shows the operating-point crossover: at starved bandwidth both
    configurations are memory-bound and the speedup approaches the
    traffic ratio (~2x with preprocessing); with ample bandwidth it
    approaches the arithmetic ratio set by RME.
    """
    import dataclasses

    from repro.accel.simulator import simulate_network
    from repro.models.specs import get_specs

    specs = get_specs(model)
    base_cfg = get_config("dcnn-fp32")
    cand_cfg = get_config("mlcnn-fp32")
    bws = np.array(list(bandwidths), dtype=float)
    speedups = []
    for bw in bws:
        b = dataclasses.replace(base_cfg, dram_bytes_per_cycle=float(bw))
        c = dataclasses.replace(cand_cfg, dram_bytes_per_cycle=float(bw))
        speedups.append(
            simulate_network(specs, b).cycles / simulate_network(specs, c).cycles
        )
    return bws, np.array(speedups)


def speedup_vs_batch(
    batches: Sequence[int] = (1, 2, 4, 8, 16),
    model: str = "vgg16",
    config: str = "mlcnn-fp32",
):
    """Whole-network MLCNN speedup as the inference batch grows."""
    from repro.accel.simulator import simulate_network
    from repro.models.specs import get_specs

    specs = get_specs(model)
    base_cfg = get_config("dcnn-fp32")
    cand_cfg = get_config(config)
    bs = np.array(list(batches))
    speedups = []
    for n in bs:
        speedups.append(
            simulate_network(specs, base_cfg, batch=int(n)).cycles
            / simulate_network(specs, cand_cfg, batch=int(n)).cycles
        )
    return bs, np.array(speedups)
