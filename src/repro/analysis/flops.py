"""FLOP auditing for spec lists and live models.

Bridges the two model representations: the full-size
:class:`~repro.models.specs.LayerSpec` lists used by the accelerator
experiments and the live (possibly width-reduced) NumPy models used by
the accuracy experiments.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.opcount import (
    dcnn_layer_ops,
    layer_addition_reduction,
    layer_multiplication_reduction,
    mlcnn_layer_ops,
)
from repro.models.blocks import ConvBlock
from repro.models.specs import LayerSpec
from repro.nn.layers import Conv2d, Linear, Module


def model_flops(specs: Sequence[LayerSpec], fused: bool = False) -> int:
    """Total multiply+add count of a spec list (conv layers only)."""
    total = 0
    for spec in specs:
        ops = mlcnn_layer_ops(spec) if fused else dcnn_layer_ops(spec)
        total += ops.total
    return total


def count_model_macs(model: Module, input_shape: tuple) -> int:
    """MAC count of a live model by shape propagation on a dummy input.

    Runs a single forward pass while hooking every Conv2d/Linear to
    record its output shape; useful for width-reduced training models.
    """
    from repro.nn.tensor import Tensor, no_grad

    macs = {"total": 0}
    original_conv = Conv2d.forward
    original_linear = Linear.forward

    def conv_fwd(self, x):
        out = original_conv(self, x)
        n, m, ho, wo = out.shape
        macs["total"] += (
            n * m * ho * wo * self.in_channels * self.kernel_size[0] * self.kernel_size[1]
        )
        return out

    def linear_fwd(self, x):
        out = original_linear(self, x)
        macs["total"] += self.in_features * self.out_features * x.shape[0]
        return out

    Conv2d.forward = conv_fwd
    Linear.forward = linear_fwd
    try:
        with no_grad():
            model(Tensor(np.zeros(input_shape)))
    finally:
        Conv2d.forward = original_conv
        Linear.forward = original_linear
    return macs["total"]


def layer_table(specs: Sequence[LayerSpec]) -> List[Dict[str, object]]:
    """Per-layer audit rows for Fig. 14-style reporting."""
    rows: List[Dict[str, object]] = []
    for spec in specs:
        base = dcnn_layer_ops(spec)
        fused = mlcnn_layer_ops(spec)
        rows.append(
            {
                "layer": spec.name,
                "fusable": spec.is_fusable,
                "kernel": spec.kernel,
                "pool": spec.pool,
                "dcnn_mults": base.multiplications,
                "dcnn_adds": base.additions,
                "mlcnn_mults": fused.multiplications,
                "mlcnn_adds": fused.additions + fused.preprocessing_additions,
                "mult_reduction": layer_multiplication_reduction(spec) if spec.is_fusable else 0.0,
                "add_reduction": layer_addition_reduction(spec) if spec.is_fusable else 0.0,
            }
        )
    return rows
