"""FLOP auditing for spec lists and live models.

Bridges the two model representations: the full-size
:class:`~repro.models.specs.LayerSpec` lists used by the accelerator
experiments and the live (possibly width-reduced) NumPy models used by
the accuracy experiments.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.opcount import (
    dcnn_layer_ops,
    layer_addition_reduction,
    layer_multiplication_reduction,
    mlcnn_layer_ops,
)
from repro.models.blocks import ConvBlock
from repro.models.specs import LayerSpec
from repro.nn.layers import Conv2d, Linear, Module


def model_flops(specs: Sequence[LayerSpec], fused: bool = False) -> int:
    """Total multiply+add count of a spec list (conv layers only)."""
    total = 0
    for spec in specs:
        ops = mlcnn_layer_ops(spec) if fused else dcnn_layer_ops(spec)
        total += ops.total
    return total


def count_model_macs(model: Module, input_shape: tuple) -> int:
    """MAC count of a live model by shape propagation on a dummy input.

    Runs a single forward pass while hooking every Conv2d/Linear to
    record its output shape; useful for width-reduced training models.
    """
    from repro.nn.tensor import Tensor, no_grad

    macs = {"total": 0}
    original_conv = Conv2d.forward
    original_linear = Linear.forward

    def conv_fwd(self, x):
        out = original_conv(self, x)
        n, m, ho, wo = out.shape
        macs["total"] += (
            n * m * ho * wo * self.in_channels * self.kernel_size[0] * self.kernel_size[1]
        )
        return out

    def linear_fwd(self, x):
        out = original_linear(self, x)
        macs["total"] += self.in_features * self.out_features * x.shape[0]
        return out

    Conv2d.forward = conv_fwd
    Linear.forward = linear_fwd
    try:
        with no_grad():
            model(Tensor(np.zeros(input_shape)))
    finally:
        Conv2d.forward = original_conv
        Linear.forward = original_linear
    return macs["total"]


def probe_forward(model: Module, x: np.ndarray):
    """One gradient-free forward pass returning ``(output, macs)``.

    Unlike :func:`count_model_macs` (which hooks the ``Conv2d`` /
    ``Linear`` *modules*), this hooks the functional ``conv2d`` /
    ``linear`` entry points, so transformed models are counted
    faithfully: a :class:`~repro.core.fusion.FusedConvPool` convolves
    the box-summed input at *pooled* resolution and is therefore
    counted at the RME-reduced cost, and a
    :class:`~repro.core.quantize.QuantizedConvBlock` (which bypasses
    ``Conv2d.forward``) is counted at all.  The compiler pipeline uses
    this for its per-pass FLOP-delta instrumentation.
    """
    from repro.nn import functional as F
    from repro.nn.tensor import Tensor, no_grad

    macs = {"total": 0}
    original_conv = F.conv2d
    original_linear = F.linear

    def conv2d(x, weight, bias=None, stride=1, padding=0, save_memory=None):
        out = original_conv(x, weight, bias, stride, padding, save_memory)
        n, m, ho, wo = out.shape
        _, cin, kh, kw = weight.shape
        macs["total"] += n * m * ho * wo * cin * kh * kw
        return out

    def linear(x, weight, bias=None):
        out = original_linear(x, weight, bias)
        fan_out, fan_in = weight.shape
        macs["total"] += x.shape[0] * fan_in * fan_out
        return out

    F.conv2d = conv2d
    F.linear = linear
    try:
        with no_grad():
            out = model(Tensor(np.asarray(x)))
    finally:
        F.conv2d = original_conv
        F.linear = original_linear
    return out.data, macs["total"]


def count_transformed_macs(model: Module, input_shape: tuple) -> int:
    """MAC count of a (possibly fused/quantized) model; see :func:`probe_forward`."""
    _, macs = probe_forward(model, np.zeros(input_shape))
    return macs


def layer_table(specs: Sequence[LayerSpec]) -> List[Dict[str, object]]:
    """Per-layer audit rows for Fig. 14-style reporting."""
    rows: List[Dict[str, object]] = []
    for spec in specs:
        base = dcnn_layer_ops(spec)
        fused = mlcnn_layer_ops(spec)
        rows.append(
            {
                "layer": spec.name,
                "fusable": spec.is_fusable,
                "kernel": spec.kernel,
                "pool": spec.pool,
                "dcnn_mults": base.multiplications,
                "dcnn_adds": base.additions,
                "mlcnn_mults": fused.multiplications,
                "mlcnn_adds": fused.additions + fused.preprocessing_additions,
                "mult_reduction": layer_multiplication_reduction(spec) if spec.is_fusable else 0.0,
                "add_reduction": layer_addition_reduction(spec) if spec.is_fusable else 0.0,
            }
        )
    return rows
