"""Reverse-mode autograd tensor.

A :class:`Tensor` wraps a ``numpy.ndarray`` and records the operations
applied to it in a DAG of closures.  Calling :meth:`Tensor.backward`
topologically sorts the DAG and accumulates gradients into ``.grad``.

The design mirrors the "define-by-run" style of PyTorch but stays
deliberately small: every differentiable primitive is a function that
creates an output tensor whose ``_backward`` closure knows how to push
the output gradient to its parents.  Heavier NN primitives (conv2d,
pooling, batch-norm, losses) live in :mod:`repro.nn.functional`.

All data is kept in ``float64`` by default for numerically robust
gradient checking; training code may pass ``float32``.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

Arrayish = Union["Tensor", np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return True when operations should record the autograd graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording (inference mode)."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "_is_leaf",
        "_retain_grad",
        "name",
    )

    def __init__(
        self,
        data: Arrayish,
        requires_grad: bool = False,
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64 if not isinstance(data, np.ndarray) else data.dtype)
        if self.data.dtype not in (np.float32, np.float64):
            self.data = self.data.astype(np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()
        self._is_leaf = True
        self._retain_grad = False
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut out of the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def retain_grad(self) -> "Tensor":
        """Request ``.grad`` accumulation on this non-leaf node.

        Leaves (user-created tensors) always accumulate; intermediates
        do not, to keep training memory proportional to activations
        rather than to the whole backward graph.
        """
        self._retain_grad = True
        return self

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def astype(self, dtype) -> "Tensor":
        out = _make(self.data.astype(dtype), (self,))
        if out.requires_grad:

            def _bw(g: np.ndarray) -> None:
                self._accumulate(g.astype(self.data.dtype))

            out._backward = _bw
        return out

    # ------------------------------------------------------------------
    # Autograd machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (scalar outputs only need ``None``).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient is only valid "
                    f"for scalar tensors, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(f"gradient shape {grad.shape} != tensor shape {self.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited:
                    stack.append((p, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node._is_leaf or node._retain_grad:
                node._accumulate(g)
            if node._backward is not None:
                _CURRENT_SINK.append(grads)
                try:
                    node._backward(g)
                finally:
                    _CURRENT_SINK.pop()

    # ------------------------------------------------------------------
    # Arithmetic (each returns a new graph node)
    # ------------------------------------------------------------------
    def __add__(self, other: Arrayish) -> "Tensor":
        other = _as_tensor(other)
        out = _make(self.data + other.data, (self, other))
        if out.requires_grad:

            def _bw(g: np.ndarray) -> None:
                _send(self, _unbroadcast(g, self.shape))
                _send(other, _unbroadcast(g, other.shape))

            out._backward = _bw
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = _make(-self.data, (self,))
        if out.requires_grad:
            out._backward = lambda g: _send(self, -g)
        return out

    def __sub__(self, other: Arrayish) -> "Tensor":
        other = _as_tensor(other)
        out = _make(self.data - other.data, (self, other))
        if out.requires_grad:

            def _bw(g: np.ndarray) -> None:
                _send(self, _unbroadcast(g, self.shape))
                _send(other, _unbroadcast(-g, other.shape))

            out._backward = _bw
        return out

    def __rsub__(self, other: Arrayish) -> "Tensor":
        return _as_tensor(other).__sub__(self)

    def __mul__(self, other: Arrayish) -> "Tensor":
        other = _as_tensor(other)
        out = _make(self.data * other.data, (self, other))
        if out.requires_grad:

            def _bw(g: np.ndarray) -> None:
                _send(self, _unbroadcast(g * other.data, self.shape))
                _send(other, _unbroadcast(g * self.data, other.shape))

            out._backward = _bw
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: Arrayish) -> "Tensor":
        other = _as_tensor(other)
        out = _make(self.data / other.data, (self, other))
        if out.requires_grad:

            def _bw(g: np.ndarray) -> None:
                _send(self, _unbroadcast(g / other.data, self.shape))
                _send(other, _unbroadcast(-g * self.data / (other.data ** 2), other.shape))

            out._backward = _bw
        return out

    def __rtruediv__(self, other: Arrayish) -> "Tensor":
        return _as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out = _make(self.data ** exponent, (self,))
        if out.requires_grad:
            out._backward = lambda g: _send(
                self, g * exponent * self.data ** (exponent - 1)
            )
        return out

    def __matmul__(self, other: Arrayish) -> "Tensor":
        other = _as_tensor(other)
        out = _make(self.data @ other.data, (self, other))
        if out.requires_grad:

            def _bw(g: np.ndarray) -> None:
                a, b = self.data, other.data
                if a.ndim == 1 and b.ndim == 1:
                    _send(self, g * b)
                    _send(other, g * a)
                    return
                ga = g @ np.swapaxes(b, -1, -2) if b.ndim > 1 else np.outer(g, b)
                gb = np.swapaxes(a, -1, -2) @ g if a.ndim > 1 else np.outer(a, g)
                _send(self, _unbroadcast(ga, self.shape))
                _send(other, _unbroadcast(gb, other.shape))

            out._backward = _bw
        return out

    # ------------------------------------------------------------------
    # Reductions and shape ops
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = _make(self.data.sum(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:

            def _bw(g: np.ndarray) -> None:
                if axis is None:
                    _send(self, np.broadcast_to(g, self.shape).copy())
                    return
                if not keepdims:
                    g = np.expand_dims(g, axis)
                _send(self, np.broadcast_to(g, self.shape).copy())

            out._backward = _bw
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        n = self.data.size if axis is None else np.prod(
            [self.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(n))

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = _make(self.data.reshape(shape), (self,))
        if out.requires_grad:
            out._backward = lambda g: _send(self, g.reshape(self.shape))
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        axes = axes or tuple(reversed(range(self.ndim)))
        out = _make(self.data.transpose(axes), (self,))
        if out.requires_grad:
            inv = np.argsort(axes)
            out._backward = lambda g: _send(self, g.transpose(inv))
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, idx) -> "Tensor":
        out = _make(self.data[idx], (self,))
        if out.requires_grad:

            def _bw(g: np.ndarray) -> None:
                full = np.zeros_like(self.data)
                np.add.at(full, idx, g)
                _send(self, full)

            out._backward = _bw
        return out

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out = _make(np.exp(self.data), (self,))
        if out.requires_grad:
            out._backward = lambda g: _send(self, g * out.data)
        return out

    def log(self) -> "Tensor":
        out = _make(np.log(self.data), (self,))
        if out.requires_grad:
            out._backward = lambda g: _send(self, g / self.data)
        return out

    def tanh(self) -> "Tensor":
        out = _make(np.tanh(self.data), (self,))
        if out.requires_grad:
            out._backward = lambda g: _send(self, g * (1.0 - out.data ** 2))
        return out

    def sigmoid(self) -> "Tensor":
        out = _make(1.0 / (1.0 + np.exp(-self.data)), (self,))
        if out.requires_grad:
            out._backward = lambda g: _send(self, g * out.data * (1.0 - out.data))
        return out

    def relu(self) -> "Tensor":
        out = _make(np.maximum(self.data, 0.0), (self,))
        if out.requires_grad:
            mask = self.data > 0
            out._backward = lambda g: _send(self, g * mask)
        return out

    def abs(self) -> "Tensor":
        out = _make(np.abs(self.data), (self,))
        if out.requires_grad:
            sign = np.sign(self.data)
            out._backward = lambda g: _send(self, g * sign)
        return out

    def clip(self, lo: float, hi: float) -> "Tensor":
        out = _make(np.clip(self.data, lo, hi), (self,))
        if out.requires_grad:
            mask = (self.data >= lo) & (self.data <= hi)
            out._backward = lambda g: _send(self, g * mask)
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = _make(out_data, (self,))
        if out.requires_grad:

            def _bw(g: np.ndarray) -> None:
                expanded = out_data if keepdims or axis is None else np.expand_dims(out_data, axis)
                gexp = g if keepdims or axis is None else np.expand_dims(g, axis)
                mask = self.data == expanded
                # Split gradient among ties, matching subgradient convention.
                counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
                _send(self, mask * gexp / counts)

            out._backward = _bw
        return out


_CURRENT_SINK: list[dict] = []


def _send(tensor: Tensor, grad: np.ndarray) -> None:
    """Route a computed parent gradient into the active backward pass.

    During ``Tensor.backward`` gradients are staged in a dict keyed by
    tensor identity so that each node's ``_backward`` runs exactly once,
    after all of its consumers have contributed.
    """
    if not tensor.requires_grad and tensor._backward is None:
        return
    sink = _CURRENT_SINK[-1]
    key = id(tensor)
    if key in sink:
        sink[key] = sink[key] + grad
    else:
        sink[key] = grad


def _as_tensor(x: Arrayish) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(x)


def _make(data: np.ndarray, parents: Iterable[Tensor]) -> Tensor:
    """Create a graph node whose requires_grad is inherited from parents."""
    parents = tuple(parents)
    out = Tensor(data)
    if is_grad_enabled() and any(p.requires_grad or p._backward is not None for p in parents):
        out.requires_grad = True
        out._parents = parents
        out._is_leaf = False
    return out


def make_node(data: np.ndarray, parents: Iterable[Tensor]) -> Tensor:
    """Public hook for :mod:`repro.nn.functional` to create graph nodes."""
    return _make(data, parents)


def send_grad(tensor: Tensor, grad: np.ndarray) -> None:
    """Public hook for functional backward closures."""
    _send(tensor, grad)
