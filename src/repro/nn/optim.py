"""Optimizers and learning-rate schedules."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimizer over a parameter list."""

    def __init__(self, params: Iterable[Tensor], lr: float) -> None:
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = g + self.momentum * v if self.nesterov else v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1 ** self._t
        b2t = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p.data -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)


class LRSchedule:
    """Base class: mutates ``optimizer.lr`` per epoch."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.lr_at(self.epoch)

    def lr_at(self, epoch: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


class StepLR(LRSchedule):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineLR(LRSchedule):
    """Cosine annealing to ``min_lr`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.min_lr = min_lr

    def lr_at(self, epoch: int) -> float:
        t = min(epoch, self.t_max)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + np.cos(np.pi * t / self.t_max)
        )
