"""Model checkpointing to ``.npz`` archives.

State dicts are flat ``name -> ndarray`` maps, which NumPy's ``.npz``
format stores natively; checkpoints carry a format version so future
layouts can migrate.
"""

from __future__ import annotations

import os
from typing import Dict, Union

import numpy as np

from repro.nn.layers import Module

FORMAT_KEY = "__repro_checkpoint_version__"
FORMAT_VERSION = 1


def save_checkpoint(model: Module, path: Union[str, os.PathLike]) -> None:
    """Write ``model.state_dict()`` to ``path`` (an ``.npz`` archive)."""
    state = model.state_dict()
    if FORMAT_KEY in state:
        raise ValueError(f"state dict may not contain the reserved key {FORMAT_KEY!r}")
    np.savez(path, **state, **{FORMAT_KEY: np.array(FORMAT_VERSION)})


def load_checkpoint(model: Module, path: Union[str, os.PathLike]) -> Module:
    """Load an ``.npz`` checkpoint into ``model`` (shapes must match)."""
    with np.load(path) as archive:
        version = int(archive[FORMAT_KEY]) if FORMAT_KEY in archive else 0
        if version > FORMAT_VERSION:
            raise ValueError(
                f"checkpoint version {version} is newer than supported ({FORMAT_VERSION})"
            )
        state: Dict[str, np.ndarray] = {
            k: archive[k] for k in archive.files if k != FORMAT_KEY
        }
    model.load_state_dict(state)
    return model
