"""Weight initializers.

Deterministic given an explicit ``numpy.random.Generator`` so training
experiments are reproducible across runs and platforms.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _fan(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """(fan_in, fan_out) for linear (out,in) or conv (M,C,kh,kw) weights."""
    if len(shape) == 2:
        out_f, in_f = shape
        return in_f, out_f
    if len(shape) == 4:
        m, c, kh, kw = shape
        rf = kh * kw
        return c * rf, m * rf
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He initialization (suited to ReLU networks)."""
    fan_in, _ = _fan(shape)
    std = gain / np.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = np.sqrt(2.0)) -> np.ndarray:
    fan_in, _ = _fan(shape)
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot initialization (suited to tanh/sigmoid networks)."""
    fan_in, fan_out = _fan(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fan(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
