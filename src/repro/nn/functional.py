"""Vectorized NN primitives with autograd support.

All spatial kernels use the NCHW layout and are implemented with
``numpy.lib.stride_tricks.sliding_window_view`` (views, no copies on the
forward path until the final GEMM), following the HPC guidance of
vectorizing loops and avoiding unnecessary copies.

Every function accepts :class:`repro.nn.tensor.Tensor` inputs and
returns a graph node; plain ``numpy`` arrays are accepted and treated as
constants.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.tensor import Tensor, _as_tensor, make_node, send_grad

IntPair = Union[int, Tuple[int, int]]


def _pair(v: IntPair) -> Tuple[int, int]:
    if isinstance(v, tuple):
        if len(v) != 2:
            raise ValueError(f"expected an int or a 2-tuple, got {v!r}")
        return (int(v[0]), int(v[1]))
    return (int(v), int(v))


def conv2d_output_shape(
    h: int, w: int, kernel: IntPair, stride: IntPair = 1, padding: IntPair = 0
) -> Tuple[int, int]:
    """Spatial output shape of a 2-D convolution (floor semantics)."""
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    ho = (h + 2 * ph - kh) // sh + 1
    wo = (w + 2 * pw - kw) // sw + 1
    if ho <= 0 or wo <= 0:
        raise ValueError(
            f"convolution output would be empty: input {h}x{w}, "
            f"kernel {kh}x{kw}, stride {sh}x{sw}, padding {ph}x{pw}"
        )
    return ho, wo


def im2col(
    x: np.ndarray, kernel: IntPair, stride: IntPair = 1, padding: IntPair = 0
) -> np.ndarray:
    """Extract convolution patches.

    Parameters
    ----------
    x:
        ``(N, C, H, W)`` input array.

    Returns
    -------
    ``(N, Ho, Wo, C, kh, kw)`` view-backed patch array (materialized
    only if padding requires it).
    """
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    if x.ndim != 4:
        raise ValueError(f"im2col expects NCHW input, got ndim={x.ndim}")
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))
    # windows: (N, C, Ho_full, Wo_full, kh, kw); subsample by stride.
    windows = windows[:, :, ::sh, ::sw, :, :]
    return windows.transpose(0, 2, 3, 1, 4, 5)


def col2im_add(
    grad_cols: np.ndarray,
    x_shape: Tuple[int, ...],
    kernel: IntPair,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> np.ndarray:
    """Scatter-add patch gradients back to the input (inverse of im2col).

    ``grad_cols`` has shape ``(N, Ho, Wo, C, kh, kw)``.
    """
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, c, h, w = x_shape
    ho, wo = grad_cols.shape[1], grad_cols.shape[2]
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=grad_cols.dtype)
    gc = grad_cols.transpose(0, 3, 1, 2, 4, 5)  # (N, C, Ho, Wo, kh, kw)
    for i in range(kh):
        hi = i + sh * ho
        for j in range(kw):
            wj = j + sw * wo
            padded[:, :, i:hi:sh, j:wj:sw] += gc[:, :, :, :, i, j]
    if ph or pw:
        return padded[:, :, ph : ph + h, pw : pw + w]
    return padded


#: when True, conv2d recomputes its im2col patches during backward
#: instead of keeping the (large) patch matrix alive in the closure —
#: ~40% lower training memory for ~15% more backward compute.
CONV_SAVE_MEMORY = False


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
    save_memory: Optional[bool] = None,
) -> Tensor:
    """2-D cross-correlation (the CNN "convolution").

    ``x``: (N, C, H, W); ``weight``: (M, C, kh, kw); ``bias``: (M,).
    ``save_memory`` overrides the module default ``CONV_SAVE_MEMORY``.
    """
    x = _as_tensor(x)
    weight = _as_tensor(weight)
    n, c, h, w = x.shape
    m, cw, kh, kw = weight.shape
    if c != cw:
        raise ValueError(f"input channels {c} != weight channels {cw}")
    ho, wo = conv2d_output_shape(h, w, (kh, kw), stride, padding)
    recompute = CONV_SAVE_MEMORY if save_memory is None else save_memory

    cols = im2col(x.data, (kh, kw), stride, padding)  # (N,Ho,Wo,C,kh,kw)
    cols2d = np.ascontiguousarray(cols).reshape(n * ho * wo, c * kh * kw)
    wmat = weight.data.reshape(m, c * kh * kw)
    out = cols2d @ wmat.T  # (N*Ho*Wo, M)
    out = out.reshape(n, ho, wo, m).transpose(0, 3, 1, 2)
    if bias is not None:
        out = out + bias.data.reshape(1, m, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)
    node = make_node(out, parents)
    if node.requires_grad:
        saved_cols = None if recompute else cols2d

        def _bw(g: np.ndarray) -> None:
            gm = g.transpose(0, 2, 3, 1).reshape(n * ho * wo, m)
            if saved_cols is None:
                rebuilt = np.ascontiguousarray(
                    im2col(x.data, (kh, kw), stride, padding)
                ).reshape(n * ho * wo, c * kh * kw)
            else:
                rebuilt = saved_cols
            # dW = g^T @ cols
            gw = (gm.T @ rebuilt).reshape(m, c, kh, kw)
            send_grad(weight, gw)
            # dX = scatter(g @ W)
            gcols = (gm @ wmat).reshape(n, ho, wo, c, kh, kw)
            send_grad(x, col2im_add(gcols, x.shape, (kh, kw), stride, padding))
            if bias is not None:
                send_grad(bias, g.sum(axis=(0, 2, 3)))

        node._backward = _bw
    return node


def avg_pool2d(
    x: Tensor, kernel: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0
) -> Tensor:
    """Average pooling (NCHW). ``stride`` defaults to ``kernel``.

    Zero padding is counted in the average (count_include_pad=True).
    """
    x = _as_tensor(x)
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride if stride is not None else (kh, kw))
    ph, pw = _pair(padding)
    n, c, h, w = x.shape
    ho, wo = conv2d_output_shape(h, w, (kh, kw), (sh, sw), (ph, pw))
    xd = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw))) if (ph or pw) else x.data
    windows = sliding_window_view(xd, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
    out = windows.mean(axis=(-2, -1))
    node = make_node(out, (x,))
    if node.requires_grad:

        def _bw(g: np.ndarray) -> None:
            scale = 1.0 / (kh * kw)
            gcols = np.broadcast_to(
                (g * scale)[:, :, :, :, None, None], (n, c, ho, wo, kh, kw)
            ).transpose(0, 2, 3, 1, 4, 5)
            send_grad(
                x,
                col2im_add(np.ascontiguousarray(gcols), x.shape, (kh, kw), (sh, sw), (ph, pw)),
            )

        node._backward = _bw
    return node


def max_pool2d(
    x: Tensor, kernel: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0
) -> Tensor:
    """Max pooling (NCHW). ``stride`` defaults to ``kernel``.

    Padding uses ``-inf`` so padded positions never win the max.
    """
    x = _as_tensor(x)
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride if stride is not None else (kh, kw))
    ph, pw = _pair(padding)
    n, c, h, w = x.shape
    ho, wo = conv2d_output_shape(h, w, (kh, kw), (sh, sw), (ph, pw))
    if ph or pw:
        xd = np.pad(
            x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)), constant_values=-np.inf
        )
    else:
        xd = x.data
    windows = sliding_window_view(xd, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
    flat = windows.reshape(n, c, ho, wo, kh * kw)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    node = make_node(out, (x,))
    if node.requires_grad:

        def _bw(g: np.ndarray) -> None:
            gcols = np.zeros((n, c, ho, wo, kh * kw), dtype=g.dtype)
            np.put_along_axis(gcols, arg[..., None], g[..., None], axis=-1)
            gcols = gcols.reshape(n, c, ho, wo, kh, kw).transpose(0, 2, 3, 1, 4, 5)
            send_grad(
                x,
                col2im_add(np.ascontiguousarray(gcols), x.shape, (kh, kw), (sh, sw), (ph, pw)),
            )

        node._backward = _bw
    return node


def concat(tensors, axis: int = 1) -> Tensor:
    """Concatenate tensors along ``axis`` (used by Inception/DenseNet)."""
    tensors = [_as_tensor(t) for t in tensors]
    if not tensors:
        raise ValueError("concat of an empty sequence")
    out = np.concatenate([t.data for t in tensors], axis=axis)
    node = make_node(out, tuple(tensors))
    if node.requires_grad:
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def _bw(g: np.ndarray) -> None:
            slicer = [slice(None)] * g.ndim
            for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
                slicer[axis] = slice(lo, hi)
                send_grad(t, g[tuple(slicer)])

        node._backward = _bw
    return node


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Pool each channel to a single value (adaptive 1x1 average pool)."""
    return _as_tensor(x).mean(axis=(2, 3))


def relu(x: Tensor) -> Tensor:
    return _as_tensor(x).relu()


def sigmoid(x: Tensor) -> Tensor:
    return _as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    return _as_tensor(x).tanh()


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ W.T + b``; ``weight``: (out, in)."""
    out = _as_tensor(x) @ _as_tensor(weight).T
    if bias is not None:
        out = out + bias
    return out


def flatten(x: Tensor) -> Tensor:
    x = _as_tensor(x)
    return x.reshape(x.shape[0], -1)


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: identity in eval mode."""
    if not training or p <= 0.0:
        return _as_tensor(x)
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    rng = rng or np.random.default_rng()
    x = _as_tensor(x)
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * mask


def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over (N, H, W) per channel.

    ``running_mean``/``running_var`` are updated in place in training
    mode, matching PyTorch semantics.
    """
    x = _as_tensor(x)
    n, c, h, w = x.shape
    if training:
        mean = x.data.mean(axis=(0, 2, 3))
        var = x.data.var(axis=(0, 2, 3))
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        # Unbiased variance for the running estimate, as in PyTorch.
        count = n * h * w
        unbias = count / max(count - 1, 1)
        running_var *= 1.0 - momentum
        running_var += momentum * var * unbias
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x.data - mean[None, :, None, None]) * inv_std[None, :, None, None]
    out = xhat * gamma.data[None, :, None, None] + beta.data[None, :, None, None]
    node = make_node(out, (x, gamma, beta))
    if node.requires_grad:

        def _bw(g: np.ndarray) -> None:
            send_grad(gamma, (g * xhat).sum(axis=(0, 2, 3)))
            send_grad(beta, g.sum(axis=(0, 2, 3)))
            gxhat = g * gamma.data[None, :, None, None]
            if training:
                m = n * h * w
                gx = (
                    gxhat
                    - gxhat.mean(axis=(0, 2, 3), keepdims=True)
                    - xhat * (gxhat * xhat).mean(axis=(0, 2, 3), keepdims=True)
                ) * inv_std[None, :, None, None]
                del m
            else:
                gx = gxhat * inv_std[None, :, None, None]
            send_grad(x, gx)

        node._backward = _bw
    return node


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = _as_tensor(x)
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = _as_tensor(x)
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy of integer class targets against logits."""
    logits = _as_tensor(logits)
    targets = np.asarray(targets)
    if targets.ndim != 1 or len(targets) != logits.shape[0]:
        raise ValueError(
            f"targets must be 1-D of length {logits.shape[0]}, got shape {targets.shape}"
        )
    logp = log_softmax(logits, axis=-1)
    picked = logp[np.arange(len(targets)), targets]
    return -picked.mean()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    labels = np.asarray(labels)
    out = np.zeros((labels.size, num_classes))
    out[np.arange(labels.size), labels.ravel()] = 1.0
    return out


def accuracy_topk(logits: np.ndarray, targets: np.ndarray, k: int = 1) -> float:
    """Top-k classification accuracy in [0, 1]."""
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    if k == 1:
        return float((logits.argmax(axis=-1) == targets).mean())
    topk = np.argpartition(-logits, min(k, logits.shape[-1] - 1), axis=-1)[:, :k]
    return float((topk == targets[:, None]).any(axis=-1).mean())
