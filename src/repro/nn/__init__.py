"""repro.nn — a from-scratch NumPy deep-learning substrate.

The MLCNN paper evaluates its cross-layer optimization inside PyTorch;
this package provides the equivalent substrate without external ML
dependencies: a reverse-mode autograd :class:`Tensor`, vectorized
(im2col) convolution / pooling kernels, ``Module``-based layers,
initializers, and optimizers.

Public surface::

    from repro.nn import Tensor, Conv2d, AvgPool2d, ReLU, Linear, ...
    from repro.nn import functional as F
"""

from repro.nn.tensor import Tensor, no_grad, is_grad_enabled
from repro.nn import functional
from repro.nn.layers import (
    Module,
    Sequential,
    ModuleList,
    Conv2d,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
    AvgPool2d,
    MaxPool2d,
    GlobalAvgPool2d,
    BatchNorm2d,
    Dropout,
    Flatten,
    Identity,
)
from repro.nn.optim import SGD, Adam, StepLR, CosineLR
from repro.nn import init
from repro.nn.serialization import save_checkpoint, load_checkpoint

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "Module",
    "Sequential",
    "ModuleList",
    "Conv2d",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "AvgPool2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "BatchNorm2d",
    "Dropout",
    "Flatten",
    "Identity",
    "SGD",
    "Adam",
    "StepLR",
    "CosineLR",
    "init",
    "save_checkpoint",
    "load_checkpoint",
]
