"""Module-based layers (PyTorch-like).

A :class:`Module` owns named parameters/buffers and child modules,
supports ``state_dict``/``load_state_dict`` round trips, and toggles
train/eval mode recursively.  These layers are the building blocks of
the model zoo in :mod:`repro.models` and the unit of graph rewriting in
:mod:`repro.models.reorder` and :mod:`repro.core.transform`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.tensor import Tensor

IntPair = Union[int, Tuple[int, int]]


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Tensor]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # -- attribute plumbing -------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, value: Tensor) -> None:
        value.requires_grad = True
        self._parameters[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -----------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, p in self._parameters.items():
            yield prefix + name, p
        for mname, mod in self._modules.items():
            yield from mod.named_parameters(prefix + mname + ".")

    def parameters(self) -> List[Tensor]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, b in self._buffers.items():
            yield prefix + name, b
        for mname, mod in self._modules.items():
            yield from mod.named_buffers(prefix + mname + ".")

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for mname, mod in self._modules.items():
            yield from mod.named_modules(prefix + mname + ".")

    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    def num_parameters(self) -> int:
        """Total learnable parameter count."""
        return sum(p.size for p in self.parameters())

    # -- mode / grads ----------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for mod in self._modules.values():
            mod.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def to_dtype(self, dtype) -> "Module":
        """Cast all parameters and buffers to ``dtype`` in place.

        Use ``np.float32`` to halve memory and roughly double GEMM
        throughput for training runs; create optimizers *after* the
        cast (their state mirrors parameter dtypes).  Inputs must be
        cast by the caller — NumPy promotes mixed-precision ops to the
        wider type.
        """
        if dtype not in (np.float32, np.float64):
            raise ValueError(f"only float32/float64 are supported, got {dtype}")
        for _, p in self.named_parameters():
            p.data = p.data.astype(dtype)
            p.grad = None
        for name, b in self.named_buffers():
            b_cast = b.astype(dtype)
            # buffers are replaced in place on their owning module
            owner = self
            parts = name.split(".")
            for part in parts[:-1]:
                owner = owner._modules[part]
            owner._buffers[parts[-1]] = b_cast
            object.__setattr__(owner, parts[-1], b_cast)
        return self

    # -- serialization ---------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, p in self.named_parameters():
            state[name] = p.data.copy()
        for name, b in self.named_buffers():
            state[name] = b.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        missing = (set(params) | set(buffers)) - set(state)
        if missing:
            raise KeyError(f"state_dict missing keys: {sorted(missing)}")
        for name, p in params.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {p.data.shape} vs {state[name].shape}"
                )
            p.data[...] = state[name]
        for name, b in buffers.items():
            b[...] = state[name]

    # -- call ---------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, mod in self._modules.items():
            child = repr(mod).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child}")
        return "\n".join(lines) + ")"


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for i, mod in enumerate(modules):
            self._modules[str(i)] = mod

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]

    def append(self, mod: Module) -> "Sequential":
        self._modules[str(len(self._modules))] = mod
        return self

    def forward(self, x: Tensor) -> Tensor:
        for mod in self._modules.values():
            x = mod(x)
        return x


class ModuleList(Module):
    """A list container whose entries are registered as children."""

    def __init__(self, modules: Optional[Iterable[Module]] = None) -> None:
        super().__init__()
        for mod in modules or []:
            self.append(mod)

    def append(self, mod: Module) -> "ModuleList":
        self._modules[str(len(self._modules))] = mod
        return self

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover
        raise RuntimeError("ModuleList is a container; call its children directly")


class Conv2d(Module):
    """2-D convolution layer (cross-correlation)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntPair,
        stride: IntPair = 1,
        padding: IntPair = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        kh, kw = F._pair(kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = F._pair(stride)
        self.padding = F._pair(padding)
        self.register_parameter(
            "weight", Tensor(init.kaiming_normal((out_channels, in_channels, kh, kw), rng))
        )
        if bias:
            self.register_parameter("bias", Tensor(np.zeros(out_channels)))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, self.stride, self.padding)

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}"
        )


class Linear(Module):
    """Affine layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.register_parameter("weight", Tensor(init.kaiming_normal((out_features, in_features), rng)))
        if bias:
            self.register_parameter("bias", Tensor(np.zeros(out_features)))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def extra_repr(self) -> str:
        return f"{self.in_features}, {self.out_features}"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class AvgPool2d(Module):
    """Average pooling; the layer MLCNN reorders ahead of ReLU."""

    def __init__(
        self,
        kernel_size: IntPair,
        stride: Optional[IntPair] = None,
        padding: IntPair = 0,
    ) -> None:
        super().__init__()
        self.kernel_size = F._pair(kernel_size)
        self.stride = F._pair(stride) if stride is not None else self.kernel_size
        self.padding = F._pair(padding)

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride, self.padding)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}"


class MaxPool2d(Module):
    def __init__(
        self,
        kernel_size: IntPair,
        stride: Optional[IntPair] = None,
        padding: IntPair = 0,
    ) -> None:
        super().__init__()
        self.kernel_size = F._pair(kernel_size)
        self.stride = F._pair(stride) if stride is not None else self.kernel_size
        self.padding = F._pair(padding)

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}"


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class BatchNorm2d(Module):
    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.register_parameter("gamma", Tensor(np.ones(num_features)))
        self.register_parameter("beta", Tensor(np.zeros(num_features)))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm2d(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            self.training,
            self.momentum,
            self.eps,
        )

    def extra_repr(self) -> str:
        return f"{self.num_features}"


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.p = p
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self.rng)

    def extra_repr(self) -> str:
        return f"p={self.p}"


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.flatten(x)
