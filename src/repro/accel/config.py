"""Accelerator configurations (Table VII of the paper).

All four configurations share the same silicon budget (1.52 mm^2 of
MAC-slice area at 45 nm) and the same 134 kB of on-chip memory; lower
precision packs more MAC slices into the budget:

============  =======  ========  ==========
config        #slices  bitwidth  datapath
============  =======  ========  ==========
DCNN  FP32       32      32      dense conv
MLCNN FP32       32      32      fused
MLCNN FP16       64      16      fused
MLCNN INT8      128       8      fused
============  =======  ========  ==========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class AcceleratorConfig:
    """Static parameters of one accelerator instance."""

    name: str
    mac_slices: int
    bitwidth: int  # operand width in bits (32/16/8)
    fused: bool  # True: MLCNN datapath (AR units + fused kernel)
    frequency_hz: float = 1.0e9
    area_mm2: float = 1.52
    onchip_memory_kb: int = 134
    #: peak DRAM bandwidth in bytes per cycle (e.g. 16 B/cy @ 1 GHz = 16 GB/s)
    dram_bytes_per_cycle: float = 16.0
    #: average DRAM access latency in cycles (hidden by the multi-bank
    #: input-weight buffer when traffic is streamed; charged on the
    #: first tile of each layer)
    dram_latency_cycles: int = 100
    #: addition-reuse units; each retires one small-accumulation
    #: addition per cycle alongside the MAC slices
    ar_units: int = 0

    def __post_init__(self) -> None:
        if self.mac_slices < 1:
            raise ValueError("need at least one MAC slice")
        if self.bitwidth not in (8, 16, 32):
            raise ValueError(f"unsupported bitwidth {self.bitwidth}")
        if self.fused and self.ar_units == 0:
            # One AR unit feeds two MAC slices (Fig. 7(b)).
            object.__setattr__(self, "ar_units", max(1, self.mac_slices // 2))

    @property
    def bytes_per_element(self) -> float:
        return self.bitwidth / 8.0

    @property
    def precision_label(self) -> str:
        return {32: "FP32", 16: "FP16", 8: "INT8"}[self.bitwidth]


TABLE7_CONFIGS: Dict[str, AcceleratorConfig] = {
    "dcnn-fp32": AcceleratorConfig("dcnn-fp32", mac_slices=32, bitwidth=32, fused=False),
    "mlcnn-fp32": AcceleratorConfig("mlcnn-fp32", mac_slices=32, bitwidth=32, fused=True),
    "mlcnn-fp16": AcceleratorConfig("mlcnn-fp16", mac_slices=64, bitwidth=16, fused=True),
    "mlcnn-int8": AcceleratorConfig("mlcnn-int8", mac_slices=128, bitwidth=8, fused=True),
}


def get_config(name: str) -> AcceleratorConfig:
    """Look up a Table VII accelerator configuration by name."""
    if name not in TABLE7_CONFIGS:
        raise KeyError(f"unknown config {name!r}; available: {sorted(TABLE7_CONFIGS)}")
    return TABLE7_CONFIGS[name]
