"""Loop tiling ``<Tm, Tn, Tr, Tc>`` and DRAM traffic (Section VI).

The MLCNN accelerator tiles the convolution loops to fit the multi-bank
input-weight buffer and the output buffer (134 kB total), following the
FPGA tiling formulation the paper cites [18], [26]:

* output channels ``M`` -> ``ceil(M / Tm)`` tiles,
* input channels ``N`` -> ``ceil(N / Tn)`` tiles,
* output rows/cols ``R x C`` -> ``ceil(R/Tr) x ceil(C/Tc)`` tiles.

Under the weight-input-reuse dataflow, every (m, r, c) tile iterates
over all input-channel tiles while partial sums stay in the output
buffer, so outputs travel to DRAM once; inputs and weights are
re-fetched once per trip through their enclosing loops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.models.specs import LayerSpec


@dataclass(frozen=True)
class TilingPlan:
    """A concrete tile-size assignment for one layer."""

    tm: int  # output-channel tile
    tn: int  # input-channel tile
    tr: int  # output-row tile
    tc: int  # output-column tile

    def trips(self, spec: LayerSpec) -> Tuple[int, int, int, int]:
        """Loop trip counts (m, n, r, c) for ``spec``."""
        out = spec.conv_output_size
        return (
            math.ceil(spec.out_channels / self.tm),
            math.ceil(spec.in_channels / self.tn),
            math.ceil(out / self.tr),
            math.ceil(out / self.tc),
        )

    def buffer_elements(self, spec: LayerSpec) -> int:
        """On-chip elements the plan holds at once (input+weight+output)."""
        k, s = spec.kernel, spec.stride
        in_tile = self.tn * (self.tr * s + k - 1) * (self.tc * s + k - 1)
        w_tile = self.tm * self.tn * k * k
        out_tile = self.tm * self.tr * self.tc
        return in_tile + w_tile + out_tile


def plan_tiling(spec: LayerSpec, buffer_bytes: int, bytes_per_element: float) -> TilingPlan:
    """Pick tile sizes that fit the buffer and minimize DRAM traffic.

    A small exhaustive search over channel tiles and row/column tiles;
    layer shapes are tiny (tens of channels, <= 224 spatial), so the
    search space is negligible.
    """
    capacity = int(buffer_bytes / bytes_per_element)
    out = spec.conv_output_size
    best: Optional[TilingPlan] = None
    best_traffic = float("inf")

    def _candidates(n: int) -> Iterable[int]:
        vals = {1, 2, 4, 8, 16, 32, 64, n, max(1, n // 2), max(1, n // 4)}
        return sorted(v for v in vals if 1 <= v <= n)

    for tm in _candidates(spec.out_channels):
        for tn in _candidates(spec.in_channels):
            for tr in _candidates(out):
                plan = TilingPlan(tm, tn, tr, tr if tr <= out else out)
                if plan.buffer_elements(spec) > capacity:
                    continue
                traffic = dram_traffic(spec, plan, bytes_per_element)
                if traffic < best_traffic:
                    best_traffic = traffic
                    best = plan
    if best is None:
        # Degenerate fallback: single-element tiles always fit any
        # realistic buffer; if even that fails the buffer is absurd.
        best = TilingPlan(1, 1, 1, 1)
        if best.buffer_elements(spec) > capacity:
            raise ValueError(
                f"buffer of {buffer_bytes} B cannot hold even a unit tile of {spec.name}"
            )
    return best


def dram_traffic(
    spec: LayerSpec,
    plan: TilingPlan,
    bytes_per_element: float,
    input_preprocessed: bool = False,
    output_preprocessed: bool = False,
) -> float:
    """Total DRAM bytes moved for one execution of ``spec``.

    * inputs: the input tile is fetched once per (m, r, c, n) trip —
      reuse across output-channel tiles is lost once ``Tm < M``;
    * weights: fetched once per (m, n, r, c) trip;
    * outputs: written once (partial sums accumulate on chip).

    ``input_preprocessed`` halves input bytes: MLCNN's preprocessing
    stores column-pair half additions instead of raw features (Fig. 9),
    so a fused consumer reads half the volume.  ``output_preprocessed``
    likewise halves the written volume when the *next* layer is fused.
    """
    k, s = spec.kernel, spec.stride
    tm_trips, tn_trips, tr_trips, tc_trips = plan.trips(spec)
    in_tile = plan.tn * (plan.tr * s + k - 1) * (plan.tc * s + k - 1)
    w_tile = plan.tm * plan.tn * k * k
    input_bytes = tm_trips * tn_trips * tr_trips * tc_trips * in_tile * bytes_per_element
    weight_bytes = tm_trips * tn_trips * tr_trips * tc_trips * w_tile * bytes_per_element
    out_elems = spec.output_size ** 2 * spec.out_channels
    output_bytes = out_elems * bytes_per_element
    if input_preprocessed:
        input_bytes *= 0.5
    if output_preprocessed:
        output_bytes *= 0.5
    return input_bytes + weight_bytes + output_bytes
