"""Bit-level arithmetic models: Wallace-tree multiplier and adders.

The paper's MAC slice performs 8-bit fixed-point multiplications with a
Wallace-tree multiplier [20] and 32-bit floating-point multiplies on a
3-stage pipeline [19].  This module models the integer datapath at the
bit level — partial-product generation, carry-save reduction with full
(3:2) and half (2:2) adders, and a final carry-propagate adder — so the
area/latency assumptions of :mod:`repro.accel.area` rest on countable
structure rather than constants alone.

Everything is verified against Python integer arithmetic in the tests
(exhaustively for small widths, sampled for 8-bit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


def _to_bits(value: int, width: int) -> List[int]:
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} unsigned bits")
    return [(value >> i) & 1 for i in range(width)]


def _from_bits(bits: List[int]) -> int:
    return sum(b << i for i, b in enumerate(bits))


@dataclass
class GateStats:
    """Structural cost of one arithmetic operation."""

    and_gates: int = 0
    full_adders: int = 0
    half_adders: int = 0
    reduction_stages: int = 0
    cpa_bits: int = 0  # final carry-propagate adder width

    def __add__(self, other: "GateStats") -> "GateStats":
        return GateStats(
            self.and_gates + other.and_gates,
            self.full_adders + other.full_adders,
            self.half_adders + other.half_adders,
            max(self.reduction_stages, other.reduction_stages),
            self.cpa_bits + other.cpa_bits,
        )


def ripple_carry_add(a: int, b: int, width: int, stats: GateStats | None = None) -> Tuple[int, int]:
    """Unsigned ripple-carry addition; returns (sum mod 2^width, carry-out)."""
    abits = _to_bits(a, width)
    bbits = _to_bits(b, width)
    carry = 0
    out = []
    for i in range(width):
        s = abits[i] ^ bbits[i] ^ carry
        carry = (abits[i] & bbits[i]) | (carry & (abits[i] ^ bbits[i]))
        out.append(s)
        if stats is not None:
            stats.full_adders += 1
    if stats is not None:
        stats.cpa_bits += width
    return _from_bits(out), carry


def wallace_multiply_unsigned(a: int, b: int, width: int) -> Tuple[int, GateStats]:
    """Unsigned ``width x width`` Wallace-tree multiplication.

    Builds the partial-product matrix with AND gates, reduces it with
    3:2 (full-adder) and 2:2 (half-adder) compressors until at most two
    rows remain per column, then runs a final carry-propagate adder.
    Returns the exact product and the gate statistics.
    """
    abits = _to_bits(a, width)
    bbits = _to_bits(b, width)
    stats = GateStats()

    # Partial products: columns indexed by bit weight 0 .. 2*width-2;
    # one extra column absorbs the structural carry out of the top.
    ncols = 2 * width + 1
    columns: List[List[int]] = [[] for _ in range(ncols)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(abits[i] & bbits[j])
            stats.and_gates += 1

    # Carry-save reduction.
    while max(len(col) for col in columns) > 2:
        stats.reduction_stages += 1
        next_cols: List[List[int]] = [[] for _ in range(ncols + 1)]
        for w, col in enumerate(columns):
            idx = 0
            while len(col) - idx >= 3:
                x, y, z = col[idx : idx + 3]
                idx += 3
                s = x ^ y ^ z
                c = (x & y) | (x & z) | (y & z)
                next_cols[w].append(s)
                next_cols[w + 1].append(c)
                stats.full_adders += 1
            if len(col) - idx == 2:
                x, y = col[idx], col[idx + 1]
                idx += 2
                next_cols[w].append(x ^ y)
                next_cols[w + 1].append(x & y)
                stats.half_adders += 1
            while idx < len(col):
                next_cols[w].append(col[idx])
                idx += 1
        columns = next_cols[:ncols]
        # a carry past the top column is structurally impossible for a
        # valid product; assert rather than silently truncate
        if len(next_cols) > ncols and any(next_cols[ncols]):
            raise AssertionError("carry overflowed the product width")

    # Final two rows -> carry-propagate addition.
    row_a = [col[0] if len(col) > 0 else 0 for col in columns]
    row_b = [col[1] if len(col) > 1 else 0 for col in columns]
    total, carry = ripple_carry_add(_from_bits(row_a), _from_bits(row_b), ncols, stats)
    product = total + (carry << ncols)
    return product, stats


def wallace_multiply_signed(a: int, b: int, width: int) -> Tuple[int, GateStats]:
    """Signed multiplication via sign-magnitude around the unsigned tree.

    Operands are two's-complement ``width``-bit integers in
    ``[-2^(width-1), 2^(width-1) - 1]``.
    """
    lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
    if not (lo <= a <= hi and lo <= b <= hi):
        raise ValueError(f"operands must fit signed {width}-bit range")
    mag, stats = wallace_multiply_unsigned(abs(a), abs(b), width)
    sign = -1 if (a < 0) != (b < 0) else 1
    return sign * mag, stats


def wallace_stage_bound(width: int) -> int:
    """Theoretical Wallace reduction depth: rows shrink by x1.5 per
    stage, so stages = ceil(log_{3/2}(width / 2))."""
    import math

    if width <= 2:
        return 0
    return math.ceil(math.log(width / 2.0) / math.log(1.5))


@dataclass
class PipelinedFPMultiplier:
    """Behavioural 3-stage pipelined multiplier (the FP32 PE of [19]).

    Stage 1 splits/aligns operands, stage 2 multiplies mantissas, stage
    3 normalizes.  Behaviourally it is just ``a * b`` delayed by three
    cycles; the model exposes issue/retire so schedules can be checked.
    """

    depth: int = 3
    #: in-flight products as (value, cycles_remaining) pairs
    _stages: List[List[float]] = field(default_factory=list)
    issued: int = 0
    retired: int = 0

    def tick(self, operands: Tuple[float, float] | None = None) -> float | None:
        """Advance one cycle; optionally issue; returns a retired product.

        Bubbles (``operands=None``) still advance the pipeline, as in
        hardware.
        """
        for entry in self._stages:
            entry[1] -= 1
        result = None
        if self._stages and self._stages[0][1] <= 0:
            result = self._stages.pop(0)[0]
            self.retired += 1
        if operands is not None:
            a, b = operands
            self._stages.append([a * b, self.depth])
            self.issued += 1
        return result

    def flush(self) -> List[float]:
        out = [entry[0] for entry in self._stages]
        self.retired += len(out)
        self._stages.clear()
        return out
