"""repro.accel — MLCNN accelerator cycle/energy/area model (Section VI).

The paper evaluates MLCNN with an accelerator-level cycle and energy
model plus an RTL prototype.  This package provides the equivalent:

* :mod:`repro.accel.config` — accelerator configurations (Table VII).
* :mod:`repro.accel.area` — 45nm-style area model deriving how many MAC
  slices fit the 1.52 mm^2 budget at each precision.
* :mod:`repro.accel.energy` — per-operation / per-access energy tables
  and the static+dynamic energy model (DRAM / Buffer / MAC breakdown of
  Fig. 15).
* :mod:`repro.accel.tiling` — loop tiling ``<Tm, Tn, Tr, Tc>`` and the
  DRAM traffic it implies.
* :mod:`repro.accel.simulator` — per-layer and whole-network cycle and
  energy estimates for DCNN vs MLCNN (Figs. 13 & 15).
* :mod:`repro.accel.rtl` — a register/FIFO-accurate micro-simulator of
  the AR unit + MAC slice datapath (the RTL prototype's role).
"""

from repro.accel.config import AcceleratorConfig, TABLE7_CONFIGS, get_config
from repro.accel.area import MacSliceArea, slices_for_budget, AREA_45NM
from repro.accel.energy import EnergyTable, ENERGY_45NM, EnergyBreakdown
from repro.accel.tiling import TilingPlan, plan_tiling, dram_traffic
from repro.accel.simulator import (
    LayerResult,
    NetworkResult,
    simulate_layer,
    simulate_network,
    simulate_network_layer_fused,
    compare_networks,
)
from repro.accel.rtl import (
    Fifo,
    ShiftRegister,
    ARUnit,
    MACSlice,
    RTLFusedConvPool,
    RTLFusedConvPoolLayer,
    TraceEvent,
)
from repro.accel.dram import DramConfig, DramModel, DramStats
from repro.accel.buffers import MultiBankBuffer, conflict_free_stride
from repro.accel.dataflow import (
    ScheduleStep,
    weight_input_reuse_schedule,
    validate_schedule,
    timeline,
)
from repro.accel.arith import (
    GateStats,
    ripple_carry_add,
    wallace_multiply_unsigned,
    wallace_multiply_signed,
    wallace_stage_bound,
    PipelinedFPMultiplier,
)

__all__ = [
    "AcceleratorConfig",
    "TABLE7_CONFIGS",
    "get_config",
    "MacSliceArea",
    "slices_for_budget",
    "AREA_45NM",
    "EnergyTable",
    "ENERGY_45NM",
    "EnergyBreakdown",
    "TilingPlan",
    "plan_tiling",
    "dram_traffic",
    "LayerResult",
    "NetworkResult",
    "simulate_layer",
    "simulate_network",
    "simulate_network_layer_fused",
    "compare_networks",
    "Fifo",
    "ShiftRegister",
    "ARUnit",
    "MACSlice",
    "RTLFusedConvPool",
    "RTLFusedConvPoolLayer",
    "TraceEvent",
    "DramConfig",
    "DramModel",
    "DramStats",
    "MultiBankBuffer",
    "conflict_free_stride",
    "ScheduleStep",
    "weight_input_reuse_schedule",
    "validate_schedule",
    "timeline",
    "GateStats",
    "ripple_carry_add",
    "wallace_multiply_unsigned",
    "wallace_multiply_signed",
    "wallace_stage_bound",
    "PipelinedFPMultiplier",
]
