"""45 nm area model for MAC slices (Design-Compiler role).

The paper synthesizes MAC slices with the 45 nm TSMC library and packs
as many as fit 1.52 mm^2 at each precision.  Published 45 nm datapoints
(Horowitz, ISSCC 2014 "Computing's energy problem") put a 32-bit FP
multiplier-adder pair around 0.02 mm^2 while an 8-bit integer MAC is
roughly an order of magnitude smaller; combinational multiplier area
scales about quadratically with operand width, adders linearly.

The model reproduces Table VII's slice counts: 32 FP32 slices, 64 FP16
slices, or 128 INT8 slices inside the same budget once the AR units,
FIFOs, and control overhead (a fixed fraction) are charged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class MacSliceArea:
    """Area of one MAC slice and its share of reuse hardware (mm^2)."""

    multiplier_mm2: float
    adder_mm2: float
    registers_fifo_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.multiplier_mm2 + self.adder_mm2 + self.registers_fifo_mm2


#: per-precision slice areas at 45 nm (mm^2).  FP32 values follow the
#: ~0.02 mm^2 FPU-datapath scale of Horowitz'14; FP16 multipliers are
#: ~4x smaller (quadratic in mantissa width), INT8 Wallace-tree
#: multipliers another ~4x smaller.
AREA_45NM: Dict[int, MacSliceArea] = {
    32: MacSliceArea(multiplier_mm2=0.0295, adder_mm2=0.0080, registers_fifo_mm2=0.0050),
    16: MacSliceArea(multiplier_mm2=0.0135, adder_mm2=0.0040, registers_fifo_mm2=0.0030),
    8: MacSliceArea(multiplier_mm2=0.0060, adder_mm2=0.0020, registers_fifo_mm2=0.0018),
}

#: fraction of the budget consumed by the controller, preprocessing
#: logic and interconnect, independent of slice count
CONTROL_OVERHEAD_FRACTION = 0.10


def slices_for_budget(bitwidth: int, area_budget_mm2: float = 1.52) -> int:
    """Number of MAC slices fitting ``area_budget_mm2`` at ``bitwidth``.

    Table VII rounds the lower-precision counts down to powers of two
    (64 / 128); the raw model admits slightly more:

    >>> slices_for_budget(32)
    32
    >>> slices_for_budget(16)
    66
    >>> slices_for_budget(8)
    139
    """
    if bitwidth not in AREA_45NM:
        raise ValueError(f"no area data for bitwidth {bitwidth}")
    usable = area_budget_mm2 * (1.0 - CONTROL_OVERHEAD_FRACTION)
    per_slice = AREA_45NM[bitwidth].total_mm2
    return int(usable // per_slice)


def config_area_mm2(mac_slices: int, bitwidth: int) -> float:
    """Total area of ``mac_slices`` slices plus control overhead."""
    per_slice = AREA_45NM[bitwidth].total_mm2
    raw = mac_slices * per_slice
    return raw / (1.0 - CONTROL_OVERHEAD_FRACTION)
