"""Weight-input-reuse dataflow schedule (Section VI, Fig. 8).

Generates the explicit tile-level schedule the MLCNN controller
executes and models its double-buffered timeline:

* weights are loaded into PE registers and *not replaced until they
  have been multiplied with every input of their tile* (weight reuse);
* input-channel tiles are visited consecutively for one output tile so
  partial sums stay in the output buffer (``I1 -> I2, I3 -> I4``);
* loads of the next tile overlap with compute on the current one
  (multi-bank buffer double buffering), so the layer's makespan is
  ``max(total_load, total_compute) + first_load``.

The schedule is consumed by tests that check the paper's ordering
invariants and by :func:`timeline` for makespan estimates consistent
with :mod:`repro.accel.simulator`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Literal, Optional, Sequence, Tuple

from repro.accel.tiling import TilingPlan
from repro.models.specs import LayerSpec
from repro.obs.metrics import get_recorder

StepKind = Literal["load_weights", "load_input", "compute", "store_output"]


@dataclass(frozen=True)
class ScheduleStep:
    """One controller action over a tile.

    Indices identify the tile: ``m`` output-channel tile, ``n``
    input-channel tile, ``r``/``c`` spatial tile.  ``cost`` is in
    cycles (loads: bytes / bandwidth; compute: MACs / slices).
    """

    kind: StepKind
    m: int = -1
    n: int = -1
    r: int = -1
    c: int = -1
    cost: float = 0.0


def weight_input_reuse_schedule(
    spec: LayerSpec,
    plan: TilingPlan,
    bytes_per_element: float = 4.0,
    dram_bytes_per_cycle: float = 16.0,
    mac_slices: int = 32,
) -> List[ScheduleStep]:
    """Enumerate the tile schedule for one layer.

    Loop order (outer to inner): spatial tile (r, c) -> output-channel
    tile (m) -> input-channel tile (n).  Weights for (m, n) load once
    per visit and serve the whole input tile; the output tile stores
    once after the last input-channel tile (partial sums accumulate on
    chip).
    """
    tm_trips, tn_trips, tr_trips, tc_trips = plan.trips(spec)
    k, s = spec.kernel, spec.stride
    in_tile_elems = plan.tn * (plan.tr * s + k - 1) * (plan.tc * s + k - 1)
    w_tile_elems = plan.tm * plan.tn * k * k
    out_tile_elems = plan.tm * plan.tr * plan.tc
    macs_per_tile = plan.tm * plan.tn * plan.tr * plan.tc * k * k

    load_in = in_tile_elems * bytes_per_element / dram_bytes_per_cycle
    load_w = w_tile_elems * bytes_per_element / dram_bytes_per_cycle
    store_out = out_tile_elems * bytes_per_element / dram_bytes_per_cycle
    compute = macs_per_tile / mac_slices

    steps: List[ScheduleStep] = []
    for r in range(tr_trips):
        for c in range(tc_trips):
            for m in range(tm_trips):
                for n in range(tn_trips):
                    steps.append(ScheduleStep("load_weights", m=m, n=n, r=r, c=c, cost=load_w))
                    steps.append(ScheduleStep("load_input", m=m, n=n, r=r, c=c, cost=load_in))
                    steps.append(ScheduleStep("compute", m=m, n=n, r=r, c=c, cost=compute))
                steps.append(ScheduleStep("store_output", m=m, r=r, c=c, cost=store_out))
    return steps


def validate_schedule(steps: Sequence[ScheduleStep], plan_trips: Tuple[int, int, int, int]) -> None:
    """Check the paper's ordering invariants; raises on violation.

    * every compute is immediately preceded by the loads of its tile;
    * each (m, r, c) output tile is stored exactly once, after all its
      input-channel tiles have been computed;
    * weights are never reused across input tiles without a reload
      (weight-stationary within a tile only).
    """
    tm, tn, tr, tc = plan_trips
    stored = set()
    computed: dict = {}
    loaded_w: Optional[Tuple[int, int, int, int]] = None
    loaded_i: Optional[Tuple[int, int, int, int]] = None
    for step in steps:
        key = (step.m, step.n, step.r, step.c)
        if step.kind == "load_weights":
            loaded_w = key
        elif step.kind == "load_input":
            loaded_i = key
        elif step.kind == "compute":
            if loaded_w != key or loaded_i != key:
                raise ValueError(f"compute on {key} before its loads")
            out_key = (step.m, step.r, step.c)
            if out_key in stored:
                raise ValueError(f"compute for already-stored output tile {out_key}")
            computed[out_key] = computed.get(out_key, 0) + 1
        elif step.kind == "store_output":
            out_key = (step.m, step.r, step.c)
            if computed.get(out_key, 0) != tn:
                raise ValueError(
                    f"output tile {out_key} stored after {computed.get(out_key, 0)} "
                    f"of {tn} input tiles"
                )
            if out_key in stored:
                raise ValueError(f"output tile {out_key} stored twice")
            stored.add(out_key)
    expected = {(m, r, c) for m in range(tm) for r in range(tr) for c in range(tc)}
    missing = expected - stored
    if missing:
        raise ValueError(f"output tiles never stored: {sorted(missing)[:4]}...")


@dataclass
class Timeline:
    """Makespan decomposition of a schedule."""

    load_cycles: float
    compute_cycles: float
    store_cycles: float
    makespan: float

    @property
    def compute_bound(self) -> bool:
        return self.compute_cycles >= self.load_cycles + self.store_cycles


def timeline(steps: Sequence[ScheduleStep]) -> Timeline:
    """Double-buffered makespan: memory and compute streams overlap;
    the slower stream dominates, plus the first load (pipeline fill)."""
    load = sum(s.cost for s in steps if s.kind in ("load_weights", "load_input"))
    compute = sum(s.cost for s in steps if s.kind == "compute")
    store = sum(s.cost for s in steps if s.kind == "store_output")
    first_load = next((s.cost for s in steps if s.kind.startswith("load")), 0.0)
    makespan = max(load + store, compute) + first_load
    get_recorder().record(
        sched_load_cycles=load, sched_compute_cycles=compute, sched_store_cycles=store
    )
    return Timeline(load, compute, store, makespan)
