"""Energy model (CACTI role): per-op, per-access and static energy.

Dynamic energies follow published 45 nm datapoints (Horowitz, ISSCC
2014): an FP32 multiply costs ~3.7 pJ and an FP32 add ~0.9 pJ; 8-bit
integer ops are 10-30x cheaper; an SRAM access costs a few pJ per
32-bit word and a DRAM access two orders of magnitude more.  Absolute
joules are not the reproduction target — the MLCNN/DCNN *ratios* are,
and those are driven by the operation/access counts computed elsewhere.

The breakdown mirrors Fig. 15's three components: DRAM, Buffer (input/
weight/output SRAM), and MAC (processing cores), each with a static
(leakage x time) and a dynamic share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class EnergyTable:
    """Per-event dynamic energies (pJ) and leakage (mW) at one precision."""

    mult_pj: float
    add_pj: float
    #: SRAM buffer access per operand (pJ)
    buffer_access_pj: float
    #: DRAM transfer per byte (pJ/B)
    dram_pj_per_byte: float
    #: leakage power of the whole accelerator (mW)
    leakage_mw: float


#: 45 nm energy tables keyed by operand bitwidth.  ``dram_pj_per_byte``
#: is the *burst-streamed* cost (sequential tile transfers amortize row
#: activations); ``leakage_mw`` bundles core leakage with the DRAM
#: background/refresh power, which is why execution time dominates the
#: static energy, as the paper observes in Section VII.D.
ENERGY_45NM: Dict[int, EnergyTable] = {
    32: EnergyTable(mult_pj=3.7, add_pj=0.9, buffer_access_pj=5.0, dram_pj_per_byte=40.0, leakage_mw=300.0),
    16: EnergyTable(mult_pj=1.1, add_pj=0.4, buffer_access_pj=2.5, dram_pj_per_byte=40.0, leakage_mw=300.0),
    8: EnergyTable(mult_pj=0.2, add_pj=0.03, buffer_access_pj=1.25, dram_pj_per_byte=40.0, leakage_mw=300.0),
}


@dataclass
class EnergyBreakdown:
    """Energy of one execution, split as in Fig. 15 (all in joules)."""

    dram_j: float = 0.0
    buffer_j: float = 0.0
    mac_j: float = 0.0
    static_j: float = 0.0

    @property
    def total_j(self) -> float:
        return self.dram_j + self.buffer_j + self.mac_j + self.static_j

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.dram_j + other.dram_j,
            self.buffer_j + other.buffer_j,
            self.mac_j + other.mac_j,
            self.static_j + other.static_j,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "dram": self.dram_j,
            "buffer": self.buffer_j,
            "mac": self.mac_j,
            "static": self.static_j,
            "total": self.total_j,
        }


def dynamic_energy(
    table: EnergyTable,
    multiplications: int,
    additions: int,
    buffer_accesses: int,
    dram_bytes: float,
) -> EnergyBreakdown:
    """Dynamic energy of the given event counts (no static share)."""
    return EnergyBreakdown(
        dram_j=dram_bytes * table.dram_pj_per_byte * 1e-12,
        buffer_j=buffer_accesses * table.buffer_access_pj * 1e-12,
        mac_j=(multiplications * table.mult_pj + additions * table.add_pj) * 1e-12,
    )


def static_energy(table: EnergyTable, seconds: float) -> float:
    """Leakage energy over an execution time (joules)."""
    return table.leakage_mw * 1e-3 * seconds
