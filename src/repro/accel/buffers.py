"""Multi-bank on-chip buffer model (the input-weight buffer of Fig. 7).

The MLCNN accelerator hides DRAM latency behind a *multi-bank
input-weight buffer*; multiple AR units and MAC slices read it every
cycle, so bank conflicts matter.  This model checks that the word
interleaving sustains the required parallel reads and counts conflicts
when it does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from repro.obs.metrics import get_recorder


@dataclass
class BufferStats:
    cycles: int = 0
    reads: int = 0
    writes: int = 0
    conflicts: int = 0

    @property
    def conflict_rate(self) -> float:
        total = self.reads + self.writes
        return self.conflicts / total if total else 0.0


class MultiBankBuffer:
    """Word-interleaved SRAM with one read/write port per bank.

    Addresses are in words; word ``a`` lives in bank ``a % num_banks``.
    :meth:`cycle` services a batch of simultaneous accesses and returns
    the number of cycles needed (1 when conflict-free; more when
    several accesses hit the same bank and must serialize).
    """

    def __init__(self, num_banks: int, words_per_bank: int) -> None:
        if num_banks < 1 or words_per_bank < 1:
            raise ValueError("need at least one bank and one word per bank")
        self.num_banks = num_banks
        self.words_per_bank = words_per_bank
        self._data: List[List[float]] = [[0.0] * words_per_bank for _ in range(num_banks)]
        self.stats = BufferStats()

    @property
    def capacity_words(self) -> int:
        return self.num_banks * self.words_per_bank

    def _locate(self, address: int):
        if not 0 <= address < self.capacity_words:
            raise IndexError(f"address {address} outside buffer of {self.capacity_words} words")
        return address % self.num_banks, address // self.num_banks

    def write(self, address: int, value: float) -> None:
        bank, offset = self._locate(address)
        self._data[bank][offset] = value
        self.stats.writes += 1
        get_recorder().record(buffer_writes=1)

    def read(self, address: int) -> float:
        bank, offset = self._locate(address)
        self.stats.reads += 1
        get_recorder().record(buffer_reads=1)
        return self._data[bank][offset]

    def cycle(self, read_addresses: Sequence[int]) -> int:
        """Service ``read_addresses`` issued in the same cycle.

        Returns cycles consumed: the maximum number of accesses mapped
        to any single bank (ports serialize within a bank).
        """
        per_bank = [0] * self.num_banks
        for addr in read_addresses:
            bank, _ = self._locate(addr)
            per_bank[bank] += 1
        worst = max(per_bank, default=0)
        cycles = max(1, worst)
        conflicts = sum(max(0, c - 1) for c in per_bank)
        self.stats.cycles += cycles
        self.stats.reads += len(read_addresses)
        self.stats.conflicts += conflicts
        get_recorder().record(buffer_reads=len(read_addresses), buffer_conflicts=conflicts)
        return cycles

    def load_array(self, values: Iterable[float], base: int = 0) -> int:
        """Bulk-load values at consecutive addresses; returns the count."""
        n = 0
        for i, v in enumerate(values):
            self.write(base + i, v)
            n += 1
        return n


def conflict_free_stride(num_banks: int, parallel_reads: int) -> int:
    """Smallest stride whose ``parallel_reads`` consecutive-stride reads
    never collide on ``num_banks`` word-interleaved banks.

    Stride 1 (unit-strided streams, the MLCNN access pattern) is always
    conflict-free when ``parallel_reads <= num_banks``.
    """
    if parallel_reads > num_banks:
        raise ValueError("cannot serve more parallel reads than banks")
    for stride in range(1, num_banks + 1):
        banks = {(i * stride) % num_banks for i in range(parallel_reads)}
        if len(banks) == parallel_reads:
            return stride
    raise RuntimeError("unreachable: stride 1 always works")  # pragma: no cover
