"""Register/FIFO-accurate micro-simulator of the MLCNN datapath.

The paper prototypes MLCNN at RTL (Verilog) to validate the AR-unit /
MAC-slice dataflow of Fig. 7(b), Fig. 10 and Fig. 11.  This module
plays that role: a cycle-stepped structural model with explicit FIFOs,
shift registers, a 3-stage multiplier pipeline and an accumulator,
executing the fused convolution-pooling kernel for one input channel /
one output channel at 2x2 pooling.

What it validates (and the tests assert):

* functional equivalence — the streamed datapath produces exactly the
  same pooled outputs as the vectorized fused kernel;
* bounded storage — FIFO high-water marks never exceed their declared
  depths (the paper sizes two FIFOs per MAC slice);
* reuse — each input element is read from the stream exactly once;
  every half addition is computed once (LAR) and every ``I_Acc`` value
  once (GAR), matching the op counts of
  :func:`repro.core.fusion.fused_conv_pool_counted`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np


class Fifo:
    """A bounded FIFO with occupancy tracking (models the HW queues)."""

    def __init__(self, depth: int, name: str = "fifo") -> None:
        if depth < 1:
            raise ValueError("FIFO depth must be >= 1")
        self.depth = depth
        self.name = name
        self._q: Deque[float] = deque()
        self.high_water = 0
        self.pushes = 0
        self.pops = 0

    def push(self, value: float) -> None:
        if len(self._q) >= self.depth:
            raise OverflowError(f"{self.name}: push into full FIFO (depth {self.depth})")
        self._q.append(value)
        self.pushes += 1
        self.high_water = max(self.high_water, len(self._q))

    def pop(self) -> float:
        if not self._q:
            raise IndexError(f"{self.name}: pop from empty FIFO")
        self.pops += 1
        return self._q.popleft()

    def __len__(self) -> int:
        return len(self._q)

    @property
    def full(self) -> bool:
        return len(self._q) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._q


class ShiftRegister:
    """A fixed-length shift register with tap reads (GAR storage)."""

    def __init__(self, length: int, name: str = "sreg") -> None:
        if length < 1:
            raise ValueError("shift register length must be >= 1")
        self.length = length
        self.name = name
        self._data: Deque[float] = deque(maxlen=length)
        self.shifts = 0

    def shift_in(self, value: float) -> None:
        self._data.append(value)
        self.shifts += 1

    def tap(self, index: int) -> float:
        """Read tap ``index`` counted from the oldest live entry."""
        if index < 0 or index >= len(self._data):
            raise IndexError(f"{self.name}: tap {index} outside live window {len(self._data)}")
        return self._data[index]

    def __len__(self) -> int:
        return len(self._data)


@dataclass
class ARUnitStats:
    half_additions: int = 0
    full_additions: int = 0
    cycles_busy: int = 0


class ARUnit:
    """The addition-reuse unit of Fig. 7(b) for 2x2 pooling.

    Each cycle it accepts one vertical input pair ``(I[i,j], I[i+1,j])``,
    produces the half addition, and — once the previous column's half
    addition is resident in its register — emits the full addition
    (the ``I_Acc`` value) for the previous column.  One addition unit
    computes the HA, the second the FA; both fire in the same cycle,
    matching the two-adder design.
    """

    def __init__(self, out_fifo: Fifo) -> None:
        self.out_fifo = out_fifo
        self._prev_ha: Optional[float] = None
        self.stats = ARUnitStats()

    def start_row(self) -> None:
        """Reset column state at the start of an input row pair."""
        self._prev_ha = None

    def tick(self, pair: Optional[Tuple[float, float]]) -> None:
        """Advance one cycle with an optional incoming vertical pair."""
        if pair is None:
            return
        a, b = pair
        ha = a + b
        self.stats.half_additions += 1
        self.stats.cycles_busy += 1
        if self._prev_ha is not None:
            fa = self._prev_ha + ha
            self.stats.full_additions += 1
            self.out_fifo.push(fa)
        self._prev_ha = ha


@dataclass
class MACSliceStats:
    multiplications: int = 0
    accumulations: int = 0
    outputs: int = 0
    cycles_busy: int = 0


class MACSlice:
    """One MAC slice: weight registers, 3-stage multiplier, accumulator.

    Consumes ``I_Acc`` values gathered from its line buffers (the two
    shift-register sets of Fig. 11), multiplies them by the resident
    weights and accumulates ``K^2`` products per pooled output.  The
    multiplier is a 3-stage pipeline: a result issued at cycle ``t``
    retires at ``t + 3``; with back-to-back issue the pipeline stays
    full, so a pooled output costs ``K^2`` issue cycles.
    """

    PIPELINE_DEPTH = 3

    def __init__(self, weights: np.ndarray, bias: float = 0.0) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
            raise ValueError(f"MACSlice expects a square KxK weight tile, got {weights.shape}")
        self.weights = weights
        self.bias = float(bias)
        self.k = weights.shape[0]
        self._pipe: Deque[float] = deque()
        self._acc = 0.0
        self._count = 0
        self.stats = MACSliceStats()

    def issue(self, iacc_value: float, ki: int, kj: int) -> None:
        """Issue one multiply into the pipeline."""
        self._pipe.append(iacc_value * self.weights[ki, kj])
        self.stats.multiplications += 1
        self.stats.cycles_busy += 1

    def retire(self) -> None:
        """Retire the oldest pipeline product into the accumulator."""
        if self._pipe:
            v = self._pipe.popleft()
            if self._count:
                self.stats.accumulations += 1
            self._acc += v
            self._count += 1

    def drain(self) -> None:
        while self._pipe:
            self.retire()

    def finish_output(self, pool: int = 2, relu: bool = True) -> float:
        """Scale (shift), add bias, apply ReLU; reset the accumulator.

        ``relu=False`` returns the pre-activation value — used when
        channel partial sums are combined outside the slice.
        """
        self.drain()
        if self._count != self.k * self.k:
            raise RuntimeError(
                f"output finished after {self._count} products, expected {self.k * self.k}"
            )
        val = self._acc / (pool * pool) + self.bias
        self._acc = 0.0
        self._count = 0
        self.stats.outputs += 1
        return max(val, 0.0) if relu else val


@dataclass(frozen=True)
class TraceEvent:
    """One datapath event: (cycle, unit, action, value)."""

    cycle: int
    unit: str  # "ar" | "mac" | "out"
    action: str  # "ha" | "fa" | "issue" | "retire-row" | "output"
    value: float

    def format(self) -> str:
        return f"@{self.cycle:06d} {self.unit:>3} {self.action:<10} {self.value:+.6f}"


@dataclass
class RTLRunReport:
    """Cycle-level report of one fused-layer execution."""

    cycles: int
    outputs: np.ndarray
    ar_stats: ARUnitStats
    mac_stats: MACSliceStats
    fifo_high_water: int
    input_reads: int
    trace: Optional[List[TraceEvent]] = None


class RTLFusedConvPool:
    """Drive the AR unit + MAC slice over one channel of a fused layer.

    Two phases share the cycle counter, mirroring the decoupled
    producer/consumer structure (the FIFO between AR unit and MAC
    slice): the AR unit streams the input plane band by band, the MAC
    slice gathers KxK windows from its line buffers with stride p.
    """

    def __init__(
        self,
        weights: np.ndarray,
        bias: float = 0.0,
        fifo_depth: Optional[int] = None,
        relu: bool = True,
    ):
        self.weights = np.asarray(weights, dtype=np.float64)
        self.bias = float(bias)
        self.k = self.weights.shape[0]
        self.fifo_depth = fifo_depth
        self.relu = relu

    def run(self, image: np.ndarray, pool: int = 2, record_trace: bool = False) -> RTLRunReport:
        """Stream one channel through the datapath.

        ``record_trace`` collects a :class:`TraceEvent` per datapath
        action (half/full additions, multiply issues, outputs) — a
        textual stand-in for an RTL waveform dump.
        """
        x = np.asarray(image, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("RTLFusedConvPool runs one channel at a time")
        if pool != 2:
            raise ValueError("the RTL datapath is instantiated for 2x2 pooling")
        trace: Optional[List[TraceEvent]] = [] if record_trace else None
        h, w = x.shape
        k = self.k
        co = h - k + 1
        po = (co - pool) // pool + 1
        if po < 1:
            raise ValueError(f"input {h}x{w} too small for K={k}, pool={pool}")

        # The FIFO holds one I_Acc row band; depth = one padded row.
        depth = self.fifo_depth or (w + k)
        fifo = Fifo(depth, name="ar-to-mac")
        ar = ARUnit(fifo)
        mac = MACSlice(self.weights, self.bias)

        cycles = 0
        input_reads = 0
        # Line buffers: I_Acc rows live in shift registers until the
        # band of K rows needed by the current output row is complete.
        iacc_rows: List[List[float]] = []
        outputs = np.zeros((po, po))

        n_iacc_rows = h - 1  # vertical pairs
        for i in range(n_iacc_rows):
            ar.start_row()
            row_sr = ShiftRegister(w - 1, name=f"iacc-row-{i}")
            for j in range(w):
                before_fa = ar.stats.full_additions
                ar.tick((x[i, j], x[i + 1, j]))
                input_reads += 2
                cycles += 1
                if trace is not None:
                    trace.append(TraceEvent(cycles, "ar", "ha", x[i, j] + x[i + 1, j]))
                while not fifo.empty:
                    fa_val = fifo.pop()
                    if trace is not None and ar.stats.full_additions > before_fa:
                        trace.append(TraceEvent(cycles, "ar", "fa", fa_val))
                    row_sr.shift_in(fa_val)
            iacc_rows.append([row_sr.tap(t) for t in range(len(row_sr))])

            # Once rows [2r .. 2r + K - 1] exist (i == 2r + K - 1),
            # output row r can fire.
            r = (i - k + 1) // 2 if (i - k + 1) >= 0 and (i - k + 1) % 2 == 0 else None
            if r is not None and r < po:
                for q in range(po):
                    for ki in range(k):
                        for kj in range(k):
                            val = iacc_rows[2 * r + ki][2 * q + kj]
                            mac.issue(val, ki, kj)
                            cycles += 1
                            if trace is not None:
                                trace.append(TraceEvent(cycles, "mac", "issue", val))
                            if len(mac._pipe) >= MACSlice.PIPELINE_DEPTH:
                                mac.retire()
                    outputs[r, q] = mac.finish_output(pool, relu=self.relu)
                    if trace is not None:
                        trace.append(TraceEvent(cycles, "out", "output", outputs[r, q]))
                cycles += MACSlice.PIPELINE_DEPTH  # drain bubble per row

        return RTLRunReport(
            cycles=cycles,
            outputs=outputs,
            ar_stats=ar.stats,
            mac_stats=mac.stats,
            fifo_high_water=fifo.high_water,
            input_reads=input_reads,
            trace=trace,
        )


@dataclass
class RTLLayerReport:
    """Aggregate report of a multi-channel fused-layer execution."""

    outputs: np.ndarray
    total_cycles_serial: int
    cycles_parallel: int
    mac_slices_used: int
    multiplications: int
    half_additions: int
    full_additions: int


class RTLFusedConvPoolLayer:
    """A full fused layer on an array of single-channel datapaths.

    Each (output-channel, input-channel) pair streams through one
    :class:`RTLFusedConvPool` pass; channel partial sums combine in the
    output buffer (adder tree), then one bias addition and ReLU per
    pooled output — matching how the MAC-slice array of Fig. 7(a)
    schedules a multi-channel layer.

    ``mac_slices`` models spatial parallelism: per-pass cycle counts
    are summed and divided across the slice array (passes are
    independent), giving the parallel makespan estimate.
    """

    def __init__(self, weights: np.ndarray, bias: Optional[np.ndarray] = None, mac_slices: int = 1):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 4 or weights.shape[2] != weights.shape[3]:
            raise ValueError(f"expected (M, C, K, K) weights, got {weights.shape}")
        if mac_slices < 1:
            raise ValueError("need at least one MAC slice")
        self.weights = weights
        self.bias = np.zeros(weights.shape[0]) if bias is None else np.asarray(bias, dtype=np.float64)
        if self.bias.shape != (weights.shape[0],):
            raise ValueError(f"bias shape {self.bias.shape} != ({weights.shape[0]},)")
        self.mac_slices = mac_slices

    def run(self, image: np.ndarray, pool: int = 2) -> RTLLayerReport:
        x = np.asarray(image, dtype=np.float64)
        m, c, k, _ = self.weights.shape
        if x.ndim != 3 or x.shape[0] != c:
            raise ValueError(f"expected ({c}, H, W) input, got {x.shape}")
        h = x.shape[1]
        po = ((h - k + 1) - pool) // pool + 1

        outputs = np.zeros((m, po, po))
        total_cycles = 0
        mults = ha = fa = 0
        for to in range(m):
            acc = np.zeros((po, po))
            for ti in range(c):
                dp = RTLFusedConvPool(self.weights[to, ti], bias=0.0, relu=False)
                rep = dp.run(x[ti], pool=pool)
                acc += rep.outputs
                total_cycles += rep.cycles
                mults += rep.mac_stats.multiplications
                ha += rep.ar_stats.half_additions
                fa += rep.ar_stats.full_additions
            outputs[to] = np.maximum(acc + self.bias[to], 0.0)

        # Independent (to, ti) passes spread across the slice array; the
        # makespan is the serial total divided by the slices, rounded up
        # to the longest single pass.
        passes = m * c
        per_pass = total_cycles / passes
        waves = -(-passes // self.mac_slices)
        cycles_parallel = int(waves * per_pass)
        return RTLLayerReport(
            outputs=outputs,
            total_cycles_serial=total_cycles,
            cycles_parallel=cycles_parallel,
            mac_slices_used=min(self.mac_slices, passes),
            multiplications=mults,
            half_additions=ha,
            full_additions=fa,
        )
