"""Per-layer and whole-network cycle/energy simulation (Figs. 13 & 15).

The model is an accelerator-level roofline with explicit event counts:

* **Compute** — each MAC slice retires one multiply-accumulate per
  cycle (the 3-stage FP pipeline is kept full by the FIFOs, Fig. 11).
  Pooling additions (DCNN) and small-accumulation additions (MLCNN) run
  on the addition units / AR units concurrently with the MACs, so
  compute cycles are ``max(mac_cycles, add_cycles)`` plus pipeline fill.
* **Memory** — DRAM bytes follow the tiling plan of
  :mod:`repro.accel.tiling`; the multi-bank input-weight buffer streams
  tiles, so a layer costs ``traffic / bandwidth`` cycles plus one
  initial-latency charge.  Compute and memory overlap (double
  buffering): the layer takes the max of the two.
* **Energy** — dynamic energy per event (MAC ops, buffer accesses,
  DRAM bytes) plus leakage over the execution time, split into the
  DRAM / Buffer / MAC components of Fig. 15.

Operation counts come from :mod:`repro.core.opcount`; MLCNN executes
fusable layers with the fused kernel (RME/LAR/GAR) and other layers
identically to the DCNN baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.accel.config import AcceleratorConfig
from repro.accel.energy import ENERGY_45NM, EnergyBreakdown, dynamic_energy, static_energy
from repro.accel.tiling import TilingPlan, dram_traffic, plan_tiling
from repro.core.opcount import LayerOps, dcnn_layer_ops, mlcnn_layer_ops
from repro.models.specs import LayerSpec
from repro.obs.metrics import get_recorder
from repro.obs.tracer import get_tracer


def _emit_layer_event(result: "LayerResult", config: AcceleratorConfig) -> None:
    """Per-layer compute/memory/energy attribution as a structured event."""
    tracer = get_tracer()
    if not tracer.enabled:
        return
    e = result.energy
    tracer.event(
        "sim.layer",
        category="accel",
        layer=result.name,
        config=config.name,
        fused=result.fused,
        cycles=result.cycles,
        compute_cycles=result.compute_cycles,
        memory_cycles=result.memory_cycles,
        bound="compute" if result.compute_cycles >= result.memory_cycles else "memory",
        multiplications=result.ops.multiplications,
        additions=result.ops.additions,
        preprocessing_additions=result.ops.preprocessing_additions,
        dram_bytes=result.dram_bytes,
        buffer_accesses=result.buffer_accesses,
        energy_total_j=e.total_j,
        energy_dram_j=e.dram_j,
        energy_buffer_j=e.buffer_j,
        energy_mac_j=e.mac_j,
        # hardware shape, so attribution/forensics over a trace can
        # tell a config change from a workload change
        mac_slices=config.mac_slices,
        frequency_hz=config.frequency_hz,
    )

#: cycles to fill the 3-stage multiplier pipeline per tile pass
PIPELINE_FILL_CYCLES = 3


@dataclass
class LayerResult:
    """Simulation outcome for one layer on one configuration."""

    name: str
    fused: bool
    cycles: float
    compute_cycles: float
    memory_cycles: float
    ops: LayerOps
    dram_bytes: float
    buffer_accesses: float
    energy: EnergyBreakdown
    tiling: TilingPlan

    @property
    def seconds(self) -> float:
        return self.cycles  # populated later by NetworkResult scaling


@dataclass
class NetworkResult:
    """Aggregate of per-layer results for one configuration."""

    config: AcceleratorConfig
    layers: List[LayerResult] = field(default_factory=list)

    @property
    def cycles(self) -> float:
        return sum(l.cycles for l in self.layers)

    @property
    def seconds(self) -> float:
        return self.cycles / self.config.frequency_hz

    @property
    def energy(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for l in self.layers:
            total = total + l.energy
        return total

    def layer(self, name: str) -> LayerResult:
        for l in self.layers:
            if l.name == name:
                return l
        raise KeyError(f"no layer named {name!r}")


def _buffer_accesses(spec: LayerSpec, ops: LayerOps, plan: TilingPlan, fused: bool) -> float:
    """SRAM buffer access count for one layer execution.

    Inputs stream through the FIFO/shift-register network, which reuses
    each fetched operand across the filter row (factor K); weights are
    read from the buffer once per register refill (once per trip of the
    enclosing loops); partial sums are read+written per input-channel
    tile; the AR unit's preprocessing additions each read one fresh
    operand.
    """
    k = max(spec.kernel, 1)
    input_reads = ops.multiplications / k
    tm_trips, tn_trips, tr_trips, tc_trips = plan.trips(spec)
    weight_reads = tm_trips * tn_trips * tr_trips * tc_trips * (plan.tm * plan.tn * k * k)
    out_elems = spec.output_size ** 2 * spec.out_channels
    output_rw = out_elems * 2 * tn_trips
    pre_reads = ops.preprocessing_additions if fused else 0
    return input_reads + weight_reads + output_rw + pre_reads


def simulate_layer(
    spec: LayerSpec,
    config: AcceleratorConfig,
    input_preprocessed: bool = False,
    output_preprocessed: bool = False,
    batch: int = 1,
) -> LayerResult:
    """Simulate one layer on ``config``; returns cycles and energy.

    ``batch`` images share one weight fetch: compute and input/output
    traffic scale with the batch, weight traffic does not (the weights
    stay resident across the batch under the weight-input-reuse
    dataflow).
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    fused = config.fused and spec.is_fusable
    ops_one = mlcnn_layer_ops(spec) if fused else dcnn_layer_ops(spec)
    ops = LayerOps(
        ops_one.multiplications * batch,
        ops_one.additions * batch,
        ops_one.preprocessing_additions * batch,
    )

    # --- compute ---------------------------------------------------------
    mac_adds = min(ops.additions, ops.multiplications)  # fused mult+acc pairs
    extra_adds = ops.additions - mac_adds + ops.preprocessing_additions
    mac_cycles = ops.multiplications / config.mac_slices
    adders = config.ar_units if (fused and config.ar_units) else config.mac_slices
    add_cycles = extra_adds / adders
    compute_cycles = max(mac_cycles, add_cycles) + PIPELINE_FILL_CYCLES

    # --- memory ----------------------------------------------------------
    buffer_bytes = config.onchip_memory_kb * 1024
    plan = plan_tiling(spec, buffer_bytes, config.bytes_per_element)
    dram_one = dram_traffic(
        spec,
        plan,
        config.bytes_per_element,
        input_preprocessed=input_preprocessed and fused,
        output_preprocessed=output_preprocessed,
    )
    if batch > 1:
        tm_trips, tn_trips, tr_trips, tc_trips = plan.trips(spec)
        k = spec.kernel
        weight_bytes = (
            tm_trips * tn_trips * tr_trips * tc_trips
            * plan.tm * plan.tn * k * k * config.bytes_per_element
        )
        dram_bytes = weight_bytes + batch * (dram_one - weight_bytes)
    else:
        dram_bytes = dram_one
    memory_cycles = dram_bytes / config.dram_bytes_per_cycle + config.dram_latency_cycles

    cycles = max(compute_cycles, memory_cycles)

    # --- energy ----------------------------------------------------------
    table = ENERGY_45NM[config.bitwidth]
    accesses = _buffer_accesses(spec, ops, plan, fused)
    energy = dynamic_energy(
        table,
        ops.multiplications,
        ops.additions + ops.preprocessing_additions,
        accesses,
        dram_bytes,
    )
    energy.static_j = static_energy(table, cycles / config.frequency_hz)

    recorder = get_recorder()
    if recorder.enabled:
        recorder.record(buffer_accesses=accesses, dram_bytes=dram_bytes)

    return LayerResult(
        name=spec.name,
        fused=fused,
        cycles=cycles,
        compute_cycles=compute_cycles,
        memory_cycles=memory_cycles,
        ops=ops,
        dram_bytes=dram_bytes,
        buffer_accesses=accesses,
        energy=energy,
        tiling=plan,
    )


def simulate_network(
    specs: Sequence[LayerSpec], config: AcceleratorConfig, batch: int = 1
) -> NetworkResult:
    """Simulate all layers of a network on ``config``.

    On the MLCNN configurations, a fused layer's input arrives
    preprocessed: the preprocessing stage (Fig. 9, selector S2) adds
    column pairs of the *previous* layer's output before writing to
    DRAM whenever the consumer is fused, halving both that write and
    this read.  The first layer always reads the raw image.
    """
    result = NetworkResult(config)
    spec_list = list(specs)
    with get_tracer().span(
        "sim.network", category="accel", config=config.name, layers=len(spec_list)
    ) as sp:
        for i, spec in enumerate(spec_list):
            next_fused = (
                config.fused and i + 1 < len(spec_list) and spec_list[i + 1].is_fusable
            )
            layer_result = simulate_layer(
                spec,
                config,
                input_preprocessed=config.fused and i > 0,
                output_preprocessed=next_fused,
                batch=batch,
            )
            result.layers.append(layer_result)
            _emit_layer_event(layer_result, config)
        sp.set(cycles=result.cycles, energy_j=result.energy.total_j)
    return result


@dataclass
class Comparison:
    """Speedup / energy-efficiency of a config against a baseline."""

    baseline: NetworkResult
    candidate: NetworkResult

    @property
    def speedup(self) -> float:
        return self.baseline.cycles / self.candidate.cycles

    @property
    def energy_efficiency(self) -> float:
        return self.baseline.energy.total_j / self.candidate.energy.total_j

    def layer_speedups(self) -> Dict[str, float]:
        return {
            b.name: b.cycles / c.cycles
            for b, c in zip(self.baseline.layers, self.candidate.layers)
        }

    def layer_energy_ratios(self) -> Dict[str, float]:
        return {
            b.name: b.energy.total_j / c.energy.total_j
            for b, c in zip(self.baseline.layers, self.candidate.layers)
        }


def compare_networks(
    specs: Sequence[LayerSpec],
    baseline: AcceleratorConfig,
    candidate: AcceleratorConfig,
) -> Comparison:
    """Run both configurations over ``specs`` and compare."""
    with get_tracer().span(
        "sim.compare", category="accel", baseline=baseline.name, candidate=candidate.name
    ):
        return Comparison(
            baseline=simulate_network(specs, baseline),
            candidate=simulate_network(specs, candidate),
        )


def simulate_network_layer_fused(
    specs: Sequence[LayerSpec], config: AcceleratorConfig
) -> NetworkResult:
    """Alwani-style fused-layer execution (related-work baseline [27]).

    Consecutive layers are fused *for data movement only*: when a
    layer's output fits on chip alongside the next layer's working set,
    the intermediate feature map never travels to DRAM — but every
    multiplication and addition is still performed.  The paper contrasts
    this (≈1.5×) with MLCNN's arithmetic elimination (≈3.2×).
    """
    result = NetworkResult(config)
    spec_list = list(specs)
    buffer_bytes = config.onchip_memory_kb * 1024
    for i, spec in enumerate(spec_list):
        base = simulate_layer(spec, config)
        # Output stays on chip when it (and the next input halo) fits
        # in half the buffer (the other half double-buffers weights).
        out_bytes = spec.output_size ** 2 * spec.out_channels * config.bytes_per_element
        keep_out = i + 1 < len(spec_list) and out_bytes <= buffer_bytes / 2
        keep_in = i > 0 and (
            spec.input_size ** 2 * spec.in_channels * config.bytes_per_element
            <= buffer_bytes / 2
        )
        dram_bytes = base.dram_bytes
        if keep_out:
            dram_bytes -= out_bytes
        if keep_in:
            # the producer already kept it on chip; drop this layer's
            # compulsory input fetch share (one copy of the input)
            in_bytes = spec.input_size ** 2 * spec.in_channels * config.bytes_per_element
            dram_bytes = max(dram_bytes - in_bytes, 0.0)
        memory_cycles = dram_bytes / config.dram_bytes_per_cycle + config.dram_latency_cycles
        cycles = max(base.compute_cycles, memory_cycles)
        table = ENERGY_45NM[config.bitwidth]
        energy = dynamic_energy(
            table,
            base.ops.multiplications,
            base.ops.additions + base.ops.preprocessing_additions,
            base.buffer_accesses,
            dram_bytes,
        )
        energy.static_j = static_energy(table, cycles / config.frequency_hz)
        layer_result = LayerResult(
            name=spec.name,
            fused=False,
            cycles=cycles,
            compute_cycles=base.compute_cycles,
            memory_cycles=memory_cycles,
            ops=base.ops,
            dram_bytes=dram_bytes,
            buffer_accesses=base.buffer_accesses,
            energy=energy,
            tiling=base.tiling,
        )
        result.layers.append(layer_result)
        _emit_layer_event(layer_result, config)
    return result
