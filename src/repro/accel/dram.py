"""DRAM timing model: row-buffer locality and burst transfers.

The cycle model in :mod:`repro.accel.simulator` treats DRAM as a
bandwidth/latency pair; this component model refines that for studies
of the *streaming* behaviour the MLCNN dataflow depends on: tile
transfers are long sequential bursts, so row-buffer hits dominate and
the effective bandwidth approaches the peak.  Random access (the
pattern a naive untiled execution would produce) pays a row activation
per access.

The parameters are typical of DDR3-1600 scaled to cycles of a 1 GHz
accelerator clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import get_recorder


@dataclass
class DramConfig:
    row_size_bytes: int = 2048
    #: cycles to activate (open) a row after a miss
    row_activate_cycles: int = 14
    #: cycles for column access on an open row
    cas_cycles: int = 14
    #: bytes transferred per cycle once streaming
    bytes_per_cycle: float = 16.0

    def __post_init__(self) -> None:
        if self.row_size_bytes <= 0 or self.bytes_per_cycle <= 0:
            raise ValueError("row size and bandwidth must be positive")


@dataclass
class DramStats:
    accesses: int = 0
    row_hits: int = 0
    row_misses: int = 0
    bytes_transferred: int = 0
    cycles: int = 0

    @property
    def hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0


class DramModel:
    """A single-rank open-page DRAM with one row buffer."""

    def __init__(self, config: DramConfig | None = None) -> None:
        self.config = config or DramConfig()
        self.stats = DramStats()
        self._open_row: int | None = None

    def reset(self) -> None:
        self.stats = DramStats()
        self._open_row = None

    def access(self, address: int, nbytes: int) -> int:
        """Transfer ``nbytes`` starting at ``address``; returns cycles.

        A transfer spanning multiple rows pays one activation per new
        row; within a row, data streams at the configured bandwidth.
        """
        if nbytes <= 0:
            raise ValueError("transfer size must be positive")
        if address < 0:
            raise ValueError("address must be non-negative")
        cfg = self.config
        cycles = 0
        accesses = hits = misses = 0
        remaining = nbytes
        addr = address
        while remaining > 0:
            row = addr // cfg.row_size_bytes
            accesses += 1
            if row == self._open_row:
                hits += 1
                cycles += cfg.cas_cycles
            else:
                misses += 1
                cycles += cfg.row_activate_cycles + cfg.cas_cycles
                self._open_row = row
            in_row = min(remaining, cfg.row_size_bytes - addr % cfg.row_size_bytes)
            cycles += int(np_ceil(in_row / cfg.bytes_per_cycle))
            addr += in_row
            remaining -= in_row
        self.stats.accesses += accesses
        self.stats.row_hits += hits
        self.stats.row_misses += misses
        self.stats.bytes_transferred += nbytes
        self.stats.cycles += cycles
        get_recorder().record(
            dram_accesses=accesses,
            dram_row_hits=hits,
            dram_row_misses=misses,
            dram_cycles=cycles,
            dram_bytes=nbytes,
        )
        return cycles

    def stream(self, address: int, nbytes: int, chunk: int = 64) -> int:
        """Sequential transfer in ``chunk``-byte requests (tile DMA)."""
        total = 0
        for off in range(0, nbytes, chunk):
            total += self.access(address + off, min(chunk, nbytes - off))
        return total

    def effective_bandwidth(self) -> float:
        """Observed bytes per cycle over every access so far."""
        return self.stats.bytes_transferred / self.stats.cycles if self.stats.cycles else 0.0


def np_ceil(x: float) -> int:
    """Integer ceiling without importing numpy for one call."""
    n = int(x)
    return n if n == x else n + 1
