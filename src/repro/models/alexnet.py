"""AlexNet (Krizhevsky et al.) — the paper's 11x11-filter reference.

Section V picks the 11x11 filter "as it is commonly used in CNN models
(e.g., AlexNet)" and shows it maximizes LAR reuse (Table II).  This
CIFAR-adapted AlexNet keeps the signature large first-layer kernel
(scaled to the input size) with a pooling layer right after it, so the
famous conv1 is MLCNN-fusable after reordering; at 224x224 the spec
list reproduces the original geometry (11x11 stride-4 is replaced by a
stride-1 11x11 + pool for the fusable variant the paper analyzes).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.models.blocks import ConvBlock, PoolSpec
from repro.nn.layers import Dropout, Flatten, Linear, Module, ReLU, Sequential
from repro.nn.tensor import Tensor


class AlexNet(Module):
    """CIFAR-adapted AlexNet with a large pooled first kernel."""

    name = "alexnet"

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 32,
        width_mult: float = 1.0,
        pooling: str = "avg",
        order: str = "act_pool",
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if image_size % 4 != 0 or image_size < 16:
            raise ValueError(f"image_size must be >=16 and divisible by 4, got {image_size}")
        rng = rng or np.random.default_rng(0)
        m = width_mult
        w = [max(4, round(c * m)) for c in (64, 192, 384, 256, 256)]
        # Signature large first kernel, scaled with the input (11 at 224).
        k1 = 11 if image_size >= 128 else (7 if image_size >= 64 else 5)

        self.features = Sequential(
            ConvBlock(
                in_channels, w[0], k1, padding=k1 // 2,
                pool=PoolSpec(pooling, 2), order=order, rng=rng,
            ),
            ConvBlock(
                w[0], w[1], 5, padding=2,
                pool=PoolSpec(pooling, 2), order=order, rng=rng,
            ),
            ConvBlock(w[1], w[2], 3, padding=1, rng=rng),
            ConvBlock(w[2], w[3], 3, padding=1, rng=rng),
            ConvBlock(
                w[3], w[4], 3, padding=1,
                pool=PoolSpec(pooling, 2), order=order, rng=rng,
            ),
        )
        final_spatial = image_size // 8
        head: List[Module] = [Flatten()]
        if dropout > 0:
            head.append(Dropout(dropout, rng=rng))
        head.extend(
            [
                Linear(w[4] * final_spatial * final_spatial, max(8, round(256 * m)), rng=rng),
                ReLU(),
                Linear(max(8, round(256 * m)), num_classes, rng=rng),
            ]
        )
        self.classifier = Sequential(*head)

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))
