"""Layer-reordering and all-conv graph transforms (Section III).

The transforms mutate the model in place and return it, so they compose
with the training harness:

* :func:`reorder_activation_pooling` — switch every ``Conv -> ReLU ->
  Pool`` block to ``Conv -> Pool -> ReLU`` (the MLCNN-equivalent
  network; exact for max pooling, retrained for average pooling).
* :func:`to_allconv` — remove pooling layers, folding the spatial
  reduction into convolution strides (the All-Conv baseline [7]).
* :func:`set_pooling` — swap average/max pooling everywhere (Fig. 4).
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.models.blocks import ConvBlock, PooledInception, PoolSpec
from repro.nn.layers import Module

Pooled = Union[ConvBlock, PooledInception]


def conv_pool_blocks(model: Module) -> List[Pooled]:
    """All blocks in ``model`` that own a pooling layer (fusion candidates)."""
    out: List[Pooled] = []
    for _, mod in model.named_modules():
        if isinstance(mod, (ConvBlock, PooledInception)) and mod.pool is not None:
            out.append(mod)
    return out


def reorder_activation_pooling(model: Module) -> Module:
    """Move every pooling layer ahead of its activation (AP+ReLU order)."""
    for block in conv_pool_blocks(model):
        block.order = "pool_act"
    return model


def restore_original_order(model: Module) -> Module:
    """Undo :func:`reorder_activation_pooling` (back to ReLU+AP)."""
    for block in conv_pool_blocks(model):
        block.order = "act_pool"
    return model


def set_pooling(model: Module, kind: str) -> Module:
    """Switch every pooling layer to ``kind`` ('avg' or 'max')."""
    if kind not in ("avg", "max"):
        raise ValueError(f"pooling kind must be 'avg' or 'max', got {kind!r}")
    for block in conv_pool_blocks(model):
        block.pool.kind = kind
    return model


def to_allconv(model: Module, rng=None, seed: Optional[int] = None) -> Module:
    """Replace pooling with strided convolution (All-Conv transform [7]).

    For a :class:`ConvBlock`, the pool of stride ``p`` is dropped and
    the convolution stride is multiplied by ``p`` (no new parameters).
    For a :class:`PooledInception` — whose pool follows a concat, not a
    single conv — a new stride-``p`` 3x3 convolution is appended, as in
    Springenberg et al.'s "replace pooling by a conv with stride".

    Determinism: the new downsample conv weights are drawn from ``rng``
    if given, else from ``np.random.default_rng(seed)`` (``seed``
    defaults to 0).  Two calls with the same ``rng`` state or the same
    ``seed`` therefore produce bit-identical models; the compiler's
    :class:`~repro.compiler.CompileContext` threads its seeded ``rng``
    through here so pipeline results are reproducible end to end.
    """
    if rng is None:
        rng = np.random.default_rng(0 if seed is None else seed)
    for block in conv_pool_blocks(model):
        if isinstance(block, ConvBlock):
            p = block.pool.stride
            sh, sw = block.conv.stride
            block.conv.stride = (sh * p, sw * p)
            block.pool = None
        else:  # PooledInception
            p = block.pool.stride
            ch = block.inception.out_channels
            if p == 1:
                block.pool = None
                continue
            block.downsample = ConvBlock(ch, ch, 3, stride=p, padding=1, rng=rng)
            block.pool = None
    return model
