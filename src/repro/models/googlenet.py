"""GoogLeNet (Szegedy et al.), CIFAR-style variant.

Table I counts "1+1+1 + 9x6" convolutions: a three-conv stem plus nine
inception modules of six convolutions each.  Pooling follows the stem,
inception 3b, and inception 4e, and a global average pool follows 5b;
the paper reports twelve fusable layers (3 pooled inception stages x 4
branch output convolutions) and attributes GoogLeNet's best-in-class
multiplication reduction (98%) to its 8x8 final average pool.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.blocks import ConvBlock, Inception, PooledInception, PoolSpec
from repro.nn import functional as F
from repro.nn.layers import Linear, Module, Sequential
from repro.nn.tensor import Tensor


def _scaled(width_mult: float, *vals: int):
    return tuple(max(2, round(v * width_mult)) for v in vals)


class GoogLeNet(Module):
    """Nine-inception GoogLeNet with pooled stages.

    ``final_pool_act`` controls whether the final ReLU sits before or
    after the 8x8 global average pool (the paper's reordering applies
    there as well; DenseNet/PNASNet already use the reordered layout).
    """

    name = "googlenet"

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 32,
        width_mult: float = 1.0,
        pooling: str = "avg",
        order: str = "act_pool",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if image_size % 4 != 0:
            raise ValueError(f"image_size must be divisible by 4, got {image_size}")
        rng = rng or np.random.default_rng(0)
        m = width_mult

        # Stem: three convolutions (Table I's leading "1+1+1").
        s1, s2, s3 = _scaled(m, 64, 64, 192)
        self.stem = Sequential(
            ConvBlock(in_channels, s1, 3, padding=1, rng=rng),
            ConvBlock(s1, s2, 1, rng=rng),
            ConvBlock(s2, s3, 3, padding=1, rng=rng),
        )

        def incep(in_ch, *cfg):
            return Inception(in_ch, *_scaled(m, *cfg), rng=rng)

        i3a = incep(s3, 64, 96, 128, 16, 32, 32)
        i3b = incep(i3a.out_channels, 128, 128, 192, 32, 96, 64)
        self.stage3a = i3a
        self.stage3b = PooledInception(i3b, PoolSpec(pooling, 2), order=order, rng=rng)

        i4a = incep(i3b.out_channels, 192, 96, 208, 16, 48, 64)
        i4b = incep(i4a.out_channels, 160, 112, 224, 24, 64, 64)
        i4c = incep(i4b.out_channels, 128, 128, 256, 24, 64, 64)
        i4d = incep(i4c.out_channels, 112, 144, 288, 32, 64, 64)
        i4e = incep(i4d.out_channels, 256, 160, 320, 32, 128, 128)
        self.stage4a = i4a
        self.stage4b = i4b
        self.stage4c = i4c
        self.stage4d = i4d
        self.stage4e = PooledInception(i4e, PoolSpec(pooling, 2), order=order, rng=rng)

        i5a = incep(i4e.out_channels, 256, 160, 320, 32, 128, 128)
        i5b = incep(i5a.out_channels, 384, 192, 384, 48, 128, 128)
        final_spatial = image_size // 4
        self.stage5a = i5a
        self.stage5b = PooledInception(
            i5b, PoolSpec("avg", final_spatial), order=order, rng=rng
        )
        self.fc = Linear(i5b.out_channels, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem(x)
        x = self.stage3b(self.stage3a(x))
        x = self.stage4e(self.stage4d(self.stage4c(self.stage4b(self.stage4a(x)))))
        x = self.stage5b(self.stage5a(x))
        x = x.reshape(x.shape[0], -1)
        return self.fc(x)
