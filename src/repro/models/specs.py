"""Full-size per-layer shape specifications for the evaluated CNNs.

The accelerator experiments (Figs. 13-15) need exact layer shapes of the
*full-size* networks at CIFAR resolution (32x32) without paying for
weight allocation or NumPy inference.  A :class:`LayerSpec` describes
one convolutional layer and the pooling (if any) that follows it; spec
lists are consumed by :mod:`repro.core.opcount` and
:mod:`repro.accel.simulator`.

The fusable-layer counts reproduce Section VII: LeNet-5 has 2, VGG-16
has 5, GoogLeNet has 12 (3 pooled inception stages x 4 branch output
convolutions), DenseNet has 3 (transition blocks).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List


@dataclass(frozen=True)
class LayerSpec:
    """Shape of one convolutional layer and its (optional) pooling."""

    name: str
    in_channels: int
    out_channels: int
    input_size: int  # spatial dimension of the (square) input feature map
    kernel: int
    stride: int = 1
    padding: int = 0
    pool: int = 0  # pooling window (0: no pooling follows this conv)
    pool_stride: int = 0

    def __post_init__(self) -> None:
        if self.kernel < 1 or self.in_channels < 1 or self.out_channels < 1:
            raise ValueError(f"invalid layer spec {self}")
        if self.pool and not self.pool_stride:
            object.__setattr__(self, "pool_stride", self.pool)

    @property
    def conv_output_size(self) -> int:
        out = (self.input_size + 2 * self.padding - self.kernel) // self.stride + 1
        if out <= 0:
            raise ValueError(f"layer {self.name} has empty output")
        return out

    @property
    def output_size(self) -> int:
        """Spatial size after the pooling (if any)."""
        conv = self.conv_output_size
        if not self.pool:
            return conv
        return (conv - self.pool) // self.pool_stride + 1

    @property
    def is_fusable(self) -> bool:
        """Fusable by MLCNN: a (reorderable) pool follows a stride-1 conv."""
        return self.pool > 1 and self.stride == 1

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of the plain convolution."""
        return (
            self.conv_output_size ** 2
            * self.out_channels
            * self.in_channels
            * self.kernel ** 2
        )

    @property
    def weight_count(self) -> int:
        return self.out_channels * self.in_channels * self.kernel ** 2 + self.out_channels


def lenet5_specs(image_size: int = 32, in_channels: int = 3) -> List[LayerSpec]:
    """LeNet-5: C1/C2 are fused with their 2x2 average pools; C3 is not."""
    d1 = (image_size - 4) // 2
    d2 = (d1 - 4) // 2
    return [
        LayerSpec("C1", in_channels, 6, image_size, 5, pool=2),
        LayerSpec("C2", 6, 16, d1, 5, pool=2),
        LayerSpec("C3", 16, 120, d2, min(5, d2)),
    ]


def vgg_specs(variant: str = "vgg16", image_size: int = 32, in_channels: int = 3) -> List[LayerSpec]:
    """VGG-16/19: the last conv of each of the 5 stages carries the pool."""
    depths = {"vgg16": [2, 2, 3, 3, 3], "vgg19": [2, 2, 4, 4, 4]}[variant]
    widths = [64, 128, 256, 512, 512]
    specs: List[LayerSpec] = []
    ch, size, idx = in_channels, image_size, 1
    for depth, width in zip(depths, widths):
        for i in range(depth):
            last = i == depth - 1
            specs.append(
                LayerSpec(
                    f"C{idx}", ch, width, size, 3, padding=1, pool=2 if last else 0
                )
            )
            ch = width
            idx += 1
        size //= 2
    return specs


def vgg16_specs(image_size: int = 32, in_channels: int = 3) -> List[LayerSpec]:
    return vgg_specs("vgg16", image_size, in_channels)


def vgg19_specs(image_size: int = 32, in_channels: int = 3) -> List[LayerSpec]:
    return vgg_specs("vgg19", image_size, in_channels)


#: inception channel configuration: (c1, c3r, c3, c5r, c5, pool_proj)
_INCEPTION_CFG = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}
#: stages whose inception output is pooled (window size at 32x32 input)
_GOOGLENET_POOLED = {"3b": 2, "4e": 2, "5b": 8}


def googlenet_specs(image_size: int = 32, in_channels: int = 3) -> List[LayerSpec]:
    """GoogLeNet: 3 stem convs + 9 inception modules of 6 convs each.

    The four *output* convolutions of the pooled stages (3b, 4e, 5b) are
    fusable — 12 layers total, matching the paper.  The final stage 5b
    feeds the 8x8 global average pool, which is why its branch convs
    (C9-C12 in the paper's figure numbering of fusable layers) see a 98%
    multiplication reduction.
    """
    specs: List[LayerSpec] = []
    size = image_size
    specs.append(LayerSpec("stem1", in_channels, 64, size, 3, padding=1))
    specs.append(LayerSpec("stem2", 64, 64, size, 1))
    specs.append(LayerSpec("stem3", 64, 192, size, 3, padding=1))
    ch = 192
    for stage, cfg in _INCEPTION_CFG.items():
        c1, c3r, c3, c5r, c5, pp = cfg
        pool = _GOOGLENET_POOLED.get(stage, 0)
        if pool == 8:
            pool = size  # global average pool over the current spatial size
        specs.extend(
            [
                LayerSpec(f"{stage}.b1", ch, c1, size, 1, pool=pool),
                LayerSpec(f"{stage}.b2r", ch, c3r, size, 1),
                LayerSpec(f"{stage}.b2", c3r, c3, size, 3, padding=1, pool=pool),
                LayerSpec(f"{stage}.b3r", ch, c5r, size, 1),
                LayerSpec(f"{stage}.b3", c5r, c5, size, 5, padding=2, pool=pool),
                LayerSpec(f"{stage}.b4", ch, pp, size, 1, pool=pool),
            ]
        )
        ch = c1 + c3 + c5 + pp
        if pool:
            size = (size - pool) // pool + 1
    return specs


def densenet_specs(
    image_size: int = 32,
    in_channels: int = 3,
    growth_rate: int = 12,
    block_layers: int = 4,
) -> List[LayerSpec]:
    """DenseNet: dense 3x3 convs plus three 1x1-conv transitions with AP2."""
    specs: List[LayerSpec] = []
    size = image_size
    ch = 2 * growth_rate
    specs.append(LayerSpec("stem", in_channels, ch, size, 3, padding=1))
    for b in range(3):
        for l in range(block_layers):
            specs.append(
                LayerSpec(f"B{b + 1}.conv{l + 1}", ch, growth_rate, size, 3, padding=1)
            )
            ch += growth_rate
        specs.append(LayerSpec(f"T{b + 1}", ch, ch // 2, size, 1, pool=2))
        ch //= 2
        size //= 2
    return specs


def resnet18_specs(image_size: int = 32, in_channels: int = 3) -> List[LayerSpec]:
    """ResNet-18 (CIFAR-style): pooled stem + 4 stages of 2 basic blocks."""
    specs: List[LayerSpec] = [
        LayerSpec("stem", in_channels, 64, image_size, 3, padding=1, pool=2)
    ]
    size = image_size // 2
    ch = 64
    for stage, width in enumerate((64, 128, 256, 512), start=1):
        for block in (1, 2):
            stride = 2 if (stage > 1 and block == 1) else 1
            specs.append(
                LayerSpec(f"L{stage}.{block}a", ch, width, size, 3, stride=stride, padding=1)
            )
            if stride == 2:
                size //= 2
            specs.append(LayerSpec(f"L{stage}.{block}b", width, width, size, 3, padding=1))
            ch = width
    return specs


MODEL_SPECS: Dict[str, callable] = {
    "lenet5": lenet5_specs,
    "vgg16": vgg16_specs,
    "vgg19": vgg19_specs,
    "googlenet": googlenet_specs,
    "densenet": densenet_specs,
    "resnet18": resnet18_specs,
}


def get_specs(model: str, image_size: int = 32, in_channels: int = 3) -> List[LayerSpec]:
    if model not in MODEL_SPECS:
        raise KeyError(f"unknown model {model!r}; available: {sorted(MODEL_SPECS)}")
    return MODEL_SPECS[model](image_size, in_channels)


def fusable_layers(specs: List[LayerSpec]) -> List[LayerSpec]:
    """The layers MLCNN optimizes (conv directly feeding a pool)."""
    return [s for s in specs if s.is_fusable]


def alexnet_specs(image_size: int = 224, in_channels: int = 3) -> List[LayerSpec]:
    """AlexNet geometry for the fusable (stride-1 + pool) variant.

    At 224x224 the first layer keeps its 11x11 kernel — the filter size
    the paper's Table II/III LAR analysis singles out.  Spatial
    reduction comes from three 2x2 pools (conv1, conv2, conv5), mapping
    AlexNet's three downsampling points onto fusable conv-pool pairs.
    """
    if image_size >= 128:
        k1 = 11
    elif image_size >= 64:
        k1 = 7
    else:
        k1 = 5
    size = image_size
    specs: List[LayerSpec] = []
    specs.append(LayerSpec("C1", in_channels, 64, size, k1, padding=k1 // 2, pool=2))
    size //= 2
    specs.append(LayerSpec("C2", 64, 192, size, 5, padding=2, pool=2))
    size //= 2
    specs.append(LayerSpec("C3", 192, 384, size, 3, padding=1))
    specs.append(LayerSpec("C4", 384, 256, size, 3, padding=1))
    specs.append(LayerSpec("C5", 256, 256, size, 3, padding=1, pool=2))
    return specs


MODEL_SPECS["alexnet"] = alexnet_specs
