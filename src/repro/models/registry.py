"""Model registry: name -> factory with uniform keyword arguments.

Every factory accepts ``num_classes, in_channels, image_size,
width_mult, pooling, order, rng`` (DenseNet ignores ``pooling`` — its
transitions are average-pooled by construction).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.models.alexnet import AlexNet
from repro.models.densenet import DenseNet
from repro.models.googlenet import GoogLeNet
from repro.models.lenet import LeNet5
from repro.models.resnet import ResNet18
from repro.models.vgg import vgg16, vgg19
from repro.nn.layers import Module


def _densenet(num_classes=10, in_channels=3, image_size=32, width_mult=1.0,
              pooling="avg", order="pool_act", rng=None) -> DenseNet:
    # DenseNet transitions always average-pool (its native design).
    return DenseNet(
        num_classes=num_classes,
        in_channels=in_channels,
        image_size=image_size,
        width_mult=width_mult,
        order=order,
        rng=rng,
    )


MODEL_REGISTRY: Dict[str, Callable[..., Module]] = {
    "alexnet": AlexNet,
    "lenet5": LeNet5,
    "vgg16": vgg16,
    "vgg19": vgg19,
    "googlenet": GoogLeNet,
    "densenet": _densenet,
    "resnet18": ResNet18,
}


def build_model(
    name: str,
    num_classes: int = 10,
    in_channels: int = 3,
    image_size: int = 32,
    width_mult: float = 1.0,
    pooling: str = "avg",
    order: str = "act_pool",
    seed: int = 0,
    **kwargs,
) -> Module:
    """Instantiate a registered model with a seeded RNG."""
    if name not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}")
    rng = np.random.default_rng(seed)
    return MODEL_REGISTRY[name](
        num_classes=num_classes,
        in_channels=in_channels,
        image_size=image_size,
        width_mult=width_mult,
        pooling=pooling,
        order=order,
        rng=rng,
        **kwargs,
    )
