"""repro.models — CNN model zoo used in the paper's evaluation.

The zoo includes the four evaluated networks (LeNet-5, VGG-16/19,
GoogLeNet, DenseNet), the All-Conv variant used as a baseline in the
reordering study, and a ResNet-18 extension (mentioned in the paper's
conclusions).  Every model is assembled from :class:`ConvBlock` units
whose activation/pooling relative order is a mutable attribute, which
is what makes the paper's layer reordering a one-line graph transform.
"""

from repro.models.blocks import (
    ConvBlock,
    PoolSpec,
    Inception,
    PooledInception,
    DenseBlock,
    TransitionBlock,
    BasicResBlock,
)
from repro.models.lenet import LeNet5
from repro.models.alexnet import AlexNet
from repro.models.vgg import VGG, vgg16, vgg19
from repro.models.googlenet import GoogLeNet
from repro.models.densenet import DenseNet
from repro.models.resnet import ResNet18
from repro.models.reorder import (
    reorder_activation_pooling,
    restore_original_order,
    to_allconv,
    set_pooling,
    conv_pool_blocks,
)
from repro.models.registry import MODEL_REGISTRY, build_model
from repro.models import specs

__all__ = [
    "ConvBlock",
    "PoolSpec",
    "PooledInception",
    "Inception",
    "DenseBlock",
    "TransitionBlock",
    "BasicResBlock",
    "LeNet5",
    "AlexNet",
    "VGG",
    "vgg16",
    "vgg19",
    "GoogLeNet",
    "DenseNet",
    "ResNet18",
    "reorder_activation_pooling",
    "restore_original_order",
    "to_allconv",
    "set_pooling",
    "conv_pool_blocks",
    "MODEL_REGISTRY",
    "build_model",
    "specs",
]
