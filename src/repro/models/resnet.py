"""ResNet-18 (extension).

The paper's conclusion notes MLCNN also applies to ResNet-18's
convolution+pooling layers.  This CIFAR-style variant places a pooled
:class:`ConvBlock` stem (conv3x3 + 2x2 pool) ahead of four basic-block
stages, so the stem convolution is MLCNN-fusable after reordering.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.blocks import BasicResBlock, ConvBlock, PoolSpec
from repro.nn import functional as F
from repro.nn.layers import Linear, Module, Sequential
from repro.nn.tensor import Tensor


class ResNet18(Module):
    name = "resnet18"

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 32,
        width_mult: float = 1.0,
        pooling: str = "avg",
        order: str = "act_pool",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if image_size % 16 != 0:
            raise ValueError(f"image_size must be divisible by 16, got {image_size}")
        rng = rng or np.random.default_rng(0)
        w = [max(4, round(c * width_mult)) for c in (64, 64, 128, 256, 512)]

        self.stem = ConvBlock(
            in_channels, w[0], 3, padding=1, pool=PoolSpec(pooling, 2), order=order, rng=rng
        )
        self.layer1 = Sequential(
            BasicResBlock(w[0], w[1], rng=rng), BasicResBlock(w[1], w[1], rng=rng)
        )
        self.layer2 = Sequential(
            BasicResBlock(w[1], w[2], stride=2, rng=rng), BasicResBlock(w[2], w[2], rng=rng)
        )
        self.layer3 = Sequential(
            BasicResBlock(w[2], w[3], stride=2, rng=rng), BasicResBlock(w[3], w[3], rng=rng)
        )
        self.layer4 = Sequential(
            BasicResBlock(w[3], w[4], stride=2, rng=rng), BasicResBlock(w[4], w[4], rng=rng)
        )
        self.fc = Linear(w[4], num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem(x)
        x = self.layer4(self.layer3(self.layer2(self.layer1(x))))
        x = F.global_avg_pool2d(x)
        return self.fc(x)
