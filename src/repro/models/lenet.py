"""LeNet-5 (LeCun et al., 1998), as studied in the paper.

Structure (Table I: "1+1+1" convolutions, ~62K parameters at 32x32):
``conv5x5(6) -> pool2 -> conv5x5(16) -> pool2 -> conv5x5(120) -> fc(84)
-> fc(classes)``.  Both pooling layers follow a convolution, so MLCNN
optimizes the first two convolutional layers (Section VII.C).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.blocks import ConvBlock, PoolSpec
from repro.nn import functional as F
from repro.nn.layers import Flatten, Linear, Module, Sequential
from repro.nn.tensor import Tensor


class LeNet5(Module):
    """LeNet-5 with configurable pooling kind and activation/pool order."""

    name = "lenet5"

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 32,
        width_mult: float = 1.0,
        pooling: str = "avg",
        order: str = "act_pool",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        c1 = max(2, round(6 * width_mult))
        c2 = max(4, round(16 * width_mult))
        c3 = max(8, round(120 * width_mult))
        c4 = max(8, round(84 * width_mult))

        if image_size < 12:
            raise ValueError(f"LeNet5 needs images of at least 12px, got {image_size}")
        s1 = (image_size - 4) // 2  # after conv5 + pool2
        s2 = (s1 - 4) // 2  # after conv5 + pool2
        k3 = min(5, s2)  # final conv acts as a fully connected layer
        s3 = s2 - k3 + 1

        self.features = Sequential(
            ConvBlock(
                in_channels, c1, 5, pool=PoolSpec(pooling, 2), order=order, rng=rng
            ),
            ConvBlock(c1, c2, 5, pool=PoolSpec(pooling, 2), order=order, rng=rng),
            ConvBlock(c2, c3, k3, rng=rng),
        )
        self.classifier = Sequential(
            Flatten(),
            Linear(c3 * s3 * s3, c4, rng=rng),
        )
        self.fc_out = Linear(c4, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.features(x)
        x = F.relu(self.classifier(x))
        return self.fc_out(x)
