"""VGG-16 / VGG-19 (Simonyan & Zisserman), CIFAR-style heads.

Per the paper (Table I): VGG-16 has "2+2+3+3+3" convolutions, VGG-19
"2+2+4+4+4"; five pooling layers follow the last convolution of each
stage, so five convolutional layers are MLCNN-fusable (Section VII.C).

The paper's MLCNN variant replaces max pooling with average pooling
(Section III.B); ``pooling`` selects the kind.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.models.blocks import ConvBlock, PoolSpec
from repro.nn.layers import Dropout, Flatten, Linear, Module, ReLU, Sequential
from repro.nn.tensor import Tensor

#: stage configurations: number of 3x3 convs per stage, base widths
VGG_CONFIGS = {
    "vgg16": ([2, 2, 3, 3, 3], [64, 128, 256, 512, 512]),
    "vgg19": ([2, 2, 4, 4, 4], [64, 128, 256, 512, 512]),
}


class VGG(Module):
    """VGG backbone built from :class:`ConvBlock` stages."""

    def __init__(
        self,
        variant: str = "vgg16",
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 32,
        width_mult: float = 1.0,
        pooling: str = "avg",
        order: str = "act_pool",
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if variant not in VGG_CONFIGS:
            raise ValueError(f"unknown VGG variant {variant!r}")
        depths, widths = VGG_CONFIGS[variant]
        if image_size % 2 ** len(depths) != 0:
            raise ValueError(
                f"image_size {image_size} must be divisible by {2 ** len(depths)}"
            )
        self.name = variant
        rng = rng or np.random.default_rng(0)

        blocks: List[Module] = []
        ch = in_channels
        for depth, width in zip(depths, widths):
            w = max(4, round(width * width_mult))
            for i in range(depth):
                last = i == depth - 1
                blocks.append(
                    ConvBlock(
                        ch,
                        w,
                        3,
                        padding=1,
                        pool=PoolSpec(pooling, 2) if last else None,
                        order=order,
                        rng=rng,
                    )
                )
                ch = w
        self.features = Sequential(*blocks)
        final_spatial = image_size // 2 ** len(depths)
        head: List[Module] = [Flatten()]
        if dropout > 0:
            head.append(Dropout(dropout, rng=rng))
        head.append(Linear(ch * final_spatial * final_spatial, num_classes, rng=rng))
        self.classifier = Sequential(*head)

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))


def vgg16(**kwargs) -> VGG:
    return VGG("vgg16", **kwargs)


def vgg19(**kwargs) -> VGG:
    return VGG("vgg19", **kwargs)
