"""DenseNet (Huang et al.) with three transition blocks.

The paper notes DenseNet already uses the *reordered* layout (pooling
ahead of the nonlinearity) and reports that the three 1x1-conv + 2x2
average-pool transition layers benefit from MLCNN — with zero addition
reuse, because a 1x1 filter disables LAR/GAR (Section VII.C).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.blocks import ConvBlock, DenseBlock, TransitionBlock
from repro.nn import functional as F
from repro.nn.layers import Linear, Module, Sequential
from repro.nn.tensor import Tensor


class DenseNet(Module):
    """Three dense blocks, each followed by a transition (1x1 conv + AP2)."""

    name = "densenet"

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 32,
        growth_rate: int = 12,
        block_layers: int = 4,
        width_mult: float = 1.0,
        order: str = "pool_act",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if image_size % 8 != 0:
            raise ValueError(f"image_size must be divisible by 8, got {image_size}")
        rng = rng or np.random.default_rng(0)
        growth = max(2, round(growth_rate * width_mult))
        ch = 2 * growth
        self.stem = ConvBlock(in_channels, ch, 3, padding=1, rng=rng)

        stages = []
        for _ in range(3):
            dense = DenseBlock(ch, growth, block_layers, rng=rng)
            trans = TransitionBlock(dense.out_channels, dense.out_channels // 2, order=order, rng=rng)
            stages.extend([dense, trans])
            ch = trans.out_channels
        self.stages = Sequential(*stages)
        self.fc = Linear(ch, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stages(self.stem(x))
        x = F.global_avg_pool2d(x)
        return self.fc(x)
