"""Building blocks for the model zoo.

:class:`ConvBlock` is the unit of the paper's cross-layer optimization:
it owns a convolution, an optional batch-norm, an activation, and an
optional pooling layer, together with the *relative order* of the
activation and the pooling.  The MLCNN reordering transform flips that
order (``act_pool`` -> ``pool_act``); the all-conv transform folds the
pooling into the convolution stride.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import BatchNorm2d, Conv2d, Module
from repro.nn.tensor import Tensor

IntPair = Union[int, Tuple[int, int]]

#: valid activation names for ConvBlock
ACTIVATIONS = ("relu", "sigmoid", "tanh", "none")
#: valid activation/pool orders
ORDERS = ("act_pool", "pool_act")


@dataclass
class PoolSpec:
    """Pooling attached to a :class:`ConvBlock`."""

    kind: str  # "avg" | "max"
    kernel: int
    stride: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("avg", "max"):
            raise ValueError(f"pool kind must be 'avg' or 'max', got {self.kind!r}")
        if self.kernel < 1:
            raise ValueError("pool kernel must be >= 1")
        if self.stride is None:
            self.stride = self.kernel

    def apply(self, x: Tensor) -> Tensor:
        if self.kind == "avg":
            return F.avg_pool2d(x, self.kernel, self.stride)
        return F.max_pool2d(x, self.kernel, self.stride)


class ConvBlock(Module):
    """``conv [+ bn] -> activation <-> pooling`` with a mutable order.

    Parameters
    ----------
    order:
        ``"act_pool"`` is the conventional ``Conv -> ReLU -> Pool``;
        ``"pool_act"`` is the MLCNN-reordered ``Conv -> Pool -> ReLU``.
        Ignored when ``pool is None``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntPair,
        stride: IntPair = 1,
        padding: IntPair = 0,
        activation: str = "relu",
        pool: Optional[PoolSpec] = None,
        order: str = "act_pool",
        batchnorm: bool = False,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if activation not in ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}; valid: {ACTIVATIONS}")
        if order not in ORDERS:
            raise ValueError(f"unknown order {order!r}; valid: {ORDERS}")
        self.conv = Conv2d(
            in_channels, out_channels, kernel_size, stride, padding, bias=bias, rng=rng
        )
        self.bn = BatchNorm2d(out_channels) if batchnorm else None
        self.activation = activation
        self.pool = pool
        self.order = order

    # -- MLCNN hooks ---------------------------------------------------------
    def is_fusable(self, allow_overlap: bool = False) -> bool:
        """True when this block matches the MLCNN fused conv-pool pattern.

        Requires the reordered layout (pool before activation), average
        pooling, and a unit conv stride (the fused kernel computes a
        strided convolution over the box-summed input).  By default the
        pool must be non-overlapping (``stride == kernel``);
        ``allow_overlap=True`` accepts any pool stride — the strided
        lowering (:mod:`repro.core.kernels.strided`) gathers the same
        box-sum patches at the pool-stride positions.
        """
        return (
            self.pool is not None
            and self.pool.kind == "avg"
            and self.order == "pool_act"
            and self.conv.stride == (1, 1)
            and (allow_overlap or self.pool.stride == self.pool.kernel)
        )

    def _act(self, x: Tensor) -> Tensor:
        if self.activation == "relu":
            return F.relu(x)
        if self.activation == "sigmoid":
            return F.sigmoid(x)
        if self.activation == "tanh":
            return F.tanh(x)
        return x

    def forward(self, x: Tensor) -> Tensor:
        x = self.conv(x)
        if self.bn is not None:
            x = self.bn(x)
        if self.pool is None:
            return self._act(x)
        if self.order == "act_pool":
            return self.pool.apply(self._act(x))
        return self._act(self.pool.apply(x))

    def extra_repr(self) -> str:
        pool = f"{self.pool.kind}{self.pool.kernel}" if self.pool else "none"
        if self.pool is not None and self.pool.stride != self.pool.kernel:
            pool += f"s{self.pool.stride}"  # overlapping pools alter the signature
        return f"act={self.activation}, pool={pool}, order={self.order}"


class Inception(Module):
    """GoogLeNet inception module (1x1 / 3x3 / 5x5 / pool-proj branches).

    The four *output* convolutions are built pre-activation; the module
    applies one ReLU to the channel concat (elementwise, so equivalent
    to per-branch ReLU).  :meth:`forward_preact` exposes the
    pre-activation concat, which :class:`PooledInception` needs to
    realize the MLCNN reordering for inception stages followed by
    pooling (the paper's "12 layers in GoogLeNet").
    """

    def __init__(
        self,
        in_channels: int,
        c1: int,
        c3_reduce: int,
        c3: int,
        c5_reduce: int,
        c5: int,
        pool_proj: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.b1 = ConvBlock(in_channels, c1, 1, activation="none", rng=rng)
        self.b2_reduce = ConvBlock(in_channels, c3_reduce, 1, rng=rng)
        self.b2 = ConvBlock(c3_reduce, c3, 3, padding=1, activation="none", rng=rng)
        self.b3_reduce = ConvBlock(in_channels, c5_reduce, 1, rng=rng)
        self.b3 = ConvBlock(c5_reduce, c5, 5, padding=2, activation="none", rng=rng)
        self.b4_proj = ConvBlock(in_channels, pool_proj, 1, activation="none", rng=rng)
        self.out_channels = c1 + c3 + c5 + pool_proj

    def output_blocks(self):
        """The four convolutions whose outputs feed a following pool."""
        return (self.b1, self.b2, self.b3, self.b4_proj)

    def forward_preact(self, x: Tensor) -> Tensor:
        y1 = self.b1(x)
        y2 = self.b2(self.b2_reduce(x))
        y3 = self.b3(self.b3_reduce(x))
        y4 = self.b4_proj(F.max_pool2d(x, 3, 1, padding=1))
        return F.concat([y1, y2, y3, y4], axis=1)

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(self.forward_preact(x))


class PooledInception(Module):
    """An inception stage followed by pooling, with a mutable order.

    ``act_pool``: ``inception -> ReLU -> pool`` (conventional GoogLeNet).
    ``pool_act``: ``inception -> pool -> ReLU`` (MLCNN reordering; makes
    the four branch output convolutions fusable with the pool).

    For the all-conv transform, ``pool`` may be replaced by a stride-2
    convolution set in ``downsample``.
    """

    def __init__(
        self,
        inception: Inception,
        pool: PoolSpec,
        order: str = "act_pool",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if order not in ORDERS:
            raise ValueError(f"unknown order {order!r}; valid: {ORDERS}")
        self.inception = inception
        self.pool: Optional[PoolSpec] = pool
        self.order = order
        self.downsample: Optional[ConvBlock] = None
        self.out_channels = inception.out_channels

    def forward(self, x: Tensor) -> Tensor:
        y = self.inception.forward_preact(x)
        if self.downsample is not None:  # all-conv mode
            return self.downsample(F.relu(y))
        if self.pool is None:
            return F.relu(y)
        if self.order == "act_pool":
            return self.pool.apply(F.relu(y))
        return F.relu(self.pool.apply(y))


class DenseBlock(Module):
    """DenseNet block: each layer sees the concat of all previous outputs."""

    def __init__(
        self,
        in_channels: int,
        growth_rate: int,
        num_layers: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        from repro.nn.layers import ModuleList

        self.layers = ModuleList()
        ch = in_channels
        for _ in range(num_layers):
            self.layers.append(ConvBlock(ch, growth_rate, 3, padding=1, rng=rng))
            ch += growth_rate
        self.out_channels = ch

    def forward(self, x: Tensor) -> Tensor:
        feats = [x]
        for layer in self.layers:
            out = layer(F.concat(feats, axis=1) if len(feats) > 1 else feats[0])
            feats.append(out)
        return F.concat(feats, axis=1)


class TransitionBlock(Module):
    """DenseNet transition: 1x1 conv + 2x2 average pool.

    In DenseNet the pooling already *precedes* the next nonlinearity
    (the paper cites this as evidence for the reordering); the order
    attribute is exposed the same way as :class:`ConvBlock`.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        order: str = "pool_act",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.block = ConvBlock(
            in_channels,
            out_channels,
            1,
            activation="relu",
            pool=PoolSpec("avg", 2),
            order=order,
            rng=rng,
        )
        self.out_channels = out_channels

    def forward(self, x: Tensor) -> Tensor:
        return self.block(x)


class BasicResBlock(Module):
    """ResNet-18 basic block (3x3 + 3x3 with identity/projection skip)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.conv1 = ConvBlock(in_channels, out_channels, 3, stride=stride, padding=1, rng=rng)
        self.conv2 = ConvBlock(
            out_channels, out_channels, 3, padding=1, activation="none", rng=rng
        )
        if stride != 1 or in_channels != out_channels:
            self.proj: Optional[Conv2d] = Conv2d(in_channels, out_channels, 1, stride=stride, rng=rng)
        else:
            self.proj = None

    def forward(self, x: Tensor) -> Tensor:
        y = self.conv2(self.conv1(x))
        skip = self.proj(x) if self.proj is not None else x
        return F.relu(y + skip)
