"""Integer (fixed-point) execution of the fused kernel (Section VI).

The MLCNN accelerator's INT8 configuration executes 8-bit fixed-point
multiplications (Wallace-tree multipliers) with wide integer
accumulation.  This module provides the *numeric* counterpart of that
datapath: symmetric linear quantization to ``int8``/``int16`` with
per-tensor scales, an integer fused conv-pool kernel whose arithmetic
is exact integer math (int64 accumulators, like the hardware's wide
accumulators), and dequantization back to floats.

This differs from :mod:`repro.core.quantize` (DoReFa) on purpose:
DoReFa is the paper's *training* scheme (Eqs. 8-9, STE); this module is
the *inference* arithmetic the accelerator actually performs.  Tests
verify the integer path tracks the float fused kernel within the
quantization-error bound.

Numerics accounting: quantization clipping is *surfaced*, not hidden.
:func:`quantize_tensor` accepts a calibrated range (``amax``) and
records how many values saturated at ``±qmax`` and by how much
(``clipped`` / ``clip_excess`` on the resulting
:class:`QuantizedTensor`), and :func:`quantization_error_bound` widens
by exactly that excess — so a measured clip counter and the analytic
bound can be cross-checked (``tests/core/test_fixedpoint.py``).
:func:`fused_conv_pool_int` optionally reports accumulator saturation
against a nominal hardware accumulator width and requantization
clipping via :class:`IntPathStats`; both feed any enabled
:class:`repro.obs.numerics.NumericsCollector`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.core.fusion import box_sum
from repro.obs.numerics import _ACTIVE, record_quant_event

#: integer accumulator dtype — the hardware's wide accumulator
ACC_DTYPE = np.int64


@dataclass(frozen=True)
class QuantizedTensor:
    """An integer tensor with its dequantization scale.

    ``values`` holds integers in ``[-2^(bits-1)+1, 2^(bits-1)-1]``;
    the represented real value is ``values * scale``.  ``clipped`` and
    ``clip_excess`` carry the saturation accounting from
    :func:`quantize_tensor`: how many source values fell outside the
    calibrated range, and the largest real-valued amount by which one
    exceeded it (0 for a tensor quantized with its own max range).
    """

    values: np.ndarray
    scale: float
    bits: int
    clipped: int = 0
    clip_excess: float = 0.0

    def __post_init__(self) -> None:
        if self.bits < 2 or self.bits > 32:
            raise ValueError(f"bits must be in [2, 32], got {self.bits}")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        limit = 2 ** (self.bits - 1) - 1
        if np.abs(self.values).max(initial=0) > limit:
            raise ValueError(f"values exceed the {self.bits}-bit range")

    def dequantize(self) -> np.ndarray:
        return self.values.astype(np.float64) * self.scale

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1


def quantize_tensor(
    x: np.ndarray, bits: int = 8, amax: Optional[float] = None
) -> QuantizedTensor:
    """Symmetric per-tensor linear quantization.

    With the default ``amax=None`` the scale is calibrated from the
    tensor's own max magnitude and nothing clips.  Passing a calibrated
    ``amax`` (e.g. from a profiling run) makes values beyond it saturate
    at ``±qmax``; the returned tensor's ``clipped``/``clip_excess``
    fields count that saturation, and
    :func:`quantization_error_bound` accounts for it.
    """
    x = np.asarray(x, dtype=np.float64)
    qmax = 2 ** (bits - 1) - 1
    if amax is None:
        amax = float(np.abs(x).max())
    elif amax <= 0:
        raise ValueError(f"amax must be positive, got {amax}")
    scale = (amax / qmax) if amax > 0 else 1.0
    raw = np.round(x / scale)
    over = np.abs(raw) > qmax
    clipped = int(np.count_nonzero(over))
    clip_excess = float(np.max(np.abs(x[over]) - amax)) if clipped else 0.0
    values = np.clip(raw, -qmax, qmax).astype(
        np.int8 if bits <= 8 else (np.int16 if bits <= 16 else np.int32)
    )
    if _ACTIVE:
        record_quant_event("fixedpoint.quantize", clipped, x.size)
    return QuantizedTensor(values, float(scale), bits, clipped, clip_excess)


def quantization_error_bound(qt: QuantizedTensor) -> float:
    """Worst-case absolute error of one quantized element.

    Half an LSB of rounding, plus — when range calibration made values
    saturate — the largest amount by which a clipped value exceeded the
    representable range.  With self-calibrated quantization
    (``clipped == 0``) this reduces to the classic ``scale / 2``.
    """
    return 0.5 * qt.scale + qt.clip_excess


@dataclass
class IntPathStats:
    """Saturation accounting for one :func:`fused_conv_pool_int` call."""

    acc_bits: int = 32
    acc_limit: int = 2 ** 31 - 1
    acc_max_abs: int = 0
    acc_overflows: int = 0
    acc_total: int = 0
    requant_clipped: int = 0
    requant_total: int = 0

    @property
    def overflow_rate(self) -> float:
        return self.acc_overflows / self.acc_total if self.acc_total else 0.0

    @property
    def requant_clip_rate(self) -> float:
        return self.requant_clipped / self.requant_total if self.requant_total else 0.0


def accumulator_bound(x: QuantizedTensor, w: QuantizedTensor, pool: int = 2) -> int:
    """Largest |accumulator| :func:`fused_conv_pool_int` can produce.

    A pooled output accumulates ``C * K^2`` products of a box-summed
    activation (≤ ``pool^2 * qmax_x``) with a weight (≤ ``qmax_w``) —
    the analytic cross-check for the measured ``acc_max_abs``, and the
    number to compare against ``2^(acc_bits-1)-1`` when sizing the
    hardware accumulator.
    """
    m, c, k, _ = w.values.shape
    return c * k * k * pool * pool * x.qmax * w.qmax


def fused_conv_pool_int(
    x: QuantizedTensor,
    w: QuantizedTensor,
    bias: Optional[np.ndarray] = None,
    pool: int = 2,
    apply_relu: bool = True,
    acc_bits: int = 32,
    out_bits: int = 0,
    out_amax: Optional[float] = None,
    stats: Optional[IntPathStats] = None,
    impl: str = "vectorized",
) -> np.ndarray:
    """Integer fused conv-pool: int box-sum, int MACs, float epilogue.

    ``x``: quantized (C, H, W) activations; ``w``: quantized
    (M, C, K, K) weights.  The box sum and the multiply-accumulate run
    entirely in int64 (exact); only the final rescale by
    ``x.scale * w.scale / pool^2``, the bias addition and the ReLU
    happen in floating point — exactly the split the preprocessing
    stage of Fig. 9 implements (shift + bias + activation).

    ``acc_bits`` is the *nominal* hardware accumulator width: the math
    stays exact (int64 carriers), but accumulators whose magnitude
    exceeds ``2^(acc_bits-1)-1`` are counted as would-be overflows.
    ``out_bits > 0`` requantizes the epilogue output to that width
    (range ``out_amax``, or the output's own max), modelling the
    write-back, and counts requantization clipping.  Pass ``stats`` to
    receive the counts; enabled numerics collectors get them either
    way.

    ``impl`` selects the accumulation schedule: ``"vectorized"``
    (default) runs the single gather + int64 GEMM of
    :func:`repro.core.kernels.intpath.conv_over_boxsum_int`;
    ``"reference"`` keeps the per-tap loop.  Integer addition is
    associative, so the two are **bit-identical** — accumulator values,
    overflow counts, and requant clipping included.
    """
    if impl not in ("vectorized", "reference"):
        raise ValueError(f"impl must be 'vectorized' or 'reference', got {impl!r}")
    xi = x.values.astype(ACC_DTYPE)
    wi = w.values.astype(ACC_DTYPE)
    if xi.ndim != 3 or wi.ndim != 4:
        raise ValueError("expected (C,H,W) activations and (M,C,K,K) weights")
    c, h, wdt = xi.shape
    m, cw, k, _ = wi.shape
    if c != cw:
        raise ValueError(f"channel mismatch: {c} vs {cw}")

    acc = box_sum(xi, pool)  # exact int box sum (the I_Acc plane)
    co = h - k + 1
    po = (co - pool) // pool + 1
    if po < 1:
        raise ValueError("input too small for one pooled output")

    if impl == "vectorized":
        from repro.core.kernels.intpath import conv_over_boxsum_int

        # slice to the reference geometry (po x po, from the height)
        out = np.ascontiguousarray(conv_over_boxsum_int(acc, wi, pool)[:, :po, :po])
    else:
        out = np.zeros((m, po, po), dtype=ACC_DTYPE)
        # stride-p integer convolution over the box-summed plane
        for ki in range(k):
            for kj in range(k):
                window = acc[:, ki : ki + pool * po : pool, kj : kj + pool * po : pool]
                out += np.einsum("mc,cij->mij", wi[:, :, ki, kj], window)

    watch = stats is not None or bool(_ACTIVE)
    if watch:
        acc_limit = 2 ** (acc_bits - 1) - 1
        abs_out = np.abs(out)
        acc_max_abs = int(abs_out.max(initial=0))
        overflows = int(np.count_nonzero(abs_out > acc_limit))
        if stats is not None:
            stats.acc_bits = acc_bits
            stats.acc_limit = acc_limit
            stats.acc_max_abs = max(stats.acc_max_abs, acc_max_abs)
            stats.acc_overflows += overflows
            stats.acc_total += out.size
        if _ACTIVE:
            record_quant_event("fixedpoint.acc_overflow", overflows, out.size)

    scale = x.scale * w.scale / float(pool * pool)
    result = out.astype(np.float64) * scale
    if bias is not None:
        result += np.asarray(bias, dtype=np.float64)[:, None, None]
    if apply_relu:
        np.maximum(result, 0.0, out=result)

    if out_bits:
        out_qmax = 2 ** (out_bits - 1) - 1
        ramax = float(np.abs(result).max()) if out_amax is None else float(out_amax)
        rscale = (ramax / out_qmax) if ramax > 0 else 1.0
        raw = np.round(result / rscale)
        requant_clipped = int(np.count_nonzero(np.abs(raw) > out_qmax))
        if stats is not None:
            stats.requant_clipped += requant_clipped
            stats.requant_total += result.size
        if _ACTIVE:
            record_quant_event("fixedpoint.requant_clip", requant_clipped, result.size)
        result = np.clip(raw, -out_qmax, out_qmax) * rscale
    return result


def fused_conv_pool_fp16(
    x: np.ndarray,
    w: np.ndarray,
    bias: Optional[np.ndarray] = None,
    pool: int = 2,
    apply_relu: bool = True,
) -> np.ndarray:
    """Half-precision fused kernel (the FP16 accelerator configuration).

    Operands are cast to ``float16``; products and the box sum are
    accumulated in ``float32`` (the hardware accumulates wider than it
    multiplies), then the epilogue runs in float32.  Returns float64
    for comparison convenience.
    """
    x16 = np.asarray(x, dtype=np.float16).astype(np.float32)
    w16 = np.asarray(w, dtype=np.float16).astype(np.float32)
    if x16.ndim != 3 or w16.ndim != 4:
        raise ValueError("expected (C,H,W) activations and (M,C,K,K) weights")
    c, h, _ = x16.shape
    m, cw, k, _ = w16.shape
    if c != cw:
        raise ValueError(f"channel mismatch: {c} vs {cw}")
    acc = box_sum(x16, pool)
    co = h - k + 1
    po = (co - pool) // pool + 1
    if po < 1:
        raise ValueError("input too small for one pooled output")
    out = np.zeros((m, po, po), dtype=np.float32)
    for ki in range(k):
        for kj in range(k):
            window = acc[:, ki : ki + pool * po : pool, kj : kj + pool * po : pool]
            out += np.einsum("mc,cij->mij", w16[:, :, ki, kj], window)
    result = out.astype(np.float64) / float(pool * pool)
    if bias is not None:
        result += np.asarray(bias, dtype=np.float64)[:, None, None]
    if apply_relu:
        np.maximum(result, 0.0, out=result)
    return result


def int_path_error_bound(
    x: QuantizedTensor, w: QuantizedTensor, pool: int = 2
) -> float:
    """A-priori bound on |int path - float path| per pooled output.

    Each product's error is bounded by
    ``|x| * dw + |w| * dx + dx * dw`` with ``dx = x.scale / 2``,
    ``dw = w.scale / 2``; a pooled output sums ``C * K^2 * pool^2``
    products (before the 1/pool^2 scaling).
    """
    m, c, k, _ = w.values.shape
    dx = 0.5 * x.scale
    dw = 0.5 * w.scale
    xmax = np.abs(x.dequantize()).max()
    wmax = np.abs(w.dequantize()).max()
    per_product = xmax * dw + wmax * dx + dx * dw
    return c * k * k * per_product  # pool^2 products / pool^2 scaling cancel
