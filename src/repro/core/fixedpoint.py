"""Integer (fixed-point) execution of the fused kernel (Section VI).

The MLCNN accelerator's INT8 configuration executes 8-bit fixed-point
multiplications (Wallace-tree multipliers) with wide integer
accumulation.  This module provides the *numeric* counterpart of that
datapath: symmetric linear quantization to ``int8``/``int16`` with
per-tensor scales, an integer fused conv-pool kernel whose arithmetic
is exact integer math (int64 accumulators, like the hardware's wide
accumulators), and dequantization back to floats.

This differs from :mod:`repro.core.quantize` (DoReFa) on purpose:
DoReFa is the paper's *training* scheme (Eqs. 8-9, STE); this module is
the *inference* arithmetic the accelerator actually performs.  Tests
verify the integer path tracks the float fused kernel within the
quantization-error bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.fusion import box_sum

#: integer accumulator dtype — the hardware's wide accumulator
ACC_DTYPE = np.int64


@dataclass(frozen=True)
class QuantizedTensor:
    """An integer tensor with its dequantization scale.

    ``values`` holds integers in ``[-2^(bits-1)+1, 2^(bits-1)-1]``;
    the represented real value is ``values * scale``.
    """

    values: np.ndarray
    scale: float
    bits: int

    def __post_init__(self) -> None:
        if self.bits < 2 or self.bits > 32:
            raise ValueError(f"bits must be in [2, 32], got {self.bits}")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        limit = 2 ** (self.bits - 1) - 1
        if np.abs(self.values).max(initial=0) > limit:
            raise ValueError(f"values exceed the {self.bits}-bit range")

    def dequantize(self) -> np.ndarray:
        return self.values.astype(np.float64) * self.scale

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1


def quantize_tensor(x: np.ndarray, bits: int = 8) -> QuantizedTensor:
    """Symmetric per-tensor linear quantization."""
    x = np.asarray(x, dtype=np.float64)
    qmax = 2 ** (bits - 1) - 1
    amax = np.abs(x).max()
    scale = (amax / qmax) if amax > 0 else 1.0
    values = np.clip(np.round(x / scale), -qmax, qmax).astype(
        np.int8 if bits <= 8 else (np.int16 if bits <= 16 else np.int32)
    )
    return QuantizedTensor(values, float(scale), bits)


def quantization_error_bound(qt: QuantizedTensor) -> float:
    """Worst-case absolute rounding error of one quantized element."""
    return 0.5 * qt.scale


def fused_conv_pool_int(
    x: QuantizedTensor,
    w: QuantizedTensor,
    bias: Optional[np.ndarray] = None,
    pool: int = 2,
    apply_relu: bool = True,
) -> np.ndarray:
    """Integer fused conv-pool: int box-sum, int MACs, float epilogue.

    ``x``: quantized (C, H, W) activations; ``w``: quantized
    (M, C, K, K) weights.  The box sum and the multiply-accumulate run
    entirely in int64 (exact); only the final rescale by
    ``x.scale * w.scale / pool^2``, the bias addition and the ReLU
    happen in floating point — exactly the split the preprocessing
    stage of Fig. 9 implements (shift + bias + activation).
    """
    xi = x.values.astype(ACC_DTYPE)
    wi = w.values.astype(ACC_DTYPE)
    if xi.ndim != 3 or wi.ndim != 4:
        raise ValueError("expected (C,H,W) activations and (M,C,K,K) weights")
    c, h, wdt = xi.shape
    m, cw, k, _ = wi.shape
    if c != cw:
        raise ValueError(f"channel mismatch: {c} vs {cw}")

    acc = box_sum(xi, pool)  # exact int box sum (the I_Acc plane)
    co = h - k + 1
    po = (co - pool) // pool + 1
    if po < 1:
        raise ValueError("input too small for one pooled output")

    out = np.zeros((m, po, po), dtype=ACC_DTYPE)
    # stride-p integer convolution over the box-summed plane
    for ki in range(k):
        for kj in range(k):
            window = acc[:, ki : ki + pool * po : pool, kj : kj + pool * po : pool]
            out += np.einsum("mc,cij->mij", wi[:, :, ki, kj], window)

    scale = x.scale * w.scale / float(pool * pool)
    result = out.astype(np.float64) * scale
    if bias is not None:
        result += np.asarray(bias, dtype=np.float64)[:, None, None]
    if apply_relu:
        np.maximum(result, 0.0, out=result)
    return result


def fused_conv_pool_fp16(
    x: np.ndarray,
    w: np.ndarray,
    bias: Optional[np.ndarray] = None,
    pool: int = 2,
    apply_relu: bool = True,
) -> np.ndarray:
    """Half-precision fused kernel (the FP16 accelerator configuration).

    Operands are cast to ``float16``; products and the box sum are
    accumulated in ``float32`` (the hardware accumulates wider than it
    multiplies), then the epilogue runs in float32.  Returns float64
    for comparison convenience.
    """
    x16 = np.asarray(x, dtype=np.float16).astype(np.float32)
    w16 = np.asarray(w, dtype=np.float16).astype(np.float32)
    if x16.ndim != 3 or w16.ndim != 4:
        raise ValueError("expected (C,H,W) activations and (M,C,K,K) weights")
    c, h, _ = x16.shape
    m, cw, k, _ = w16.shape
    if c != cw:
        raise ValueError(f"channel mismatch: {c} vs {cw}")
    acc = box_sum(x16, pool)
    co = h - k + 1
    po = (co - pool) // pool + 1
    if po < 1:
        raise ValueError("input too small for one pooled output")
    out = np.zeros((m, po, po), dtype=np.float32)
    for ki in range(k):
        for kj in range(k):
            window = acc[:, ki : ki + pool * po : pool, kj : kj + pool * po : pool]
            out += np.einsum("mc,cij->mij", w16[:, :, ki, kj], window)
    result = out.astype(np.float64) / float(pool * pool)
    if bias is not None:
        result += np.asarray(bias, dtype=np.float64)[:, None, None]
    if apply_relu:
        np.maximum(result, 0.0, out=result)
    return result


def int_path_error_bound(
    x: QuantizedTensor, w: QuantizedTensor, pool: int = 2
) -> float:
    """A-priori bound on |int path - float path| per pooled output.

    Each product's error is bounded by
    ``|x| * dw + |w| * dx + dx * dw`` with ``dx = x.scale / 2``,
    ``dw = w.scale / 2``; a pooled output sums ``C * K^2 * pool^2``
    products (before the 1/pool^2 scaling).
    """
    m, c, k, _ = w.values.shape
    dx = 0.5 * x.scale
    dw = 0.5 * w.scale
    xmax = np.abs(x.dequantize()).max()
    wmax = np.abs(w.dequantize()).max()
    per_product = xmax * dw + wmax * dx + dx * dw
    return c * k * k * per_product  # pool^2 products / pool^2 scaling cancel
