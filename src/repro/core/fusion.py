"""The fused convolution-pooling kernel (Section IV, Algorithm 1).

After reordering (``Conv -> AvgPool -> ReLU``) the two linear layers
fuse: a p x p average pool (stride p) over a stride-1 K x K convolution
equals a stride-p K x K convolution over the p x p *box sum* of the
input (``I_Acc`` in the paper), divided by ``p^2``:

.. math::

    P_{x,y} = \\mathrm{ReLU}\\Big(\\frac{1}{p^2} \\sum_{i,j,c}
        W_{c,i,j} \\cdot I\\_Acc_{c,\\,p x + i,\\,p y + j} + B\\Big)

Two implementations live here:

* :func:`fused_conv_pool` — a fully vectorized NumPy execution used for
  inference and for the functional-equivalence property tests.
* :func:`fused_conv_pool_counted` — an instrumented reference executor
  (explicit loops, small inputs only) that performs the half-addition /
  full-addition / major-accumulation schedule of Algorithm 1 with
  configurable reuse caches, counting every scalar operation.  This is
  the ground truth for the analytical models in
  :mod:`repro.core.opcount` and for the RTL micro-simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.kernels import boxsum as _boxsum
from repro.core.kernels import fused as _kernels
from repro.nn import functional as F
from repro.nn.layers import Module
from repro.nn.tensor import Tensor, is_grad_enabled, make_node, send_grad
from repro.obs.metrics import get_recorder


def box_sum(x: np.ndarray, p: int) -> np.ndarray:
    """p x p box sum over the trailing two axes (the paper's ``I_Acc``).

    Computed via the 2-D prefix-sum formulation
    (:func:`repro.core.kernels.boxsum.box_sum_cumsum`) — O(H*W)
    additions independent of ``p``, exact for integer dtypes.  Output
    spatial dims are ``H - p + 1`` x ``W - p + 1``.
    """
    return _boxsum.box_sum_cumsum(x, p)


def fused_conv_pool(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    pool: int = 2,
    pool_stride: Optional[int] = None,
    padding: int = 0,
    activation: str = "relu",
    impl: str = "vectorized",
    workers: Optional[int] = None,
) -> Tensor:
    """Execute ``ReLU(AvgPool_p(Conv_K(x)))`` as one fused kernel.

    RME in vectorized form: the convolution runs on the box-summed
    input with stride ``p``, touching each weight once per *pooled*
    output.  Supports autograd (gradients flow through the box sum), so
    a fused network remains trainable.

    ``impl="vectorized"`` (default) lowers the whole operator to one
    :func:`repro.core.kernels.fused.fused_forward` call (gather + GEMM)
    with a closed-form backward; ``impl="reference"`` keeps the
    original composition (box sum node + ``F.conv2d`` + epilogue ops)
    as the golden reference the equivalence suite compares against.

    ``pool_stride`` defaults to ``pool`` (non-overlapping pooling);
    ``pool_stride != pool`` executes the overlapping-pool identity —
    the convolution over the box-summed input runs at the pool stride
    instead (:mod:`repro.core.kernels.strided`).  The conv stride must
    be 1 (enforced by callers via ``ConvBlock.is_fusable``).

    ``workers`` > 1 shards the *inference* execution across the
    persistent worker pool (:mod:`repro.core.parallel`) — an
    inference-only optimization: any grad-tracking input silently takes
    the serial autograd path, since the sharded execution returns a
    leaf tensor with no backward.
    """
    pool_stride = pool if pool_stride is None else pool_stride
    if pool_stride < 1:
        raise ValueError(f"pool stride must be >= 1, got {pool_stride}")
    if impl not in ("vectorized", "reference"):
        raise ValueError(f"impl must be 'vectorized' or 'reference', got {impl!r}")
    x = x if isinstance(x, Tensor) else Tensor(x)
    weight = weight if isinstance(weight, Tensor) else Tensor(weight)

    if (
        workers is not None
        and workers > 1
        and impl == "vectorized"
        and not (
            is_grad_enabled()
            and (x.requires_grad or weight.requires_grad
                 or (isinstance(bias, Tensor) and bias.requires_grad))
        )
    ):
        from repro.core.parallel import parallel_fused_conv_pool

        if activation not in ("relu", "sigmoid", "tanh", "none"):
            raise ValueError(f"unknown activation {activation!r}")
        bias_d = None
        if bias is not None:
            bias_d = bias.data if isinstance(bias, Tensor) else np.asarray(bias)
        out = parallel_fused_conv_pool(
            x.data,
            weight.data,
            bias_d,
            pool=pool,
            pool_stride=pool_stride,
            padding=padding,
            activation=activation,
            workers=workers,
        )
        return Tensor(out)

    if impl == "vectorized":
        if activation not in ("relu", "sigmoid", "tanh", "none"):
            raise ValueError(f"unknown activation {activation!r}")
        bias_t = bias if (bias is None or isinstance(bias, Tensor)) else Tensor(bias)
        out_data, res = _kernels.fused_forward(
            x.data,
            weight.data,
            None if bias_t is None else bias_t.data,
            pool=pool,
            padding=padding,
            activation=activation,
            stride=pool_stride,
        )
        parents = (x, weight) + (() if bias_t is None else (bias_t,))
        node = make_node(out_data, parents)
        if node.requires_grad:

            def _bw(g: np.ndarray) -> None:
                gx, gw, gb = _kernels.fused_backward(g, res)
                send_grad(x, gx)
                send_grad(weight, gw)
                if bias_t is not None:
                    send_grad(bias_t, gb)

            node._backward = _bw
        return node

    n, c, h, w = x.shape

    if padding:
        pad = padding
        xd = np.pad(x.data, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    else:
        xd = x.data
    acc = box_sum(xd, pool)
    acc_t = make_node(acc, (x,))
    if acc_t.requires_grad:

        def _bw(g: np.ndarray) -> None:
            # Scatter the box-sum gradient back to every contributing pixel.
            hp, wp = xd.shape[-2:]
            gx = np.zeros((n, c, hp, wp), dtype=g.dtype)
            ho, wo = g.shape[-2:]
            for i in range(pool):
                for j in range(pool):
                    gx[:, :, i : i + ho, j : j + wo] += g
            if padding:
                gx = gx[:, :, padding : padding + h, padding : padding + w]
            send_grad(x, gx)

        acc_t._backward = _bw

    out = F.conv2d(acc_t, weight, bias=None, stride=pool_stride)
    recorder = get_recorder()
    if recorder.enabled:
        # Measured from this execution's actual geometry: the fused conv
        # touches each weight once per *pooled* output; a dense run would
        # touch it once per conv output and pay one scaling mult per
        # pooled output (a free shift here).
        m, _, k, _ = weight.shape
        _, _, oh, ow = out.shape
        hp, wp = xd.shape[-2:]
        conv_outs = (hp - k + 1) * (wp - k + 1)
        mults = n * m * oh * ow * c * k * k
        recorder.record(
            mults=mults,
            mults_eliminated=n * m * (c * k * k * (conv_outs - oh * ow) + oh * ow),
        )
    out = out * (1.0 / (pool * pool))
    if bias is not None:
        m = weight.shape[0]
        out = out + bias.reshape(1, m, 1, 1)
    if activation == "relu":
        return F.relu(out)
    if activation == "sigmoid":
        return F.sigmoid(out)
    if activation == "tanh":
        return F.tanh(out)
    if activation == "none":
        return out
    raise ValueError(f"unknown activation {activation!r}")


class FusedConvPool(Module):
    """Module wrapper executing a fusable ConvBlock as the fused kernel.

    Shares the parameters of the original block (no copy), so a fused
    network stays in sync with the original weights.

    ``impl`` selects the functional execution path ("vectorized" or the
    golden "reference" composition).  After compilation the lowering
    pass may additionally :meth:`attach_kernel` a plan-selected lowered
    kernel from :mod:`repro.core.kernels`; it serves gradient-free
    (inference) forwards, while training forwards keep the autograd
    ``impl`` path on the shared parameters.
    """

    def __init__(self, conv_block, impl: str = "vectorized") -> None:
        super().__init__()
        if impl not in ("vectorized", "reference"):
            raise ValueError(f"impl must be 'vectorized' or 'reference', got {impl!r}")
        if not conv_block.is_fusable(allow_overlap=True):
            raise ValueError(
                "block is not fusable (needs pool_act order, average pooling, "
                "unit conv stride)"
            )
        if conv_block.bn is not None:
            raise ValueError("fusion of batch-norm blocks is not supported")
        ph, pw = conv_block.conv.padding
        if ph != pw:
            raise ValueError("fusion requires square padding")
        # Keep a handle to the original block WITHOUT registering it as
        # a child module: it must not be re-discovered (and re-fused) by
        # module-tree walks, and its parameters are shared below anyway.
        object.__setattr__(self, "source", conv_block)
        self.padding = ph
        self.pool = conv_block.pool.kernel
        self.pool_stride = conv_block.pool.stride
        self.activation = conv_block.activation
        self.impl = impl
        self._kernel = None  # lowered kernel bound by the compiler
        # Share (not copy) parameters for counting and training.
        self.register_parameter("weight", conv_block.conv.weight)
        if conv_block.conv.bias is not None:
            self.register_parameter("bias", conv_block.conv.bias)
        else:
            self.bias = None

    def attach_kernel(self, kernel) -> None:
        """Bind (or with ``None``, unbind) a lowered inference kernel."""
        self._kernel = kernel

    @property
    def kernel(self):
        """The bound lowered kernel, or ``None`` before lowering."""
        return self._kernel

    def forward(self, x: Tensor) -> Tensor:
        if self._kernel is not None and not is_grad_enabled():
            out = self._kernel.run_nchw(
                x.data,
                self.weight.data,
                None if self.bias is None else self.bias.data,
                padding=self.padding,
                activation=self.activation,
            )
            return Tensor(out)
        return fused_conv_pool(
            x,
            self.weight,
            self.bias,
            pool=self.pool,
            pool_stride=self.pool_stride,
            padding=self.padding,
            activation=self.activation,
            impl=self.impl,
        )

    def extra_repr(self) -> str:
        extra = f"pool={self.pool}, padding={self.padding}, act={self.activation}"
        if self.pool_stride != self.pool:
            extra += f", stride={self.pool_stride}"  # overlapping-pool signature
        return extra


# ---------------------------------------------------------------------------
# Instrumented reference executor
# ---------------------------------------------------------------------------

@dataclass
class OpCounter:
    """Scalar-operation tally of an instrumented kernel execution."""

    multiplications: int = 0
    additions: int = 0
    #: additions spent in half/full (small) accumulations
    half_additions: int = 0
    full_additions: int = 0
    major_additions: int = 0
    bias_additions: int = 0
    #: cache hits, i.e. additions *avoided* by LAR/GAR reuse
    reuse_hits: int = 0
    #: reuse_hits split by mechanism (LAR half-addition cache vs GAR
    #: box-sum cache); lar_hits + gar_hits == reuse_hits
    lar_hits: int = 0
    gar_hits: int = 0

    def add(self, kind: str, n: int = 1) -> None:
        self.additions += n
        setattr(self, kind, getattr(self, kind) + n)

    @property
    def total(self) -> int:
        return self.multiplications + self.additions


def _report_kernel_counters(counter: OpCounter, mults_eliminated: int = 0) -> None:
    """Publish a counted execution into the measured-counter recorder."""
    recorder = get_recorder()
    if not recorder.enabled:
        return
    recorder.record(
        mults=counter.multiplications,
        mults_eliminated=mults_eliminated,
        half_additions=counter.half_additions,
        full_additions=counter.full_additions,
        major_additions=counter.major_additions,
        bias_additions=counter.bias_additions,
        lar_reuse_hits=counter.lar_hits,
        gar_reuse_hits=counter.gar_hits,
    )


def dense_conv_pool_counted(
    x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray] = None, pool: int = 2
) -> Tuple[np.ndarray, OpCounter]:
    """Reference dense execution (conv then average pool), fully counted.

    Single image ``(C, H, W)`` and weights ``(M, C, K, K)``; the conv is
    stride 1, valid padding, followed by a p x p stride-p average pool
    and ReLU.  This is the baseline the paper's 16-mult example uses.
    """
    c, h, w = x.shape
    m, cw, k, _ = weight.shape
    if c != cw:
        raise ValueError(f"channel mismatch: input {c}, weight {cw}")
    counter = OpCounter()
    co = h - k + 1
    conv = np.zeros((m, co, co))
    for to in range(m):
        for i in range(co):
            for j in range(co):
                acc = 0.0
                for ti in range(c):
                    for ki in range(k):
                        for kj in range(k):
                            acc += x[ti, i + ki, j + kj] * weight[to, ti, ki, kj]
                counter.multiplications += c * k * k
                counter.add("major_additions", c * k * k - 1)
                if bias is not None:
                    acc += bias[to]
                    counter.add("bias_additions", 1)
                conv[to, i, j] = acc
    po = (co - pool) // pool + 1
    out = np.zeros((m, po, po))
    for to in range(m):
        for i in range(po):
            for j in range(po):
                s = conv[to, i * pool : i * pool + pool, j * pool : j * pool + pool].sum()
                counter.add("major_additions", pool * pool - 1)
                counter.multiplications += 1  # scaling by 1/p^2
                out[to, i, j] = max(s / (pool * pool), 0.0)
    _report_kernel_counters(counter)
    return out, counter


def fused_conv_pool_counted(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    pool: int = 2,
    use_lar: bool = True,
    use_gar_row: bool = True,
    use_gar_col: bool = True,
) -> Tuple[np.ndarray, OpCounter]:
    """Algorithm 1 with explicit reuse caches and exact op counting.

    Single image ``(C, H, W)``; stride-1 valid conv + p x p stride-p
    average pool + ReLU, executed as half additions (vertical runs of
    ``p``), full additions (horizontal runs of ``p`` half-additions),
    and per-output major accumulations.

    Reuse scopes:

    * ``use_lar`` — half additions are cached while computing one
      pooled output (shared between the overlapping full additions of
      adjacent columns).
    * ``use_gar_row`` — full/half additions persist across pooled
      outputs in the same output row.
    * ``use_gar_col`` — they persist across output rows too (and across
      output channels, since ``I_Acc`` is input-only).

    Returns the output feature map and the operation tally.  The output
    is bit-identical in value to :func:`fused_conv_pool` up to fp
    association order.
    """
    c, h, w = x.shape
    m, cw, k, _ = weight.shape
    if c != cw:
        raise ValueError(f"channel mismatch: input {c}, weight {cw}")
    counter = OpCounter()
    co = h - k + 1
    po = (co - pool) // pool + 1

    # Cache scopes:
    #   LAR  — half additions are shared between the overlapping full
    #          additions computed for ONE pooled output (within-output).
    #   GAR  — full (and half) additions persist across pooled outputs:
    #          row scope keeps them for one output row, column scope for
    #          the whole plane (and across output channels, since I_Acc
    #          depends only on the input).
    ha_cache: Dict[Tuple[int, int, int], float] = {}
    fa_cache: Dict[Tuple[int, int, int], float] = {}

    def half_add(ti: int, i: int, j: int) -> float:
        """Vertical run I[i..i+p-1, j] (p-1 additions, LAR-cached)."""
        key = (ti, i, j)
        if use_lar and key in ha_cache:
            counter.reuse_hits += pool - 1
            counter.lar_hits += pool - 1
            return ha_cache[key]
        val = float(x[ti, i, j])
        for d in range(1, pool):
            val += float(x[ti, i + d, j])
        counter.add("half_additions", pool - 1)
        if use_lar:
            ha_cache[key] = val
        return val

    def small_acc(ti: int, i: int, j: int) -> float:
        """I_Acc value at (i, j): the p x p box sum of the input.

        With LAR it is a horizontal run of p cached half additions;
        without, it costs the full ``p^2 - 1`` additions.
        """
        key = (ti, i, j)
        if (use_gar_row or use_gar_col) and key in fa_cache:
            # A cached I_Acc avoids the full p^2-1 additions a no-reuse
            # execution would spend (its constituent HA hits are not
            # separately counted), keeping additions+reuse_hits invariant.
            counter.reuse_hits += pool * pool - 1
            counter.gar_hits += pool * pool - 1
            return fa_cache[key]
        if use_lar:
            val = half_add(ti, i, j)
            for d in range(1, pool):
                val = val + half_add(ti, i, j + d)
            counter.add("full_additions", pool - 1)
        else:
            val = float(x[ti, i : i + pool, j : j + pool].sum())
            counter.add("full_additions", pool * pool - 1)
        if use_gar_row or use_gar_col:
            fa_cache[key] = val
        return val

    out = np.zeros((m, po, po))
    scale = 1.0 / (pool * pool)
    for to in range(m):
        if not use_gar_col:
            ha_cache.clear()
            fa_cache.clear()
        for r in range(po):
            if not use_gar_col:
                ha_cache.clear()
                fa_cache.clear()
            for q in range(po):
                if not use_gar_row and not use_gar_col:
                    fa_cache.clear()
                if not use_lar:
                    pass  # half additions are never cached without LAR
                elif not (use_gar_row or use_gar_col):
                    ha_cache.clear()  # LAR scope: one pooled output
                acc = 0.0
                first = True
                for ti in range(c):
                    for ki in range(k):
                        for kj in range(k):
                            v = weight[to, ti, ki, kj] * small_acc(
                                ti, r * pool + ki, q * pool + kj
                            )
                            counter.multiplications += 1
                            if first:
                                acc = v
                                first = False
                            else:
                                acc += v
                                counter.add("major_additions", 1)
                val = acc * scale  # shift in hardware: not counted
                if bias is not None:
                    val += bias[to]
                    counter.add("bias_additions", 1)
                out[to, r, q] = max(val, 0.0)
    # RME elimination measured against a dense run of the same geometry:
    # c*k*k mults per conv output plus one scaling mult per pooled output.
    dense_mults = m * (co * co * c * k * k + po * po)
    _report_kernel_counters(counter, mults_eliminated=dense_mults - counter.multiplications)
    return out, counter
