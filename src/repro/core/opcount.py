"""Analytical operation-count models (Sections IV-V of the paper).

Two levels of modelling live here:

1. **Per-output / per-row formulas** that reproduce the paper's
   analysis tables exactly:

   * Tables II-III (LAR): additions to compute one pooled output
     feature, single input channel, 2x2 average pooling after a
     stride-``S`` KxK convolution:

     - without LAR: ``4K^2 - 1`` (four conv windows of ``K^2 - 1``
       accumulation additions each, plus 3 pooling additions);
     - with LAR: ``K(2K + S) + K^2 - 1``;
     - reduction rate ``K(K - S) / (4K^2 - 1)`` (Eq. 1; Eq. 4 at S=1).

   * Tables IV-VI (GAR): additions to compute one *row* of pooled
     outputs; ``N = floor((D - K) / 2S) + 1`` outputs per row:

     - without GAR: ``N (4K^2 - 1)``;
     - with GAR: ``3K(D - S) + N(K^2 - 1)`` — only ``K(D - S)`` small
       accumulations (3 additions each) remain, plus the per-output
       major accumulations (Eq. 2; Eq. 5 expresses the same count for
       K = 13).

2. **Whole-layer budgets** (:func:`dcnn_layer_ops`,
   :func:`mlcnn_layer_ops`) used by the accelerator model for
   Figs. 13-15.  These count all channels and include bias additions;
   the average-pool division is a multiplication in the DCNN baseline
   but a free shift in the MLCNN datapath (Fig. 9 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.models.specs import LayerSpec


# ---------------------------------------------------------------------------
# RME — redundant multiplication elimination
# ---------------------------------------------------------------------------

def rme_multiplication_reduction(pool_size: int) -> float:
    """Fraction of multiplications eliminated by RME for a pxp pool.

    Weight factorization performs one multiplication per weight per
    *pooled* output instead of one per conv output: ``1 - 1/p^2``.
    (The paper states this as ``(K-1)/K`` with K the pooling window
    *area*: 75% for 2x2 pooling, ~98% for 8x8 — GoogLeNet's best case.)
    """
    if pool_size < 1:
        raise ValueError(f"pool_size must be >= 1, got {pool_size}")
    return 1.0 - 1.0 / float(pool_size * pool_size)


# ---------------------------------------------------------------------------
# LAR — local addition reuse (Tables II & III)
# ---------------------------------------------------------------------------

def _check_lar(k: int, s: int) -> None:
    if k < 1:
        raise ValueError(f"filter size must be >= 1, got {k}")
    if s < 1:
        raise ValueError(f"step size must be >= 1, got {s}")


def lar_additions_without(k: int) -> int:
    """Additions per pooled output without LAR: ``4K^2 - 1``."""
    _check_lar(k, 1)
    return 4 * k * k - 1


def lar_additions_with(k: int, s: int = 1) -> int:
    """Additions per pooled output with LAR: ``K(2K + S) + K^2 - 1``.

    When the step exceeds the filter size no windows overlap and no
    addition can be reused, so the count saturates at ``4K^2 - 1``.
    """
    _check_lar(k, s)
    return min(k * (2 * k + s) + k * k - 1, lar_additions_without(k))


def lar_reduction_rate(k: int, s: int = 1) -> float:
    """Eq. (1)/(4): ``K(K - S) / (4K^2 - 1)``, clamped at 0 for S >= K."""
    _check_lar(k, s)
    return max(0, k * (k - s)) / float(4 * k * k - 1)


# ---------------------------------------------------------------------------
# GAR — global addition reuse (Tables IV, V & VI)
# ---------------------------------------------------------------------------

def _check_gar(d: int, k: int, s: int) -> None:
    _check_lar(k, s)
    if d < k:
        raise ValueError(f"input dimension {d} smaller than filter {k}")


def gar_row_outputs(d: int, k: int, s: int = 1) -> int:
    """Pooled outputs per row: convolution output ``(D-K)/S + 1`` rows,
    2x2 pooled -> ``floor((D - K) / 2S) + 1``."""
    _check_gar(d, k, s)
    return (d - k) // (2 * s) + 1


def gar_additions_without(d: int, k: int, s: int = 1) -> int:
    """Additions per pooled-output row without GAR: ``N (4K^2 - 1)``."""
    return gar_row_outputs(d, k, s) * (4 * k * k - 1)


def gar_additions_with(d: int, k: int, s: int = 1) -> int:
    """Additions per pooled-output row with GAR.

    Only ``K (D - S)`` small accumulations (3 additions each) remain
    after reuse, plus ``K^2 - 1`` major-accumulation additions per
    output: ``3K(D - S) + N(K^2 - 1)``.
    """
    n = gar_row_outputs(d, k, s)
    return min(3 * k * (d - s) + n * (k * k - 1), gar_additions_without(d, k, s))


def gar_reduction_rate(d: int, k: int, s: int = 1) -> float:
    """Eq. (2): ``(3NK^2 - 3K(D - S)) / (N (4K^2 - 1))``."""
    without = gar_additions_without(d, k, s)
    return (without - gar_additions_with(d, k, s)) / float(without)


def gar_limit_large_input(k: int) -> float:
    """Limit of the GAR reduction rate as D -> inf (Eq. 6 at K=13: 63.6%).

    As D grows, each pooled output costs ``6K`` small-accumulation plus
    ``K^2 - 1`` major-accumulation additions against a ``4K^2 - 1``
    baseline, so the reduction tends to ``3K(K - 2) / (4K^2 - 1)``
    (0.636 at K = 13, the paper's Eq. 6).
    """
    _check_lar(k, 1)
    return 3 * k * (k - 2) / float(4 * k * k - 1)


def combined_reduction_limit() -> float:
    """Eq. (7): LAR+GAR drop ``4K^2-1`` to ``K^2-1`` additions; the saved
    fraction ``3K^2 / (4K^2 - 1)`` approaches 75% as K grows."""
    return 0.75


def combined_additions_with(k: int) -> int:
    """Per-output additions with LAR+GAR at large D: the major
    accumulation only, ``K^2 - 1`` (small accumulations fully reused)."""
    _check_lar(k, 1)
    return k * k - 1


def combined_reduction_rate(k: int) -> float:
    """Saved fraction with LAR+GAR: ``3K^2 / (4K^2 - 1)`` (Eq. 7)."""
    _check_lar(k, 1)
    return 3 * k * k / float(4 * k * k - 1)


# ---------------------------------------------------------------------------
# Whole-layer budgets (Figs. 13-15)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LayerOps:
    """Arithmetic-operation budget of one layer execution."""

    multiplications: int
    additions: int
    #: additions spent building the box-summed input (MLCNN only)
    preprocessing_additions: int = 0

    @property
    def total(self) -> int:
        return self.multiplications + self.additions + self.preprocessing_additions

    def __add__(self, other: "LayerOps") -> "LayerOps":
        return LayerOps(
            self.multiplications + other.multiplications,
            self.additions + other.additions,
            self.preprocessing_additions + other.preprocessing_additions,
        )


def dcnn_layer_ops(spec: LayerSpec) -> LayerOps:
    """Operation budget of the dense (unfused) execution of ``spec``.

    Convolution: ``N K^2`` multiplications and ``N K^2 - 1``
    accumulation additions plus one bias addition per conv output.
    Average pooling (if present): ``p^2 - 1`` additions and one scaling
    multiplication per pooled output.
    """
    oc = spec.conv_output_size
    n_out = oc * oc * spec.out_channels
    macs_per_out = spec.in_channels * spec.kernel ** 2
    mults = n_out * macs_per_out
    adds = n_out * (macs_per_out - 1) + n_out  # accumulate + bias
    if spec.pool:
        p = spec.pool
        pooled = spec.output_size ** 2 * spec.out_channels
        adds += pooled * (p * p - 1)
        mults += pooled  # the divide-by-p^2 scaling
    return LayerOps(mults, adds)


def mlcnn_layer_ops(spec: LayerSpec, use_lar: bool = True, use_gar: bool = True) -> LayerOps:
    """Operation budget of the MLCNN fused execution of ``spec``.

    Non-fusable layers run dense.  For fused layers:

    * RME: one multiplication per weight per *pooled* output.
    * Preprocessing (LAR/GAR): the box-summed input ``I_Acc`` is built
      once per input channel from half/full additions and reused by
      every filter and every overlapping window.  Without LAR/GAR each
      window recomputes its ``p^2 - 1``-addition small accumulations.
    * Major accumulation: ``N K^2 - 1`` additions plus bias per pooled
      output; the pooling division is a shift (free).
    """
    if not spec.is_fusable:
        return dcnn_layer_ops(spec)
    p = spec.pool
    k = spec.kernel
    out = spec.output_size
    pooled = out * out * spec.out_channels
    macs_per_out = spec.in_channels * spec.kernel ** 2
    mults = pooled * macs_per_out
    adds = pooled * (macs_per_out - 1) + pooled  # major accumulation + bias

    # I_Acc positions actually touched, per spatial dimension: outputs
    # x = 0..out-1 read positions {p*x + i : i < K}.  Contiguous when
    # K >= p; otherwise `out` groups of K (e.g. 1x1 convs touch only
    # the pooled grid, which is why they admit no reuse).
    if k >= p:
        n_fa = (out - 1) * p + k
        n_ha = n_fa + p - 1
    else:
        n_fa = out * k
        # Half-addition column groups (width k + p - 1, spaced p) overlap
        # by k - 1 between adjacent outputs; I_Acc reuse computes each
        # shared column once (0 for the 1x1-conv case, where groups are
        # exactly the pooled grid).
        n_ha = out * (k + p - 1) - (out - 1) * (k - 1)

    if use_lar and use_gar:
        # I_Acc built once per input channel: half additions (vertical
        # runs of p, p-1 additions each) at every touched (row, column)
        # and full additions (horizontal runs of p half additions).
        ha = n_fa * n_ha * (p - 1)
        fa = n_fa * n_fa * (p - 1)
        pre = spec.in_channels * (ha + fa)
    elif use_lar:
        # LAR only: half additions shared inside one output's window,
        # but windows recompute across outputs.  Per pooled output the
        # KxK window needs K^2 small accumulations; column sharing
        # leaves K(K + p - 1) half additions and K^2 full additions.
        per_out = k * (k + p - 1) * (p - 1) + k * k * (p - 1)
        pre = out * out * spec.in_channels * per_out
    elif use_gar:
        # GAR only: small accumulations shared across outputs, each
        # costing p^2 - 1 additions (no half-addition sharing).
        pre = spec.in_channels * n_fa * n_fa * (p * p - 1)
    else:
        # RME only: every window of every output recomputes its small
        # accumulations (p^2 - 1 additions each).
        pre = out * out * spec.in_channels * k * k * (p * p - 1)
    return LayerOps(mults, adds, preprocessing_additions=pre)


def network_ops(
    specs: Iterable[LayerSpec], fused: bool = True, use_lar: bool = True, use_gar: bool = True
) -> LayerOps:
    """Sum of layer budgets over a network spec list."""
    total = LayerOps(0, 0, 0)
    for spec in specs:
        total = total + (
            mlcnn_layer_ops(spec, use_lar, use_gar) if fused else dcnn_layer_ops(spec)
        )
    return total


def layer_multiplication_reduction(spec: LayerSpec) -> float:
    """Per-layer fraction of multiplications removed by MLCNN (Fig. 14)."""
    base = dcnn_layer_ops(spec).multiplications
    fused = mlcnn_layer_ops(spec).multiplications
    return (base - fused) / float(base)


def layer_addition_reduction(spec: LayerSpec) -> float:
    """Per-layer fraction of additions removed by MLCNN (Fig. 14)."""
    base = dcnn_layer_ops(spec).additions
    ml = mlcnn_layer_ops(spec)
    fused = ml.additions + ml.preprocessing_additions
    return (base - fused) / float(base)
