"""The strided float kernel: overlapping pooling (``stride != pool``).

The fused identity does not actually require non-overlapping pooling:
an average pool of window ``p`` and *any* stride ``s`` over a stride-1
K x K convolution equals a stride-``s`` K x K convolution over the
``p x p`` box sum of the input, scaled by ``1/p^2``.  The stride only
selects *which* ``I_Acc`` patches feed the GEMM; the per-output math
is unchanged.  So the strided lowering is the generic cumsum kernel
with a strided gather:

1. **box sum** — :func:`~repro.core.kernels.boxsum.box_sum_cumsum`
   builds ``I_Acc`` once; overlapping windows share it for free (the
   GAR reuse argument gets *stronger* as windows overlap more).
2. **strided gather** — ``sliding_window_view`` subsampled at stride
   ``s`` (not ``p``) collects one K x K patch per pooled output.
3. **GEMM + epilogue** — identical to the non-overlapping path.

This fills the registry gap the lowering backend left by design:
``ShapeClass(stride != pool, kind="float")`` previously matched no
spec and :meth:`~repro.core.kernels.registry.KernelRegistry.select`
raised ``LookupError``.  :class:`StridedF64Kernel` registers as
``fused-strided-f64`` for exactly those classes; equivalence against
the unfused ``Conv -> AvgPool(p, s) -> ReLU`` composition is enforced
by ``tests/core/test_strided.py``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.kernels.fused import fused_forward

__all__ = ["StridedF64Kernel"]


class StridedF64Kernel:
    """Float64 NCHW lowering for overlapping-pool shape classes."""

    name = "fused-strided-f64"
    layout = "nchw"

    def __init__(self, shape_class) -> None:
        if shape_class.stride == shape_class.pool:
            raise ValueError(
                f"strided kernel is for stride != pool classes, got {shape_class}"
            )
        self.shape_class = shape_class

    def __call__(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray] = None,
        *,
        padding: int = 0,
        activation: str = "relu",
        record: bool = True,
    ) -> np.ndarray:
        out, _ = fused_forward(
            x,
            weight,
            bias,
            pool=self.shape_class.pool,
            padding=padding,
            activation=activation,
            record=record,
            stride=self.shape_class.stride,
        )
        return out

    #: NCHW entry point (native layout already NCHW)
    run_nchw = __call__

    def __repr__(self) -> str:
        return f"<StridedF64Kernel {self.shape_class}>"
