"""Box-sum (``I_Acc``) kernels: prefix-sum and windowed formulations.

The fused conv-pool kernel reduces the p x p average pool to a *box
sum* of the input plane (the paper's ``I_Acc``).  Two implementations:

* :func:`box_sum_cumsum` — the production kernel: a 2-D inclusive
  prefix sum followed by four shifted reads (the classic summed-area
  table).  O(H*W) additions independent of ``p``, no per-window
  materialization, and *exact* for integer dtypes (integer addition is
  associative, so the subtraction scheme introduces no error — the
  fixed-point path relies on this).
* :func:`box_sum_windows` — the golden reference: materializes every
  overlapping p x p window via ``sliding_window_view`` and sums it.
  O(H*W*p^2) work; kept only for property-testing the prefix-sum
  version (non-square inputs, p not dividing the spatial size, ...).

Both operate over the trailing two axes and broadcast over any leading
(batch/channel) axes; output spatial dims are ``H-p+1`` x ``W-p+1``.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = ["box_sum_cumsum", "box_sum_windows"]


def _check(x: np.ndarray, p: int) -> None:
    if p < 1:
        raise ValueError(f"box size must be >= 1, got {p}")
    if p > 1 and (x.shape[-1] < p or x.shape[-2] < p):
        raise ValueError(f"input spatial dims {x.shape[-2:]} smaller than box {p}")


def box_sum_cumsum(x: np.ndarray, p: int) -> np.ndarray:
    """p x p box sum via a 2-D prefix sum (summed-area table).

    ``out[..., i, j] = S[i+p-1, j+p-1] - S[i-1, j+p-1] - S[i+p-1, j-1]
    + S[i-1, j-1]`` where ``S`` is the inclusive 2-D cumulative sum
    (terms with a ``-1`` index read as zero).  Exact for integer inputs.
    """
    _check(x, p)
    if p == 1:
        return x
    s = x.cumsum(axis=-1).cumsum(axis=-2)
    out = s[..., p - 1 :, p - 1 :].copy()
    out[..., 1:, :] -= s[..., : -p, p - 1 :]
    out[..., :, 1:] -= s[..., p - 1 :, : -p]
    out[..., 1:, 1:] += s[..., :-p, :-p]
    return out


def box_sum_windows(x: np.ndarray, p: int) -> np.ndarray:
    """Reference p x p box sum summing materialized overlapping windows."""
    _check(x, p)
    if p == 1:
        return x
    windows = sliding_window_view(x, (p, p), axis=(-2, -1))
    return windows.sum(axis=(-2, -1))
