"""Vectorized integer accumulation for the fixed-point fused kernel.

:func:`conv_over_boxsum_int` replaces the per-(ki, kj) einsum loop of
``repro.core.fixedpoint.fused_conv_pool_int`` with a single gather +
integer matrix product.  Because int64 addition is associative and
commutative, the reordered accumulation is **bit-identical** to the
reference loop — the fixed-point accumulator/requant semantics
(including the overflow and clip counters, which are computed from the
accumulator *values*) are preserved exactly, not approximately.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = ["conv_over_boxsum_int"]


def conv_over_boxsum_int(acc: np.ndarray, wi: np.ndarray, pool: int) -> np.ndarray:
    """Stride-``pool`` integer convolution over the box-summed plane.

    ``acc``: (C, Ha, Wa) int64 ``I_Acc``; ``wi``: (M, C, K, K) int64
    weights.  Returns the (M, Po, Qo) int64 accumulator plane, equal
    element-for-element to the reference per-tap accumulation loop.
    """
    c, ha, wa = acc.shape
    m, cw, k, _ = wi.shape
    if c != cw:
        raise ValueError(f"channel mismatch: {c} vs {cw}")
    po = (ha - k) // pool + 1
    qo = (wa - k) // pool + 1
    if po < 1 or qo < 1:
        raise ValueError("input too small for one pooled output")
    win = sliding_window_view(acc, (k, k), axis=(-2, -1))[:, ::pool, ::pool]
    win = win[:, :po, :qo]  # (C, Po, Qo, K, K)
    cols = np.ascontiguousarray(win.transpose(1, 2, 0, 3, 4)).reshape(po * qo, c * k * k)
    out = wi.reshape(m, c * k * k) @ cols.T  # exact int64 GEMM
    return out.reshape(m, po, qo)
