"""Shape-class kernel registry: which lowered kernel runs which layer.

The lowering pass (:mod:`repro.compiler.lower`) describes each fused
layer as a :class:`ShapeClass` — ``(kernel, pool, stride, bits, kind)``
— and asks the registry to :meth:`~KernelRegistry.select` an
implementation.  Selection is deterministic: registered
:class:`KernelSpec` entries are ordered by descending priority then
name, and the first whose predicate matches wins.  Built-ins:

=====================  ========  =======================================
spec                   priority  matches
=====================  ========  =======================================
``fused-f32-nhwc``     10        float, ``bits == 32``, non-overlapping
``fused-int64-acc``    10        ``kind == "int"`` (fixed-point path)
``fused-strided-f64``  5         float, ``stride != pool`` (overlapping)
``fused-generic-f64``  0         non-overlapping float (exact fallback)
=====================  ========  =======================================

``registry.selections`` counts how many times a full selection ran —
the plan cache replays stored selections by name instead, so repeated
sweep compilations pay kernel selection once (asserted in
``tests/compiler/test_lower.py``).  :meth:`KernelRegistry.signature`
digests the registered contents; the plan cache stores it next to each
kernel plan and refuses to replay a plan recorded under a different
registry (see :mod:`repro.compiler.cache`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

__all__ = ["ShapeClass", "KernelSpec", "KernelRegistry", "KERNEL_REGISTRY"]

_VALID_KINDS = ("float", "int")
_VALID_BITS = (8, 16, 32, 64)


@dataclass(frozen=True)
class ShapeClass:
    """The lowering key of one fused layer: ``(k, p, stride, bits)``."""

    kernel: int  #: conv kernel size K
    pool: int  #: pool window p
    stride: int  #: pool stride (== pool for non-overlapping pooling)
    bits: int = 64  #: arithmetic width of the requested datapath
    kind: str = "float"  #: "float" or "int" (fixed-point) arithmetic

    def __post_init__(self) -> None:
        if self.kernel < 1 or self.pool < 1 or self.stride < 1:
            raise ValueError(f"kernel/pool/stride must be >= 1, got {self}")
        if self.bits not in _VALID_BITS:
            raise ValueError(f"bits must be one of {_VALID_BITS}, got {self.bits}")
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"kind must be one of {_VALID_KINDS}, got {self.kind!r}")

    def describe(self) -> str:
        return f"k{self.kernel}p{self.pool}s{self.stride}-{self.kind}{self.bits}"


@dataclass(frozen=True)
class KernelSpec:
    """A registered kernel implementation and when it applies."""

    name: str
    priority: int
    factory: Callable[[ShapeClass], Any]
    predicate: Callable[[ShapeClass], bool]
    description: str = ""

    def matches(self, sc: ShapeClass) -> bool:
        return bool(self.predicate(sc))

    def make(self, sc: ShapeClass) -> Any:
        return self.factory(sc)


class KernelRegistry:
    """Deterministic priority-ordered kernel selection."""

    def __init__(self) -> None:
        self._specs: Dict[str, KernelSpec] = {}
        self.selections = 0  #: full select() runs (plan-cache misses)

    def register(self, spec: KernelSpec) -> KernelSpec:
        if spec.name in self._specs:
            raise ValueError(f"duplicate kernel spec {spec.name!r}")
        self._specs[spec.name] = spec
        return spec

    def unregister(self, name: str) -> KernelSpec:
        """Remove a registered spec (tests, experimental kernels)."""
        if name not in self._specs:
            raise KeyError(f"unknown kernel {name!r}; available: {self.names()}")
        return self._specs.pop(name)

    def get(self, name: str) -> KernelSpec:
        if name not in self._specs:
            raise KeyError(f"unknown kernel {name!r}; available: {self.names()}")
        return self._specs[name]

    def names(self) -> List[str]:
        return sorted(self._specs)

    def signature(self) -> str:
        """Digest of the registered contents (names + priorities).

        Stored next to every cached kernel plan: a plan recorded under
        one registry population must not be replayed after specs were
        added or removed, since a fresh selection could now pick a
        different kernel (see ``PlanCache.kernel_plan``).
        """
        import hashlib

        payload = ";".join(f"{s.name}@{s.priority}" for s in sorted(
            self._specs.values(), key=lambda s: s.name
        ))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def candidates(self, sc: ShapeClass) -> List[KernelSpec]:
        ordered = sorted(self._specs.values(), key=lambda s: (-s.priority, s.name))
        return [s for s in ordered if s.matches(sc)]

    def select(self, sc: ShapeClass) -> KernelSpec:
        """Pick the highest-priority matching spec (deterministic)."""
        self.selections += 1
        matching = self.candidates(sc)
        if not matching:
            raise LookupError(
                f"no registered kernel matches shape class {sc!r} "
                f"(registered: {self.names()})"
            )
        return matching[0]

    def make(self, sc: ShapeClass) -> Any:
        """Select and instantiate a kernel for ``sc``."""
        return self.select(sc).make(sc)


def _make_generic_f64(sc: ShapeClass):
    from repro.core.kernels.fused import GenericF64Kernel

    return GenericF64Kernel(sc)


def _make_f32_nhwc(sc: ShapeClass):
    from repro.core.kernels.nhwc import F32NHWCKernel

    return F32NHWCKernel(sc)


def _make_strided_f64(sc: ShapeClass):
    from repro.core.kernels.strided import StridedF64Kernel

    return StridedF64Kernel(sc)


class IntAccKernel:
    """Thin handle for the fixed-point path (quantized operands).

    Delegates to :func:`repro.core.fixedpoint.fused_conv_pool_int` with
    ``impl="vectorized"`` — bit-identical to the reference loop,
    including the accumulator-overflow and requant-clip counters.
    """

    name = "fused-int64-acc"
    layout = "nchw"

    def __init__(self, shape_class: ShapeClass) -> None:
        self.shape_class = shape_class

    def __call__(self, x, w, bias=None, **kwargs):
        from repro.core.fixedpoint import fused_conv_pool_int

        kwargs.setdefault("pool", self.shape_class.pool)
        return fused_conv_pool_int(x, w, bias, impl="vectorized", **kwargs)

    def __repr__(self) -> str:
        return f"<IntAccKernel {self.shape_class}>"


#: the process-wide registry the lowering pass consults
KERNEL_REGISTRY = KernelRegistry()

KERNEL_REGISTRY.register(
    KernelSpec(
        name="fused-generic-f64",
        priority=0,
        factory=_make_generic_f64,
        predicate=lambda sc: sc.kind == "float" and sc.stride == sc.pool,
        description="float64 NCHW fallback; exact vs the reference composition",
    )
)
KERNEL_REGISTRY.register(
    KernelSpec(
        name="fused-f32-nhwc",
        priority=10,
        factory=_make_f32_nhwc,
        predicate=lambda sc: sc.kind == "float" and sc.bits == 32 and sc.stride == sc.pool,
        description="fp32 NHWC specialization (mlcnn-fp32 fast path)",
    )
)
KERNEL_REGISTRY.register(
    KernelSpec(
        name="fused-int64-acc",
        priority=10,
        factory=IntAccKernel,
        predicate=lambda sc: sc.kind == "int",
        description="int64-accumulator fixed-point path with saturation counters",
    )
)
KERNEL_REGISTRY.register(
    KernelSpec(
        name="fused-strided-f64",
        priority=5,
        factory=_make_strided_f64,
        predicate=lambda sc: sc.kind == "float" and sc.stride != sc.pool,
        description="float64 cumsum + strided gather for overlapping pooling",
    )
)
