"""The specialized fp32 NHWC fused kernel (the mlcnn-fp32 fast path).

This is the shape-class-specialized kernel the lowering stage selects
for ``bits=32`` — the software analogue of the accelerator's
``mlcnn-fp32`` configuration.  It trades the generic kernel's float64
exactness for single-precision GEMM throughput and a channels-last
layout in which every memory stage is contiguous:

* **layout** — NHWC internally: the pooled-patch gather copies
  contiguous ``(kj, c)`` runs in both source and destination instead
  of strided per-channel elements.
* **padding folded into the box sum** — for the common ``pool=2``
  class the horizontal pairwise sum writes pad columns directly from
  the input edges; no padded copy of the input is ever materialized
  (general ``pool`` falls back to a zero-padded workspace).
* **bias folded into the GEMM** — the patch matrix carries a constant
  ones column and the weight matrix a bias row, so bias addition costs
  nothing extra; the ``1/p^2`` scaling is folded into the weights.
* **plan-time workspaces** — all intermediates are allocated once per
  input shape and reused; steady-state calls allocate only the output
  of the final GEMM.

Weights are re-folded on every call (a few-microsecond copy of the
(M, C, K, K) tensor), so a kernel bound to a module that later trains
never serves stale weights.

Accuracy: outputs deviate from the float64 reference by single-
precision round-off (measured max ~3e-5 on the benchmark workload;
documented bound ~1e-3 for unit-variance inputs).  The lowering pass
therefore declares ``preserves_semantics=False`` for this class.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.core.kernels.fused import record_rme_counters

__all__ = ["F32NHWCKernel"]


class _Plan:
    """Workspaces for one (input shape, padding) specialization."""

    def __init__(self, n: int, h: int, w: int, c: int, m: int, k: int, pool: int, pad: int):
        self.n, self.h, self.w, self.c, self.m, self.k = n, h, w, c, m, k
        self.pool, self.pad = pool, pad
        hp, wp = h + 2 * pad, w + 2 * pad
        self.ha, self.wa = hp - pool + 1, wp - pool + 1
        self.po = (self.ha - k) // pool + 1
        self.qo = (self.wa - k) // pool + 1
        if self.po < 1 or self.qo < 1:
            raise ValueError("input too small for one pooled output")
        self.ck = c * k * k
        f32 = np.float32
        if pool == 2:
            # pad folded into the horizontal sum: pad rows stay zero
            self.xpad = None
            self.tmp = np.zeros((n, hp, self.wa, c), dtype=f32)
        else:
            self.xpad = np.zeros((n, hp, wp, c), dtype=f32)
            self.tmp = np.empty((n, hp, self.wa, c), dtype=f32)
        self.acc = np.empty((n, self.ha, self.wa, c), dtype=f32)
        # patch matrix with a trailing ones column (bias folded into GEMM)
        self.cols = np.empty((n, self.po, self.qo, self.ck + 1), dtype=f32)
        self.cols[..., self.ck] = 1.0
        self.wmat = np.empty((self.ck + 1, m), dtype=f32)


class F32NHWCKernel:
    """Plan-specialized fused conv-pool: fp32 arithmetic, NHWC layout."""

    name = "fused-f32-nhwc"
    layout = "nhwc"

    def __init__(self, shape_class) -> None:
        self.shape_class = shape_class
        self._plans: Dict[Tuple, _Plan] = {}

    # -- planning -----------------------------------------------------------

    def _plan_for(self, x_shape: Tuple[int, ...], m: int, k: int, pad: int) -> _Plan:
        key = (x_shape, m, k, pad)
        plan = self._plans.get(key)
        if plan is None:
            n, h, w, c = x_shape
            plan = _Plan(n, h, w, c, m, k, self.shape_class.pool, pad)
            self._plans[key] = plan
        return plan

    def _fold_weights(self, plan: _Plan, weight: np.ndarray, bias: Optional[np.ndarray]):
        # (M, C, K, K) -> (Ki, Kj, C, M) rows matching the gather order,
        # with the 1/p^2 pool scaling folded in and the bias as the row
        # multiplying the patch matrix's ones column.
        w32 = np.asarray(weight, dtype=np.float32)
        inv = np.float32(1.0 / (plan.pool * plan.pool))
        plan.wmat[: plan.ck] = w32.transpose(2, 3, 1, 0).reshape(plan.ck, plan.m) * inv
        plan.wmat[plan.ck] = 0.0 if bias is None else np.asarray(bias, dtype=np.float32)

    # -- the box sum (I_Acc), written into plan.acc -------------------------

    def _box_sum(self, plan: _Plan, x: np.ndarray) -> None:
        p, pad, h, w = plan.pool, plan.pad, plan.h, plan.w
        if p == 2 and h >= 2 and w >= 2:
            # horizontal pairwise sum with the zero padding folded in
            core = plan.tmp[:, pad : pad + h]
            np.add(x[:, :, :-1, :], x[:, :, 1:, :], out=core[:, :, pad : pad + w - 1, :])
            if pad >= 1:
                core[:, :, pad - 1, :] = x[:, :, 0, :]
                core[:, :, pad + w - 1, :] = x[:, :, w - 1, :]
            # vertical pairwise sum (pad rows are zero by construction)
            np.add(plan.tmp[:, :-1], plan.tmp[:, 1:], out=plan.acc)
            return
        xp = plan.xpad
        xp[:, pad : pad + h, pad : pad + w, :] = x
        plan.tmp[:] = xp[:, :, : plan.wa, :]
        for d in range(1, p):
            plan.tmp += xp[:, :, d : d + plan.wa, :]
        plan.acc[:] = plan.tmp[:, : plan.ha]
        for d in range(1, p):
            plan.acc += plan.tmp[:, d : d + plan.ha]

    # -- execution ----------------------------------------------------------

    def __call__(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray] = None,
        *,
        padding: int = 0,
        activation: str = "relu",
        record: bool = True,
    ) -> np.ndarray:
        """Run on an NHWC float32 batch ``(N, H, W, C)``; returns NHWC."""
        if x.ndim != 4:
            raise ValueError(f"expected NHWC (N,H,W,C), got shape {x.shape}")
        if x.dtype != np.float32:
            x = np.asarray(x, dtype=np.float32)
        m, cw, k, _ = weight.shape
        if x.shape[-1] != cw:
            raise ValueError(f"channel mismatch: input {x.shape[-1]}, weight {cw}")
        plan = self._plan_for(x.shape, m, k, padding)
        self._fold_weights(plan, weight, bias)
        self._box_sum(plan, x)
        p, po, qo, ck = plan.pool, plan.po, plan.qo, plan.ck
        # gather: contiguous (kj, c) runs in both source and destination
        win = sliding_window_view(plan.acc, (k, k), axis=(1, 2))[:, ::p, ::p]
        win = win[:, :po, :qo]
        np.copyto(
            plan.cols[..., :ck].reshape(plan.n, po, qo, k, k, plan.c),
            win.transpose(0, 1, 2, 4, 5, 3),
        )
        out = np.matmul(plan.cols.reshape(plan.n * po * qo, ck + 1), plan.wmat)
        if activation == "relu":
            np.maximum(out, 0.0, out=out)
        elif activation == "sigmoid":
            np.negative(out, out=out)
            np.exp(out, out=out)
            out += 1.0
            np.reciprocal(out, out=out)
        elif activation == "tanh":
            np.tanh(out, out=out)
        elif activation != "none":
            raise ValueError(f"unknown activation {activation!r}")
        if record:
            record_rme_counters(
                plan.n, m, plan.c, k, po, qo, plan.h + 2 * padding, plan.w + 2 * padding
            )
        return out.reshape(plan.n, po, qo, m)

    def run_nchw(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray] = None,
        *,
        padding: int = 0,
        activation: str = "relu",
        record: bool = True,
    ) -> np.ndarray:
        """NCHW convenience wrapper (layout conversion both ways)."""
        xh = np.ascontiguousarray(np.moveaxis(x, 1, -1), dtype=np.float32)
        out = self(xh, weight, bias, padding=padding, activation=activation, record=record)
        return np.ascontiguousarray(np.moveaxis(out, -1, 1))

    def __repr__(self) -> str:
        return f"<F32NHWCKernel {self.shape_class}, {len(self._plans)} plan(s)>"
