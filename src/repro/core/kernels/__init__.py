"""Lowered, fully vectorized implementations of the fused kernel.

This package is the *lowering* target of the compiler: where
:mod:`repro.core.fusion` defines what the fused RME/LAR/GAR operator
computes (and keeps an instrumented loop nest as the golden
reference), the kernels here define how it executes fast —

* :mod:`~repro.core.kernels.boxsum` — the ``I_Acc`` box sum as a 2-D
  prefix sum (production) and as materialized windows (reference).
* :mod:`~repro.core.kernels.fused` — generic float64 NCHW
  forward/backward: box sum, pooled-patch gather, one GEMM.
* :mod:`~repro.core.kernels.nhwc` — the fp32 channels-last
  specialization with plan-time workspaces (the benchmark fast path).
* :mod:`~repro.core.kernels.strided` — the overlapping-pool
  (``stride != pool``) float64 lowering: cumsum + strided gather.
* :mod:`~repro.core.kernels.intpath` — exact int64 accumulation for
  the fixed-point path (bit-identical to the reference loop).
* :mod:`~repro.core.kernels.registry` — shape-class registry the
  :class:`repro.compiler.lower.LowerFusedKernelPass` selects from.
"""

from repro.core.kernels.boxsum import box_sum_cumsum, box_sum_windows
from repro.core.kernels.fused import (
    FusedResiduals,
    GenericF64Kernel,
    fused_backward,
    fused_forward,
    record_rme_counters,
)
from repro.core.kernels.intpath import conv_over_boxsum_int
from repro.core.kernels.nhwc import F32NHWCKernel
from repro.core.kernels.registry import (
    KERNEL_REGISTRY,
    KernelRegistry,
    KernelSpec,
    ShapeClass,
)
from repro.core.kernels.strided import StridedF64Kernel

__all__ = [
    "box_sum_cumsum",
    "box_sum_windows",
    "FusedResiduals",
    "fused_forward",
    "fused_backward",
    "record_rme_counters",
    "GenericF64Kernel",
    "F32NHWCKernel",
    "StridedF64Kernel",
    "conv_over_boxsum_int",
    "ShapeClass",
    "KernelSpec",
    "KernelRegistry",
    "KERNEL_REGISTRY",
]
