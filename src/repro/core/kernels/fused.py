"""Vectorized fused conv-pool forward/backward (the generic lowering).

The loop nest of Algorithm 1 lowers to three dense stages:

1. **box sum** — :func:`~repro.core.kernels.boxsum.box_sum_cumsum`
   builds the ``I_Acc`` plane in O(H*W) additions (LAR/GAR in closed
   form: every partial sum is computed once and reused everywhere).
2. **pooled-patch gather** — ``sliding_window_view`` over ``I_Acc``
   subsampled at stride ``p`` collects exactly one K x K patch per
   *pooled* output (RME: each weight meets each patch once).
3. **GEMM** — one ``(N*Po*Qo, C*K*K) @ (C*K*K, M)`` matrix product,
   followed by the ``1/p^2`` scaling, bias and activation epilogue.

:func:`fused_forward` returns the output plus a :class:`FusedResiduals`
bundle; :func:`fused_backward` consumes it and reproduces the gradient
of the unfused composition (box-sum scatter + stride-p convolution
backward) without materializing the intermediate graph nodes.

The measured :class:`~repro.obs.metrics.OpCounters` report (`mults`,
`mults_eliminated`) uses the same closed-form geometry as the reference
path in :mod:`repro.core.fusion`, so the within-1%-of-analytic
cross-checks in ``tests/obs`` hold for the vectorized kernels too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.core.kernels.boxsum import box_sum_cumsum
from repro.obs.metrics import get_recorder

__all__ = [
    "FusedResiduals",
    "fused_forward",
    "fused_backward",
    "record_rme_counters",
    "GenericF64Kernel",
]


def record_rme_counters(
    n: int, m: int, c: int, k: int, po: int, qo: int, hp: int, wp: int
) -> None:
    """Report the RME multiplication tally of one fused execution.

    Measured from the actual geometry: the fused conv touches each
    weight once per *pooled* output; a dense run would touch it once
    per conv output and pay one scaling mult per pooled output (a free
    shift in the fused kernel).  Identical to the reference path's
    accounting in :mod:`repro.core.fusion`.  The pooled-output count
    ``po * qo`` already reflects the pool stride, so the same formula
    holds for overlapping (``stride != pool``) executions.
    """
    recorder = get_recorder()
    if not recorder.enabled:
        return
    conv_outs = (hp - k + 1) * (wp - k + 1)
    recorder.record(
        mults=n * m * po * qo * c * k * k,
        mults_eliminated=n * m * (c * k * k * (conv_outs - po * qo) + po * qo),
    )


@dataclass
class FusedResiduals:
    """Everything :func:`fused_backward` needs from the forward pass."""

    cols: np.ndarray  # (N*Po*Qo, C*K*K) gathered I_Acc patches
    wmat: np.ndarray  # (M, C*K*K) flattened weights
    out: np.ndarray  # (N, M, Po, Qo) post-activation output
    activation: str
    pool: int
    padding: int
    x_shape: Tuple[int, int, int, int]  # (N, C, H, W) unpadded
    acc_shape: Tuple[int, int, int, int]  # (N, C, Ha, Wa) box-sum plane
    k: int
    stride: int = 0  # pool stride (0 means == pool, the non-overlapping case)

    @property
    def pool_stride(self) -> int:
        return self.stride or self.pool


def fused_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    pool: int = 2,
    padding: int = 0,
    activation: str = "relu",
    record: bool = True,
    stride: Optional[int] = None,
) -> Tuple[np.ndarray, FusedResiduals]:
    """Vectorized ``activation(AvgPool_p(Conv_K(x)))`` on raw arrays.

    ``x``: (N, C, H, W); ``weight``: (M, C, K, K).  ``stride`` is the
    pool stride and defaults to ``pool`` (the non-overlapping case);
    ``stride != pool`` gathers the same box-sum patches at the strided
    positions, which is exactly the overlapping-pool identity — each
    pooled output is still one K x K ``I_Acc`` patch dotted with the
    weights.  Returns the NCHW output and the residuals for
    :func:`fused_backward`.
    """
    stride = pool if stride is None else stride
    if stride < 1:
        raise ValueError(f"pool stride must be >= 1, got {stride}")
    n, c, h, w = x.shape
    m, cw, k, _ = weight.shape
    if c != cw:
        raise ValueError(f"channel mismatch: input {c}, weight {cw}")
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding))) if padding else x
    acc = box_sum_cumsum(xp, pool)
    ha, wa = acc.shape[-2:]
    po = (ha - k) // stride + 1
    qo = (wa - k) // stride + 1
    if po < 1 or qo < 1:
        raise ValueError("input too small for one pooled output")
    # One K x K patch of I_Acc per pooled output (RME in closed form).
    win = sliding_window_view(acc, (k, k), axis=(-2, -1))[:, :, ::stride, ::stride]
    win = win[:, :, :po, :qo]
    cols = np.ascontiguousarray(win.transpose(0, 2, 3, 1, 4, 5)).reshape(
        n * po * qo, c * k * k
    )
    wmat = weight.reshape(m, c * k * k)
    lin = cols @ wmat.T
    lin *= 1.0 / (pool * pool)
    if bias is not None:
        lin += bias
    pre = lin.reshape(n, po, qo, m).transpose(0, 3, 1, 2)
    if activation == "relu":
        out = np.maximum(pre, 0.0)
    elif activation == "sigmoid":
        out = 1.0 / (1.0 + np.exp(-pre))
    elif activation == "tanh":
        out = np.tanh(pre)
    elif activation == "none":
        out = np.ascontiguousarray(pre)
    else:
        raise ValueError(f"unknown activation {activation!r}")
    if record:
        record_rme_counters(n, m, c, k, po, qo, xp.shape[-2], xp.shape[-1])
    res = FusedResiduals(
        cols=cols,
        wmat=wmat,
        out=out,
        activation=activation,
        pool=pool,
        padding=padding,
        x_shape=(n, c, h, w),
        acc_shape=acc.shape,
        k=k,
        stride=stride,
    )
    return out, res


def fused_backward(
    g: np.ndarray, res: FusedResiduals
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients ``(gx, gweight, gbias)`` of :func:`fused_forward`.

    Mirrors the unfused composition's chain rule: activation local
    derivative, GEMM backward, stride-p patch scatter back onto the
    ``I_Acc`` plane, and the box-sum backward (every I_Acc cell
    distributes its gradient to the p x p input pixels that fed it).
    """
    n, c, h, w = res.x_shape
    _, _, ha, wa = res.acc_shape
    pool, k, padding = res.pool, res.k, res.padding
    stride = res.pool_stride
    out = res.out
    if res.activation == "relu":
        g = g * (out > 0)
    elif res.activation == "sigmoid":
        g = g * out * (1.0 - out)
    elif res.activation == "tanh":
        g = g * (1.0 - out * out)
    # else "none": identity
    m = g.shape[1]
    po, qo = g.shape[-2:]
    gm = np.ascontiguousarray(g.transpose(0, 2, 3, 1)).reshape(n * po * qo, m)
    gbias = gm.sum(axis=0)
    gms = gm * (1.0 / (pool * pool))  # bias enters after the scaling
    gweight = (gms.T @ res.cols).reshape(m, c, k, k)
    gcols = (gms @ res.wmat).reshape(n, po, qo, c, k, k)
    gc = gcols.transpose(0, 3, 1, 2, 4, 5)  # (N, C, Po, Qo, K, K)
    gacc = np.zeros((n, c, ha, wa), dtype=g.dtype)
    for ki in range(k):
        for kj in range(k):
            gacc[:, :, ki : ki + stride * po : stride, kj : kj + stride * qo : stride] += gc[
                ..., ki, kj
            ]
    hp, wp = ha + pool - 1, wa + pool - 1
    gpad = np.zeros((n, c, hp, wp), dtype=g.dtype)
    for i in range(pool):
        for j in range(pool):
            gpad[:, :, i : i + ha, j : j + wa] += gacc
    gx = gpad[:, :, padding : padding + h, padding : padding + w] if padding else gpad
    return gx, gweight, gbias


class GenericF64Kernel:
    """The fallback lowered kernel: float64, NCHW, any shape class.

    Bit-identical to ``fused_conv_pool(..., impl="vectorized")`` — both
    execute :func:`fused_forward` — so attaching it to a compiled
    module never changes inference outputs.
    """

    name = "fused-generic-f64"
    layout = "nchw"

    def __init__(self, shape_class) -> None:
        self.shape_class = shape_class

    def __call__(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray] = None,
        *,
        padding: int = 0,
        activation: str = "relu",
        record: bool = True,
    ) -> np.ndarray:
        out, _ = fused_forward(
            x,
            weight,
            bias,
            pool=self.shape_class.pool,
            padding=padding,
            activation=activation,
            record=record,
            stride=self.shape_class.stride,
        )
        return out

    #: NCHW entry point (native layout already NCHW)
    run_nchw = __call__

    def __repr__(self) -> str:
        return f"<GenericF64Kernel {self.shape_class}>"
