"""Multi-core parallel execution engine for fused kernels and plans.

The lowered fused kernels (:mod:`repro.core.kernels`) are single-core
NumPy programs; this module shards their work across a persistent pool
of worker processes — the software analogue of the paper's multi-PE
scale-out, where independent output tiles map onto independent compute
units.

Design
------

* **Persistent pool** — workers are expensive to start (``forkserver``
  or ``spawn``; plain ``fork`` is unsafe under threads), so one
  :class:`concurrent.futures.ProcessPoolExecutor` per worker count is
  created lazily and reused for the life of the process.  Workers run
  :func:`_init_worker` exactly once, importing the kernel stack ahead
  of the first task.
* **Shared-memory arenas** — inputs, weights and outputs travel
  through :mod:`multiprocessing.shared_memory` segments
  (:class:`SharedArena`), not through the task pickle stream.  The
  process-wide :class:`ArenaPool` recycles segments by capacity, so
  repeated same-shape calls reuse the same names and the worker-side
  attachment cache (:data:`_WORKER_ARENAS`) hits.
* **Sharding** — :func:`plan_shards` splits the batch axis when there
  are at least as many images as workers, and falls back to the output
  -channel axis for small batches (both axes are embarrassingly
  parallel in the fused operator: every pooled output depends on one
  image and one filter).
* **Observability** — each worker executes its shard under
  :func:`repro.obs.metrics.collect_counters` and ships the measured
  :class:`~repro.obs.metrics.OpCounters` back as a dict; the parent
  merges them into its own active collection
  (:meth:`CounterRecorder.record`) and re-emits one
  ``parallel.shard`` tracer event per shard with the worker's wall
  time, so a profile of a parallel run decomposes like a serial one.

Determinism: shards are pure functions of disjoint input slices and
are written to disjoint output slices, so a parallel run is fully
deterministic and independent of scheduling order.  Float outputs
match the serial kernel within round-off (<= a few ULP: BLAS chooses
its blocking by problem size, so a per-shard GEMM may associate sums
differently than the full-batch GEMM); integer/fixed-point executions
are exact, hence bit-identical.

Serial fallback: ``workers <= 1``, a grad-enabled context, or a pool
that cannot be created (sandboxed environments) all run the plain
in-process kernel — the parallel path is an inference-only
optimization, never a semantic fork.
"""

from __future__ import annotations

import atexit
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing import shared_memory as _shm
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SharedArena",
    "ArenaPool",
    "Shard",
    "plan_shards",
    "available_workers",
    "get_executor",
    "shutdown_pools",
    "parallel_fused_conv_pool",
    "parallel_fused_conv_pool_int",
    "ParallelKernel",
    "ParallelPlanExecutor",
]


def available_workers() -> int:
    """CPUs this process may use (affinity-aware, >= 1)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# Shared-memory arenas
# ---------------------------------------------------------------------------

class SharedArena:
    """One shared-memory segment with a typed ndarray view.

    The creating process owns the segment (``unlink`` on close);
    workers attach by name and never unlink.  Views may describe fewer
    bytes than the segment holds, letting :class:`ArenaPool` recycle a
    large segment for a smaller array.
    """

    def __init__(self, nbytes: int) -> None:
        self.shm = _shm.SharedMemory(create=True, size=max(1, int(nbytes)))
        self.capacity = self.shm.size

    @property
    def name(self) -> str:
        return self.shm.name

    def view(self, shape: Tuple[int, ...], dtype: Any) -> np.ndarray:
        """An ndarray over the first ``prod(shape) * itemsize`` bytes."""
        need = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        if need > self.capacity:
            raise ValueError(f"arena {self.name} holds {self.capacity} B, need {need}")
        return np.ndarray(shape, dtype=dtype, buffer=self.shm.buf)

    def put(self, array: np.ndarray) -> np.ndarray:
        """Copy ``array`` into the arena; returns the shared view."""
        view = self.view(array.shape, array.dtype)
        np.copyto(view, array)
        return view

    def close(self) -> None:
        try:
            self.shm.close()
            self.shm.unlink()
        except FileNotFoundError:
            pass


class ArenaPool:
    """Recycles :class:`SharedArena` segments by capacity.

    ``acquire(nbytes)`` hands out the smallest free segment that fits
    (or creates one); ``release`` returns it for reuse.  Reuse keeps
    segment *names* stable across repeated same-shape calls, which is
    what makes the worker-side attachment cache effective.
    """

    def __init__(self) -> None:
        self._free: List[SharedArena] = []
        self._all: List[SharedArena] = []

    def acquire(self, nbytes: int) -> SharedArena:
        best = None
        for arena in self._free:
            if arena.capacity >= nbytes and (
                best is None or arena.capacity < best.capacity
            ):
                best = arena
        if best is not None:
            self._free.remove(best)
            return best
        arena = SharedArena(nbytes)
        self._all.append(arena)
        return arena

    def release(self, arena: SharedArena) -> None:
        self._free.append(arena)

    def close(self) -> None:
        for arena in self._all:
            arena.close()
        self._free.clear()
        self._all.clear()


#: process-wide arena pool used by the parallel entry points
_ARENAS = ArenaPool()


# ---------------------------------------------------------------------------
# Sharding
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Shard:
    """One worker's slice of the fused operator.

    ``axis`` is ``"images"`` (slice of the batch) or ``"channels"``
    (slice of the output filters); ``start``/``stop`` bound the slice.
    """

    axis: str
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start


def plan_shards(n_images: int, n_channels: int, workers: int) -> List[Shard]:
    """Split the fused operator across ``workers`` near-evenly.

    Prefers the batch axis (coarsest independent unit, one attachment
    per worker); when the batch is smaller than the worker count the
    output-channel axis shards instead, so small-batch inference still
    scales.  Degenerate worker counts collapse to one shard.
    """
    if workers <= 1:
        return [Shard("images", 0, n_images)]
    if n_images >= workers or n_channels <= 1:
        axis, total = "images", n_images
    else:
        axis, total = "channels", n_channels
    parts = max(1, min(workers, total))
    base, rem = divmod(total, parts)
    shards, lo = [], 0
    for i in range(parts):
        hi = lo + base + (1 if i < rem else 0)
        shards.append(Shard(axis, lo, hi))
        lo = hi
    return shards


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: name -> attached SharedMemory, cached for the life of the worker
_WORKER_ARENAS: Dict[str, _shm.SharedMemory] = {}

#: (spec name, shape class) -> instantiated kernel, per worker
_WORKER_KERNELS: Dict[Tuple[str, Any], Any] = {}

#: the unpickled compiled model, for full-plan execution pools
_WORKER_MODEL: Any = None


def _attach(name: str) -> _shm.SharedMemory:
    shm = _WORKER_ARENAS.get(name)
    if shm is None:
        # Attach only: the parent owns (and eventually unlinks) the
        # segment.  The resource tracker is shared across the process
        # tree, so the attach-side registration is a set no-op.
        shm = _shm.SharedMemory(name=name)
        _WORKER_ARENAS[name] = shm
    return shm


def _worker_view(name: str, shape: Tuple[int, ...], dtype_str: str) -> np.ndarray:
    return np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=_attach(name).buf)


def _init_worker(model_blob: Optional[bytes] = None) -> None:
    """Run once per worker: import the kernel stack, unpack the plan."""
    global _WORKER_MODEL
    import repro.core.kernels  # noqa: F401  (warm the import ahead of tasks)

    if model_blob is not None:
        _WORKER_MODEL = pickle.loads(model_blob)


def _worker_kernel(spec_name: str, shape_class: Any) -> Any:
    key = (spec_name, shape_class)
    kern = _WORKER_KERNELS.get(key)
    if kern is None:
        from repro.core.kernels import KERNEL_REGISTRY

        kern = KERNEL_REGISTRY.get(spec_name).make(shape_class)
        _WORKER_KERNELS[key] = kern
    return kern


def _run_kernel_shard(task: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one shard of a fused kernel inside a worker.

    Reads the input/weight slices from shared memory, runs the lowered
    kernel under a counter collection, writes the output slice in
    place, and returns only metadata (counters + wall time) — the
    result itself travels through the output arena.
    """
    import time

    from repro.obs.metrics import collect_counters

    t0 = time.perf_counter()
    x = _worker_view(task["x_name"], task["x_shape"], task["dtype"])
    w = _worker_view(task["w_name"], task["w_shape"], task["dtype"])
    b = (
        _worker_view(task["b_name"], task["b_shape"], task["dtype"])
        if task["b_name"] is not None
        else None
    )
    out = _worker_view(task["out_name"], task["out_shape"], task["dtype"])
    shard: Shard = task["shard"]
    kern = _worker_kernel(task["spec_name"], task["shape_class"])
    if shard.axis == "images":
        xs, ws, bs = x[shard.start : shard.stop], w, b
        dest = out[shard.start : shard.stop]
    else:
        xs, ws = x, w[shard.start : shard.stop]
        bs = None if b is None else b[shard.start : shard.stop]
        dest = out[:, shard.start : shard.stop]
    with collect_counters() as oc:
        result = kern.run_nchw(
            xs, ws, bs, padding=task["padding"], activation=task["activation"]
        )
    np.copyto(dest, result)
    return {
        "shard": shard,
        "counters": oc.as_dict(include_derived=False),
        "wall_time_s": time.perf_counter() - t0,
        "pid": os.getpid(),
    }


def _run_int_shard(task: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one batch slice of the fixed-point fused kernel.

    The int64 path is per-image, so the shard simply maps its slice of
    images through :func:`repro.core.fixedpoint.fused_conv_pool_int` —
    integer accumulation is associative, making the sharded execution
    *bit-identical* to a serial sweep over the same images.
    """
    import time

    from repro.core.fixedpoint import QuantizedTensor, fused_conv_pool_int
    from repro.obs.metrics import collect_counters

    t0 = time.perf_counter()
    x = _worker_view(task["x_name"], task["x_shape"], task["dtype"])
    w = _worker_view(task["w_name"], task["w_shape"], task["dtype"])
    b = (
        _worker_view(task["b_name"], task["b_shape"], "<f8")
        if task["b_name"] is not None
        else None
    )
    out = _worker_view(task["out_name"], task["out_shape"], "<f8")
    shard: Shard = task["shard"]
    wq = QuantizedTensor(np.array(w), task["w_scale"], task["w_bits"])
    with collect_counters() as oc:
        for i in range(shard.start, shard.stop):
            xq = QuantizedTensor(np.array(x[i]), task["x_scale"], task["x_bits"])
            out[i] = fused_conv_pool_int(
                xq,
                wq,
                b,
                pool=task["pool"],
                apply_relu=task["apply_relu"],
                acc_bits=task["acc_bits"],
                out_bits=task["out_bits"],
                out_amax=task["out_amax"],
            )
    return {
        "shard": shard,
        "counters": oc.as_dict(include_derived=False),
        "wall_time_s": time.perf_counter() - t0,
        "pid": os.getpid(),
    }


def _run_plan_shard(task: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one batch slice through the worker's compiled model."""
    import time

    from repro.nn.tensor import Tensor, no_grad
    from repro.obs.metrics import collect_counters

    if _WORKER_MODEL is None:
        raise RuntimeError("worker pool was not initialized with a compiled plan")
    t0 = time.perf_counter()
    x = _worker_view(task["x_name"], task["x_shape"], task["dtype"])
    shard: Shard = task["shard"]
    with collect_counters() as oc, no_grad():
        out = _WORKER_MODEL(Tensor(np.array(x[shard.start : shard.stop]))).data
    return {
        "shard": shard,
        "out": out,
        "counters": oc.as_dict(include_derived=False),
        "wall_time_s": time.perf_counter() - t0,
        "pid": os.getpid(),
    }


# ---------------------------------------------------------------------------
# Pool management (parent side)
# ---------------------------------------------------------------------------

#: (workers, plan digest or None) -> persistent executor
_POOLS: Dict[Tuple[int, Optional[str]], ProcessPoolExecutor] = {}

#: start methods tried in order; fork is excluded (unsafe under threads)
_START_METHODS = ("forkserver", "spawn")


def _make_pool(workers: int, model_blob: Optional[bytes]) -> ProcessPoolExecutor:
    last_err: Optional[BaseException] = None
    for method in _START_METHODS:
        try:
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=get_context(method),
                initializer=_init_worker,
                initargs=(model_blob,),
            )
            # Surface start-method failures now, not at first submit.
            pool.submit(os.getpid).result(timeout=120)
            return pool
        except Exception as exc:  # noqa: BLE001 - any failure → next method
            last_err = exc
    raise RuntimeError(f"could not start a worker pool: {last_err!r}")


def get_executor(
    workers: int,
    model_blob: Optional[bytes] = None,
    plan_digest: Optional[str] = None,
) -> ProcessPoolExecutor:
    """The persistent pool for ``workers`` (created on first use).

    ``model_blob``/``plan_digest`` select a full-plan pool whose
    workers unpickled the compiled model once at startup; kernel-level
    pools (no plan) are shared across all fused layers.
    """
    key = (int(workers), plan_digest)
    pool = _POOLS.get(key)
    if pool is None:
        pool = _make_pool(int(workers), model_blob)
        _POOLS[key] = pool
    return pool


def shutdown_pools() -> None:
    """Stop every persistent pool and free all shared arenas (tests)."""
    for pool in _POOLS.values():
        pool.shutdown(wait=True, cancel_futures=True)
    _POOLS.clear()
    _ARENAS.close()


atexit.register(shutdown_pools)


def _telemetry_submit(pool_label: str, shards: int, workers: int) -> None:
    """Record queue depth + pool saturation at a shard-submit site.

    One ``enabled`` check when telemetry is off — the same contract as
    the tracer.  ``parallel.queue_depth`` is the number of shards just
    enqueued (zeroed again when the results are absorbed), and
    ``parallel.pool_saturation`` is shards per worker: sustained > 1
    means the pool is the bottleneck; < 1 means workers sit idle.
    """
    from repro.obs.telemetry.registry import get_telemetry

    telemetry = get_telemetry()
    if not telemetry.enabled:
        return
    telemetry.gauge("parallel.queue_depth", "shards queued on the worker pool").set(
        shards, pool=pool_label
    )
    telemetry.gauge(
        "parallel.pool_saturation", "queued shards per pool worker"
    ).set(shards / max(workers, 1), pool=pool_label)


def _absorb_shard_results(results: Sequence[Dict[str, Any]], label: str) -> None:
    """Merge worker counters + re-emit per-shard spans in the parent.

    Each worker measured its shard's wall time and counters locally;
    here they become first-class children of the enclosing
    ``parallel.*`` span — real spans (via :meth:`Tracer.record_span`),
    not just instant markers, so the attribution engine's coverage
    metric sees sharded work exactly like in-process work, and the
    worker's measured counters ride along as span attrs for the
    roofline join.  With telemetry enabled, every shard also lands in
    the ``parallel.shard_latency_ms`` histogram and the per-worker
    ``parallel.worker_shards_total`` counter, and the pool's queue
    depth drops back to zero.
    """
    from repro.obs.metrics import OpCounters, get_recorder
    from repro.obs.telemetry.registry import get_telemetry
    from repro.obs.tracer import get_tracer

    recorder = get_recorder()
    tracer = get_tracer()
    telemetry = get_telemetry()
    shard_hist = worker_ctr = None
    if telemetry.enabled:
        shard_hist = telemetry.histogram(
            "parallel.shard_latency_ms", "per-shard wall time in the worker"
        )
        worker_ctr = telemetry.counter(
            "parallel.worker_shards_total", "shards completed per worker process"
        )
        telemetry.gauge("parallel.queue_depth", "shards queued on the worker pool").set(
            0, pool=label
        )
    for res in results:
        counts = res.get("counters") or {}
        if recorder.enabled and counts:
            recorder.record(**OpCounters.from_dict(counts).as_dict(include_derived=False))
        shard: Shard = res["shard"]
        attrs: Dict[str, Any] = {
            "axis": shard.axis,
            "start": shard.start,
            "stop": shard.stop,
            "wall_time_s": res["wall_time_s"],
            "pid": res["pid"],
        }
        nonzero = {k: v for k, v in counts.items() if v}
        if nonzero:
            attrs["counters"] = nonzero
        tracer.record_span(
            f"parallel.shard.{label}",
            dur_us=res["wall_time_s"] * 1e6,
            category="parallel",
            **attrs,
        )
        if shard_hist is not None:
            shard_hist.observe(res["wall_time_s"] * 1e3, pool=label)
            worker_ctr.inc(pool=label, pid=res["pid"])


# ---------------------------------------------------------------------------
# Parallel fused kernel (kernel-level entry point)
# ---------------------------------------------------------------------------

def _fused_out_shape(
    x_shape: Tuple[int, ...],
    w_shape: Tuple[int, ...],
    pool: int,
    stride: int,
    padding: int,
) -> Tuple[int, int, int, int]:
    n, _, h, w = x_shape
    m, _, k, _ = w_shape
    ha, wa = h + 2 * padding - k + 1, w + 2 * padding - k + 1
    po = (ha - pool) // stride + 1
    qo = (wa - pool) // stride + 1
    return n, m, po, qo


def _execute_sharded(
    spec_name: str,
    sc: Any,
    serial_kernel: Any,
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    padding: int,
    activation: str,
    workers: int,
) -> np.ndarray:
    """Shard one fused kernel call across the worker pool.

    Each shard runs the same lowered kernel on a disjoint slice;
    results match the serial kernel within float round-off (see the
    module doc).  Falls back to ``serial_kernel`` when ``workers <= 1``
    or only one shard would be produced.
    """
    from repro.obs.tracer import get_tracer

    x = np.ascontiguousarray(x)
    weight = np.ascontiguousarray(weight)
    shards = plan_shards(x.shape[0], weight.shape[0], workers)
    if workers <= 1 or len(shards) <= 1:
        return serial_kernel.run_nchw(
            x, weight, bias, padding=padding, activation=activation
        )

    out_shape = _fused_out_shape(x.shape, weight.shape, sc.pool, sc.stride, padding)
    # The arena dtype matches the kernel's arithmetic width, so the
    # assembled output dtype equals the serial kernel's output dtype.
    dtype = np.dtype(np.float32 if getattr(sc, "bits", 64) == 32 else np.float64)
    x = x.astype(dtype, copy=False)
    weight = weight.astype(dtype, copy=False)
    bias = None if bias is None else np.ascontiguousarray(bias).astype(dtype, copy=False)
    xs = _ARENAS.acquire(x.nbytes)
    ws = _ARENAS.acquire(weight.nbytes)
    bs = _ARENAS.acquire(bias.nbytes) if bias is not None else None
    os_ = _ARENAS.acquire(int(np.prod(out_shape, dtype=np.int64)) * dtype.itemsize)
    try:
        xs.put(x)
        ws.put(weight)
        if bias is not None:
            bs.put(bias)
        task_base = {
            "x_name": xs.name,
            "x_shape": tuple(x.shape),
            "w_name": ws.name,
            "w_shape": tuple(weight.shape),
            "b_name": None if bias is None else bs.name,
            "b_shape": None if bias is None else tuple(bias.shape),
            "out_name": os_.name,
            "out_shape": out_shape,
            "dtype": dtype.str,
            "padding": padding,
            "activation": activation,
            "spec_name": spec_name,
            "shape_class": sc,
        }
        pool_exec = get_executor(workers)
        _telemetry_submit("kernel", len(shards), workers)
        with get_tracer().span(
            "parallel.fused_conv_pool",
            category="parallel",
            workers=workers,
            shards=len(shards),
            axis=shards[0].axis,
        ):
            futures = [
                pool_exec.submit(_run_kernel_shard, {**task_base, "shard": s})
                for s in shards
            ]
            results = [f.result() for f in futures]
            _absorb_shard_results(results, "kernel")
            out = np.array(os_.view(out_shape, dtype))  # copy out of the arena
    finally:
        _ARENAS.release(xs)
        _ARENAS.release(ws)
        if bs is not None:
            _ARENAS.release(bs)
        _ARENAS.release(os_)
    return out


def parallel_fused_conv_pool(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    *,
    pool: int = 2,
    pool_stride: Optional[int] = None,
    padding: int = 0,
    activation: str = "relu",
    workers: int = 2,
    bits: int = 64,
) -> np.ndarray:
    """Registry-selected fused conv-pool, sharded across the pool.

    The kernel-level entry point: selects the lowered kernel for the
    call's shape class exactly as the compiler would, then executes it
    via :func:`_execute_sharded` (serial fallback included).
    """
    from repro.core.kernels import KERNEL_REGISTRY, ShapeClass

    stride = pool if pool_stride is None else pool_stride
    sc = ShapeClass(
        kernel=np.asarray(weight).shape[-1],
        pool=pool,
        stride=stride,
        bits=bits,
        kind="float",
    )
    spec = KERNEL_REGISTRY.select(sc)
    return _execute_sharded(
        spec.name, sc, spec.make(sc), x, weight, bias, padding, activation, workers
    )


def parallel_fused_conv_pool_int(
    x_q: Any,
    w_q: Any,
    bias: Optional[np.ndarray] = None,
    *,
    pool: int = 2,
    apply_relu: bool = True,
    acc_bits: int = 32,
    out_bits: int = 0,
    out_amax: Optional[float] = None,
    workers: int = 2,
) -> np.ndarray:
    """Batched fixed-point fused conv-pool, sharded over images.

    ``x_q`` is a :class:`~repro.core.fixedpoint.QuantizedTensor` whose
    values are batched ``(N, C, H, W)``; ``w_q`` holds the quantized
    ``(M, C, K, K)`` weights.  Integer accumulation is associative, so
    the result is **bit-identical** to a serial per-image sweep of
    :func:`~repro.core.fixedpoint.fused_conv_pool_int` — overflow or
    clip accounting per image included.  Returns ``(N, M, PO, QO)``.
    """
    from repro.core.fixedpoint import fused_conv_pool_int
    from repro.obs.tracer import get_tracer

    xv = np.ascontiguousarray(x_q.values).astype(np.int64, copy=False)
    wv = np.ascontiguousarray(w_q.values).astype(np.int64, copy=False)
    if xv.ndim != 4:
        raise ValueError(f"expected batched (N, C, H, W) values, got {xv.shape}")
    n = xv.shape[0]
    k, p = wv.shape[-1], pool
    ha = xv.shape[-2] - k + 1
    po = (ha - p) // p + 1
    out_shape = (n, wv.shape[0], po, po)
    shards = [s for s in plan_shards(n, 0, workers) if s.size]

    def _serial() -> np.ndarray:
        from repro.core.fixedpoint import QuantizedTensor

        return np.stack(
            [
                fused_conv_pool_int(
                    QuantizedTensor(xv[i], x_q.scale, x_q.bits),
                    w_q,
                    bias,
                    pool=pool,
                    apply_relu=apply_relu,
                    acc_bits=acc_bits,
                    out_bits=out_bits,
                    out_amax=out_amax,
                )
                for i in range(n)
            ]
        )

    if workers <= 1 or len(shards) <= 1 or shards[0].axis != "images":
        return _serial()

    bias_d = None if bias is None else np.ascontiguousarray(bias, dtype=np.float64)
    xs = _ARENAS.acquire(xv.nbytes)
    ws = _ARENAS.acquire(wv.nbytes)
    bs = _ARENAS.acquire(bias_d.nbytes) if bias_d is not None else None
    os_ = _ARENAS.acquire(int(np.prod(out_shape, dtype=np.int64)) * 8)
    try:
        xs.put(xv)
        ws.put(wv)
        if bias_d is not None:
            bs.put(bias_d)
        task_base = {
            "x_name": xs.name,
            "x_shape": tuple(xv.shape),
            "w_name": ws.name,
            "w_shape": tuple(wv.shape),
            "b_name": None if bias_d is None else bs.name,
            "b_shape": None if bias_d is None else tuple(bias_d.shape),
            "out_name": os_.name,
            "out_shape": out_shape,
            "dtype": np.dtype(np.int64).str,
            "x_scale": x_q.scale,
            "x_bits": x_q.bits,
            "w_scale": w_q.scale,
            "w_bits": w_q.bits,
            "pool": pool,
            "apply_relu": apply_relu,
            "acc_bits": acc_bits,
            "out_bits": out_bits,
            "out_amax": out_amax,
        }
        pool_exec = get_executor(workers)
        _telemetry_submit("int", len(shards), workers)
        with get_tracer().span(
            "parallel.fused_conv_pool_int",
            category="parallel",
            workers=workers,
            shards=len(shards),
        ):
            futures = [
                pool_exec.submit(_run_int_shard, {**task_base, "shard": s})
                for s in shards
            ]
            results = [f.result() for f in futures]
            _absorb_shard_results(results, "int")
            out = np.array(os_.view(out_shape, np.float64))
    finally:
        _ARENAS.release(xs)
        _ARENAS.release(ws)
        if bs is not None:
            _ARENAS.release(bs)
        _ARENAS.release(os_)
    return out


class ParallelKernel:
    """A lowered kernel wrapped for sharded execution.

    Attached by :class:`repro.compiler.parallelize.ParallelizePass` in
    place of the serial kernel: ``run_nchw`` shards the call across
    the persistent pool and assembles the result, falling back to the
    wrapped serial kernel for degenerate shard plans.  Exposes the
    inner kernel's ``shape_class`` so plan introspection still works.
    """

    layout = "nchw"

    def __init__(self, inner: Any, spec_name: str, workers: int) -> None:
        self.inner = inner
        self.spec_name = spec_name
        self.workers = max(1, int(workers))
        self.shape_class = inner.shape_class
        self.name = f"parallel[{spec_name},workers={self.workers}]"

    def run_nchw(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray] = None,
        *,
        padding: int = 0,
        activation: str = "relu",
    ) -> np.ndarray:
        return _execute_sharded(
            self.spec_name,
            self.shape_class,
            self.inner,
            x,
            weight,
            bias,
            padding,
            activation,
            self.workers,
        )

    __call__ = run_nchw

    def __repr__(self) -> str:
        return f"<ParallelKernel {self.spec_name} workers={self.workers}>"


# ---------------------------------------------------------------------------
# Parallel full-plan execution
# ---------------------------------------------------------------------------

def _pickle_with_serial_kernels(model: Any) -> bytes:
    """Pickle ``model`` with any :class:`ParallelKernel` bindings unwrapped.

    Swaps each wrapped kernel back to its serial inner kernel for the
    duration of the pickle and restores the wrapper afterwards, so the
    in-process model keeps sharding per-layer while the worker-side
    copy never spawns pools of its own.
    """
    swapped = []
    named = getattr(model, "named_modules", None)
    if callable(named):
        for _, mod in named():
            kern = getattr(mod, "kernel", None)
            if isinstance(kern, ParallelKernel):
                swapped.append((mod, kern))
                mod.attach_kernel(kern.inner)
    try:
        return pickle.dumps(model)
    finally:
        for mod, kern in swapped:
            mod.attach_kernel(kern)


class ParallelPlanExecutor:
    """Run a compiled model's inference across the worker pool.

    The model is pickled *once* here and unpickled *once* per worker at
    pool startup — per-call traffic is one shared-memory input segment
    plus per-shard output arrays.  Batches smaller than the worker
    count run serially in-process (model outputs couple all channels,
    so only the batch axis shards).

    A model compiled with :class:`ParallelizePass` carries
    :class:`ParallelKernel` bindings; the shipped plan unwraps them to
    their serial kernels (workers already own a whole-batch shard, and
    nested worker pools inside a worker would oversubscribe or wedge a
    small host).  The caller's model object is left untouched.
    """

    def __init__(self, model: Any, workers: int) -> None:
        import hashlib

        self.model = model
        self.workers = max(1, int(workers))
        self._blob = _pickle_with_serial_kernels(model)
        self.plan_digest = hashlib.sha256(self._blob).hexdigest()[:16]

    def _serial(self, x: np.ndarray) -> np.ndarray:
        from repro.nn.tensor import Tensor, no_grad

        with no_grad():
            return self.model(Tensor(x)).data

    def run(self, x: np.ndarray) -> np.ndarray:
        """Inference on ``x`` (N, C, H, W).

        Matches serial execution within float round-off (~1e-15 —
        BLAS blocking inside dense layers depends on the batch size,
        so per-shard GEMMs associate differently than one full-batch
        GEMM); the fused conv-pool layers themselves are exact.
        """
        from repro.obs.tracer import get_tracer

        x = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
        shards = [s for s in plan_shards(x.shape[0], 0, self.workers) if s.size]
        if self.workers <= 1 or len(shards) <= 1 or shards[0].axis != "images":
            return self._serial(x)
        pool = get_executor(self.workers, self._blob, self.plan_digest)
        arena = _ARENAS.acquire(x.nbytes)
        try:
            arena.put(x)
            task_base = {
                "x_name": arena.name,
                "x_shape": tuple(x.shape),
                "dtype": np.dtype(np.float64).str,
            }
            _telemetry_submit("plan", len(shards), self.workers)
            with get_tracer().span(
                "parallel.plan",
                category="parallel",
                workers=self.workers,
                shards=len(shards),
            ):
                futures = [
                    pool.submit(_run_plan_shard, {**task_base, "shard": s})
                    for s in shards
                ]
                results = [f.result() for f in futures]
                _absorb_shard_results(results, "plan")
                out = np.concatenate(
                    [r["out"] for r in sorted(results, key=lambda r: r["shard"].start)],
                    axis=0,
                )
        finally:
            _ARENAS.release(arena)
        return out

    def __repr__(self) -> str:
        return f"<ParallelPlanExecutor workers={self.workers} plan={self.plan_digest}>"
