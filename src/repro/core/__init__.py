"""repro.core — MLCNN's cross-layer cooperative optimization.

This package implements the paper's primary contribution:

* :mod:`repro.core.opcount` — analytical operation-count models: RME
  multiplication elimination, LAR/GAR addition-reuse rates (Eqs. 1-7,
  Tables II-VI), and whole-layer multiplication/addition budgets.
* :mod:`repro.core.fusion` — the fused convolution-pooling kernel
  (Algorithm 1): vectorized execution and an instrumented reference
  executor that counts every addition/multiplication under configurable
  reuse (RME / LAR / row- and column-GAR).
* :mod:`repro.core.kernels` — the lowering targets: fully vectorized
  fused-kernel implementations (prefix-sum box sum, gather + GEMM,
  fp32 NHWC specialization, exact int64 path) and the shape-class
  registry the compiler's ``lower`` pass selects from.
* :mod:`repro.core.transform` — network-level fusion: rewrite a
  reordered model so fusable blocks execute the fused kernel.
* :mod:`repro.core.quantize` — DoReFa-style k-bit quantization
  (Eqs. 8-9) used by the quantized-MLCNN experiments.
"""

from repro.core.opcount import (
    rme_multiplication_reduction,
    lar_additions_without,
    lar_additions_with,
    lar_reduction_rate,
    gar_row_outputs,
    gar_additions_without,
    gar_additions_with,
    gar_reduction_rate,
    combined_reduction_limit,
    LayerOps,
    dcnn_layer_ops,
    mlcnn_layer_ops,
    network_ops,
)
from repro.core.fusion import (
    box_sum,
    fused_conv_pool,
    FusedConvPool,
    OpCounter,
    fused_conv_pool_counted,
    dense_conv_pool_counted,
)
from repro.core.transform import fuse_network, fused_blocks, prepare_mlcnn
from repro.core.quantize import (
    quantize_k,
    quantize_weights,
    quantize_activations,
    QuantConfig,
    quantize_model,
    QuantizedConvBlock,
)
from repro.core.prune import (
    magnitude_prune,
    capture_masks,
    restore_masks,
    sparse_layer_multiplications,
    combined_reduction,
    SparsityReport,
)
from repro.core.fixedpoint import (
    QuantizedTensor,
    quantize_tensor,
    fused_conv_pool_int,
    int_path_error_bound,
)
from repro.core import kernels
from repro.core.kernels import KERNEL_REGISTRY, KernelRegistry, KernelSpec, ShapeClass
from repro.core.parallel import (
    ParallelKernel,
    ParallelPlanExecutor,
    available_workers,
    parallel_fused_conv_pool,
    parallel_fused_conv_pool_int,
    plan_shards,
    shutdown_pools,
)

__all__ = [
    "rme_multiplication_reduction",
    "lar_additions_without",
    "lar_additions_with",
    "lar_reduction_rate",
    "gar_row_outputs",
    "gar_additions_without",
    "gar_additions_with",
    "gar_reduction_rate",
    "combined_reduction_limit",
    "LayerOps",
    "dcnn_layer_ops",
    "mlcnn_layer_ops",
    "network_ops",
    "box_sum",
    "fused_conv_pool",
    "FusedConvPool",
    "OpCounter",
    "fused_conv_pool_counted",
    "dense_conv_pool_counted",
    "kernels",
    "ShapeClass",
    "KernelSpec",
    "KernelRegistry",
    "KERNEL_REGISTRY",
    "ParallelKernel",
    "ParallelPlanExecutor",
    "available_workers",
    "parallel_fused_conv_pool",
    "parallel_fused_conv_pool_int",
    "plan_shards",
    "shutdown_pools",
    "fuse_network",
    "fused_blocks",
    "prepare_mlcnn",
    "quantize_k",
    "quantize_weights",
    "quantize_activations",
    "QuantConfig",
    "quantize_model",
    "QuantizedConvBlock",
    "QuantizedTensor",
    "quantize_tensor",
    "fused_conv_pool_int",
    "int_path_error_bound",
    "magnitude_prune",
    "capture_masks",
    "restore_masks",
    "sparse_layer_multiplications",
    "combined_reduction",
    "SparsityReport",
]
