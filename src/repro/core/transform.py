"""Network-level fusion: rewrite reordered models to the fused kernel.

:func:`fuse_network` walks the module tree and replaces every fusable
:class:`~repro.models.blocks.ConvBlock` with a
:class:`~repro.core.fusion.FusedConvPool` that *shares* its parameters.
The rewrite is semantics-preserving (same outputs up to fp association)
— the property tests in ``tests/core/test_transform.py`` assert it.

Blocks that are not fusable (max pooling, original ReLU+AP order,
strided convs, batch-norm between conv and pool) are left untouched;
run :func:`repro.models.reorder.reorder_activation_pooling` and
``set_pooling(model, "avg")`` first to maximize coverage, as the paper
does.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.fusion import FusedConvPool
from repro.models.blocks import ConvBlock
from repro.nn.layers import Module


def _replace_children(
    module: Module,
    replaced: List[Tuple[str, FusedConvPool]],
    prefix: str,
    overlap: bool = False,
) -> None:
    for name, child in list(module._modules.items()):
        path = f"{prefix}{name}"
        if (
            isinstance(child, ConvBlock)
            and child.pool is not None
            and child.is_fusable(allow_overlap=overlap)
            and child.bn is None
            and child.conv.padding[0] == child.conv.padding[1]
        ):
            fused = FusedConvPool(child)
            module._modules[name] = fused
            object.__setattr__(module, name, fused)
            replaced.append((path, fused))
        else:
            _replace_children(child, replaced, path + ".", overlap)


def fuse_network(
    model: Module, strict: bool = True, overlap: bool = False
) -> Tuple[Module, List[Tuple[str, FusedConvPool]]]:
    """Fuse every eligible conv-pool block in ``model`` (in place).

    Returns ``(model, replaced)`` where ``replaced`` lists the module
    paths that now execute the fused kernel.  With ``strict=True`` (the
    default) raises if nothing was fusable, which usually means the
    model still has the original ReLU+AP order or max pooling; with
    ``strict=False`` an empty ``replaced`` list is returned instead, so
    pipelines compose over models with no fusable stages (e.g.
    DenseNet-style 1x1-output stages) without try/except glue.
    ``overlap=True`` additionally fuses overlapping average pools
    (``stride != kernel``) — those layers lower to the strided kernel
    class (:mod:`repro.core.kernels.strided`).
    """
    replaced: List[Tuple[str, FusedConvPool]] = []
    _replace_children(model, replaced, "", overlap)
    if not replaced and strict:
        raise ValueError(
            "no fusable conv-pool blocks found; reorder the model "
            "(reorder_activation_pooling) and use average pooling first "
            "(or pass strict=False to tolerate fully-unfusable models)"
        )
    return model, replaced


def fused_blocks(model: Module) -> List[FusedConvPool]:
    """All fused blocks currently in ``model``."""
    return [m for _, m in model.named_modules() if isinstance(m, FusedConvPool)]


def prepare_mlcnn(model: Module, quantize_bits: int = 0) -> Module:
    """Apply the full MLCNN preparation pipeline in one call.

    1. switch every pooling layer to average pooling (Section III.B);
    2. reorder activation and pooling (``Conv -> AvgPool -> ReLU``);
    3. fuse every eligible conv-pool block (RME + LAR + GAR);
    4. optionally wrap remaining convolution blocks for k-bit DoReFa
       execution (``quantize_bits``; 0 disables).

    Note the changed-function caveat: for average pooling the reorder
    changes outputs slightly (Jensen), so a *trained* original model
    should be fine-tuned after preparation; a model *trained in the
    reordered form* is unchanged by fusion.

    This is a thin shim over the canonical
    :func:`repro.compiler.mlcnn_pipeline` (validation and plan caching
    disabled, matching the historical behaviour exactly); build the
    pipeline directly to get per-pass validation and a
    :class:`~repro.compiler.CompileReport`.
    """
    from repro.compiler import CompileContext, mlcnn_pipeline

    ctx = CompileContext(quant_bits=quantize_bits, validate=False, use_cache=False)
    model, _report = mlcnn_pipeline(bits=quantize_bits).run(model, ctx)
    return model
