"""DoReFa-style k-bit quantization (Section VII.A, Eqs. 8-9).

The paper combines MLCNN with input/weight quantization adapted from
DoReFa-Net using a straight-through estimator (STE):

.. math::

    \\mathrm{quantize}_k(r_i) = \\frac{1}{2^k - 1}
        \\operatorname{round}\\big((2^k - 1)\\, r_i\\big)

Weights are squashed with ``tanh`` to [-1, 1] before quantization
(Eq. 9); activations in [0, 1] use Eq. 8 directly.  The STE passes
gradients through the rounding unchanged, so quantized models remain
trainable with the same optimizer.

When a :class:`repro.obs.numerics.NumericsCollector` is enabled, the
quantizers report health events: the activation clip rate (fraction of
values outside [0, 1] before Eq. 8), the activation full-scale
saturation rate (fraction rounding to exactly 1.0) and the weight
saturation rate (fraction landing on ±1).  Saturation rates rise as
``k`` shrinks and are the per-layer early-warning signal for the
quantization accuracy cliff (see EXPERIMENTS.md).  Disabled, the cost
is one truthiness check per call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.models.blocks import ConvBlock
from repro.nn import functional as F
from repro.nn.layers import Module
from repro.nn.tensor import Tensor, make_node, send_grad
from repro.obs.numerics import _ACTIVE, record_quant_event


def quantize_k(r: np.ndarray, k: int) -> np.ndarray:
    """Eq. (8): quantize values in [0, 1] to ``k`` bits (NumPy arrays)."""
    if k < 1:
        raise ValueError(f"bit width must be >= 1, got {k}")
    if k >= 32:
        return np.asarray(r, dtype=np.float64)
    levels = float(2 ** k - 1)
    return np.round(np.asarray(r) * levels) / levels


def quantize_weights(w: np.ndarray, k: int) -> np.ndarray:
    """Eq. (9): tanh-rescaled weight quantization to [-1, 1]."""
    if k >= 32:
        return np.asarray(w, dtype=np.float64)
    t = np.tanh(np.asarray(w))
    denom = 2.0 * np.abs(t).max() + 1e-12
    q = 2.0 * quantize_k(t / denom + 0.5, k) - 1.0
    if _ACTIVE:
        record_quant_event(
            "dorefa.weight_sat", int(np.count_nonzero(np.abs(q) >= 1.0)), q.size
        )
    return q


def quantize_activations(x: np.ndarray, k: int) -> np.ndarray:
    """Eq. (8) on post-ReLU activations, clipped to [0, 1] first."""
    if k >= 32:
        return np.asarray(x, dtype=np.float64)
    x = np.asarray(x)
    q = quantize_k(np.clip(x, 0.0, 1.0), k)
    if _ACTIVE:
        low = int(np.count_nonzero(x < 0.0))
        high = int(np.count_nonzero(x > 1.0))
        record_quant_event("dorefa.act_clip", low + high, x.size, low=low, high=high)
        record_quant_event("dorefa.act_sat", int(np.count_nonzero(q >= 1.0)), q.size)
    return q


def _ste(x: Tensor, quantized: np.ndarray) -> Tensor:
    """Return ``quantized`` as a graph node whose gradient is identity."""
    node = make_node(quantized, (x,))
    if node.requires_grad:
        node._backward = lambda g: send_grad(x, g)
    return node


def ste_quantize_weights(w: Tensor, k: int) -> Tensor:
    """Weight quantization with straight-through gradients."""
    return _ste(w, quantize_weights(w.data, k))


def ste_quantize_activations(x: Tensor, k: int) -> Tensor:
    """Activation quantization with straight-through gradients.

    Matches the paper: Eq. (8) after ReLU (inputs already in [0, inf),
    clipped to [0, 1]); gradients pass through unchanged inside the
    clip range.
    """
    data = quantize_activations(x.data, k)
    node = make_node(data, (x,))
    if node.requires_grad:
        mask = (x.data >= 0.0) & (x.data <= 1.0)
        node._backward = lambda g: send_grad(x, g * mask)
    return node


@dataclass(frozen=True)
class QuantConfig:
    """Bit widths for the quantized MLCNN variants (Table VII)."""

    weight_bits: int = 8
    activation_bits: int = 8

    def __post_init__(self) -> None:
        if self.weight_bits < 1 or self.activation_bits < 1:
            raise ValueError("bit widths must be >= 1")

    @property
    def label(self) -> str:
        if self.weight_bits >= 32:
            return "FP32"
        if self.weight_bits == 16:
            return "FP16"
        return f"INT{self.weight_bits}"


class QuantizedConvBlock(Module):
    """A :class:`ConvBlock` whose weights/inputs are k-bit quantized.

    Wraps (and shares parameters with) an existing block; the forward
    quantizes the weight tensor (Eq. 9) and the incoming activations
    (Eq. 8) before the convolution, then applies the block's pool and
    activation in the block's configured order.
    """

    #: this forward inlines the wrapped block's computation (no child
    #: module forward runs), so numerics instrumentation observes here
    _numerics_leaf = True

    def __init__(self, block: ConvBlock, config: QuantConfig, quantize_input: bool = True) -> None:
        super().__init__()
        self.block = block
        self.config = config
        self.quantize_input = quantize_input

    def forward(self, x: Tensor) -> Tensor:
        blk = self.block
        if self.quantize_input:
            x = ste_quantize_activations(x, self.config.activation_bits)
        w = ste_quantize_weights(blk.conv.weight, self.config.weight_bits)
        y = F.conv2d(x, w, blk.conv.bias, blk.conv.stride, blk.conv.padding)
        if blk.bn is not None:
            y = blk.bn(y)
        if blk.pool is None:
            return blk._act(y)
        if blk.order == "act_pool":
            return blk.pool.apply(blk._act(y))
        return blk._act(blk.pool.apply(y))


def quantize_model(model: Module, config: QuantConfig, quantize_first_input: bool = False) -> Module:
    """Wrap every :class:`ConvBlock` in ``model`` for k-bit execution.

    The first convolution's *input* is left unquantized by default
    (images are standardized, not in [0, 1]), matching common DoReFa
    practice of keeping the first layer higher precision.
    """
    first = True

    def _walk(mod: Module) -> None:
        nonlocal first
        for name, child in list(mod._modules.items()):
            if isinstance(child, ConvBlock):
                q = QuantizedConvBlock(
                    child, config, quantize_input=(quantize_first_input or not first)
                )
                first = False
                mod._modules[name] = q
                object.__setattr__(mod, name, q)
            else:
                _walk(child)

    _walk(model)
    return model
