"""Magnitude pruning (the paper's orthogonality claim, Section VIII).

MLCNN "is complementary to the preceding techniques" — pruning among
them.  This module provides global magnitude pruning over a model's
convolution weights plus sparsity-aware operation counting, so the
combined MLCNN+pruning saving can be quantified: RME removes the p²−1
redundant multiplications per weight, pruning removes the weights
themselves, and the savings compose multiplicatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.models.blocks import ConvBlock
from repro.models.specs import LayerSpec
from repro.nn.layers import Conv2d, Module


@dataclass(frozen=True)
class SparsityReport:
    """Per-model pruning outcome."""

    total_weights: int
    pruned_weights: int
    per_layer: Dict[str, float]

    @property
    def sparsity(self) -> float:
        return self.pruned_weights / self.total_weights if self.total_weights else 0.0


def magnitude_prune(model: Module, sparsity: float) -> SparsityReport:
    """Zero the globally smallest-magnitude fraction of conv weights.

    Operates in place; biases and non-conv parameters are untouched.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    convs: List[Tuple[str, Conv2d]] = [
        (name, mod) for name, mod in model.named_modules() if isinstance(mod, Conv2d)
    ]
    if not convs:
        raise ValueError("model has no convolution layers to prune")
    all_mags = np.concatenate([np.abs(c.weight.data).ravel() for _, c in convs])
    if sparsity == 0.0:
        return SparsityReport(all_mags.size, 0, {n: 0.0 for n, _ in convs})
    threshold = np.quantile(all_mags, sparsity)
    pruned = 0
    per_layer: Dict[str, float] = {}
    for name, conv in convs:
        mask = np.abs(conv.weight.data) <= threshold
        conv.weight.data[mask] = 0.0
        pruned += int(mask.sum())
        per_layer[name] = float(mask.mean())
    return SparsityReport(int(all_mags.size), pruned, per_layer)


def capture_masks(model: Module) -> Dict[str, np.ndarray]:
    """Snapshot the zero-pattern of every conv weight tensor."""
    return {
        name: (mod.weight.data == 0.0)
        for name, mod in model.named_modules()
        if isinstance(mod, Conv2d)
    }


def restore_masks(model: Module, masks: Dict[str, np.ndarray]) -> int:
    """Zero the masked weights again (after an optimizer step)."""
    reset = 0
    for name, mod in model.named_modules():
        if isinstance(mod, Conv2d) and name in masks:
            mask = masks[name]
            reset += int((mod.weight.data[mask] != 0).sum())
            mod.weight.data[mask] = 0.0
    return reset


def sparse_layer_multiplications(
    spec: LayerSpec, weight_sparsity: float, fused: bool
) -> float:
    """Expected multiplications with zero weights skipped.

    A zero weight skips its multiplication in every position (weight
    repetition hardware, cf. UCNN [33]); the saving multiplies with
    RME's p² factor when ``fused``.
    """
    if not 0.0 <= weight_sparsity <= 1.0:
        raise ValueError("weight_sparsity must be in [0, 1]")
    from repro.core.opcount import dcnn_layer_ops, mlcnn_layer_ops

    ops = mlcnn_layer_ops(spec) if (fused and spec.is_fusable) else dcnn_layer_ops(spec)
    return ops.multiplications * (1.0 - weight_sparsity)


def combined_reduction(spec: LayerSpec, weight_sparsity: float) -> float:
    """Fraction of baseline multiplications removed by MLCNN+pruning."""
    from repro.core.opcount import dcnn_layer_ops

    base = dcnn_layer_ops(spec).multiplications
    combined = sparse_layer_multiplications(spec, weight_sparsity, fused=True)
    return 1.0 - combined / base
