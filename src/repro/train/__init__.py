"""repro.train — training/evaluation harness used by the accuracy experiments."""

from repro.train.trainer import Trainer, TrainConfig, EpochStats, evaluate

__all__ = ["Trainer", "TrainConfig", "EpochStats", "evaluate"]
