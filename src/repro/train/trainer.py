"""Training loop with top-1/top-5 metrics.

Used by the Fig. 3 / Fig. 4 / Fig. 12 accuracy experiments, which
retrain the same architecture under different layer orderings (original
vs reordered vs all-conv), pooling functions, and quantization levels.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.data.dataset import ArrayDataset, DataLoader
from repro.nn import functional as F
from repro.nn.layers import Module
from repro.nn.optim import Adam, LRSchedule, Optimizer, SGD
from repro.nn.tensor import Tensor, no_grad
from repro.obs.numerics import NumericsCollector
from repro.obs.telemetry.registry import get_telemetry
from repro.obs.tracer import get_tracer

logger = logging.getLogger("repro.train")

#: the one fallback handler this module ever attaches (see
#: :func:`_ensure_train_logging`)
_LOG_HANDLER: Optional[logging.Handler] = None


def _ensure_train_logging() -> None:
    """Give verbose training logs exactly one output, once per process.

    If the application configured logging (handlers on the root logger
    or on ``repro.train``), respect it and do nothing.  Otherwise
    attach a single fallback ``StreamHandler`` and stop propagation —
    guarded by a module-level sentinel so repeated ``fit()`` calls in
    one process (tests, sweeps) never stack handlers or double-emit.
    """
    global _LOG_HANDLER
    if _LOG_HANDLER is not None:
        if _LOG_HANDLER in logger.handlers:
            return
        _LOG_HANDLER = None  # removed externally; re-evaluate
    if logger.handlers or logging.getLogger().handlers:
        return
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    if logger.level == logging.NOTSET:
        logger.setLevel(logging.INFO)
    logger.propagate = False
    _LOG_HANDLER = handler


@dataclass
class TrainConfig:
    """Hyperparameters for :class:`Trainer`."""

    epochs: int = 10
    batch_size: int = 32
    lr: float = 1e-2
    momentum: float = 0.9
    weight_decay: float = 1e-4
    optimizer: str = "sgd"  # "sgd" | "adam"
    seed: int = 0
    #: stop early when validation top-1 has not improved for this many
    #: epochs (0 disables early stopping)
    patience: int = 0
    verbose: bool = False


@dataclass
class EpochStats:
    epoch: int
    train_loss: float
    val_loss: float
    val_top1: float
    val_top5: float
    #: wall time of the whole epoch (train loop + validation), seconds
    wall_s: float = 0.0
    #: training throughput over the train loop only (excludes validation)
    samples_per_sec: float = 0.0


def evaluate(model: Module, dataset: ArrayDataset, batch_size: int = 128):
    """Return (loss, top1, top5) of ``model`` on ``dataset``."""
    model.eval()
    losses: List[float] = []
    logits_all: List[np.ndarray] = []
    labels_all: List[np.ndarray] = []
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    with no_grad():
        for images, labels in loader:
            logits = model(Tensor(images))
            losses.append(F.cross_entropy(logits, labels).item() * len(labels))
            logits_all.append(logits.data)
            labels_all.append(labels)
    logits_np = np.concatenate(logits_all)
    labels_np = np.concatenate(labels_all)
    loss = float(np.sum(losses) / len(dataset))
    top1 = F.accuracy_topk(logits_np, labels_np, k=1)
    top5 = F.accuracy_topk(logits_np, labels_np, k=min(5, logits_np.shape[-1]))
    return loss, top1, top5


class Trainer:
    """Fit a model on a dataset; records per-epoch statistics.

    Pass a :class:`repro.obs.numerics.NumericsCollector` as
    ``numerics`` to watch training health: the collector is enabled for
    the duration of :meth:`fit`, every anomaly is stamped with the
    (epoch, batch) position, and each batch loss runs through the
    NaN/inf watchdog — with policy ``"raise"``, a diverging run stops
    at the first non-finite value, naming the offending layer (when the
    model is instrumented via
    :func:`repro.obs.instrument_model(..., numerics=...)
    <repro.obs.instrument.instrument_model>`) or the loss itself.
    """

    def __init__(
        self,
        model: Module,
        train_set: ArrayDataset,
        val_set: ArrayDataset,
        config: Optional[TrainConfig] = None,
        schedule_factory: Optional[Callable[[Optimizer], LRSchedule]] = None,
        transform: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        numerics: Optional[NumericsCollector] = None,
    ) -> None:
        self.model = model
        self.train_set = train_set
        self.val_set = val_set
        self.transform = transform
        self.numerics = numerics
        self.config = config or TrainConfig()
        cfg = self.config
        if cfg.optimizer == "sgd":
            self.optimizer: Optimizer = SGD(
                model.parameters(),
                lr=cfg.lr,
                momentum=cfg.momentum,
                weight_decay=cfg.weight_decay,
            )
        elif cfg.optimizer == "adam":
            self.optimizer = Adam(model.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay)
        else:
            raise ValueError(f"unknown optimizer {cfg.optimizer!r}")
        self.schedule = schedule_factory(self.optimizer) if schedule_factory else None
        self.history: List[EpochStats] = []
        self.best_top1 = 0.0
        self.best_state = None

    def fit(self) -> List[EpochStats]:
        cfg = self.config
        if cfg.verbose:
            _ensure_train_logging()
        watch = self.numerics
        owns_watch = watch is not None and not watch.enabled
        if owns_watch:
            watch.enable()
        try:
            return self._fit_loop()
        finally:
            if owns_watch:
                watch.disable()

    def _fit_loop(self) -> List[EpochStats]:
        cfg = self.config
        watch = self.numerics
        tracer = get_tracer()
        # Live telemetry: instruments exist only while the process-wide
        # registry is enabled, so the batch loop pays one None check
        # (plus one registry-enabled check per fit) when telemetry is off.
        telemetry = get_telemetry()
        batch_hist = epoch_gauge = None
        if telemetry.enabled:
            # latency includes the data-loader wait (batch-to-batch wall
            # time): a stalled input pipeline is precisely the kind of
            # incident the p99 SLO exists to catch
            batch_hist = telemetry.histogram(
                "train.batch_latency_ms",
                "wall time of one training batch, data loading included",
            )
            thr_gauge = telemetry.gauge(
                "train.samples_per_sec", "training throughput (last epoch)"
            )
            loss_gauge = telemetry.gauge("train.loss", "training loss (last epoch)")
            epoch_gauge = telemetry.gauge("train.epoch", "current epoch index")
            batches_ctr = telemetry.counter("train.batches_total", "batches completed")
            samples_ctr = telemetry.counter("train.samples_total", "samples trained on")
        loader = DataLoader(
            self.train_set,
            batch_size=cfg.batch_size,
            shuffle=True,
            seed=cfg.seed,
            transform=self.transform,
        )
        stale = 0
        with tracer.span("train.fit", category="train", epochs=cfg.epochs) as fit_span:
            for epoch in range(cfg.epochs):
                with tracer.span("train.epoch", category="train", epoch=epoch) as ep_span:
                    epoch_start = time.perf_counter()
                    self.model.train()
                    total_loss = 0.0
                    total_n = 0
                    if epoch_gauge is not None:
                        epoch_gauge.set(epoch)
                        batch_start = time.perf_counter()
                    for batch_idx, (images, labels) in enumerate(loader):
                        if watch is not None:
                            watch.set_context(epoch=epoch, batch=batch_idx)
                        with tracer.span(
                            "train.batch", category="train", samples=len(labels)
                        ):
                            logits = self.model(Tensor(images))
                            loss = F.cross_entropy(logits, labels)
                            self.optimizer.zero_grad()
                            loss.backward()
                            self.optimizer.step()
                        if batch_hist is not None:
                            now = time.perf_counter()
                            batch_hist.observe((now - batch_start) * 1e3)
                            batch_start = now
                            batches_ctr.inc()
                            samples_ctr.inc(len(labels))
                        batch_loss = loss.item()
                        if watch is not None:
                            watch.check_value("train", "loss", batch_loss)
                        total_loss += batch_loss * len(labels)
                        total_n += len(labels)
                    train_wall = time.perf_counter() - epoch_start
                    if self.schedule is not None:
                        self.schedule.step()
                    with tracer.span("train.evaluate", category="train"):
                        val_loss, top1, top5 = evaluate(
                            self.model, self.val_set, cfg.batch_size
                        )
                    stats = EpochStats(
                        epoch,
                        total_loss / max(total_n, 1),
                        val_loss,
                        top1,
                        top5,
                        wall_s=time.perf_counter() - epoch_start,
                        samples_per_sec=total_n / max(train_wall, 1e-12),
                    )
                    self.history.append(stats)
                    ep_span.set(
                        train_loss=stats.train_loss,
                        val_loss=val_loss,
                        val_top1=top1,
                        samples_per_sec=stats.samples_per_sec,
                    )
                    tracer.add("train.samples", total_n)
                    tracer.observe("train.loss", stats.train_loss)
                    tracer.observe("train.val_top1", top1)
                    tracer.observe("train.samples_per_sec", stats.samples_per_sec)
                    if batch_hist is not None:
                        thr_gauge.set(stats.samples_per_sec)
                        loss_gauge.set(stats.train_loss)
                if cfg.verbose:
                    logger.info(
                        "epoch %3d  train_loss %.4f  val_loss %.4f  top1 %.3f  "
                        "top5 %.3f  %.1f samples/s  (%.2fs)",
                        epoch,
                        stats.train_loss,
                        val_loss,
                        top1,
                        top5,
                        stats.samples_per_sec,
                        stats.wall_s,
                    )
                if top1 > self.best_top1:
                    self.best_top1 = top1
                    self.best_state = self.model.state_dict()
                    stale = 0
                else:
                    stale += 1
                    if cfg.patience and stale >= cfg.patience:
                        break
            fit_span.set(epochs_run=len(self.history), best_top1=self.best_top1)
        if self.best_state is not None:
            self.model.load_state_dict(self.best_state)
        return self.history
