"""Table III: LAR addition reduction vs step size — exact reproduction."""

from repro.core import opcount as oc
from repro.experiments import table3_lar_stride
from repro.experiments.analytic import TABLE3_PAPER


def test_table3_lar_stride(benchmark, record_metric):
    report = benchmark(table3_lar_stride)
    report.show()
    for s, expected in TABLE3_PAPER.items():
        assert oc.lar_additions_with(11, s) == expected
        record_metric("table3", "lar_reduction_rate", oc.lar_reduction_rate(11, s), s=s)
    # reduction decreases linearly in S and vanishes at S = K
    assert oc.lar_reduction_rate(11, 11) == 0.0
