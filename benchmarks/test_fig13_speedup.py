"""Fig. 13: per-optimized-layer speedup of MLCNN vs DCNN.

Paper headlines: FP32 ~3.2x, FP16 ~6.2x, INT8 ~12.8x average over the
optimized layers; GoogLeNet's 8x8-pooled stage (C9) peaks near 9.6x at
FP32.  Our model reproduces the ordering and the ~1:2:4 precision
scaling; absolute averages land within ~40%.
"""

import numpy as np

from repro.accel import compare_networks, get_config
from repro.experiments import fig13_speedup
from repro.experiments.accelerator import EVALUATED_MODELS, _fused_layer_metrics
from repro.models import specs


def test_fig13_speedup(benchmark, record_metric):
    report = benchmark.pedantic(fig13_speedup, rounds=1, iterations=1)
    report.show()

    averages = {}
    for cand in ("mlcnn-fp32", "mlcnn-fp16", "mlcnn-int8"):
        vals = []
        for model in EVALUATED_MODELS:
            vals += [m[0] for m in _fused_layer_metrics(model, cand).values()]
        averages[cand] = np.mean(vals)
        record_metric("fig13", "speedup", averages[cand], config=cand)

    # who wins and by roughly what factor
    assert 2.5 <= averages["mlcnn-fp32"] <= 6.0      # paper: 3.2x
    assert 5.0 <= averages["mlcnn-fp16"] <= 12.0     # paper: 6.2x
    assert 10.0 <= averages["mlcnn-int8"] <= 24.0    # paper: 12.8x
    # precision scaling ~1:2:4
    assert 1.7 <= averages["mlcnn-fp16"] / averages["mlcnn-fp32"] <= 2.3
    assert 3.4 <= averages["mlcnn-int8"] / averages["mlcnn-fp32"] <= 4.6


def test_fig13_googlenet_c9_peak(benchmark):
    """The best layer is in GoogLeNet's 8x8-pooled stage 5b (paper: C9,
    9.63x at FP32)."""

    def run():
        cmp = compare_networks(
            specs.get_specs("googlenet"), get_config("dcnn-fp32"), get_config("mlcnn-fp32")
        )
        ls = cmp.layer_speedups()
        return {s.name: ls[s.name] for s in specs.get_specs("googlenet") if s.is_fusable}

    fused = benchmark.pedantic(run, rounds=1, iterations=1)
    best = max(fused, key=fused.get)
    assert best.startswith("5b")
    assert fused[best] > 5.0
    # the 2x2-pooled stages sit near the 4x RME bound
    for name, s in fused.items():
        if name.startswith(("3b", "4e")):
            assert 2.0 <= s <= 4.5, (name, s)
