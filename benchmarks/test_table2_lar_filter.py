"""Table II: LAR addition reduction vs filter size — exact reproduction."""

from repro.core import opcount as oc
from repro.experiments import table2_lar_filter
from repro.experiments.analytic import TABLE2_PAPER


def test_table2_lar_filter(benchmark, record_metric):
    report = benchmark(table2_lar_filter)
    report.show()
    for k, (wo, w, rate) in TABLE2_PAPER.items():
        assert oc.lar_additions_without(k) == wo
        assert oc.lar_additions_with(k) == w
        assert round(100 * oc.lar_reduction_rate(k), 1) == rate
        record_metric("table2", "lar_reduction_rate", oc.lar_reduction_rate(k), k=k)
