"""Eqs. 4-7: asymptotic limits (25% LAR, 63.6% GAR, 75% LAR+GAR, RME)."""

import pytest

from repro.core import opcount as oc
from repro.experiments import equation_limits


def test_equation_limits(benchmark):
    report = benchmark(equation_limits)
    report.show()
    assert oc.lar_reduction_rate(10_000) == pytest.approx(0.25, abs=1e-4)
    assert oc.combined_reduction_rate(10_000) == pytest.approx(0.75, abs=1e-4)
    assert oc.rme_multiplication_reduction(2) == 0.75
    assert oc.rme_multiplication_reduction(8) > 0.98
