"""Ablation (beyond the paper): contribution of each reuse mechanism."""

from repro.core.opcount import dcnn_layer_ops, mlcnn_layer_ops
from repro.experiments import ablation_reuse
from repro.models import specs


def test_ablation_reuse(benchmark, record_metric):
    report = benchmark.pedantic(ablation_reuse, rounds=1, iterations=1)
    report.show()

    for model in ("lenet5", "vgg16", "googlenet", "densenet"):
        fused = specs.fusable_layers(specs.get_specs(model))

        def adds(lar, gar):
            return sum(
                (lambda o: o.additions + o.preprocessing_additions)(
                    mlcnn_layer_ops(s, use_lar=lar, use_gar=gar)
                )
                for s in fused
            )

        # monotone: each mechanism only ever removes additions
        assert adds(True, True) <= adds(True, False) <= adds(False, False)
        assert adds(True, True) <= adds(False, True) <= adds(False, False)
        # and never exceeds the dense baseline
        base = sum(dcnn_layer_ops(s).additions for s in fused)
        assert adds(False, False) <= base
        record_metric(
            "ablation", "add_reduction_lar_gar", 1 - adds(True, True) / base, model=model
        )
        record_metric(
            "ablation", "add_reduction_rme_only", 1 - adds(False, False) / base, model=model
        )
