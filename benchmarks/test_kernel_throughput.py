"""Wall-clock microbenchmarks of the vectorized kernels.

Not a paper figure: measures that the *software* fused kernel is itself
faster than unfused Conv -> AvgPool -> ReLU on this machine (it does a
quarter of the GEMM work), and benchmarks the RTL micro-simulator.
"""

from time import perf_counter

import numpy as np
import pytest

from repro.core.fusion import fused_conv_pool
from repro.nn import functional as F
from repro.nn.tensor import Tensor, no_grad

#: images per run() call below
BATCH = 8


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(BATCH, 32, 32, 32)))
    w = Tensor(rng.normal(size=(64, 32, 3, 3)))
    b = Tensor(rng.normal(size=64))
    return x, w, b


def _samples_per_sec(run, batch: int = BATCH) -> float:
    """Wall-clock throughput of run(), measured independently of the
    pytest-benchmark timer (which --benchmark-disable turns off)."""
    run()  # warm up
    start = perf_counter()
    run()
    return batch / (perf_counter() - start)


def test_bench_unfused_conv_pool(benchmark, workload, record_metric):
    x, w, b = workload

    def run():
        with no_grad():
            return F.relu(F.avg_pool2d(F.conv2d(x, w, b, padding=1), 2)).data

    benchmark(run)
    record_metric("kernel", "unfused_samples_per_sec", _samples_per_sec(run))


def test_bench_fused_conv_pool(benchmark, workload, record_metric):
    x, w, b = workload

    def run():
        with no_grad():
            return fused_conv_pool(x, w, b, pool=2, padding=1).data

    out = benchmark(run)
    record_metric("kernel", "fused_samples_per_sec", _samples_per_sec(run))
    with no_grad():
        ref = F.relu(F.avg_pool2d(F.conv2d(x, w, b, padding=1), 2)).data
    np.testing.assert_allclose(out, ref, atol=1e-9)


def test_bench_rtl_microsim(benchmark, record_metric):
    from repro.accel.rtl import RTLFusedConvPool

    rng = np.random.default_rng(1)
    img = rng.normal(size=(32, 32))
    w = rng.normal(size=(3, 3))
    sim = RTLFusedConvPool(w)
    report = benchmark(sim.run, img)
    assert report.outputs.shape == (15, 15)
    record_metric("kernel", "rtl_images_per_sec", _samples_per_sec(lambda: sim.run(img), batch=1))
