"""Wall-clock microbenchmarks of the vectorized kernels.

Not a paper figure: measures that the *software* fused kernel is itself
faster than unfused Conv -> AvgPool -> ReLU on this machine (it does a
quarter of the GEMM work), and benchmarks the RTL micro-simulator.
"""

import numpy as np
import pytest

from repro.core.fusion import fused_conv_pool
from repro.nn import functional as F
from repro.nn.tensor import Tensor, no_grad


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(8, 32, 32, 32)))
    w = Tensor(rng.normal(size=(64, 32, 3, 3)))
    b = Tensor(rng.normal(size=64))
    return x, w, b


def test_bench_unfused_conv_pool(benchmark, workload):
    x, w, b = workload

    def run():
        with no_grad():
            return F.relu(F.avg_pool2d(F.conv2d(x, w, b, padding=1), 2)).data

    benchmark(run)


def test_bench_fused_conv_pool(benchmark, workload):
    x, w, b = workload

    def run():
        with no_grad():
            return fused_conv_pool(x, w, b, pool=2, padding=1).data

    out = benchmark(run)
    with no_grad():
        ref = F.relu(F.avg_pool2d(F.conv2d(x, w, b, padding=1), 2)).data
    np.testing.assert_allclose(out, ref, atol=1e-9)


def test_bench_rtl_microsim(benchmark):
    from repro.accel.rtl import RTLFusedConvPool

    rng = np.random.default_rng(1)
    img = rng.normal(size=(32, 32))
    w = rng.normal(size=(3, 3))
    report = benchmark(RTLFusedConvPool(w).run, img)
    assert report.outputs.shape == (15, 15)
