"""Wall-clock microbenchmarks of the lowered fused kernels.

Not a paper figure: measures that the *software* fused kernel is itself
faster than unfused Conv -> AvgPool -> ReLU on this machine, and
benchmarks the RTL micro-simulator.

The headline ``kernel.fused_samples_per_sec`` runs the plan-selected
fp32 NHWC kernel — the same object :class:`LowerFusedKernelPass`
attaches for ``bits=32`` — on an NHWC fp32 workload, the layout the
kernel is specialized for.  Two companion metrics keep the other
implementations on the dashboard trend: ``fused_module_samples_per_sec``
(the default f64 vectorized autograd path, NCHW Tensors) and
``fused_reference_samples_per_sec`` (the golden ``impl="reference"``
composition the vectorized kernels are validated against).

The parallel axis measures the worker-pool engine
(:mod:`repro.core.parallel`) at ``workers = {1, 2, nproc}``:
``kernel.parallel_samples_per_sec[workers=N]`` is the sharded
throughput, and ``kernel.parallel_scaling_efficiency[workers=N]`` is
that rate divided by ``N x`` the serial lowered-kernel rate — 1.0 is
perfect linear scaling.  Both gate advisorily (the ``kernel.`` policy):
the curve depends entirely on the host's core count, and on a 1-core
CI runner the efficiency at ``workers=2`` legitimately sits near 0.5.
"""

from time import perf_counter

import numpy as np
import pytest

from repro.core.fusion import fused_conv_pool
from repro.core.kernels import KERNEL_REGISTRY, ShapeClass
from repro.core.parallel import available_workers, parallel_fused_conv_pool
from repro.nn import functional as F
from repro.nn.tensor import Tensor, no_grad

#: images per run() call in the f64 Tensor-path benches
BATCH = 8
#: images per run() call in the lowered-kernel bench (amortizes the GEMM setup)
KERNEL_BATCH = 16
#: worker counts for the parallel scaling curve (deduplicated: on a
#: 2-core host this is {1, 2}, on a 1-core host {1, 2} as well so the
#: curve always has a multi-worker point to trend)
WORKER_COUNTS = sorted({1, 2, available_workers()})


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(BATCH, 32, 32, 32)))
    w = Tensor(rng.normal(size=(64, 32, 3, 3)))
    b = Tensor(rng.normal(size=64))
    return x, w, b


def _samples_per_sec(run, batch: int = BATCH, repeats: int = 1) -> float:
    """Wall-clock throughput of run(), measured independently of the
    pytest-benchmark timer (which --benchmark-disable turns off).
    ``repeats > 1`` reports the best of that many timed runs — the
    shape-class kernels cache their workspaces, so the steady state is
    the honest number."""
    run()  # warm up
    best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        run()
        best = min(best, perf_counter() - start)
    return batch / best


def test_bench_unfused_conv_pool(benchmark, workload, record_metric):
    x, w, b = workload

    def run():
        with no_grad():
            return F.relu(F.avg_pool2d(F.conv2d(x, w, b, padding=1), 2)).data

    benchmark(run)
    record_metric("kernel", "unfused_samples_per_sec", _samples_per_sec(run, repeats=3))


def test_bench_lowered_f32_kernel(benchmark, workload, record_metric):
    """Headline: the plan-selected fp32 NHWC shape-class kernel."""
    _, w, b = workload
    rng = np.random.default_rng(2)
    xh = np.ascontiguousarray(
        rng.normal(size=(KERNEL_BATCH, 32, 32, 32)).astype(np.float32).transpose(0, 2, 3, 1)
    )
    w32 = w.data.astype(np.float32)
    b32 = b.data.astype(np.float32)
    sc = ShapeClass(kernel=3, pool=2, stride=2, bits=32)
    spec = KERNEL_REGISTRY.select(sc)
    assert spec.name == "fused-f32-nhwc"
    kern = spec.make(sc)

    def run():
        return kern(xh, w32, b32, padding=1)

    out = benchmark(run)
    record_metric(
        "kernel",
        "fused_samples_per_sec",
        _samples_per_sec(run, batch=KERNEL_BATCH, repeats=9),
    )
    # correctness vs the f64 reference composition, NHWC -> NCHW
    with no_grad():
        ref = fused_conv_pool(
            Tensor(np.moveaxis(xh.astype(np.float64), -1, 1)),
            Tensor(w.data), Tensor(b.data), pool=2, padding=1, impl="reference",
        ).data
    np.testing.assert_allclose(np.moveaxis(out, -1, 1), ref, atol=1e-3)


def test_bench_fused_module_path(benchmark, workload, record_metric):
    """The default f64 vectorized path lowering leaves on Tensor forwards."""
    x, w, b = workload

    def run():
        with no_grad():
            return fused_conv_pool(x, w, b, pool=2, padding=1).data

    out = benchmark(run)
    record_metric("kernel", "fused_module_samples_per_sec", _samples_per_sec(run, repeats=5))
    with no_grad():
        ref = F.relu(F.avg_pool2d(F.conv2d(x, w, b, padding=1), 2)).data
    np.testing.assert_allclose(out, ref, atol=1e-9)


def test_bench_fused_reference_impl(benchmark, workload, record_metric):
    """The golden loop-nest composition — the floor the lowered kernels
    are measured against."""
    x, w, b = workload

    def run():
        with no_grad():
            return fused_conv_pool(x, w, b, pool=2, padding=1, impl="reference").data

    benchmark(run)
    record_metric("kernel", "fused_reference_samples_per_sec", _samples_per_sec(run, repeats=5))


@pytest.fixture(scope="module")
def parallel_workload():
    """NCHW f64 workload + the serial lowered-kernel baseline rate."""
    rng = np.random.default_rng(5)
    x = rng.normal(size=(KERNEL_BATCH, 32, 32, 32))
    w = rng.normal(size=(64, 32, 3, 3))
    b = rng.normal(size=64)
    serial_rate = _samples_per_sec(
        lambda: parallel_fused_conv_pool(x, w, b, pool=2, padding=1, workers=1),
        batch=KERNEL_BATCH,
        repeats=5,
    )
    with no_grad():
        ref = fused_conv_pool(Tensor(x), Tensor(w), Tensor(b), pool=2, padding=1).data
    return x, w, b, serial_rate, ref


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_bench_parallel_fused_kernel(benchmark, parallel_workload, record_metric, workers):
    """The worker-pool engine's scaling curve over the fused kernel."""
    if workers > available_workers():
        # Oversubscribing a smaller host produces a point that is pure
        # scheduler noise and pollutes the committed scaling curve —
        # the regression gate additionally downgrades the whole curve
        # to advisory when baseline and host core counts differ.
        pytest.skip(
            f"workers={workers} exceeds this host's {available_workers()} "
            "available worker(s)"
        )
    x, w, b, serial_rate, ref = parallel_workload

    def run():
        return parallel_fused_conv_pool(x, w, b, pool=2, padding=1, workers=workers)

    out = benchmark(run)
    np.testing.assert_allclose(out, ref, atol=1e-9)  # sharded == serial
    rate = _samples_per_sec(run, batch=KERNEL_BATCH, repeats=5)
    record_metric("kernel", "parallel_samples_per_sec", rate, workers=workers)
    if workers > 1:
        record_metric(
            "kernel",
            "parallel_scaling_efficiency",
            rate / (workers * serial_rate),
            workers=workers,
        )


def test_bench_rtl_microsim(benchmark, record_metric):
    from repro.accel.rtl import RTLFusedConvPool

    rng = np.random.default_rng(1)
    img = rng.normal(size=(32, 32))
    w = rng.normal(size=(3, 3))
    sim = RTLFusedConvPool(w)
    report = benchmark(sim.run, img)
    assert report.outputs.shape == (15, 15)
    record_metric("kernel", "rtl_images_per_sec", _samples_per_sec(lambda: sim.run(img), batch=1))
