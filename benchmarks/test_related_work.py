"""Related-work comparison (Sec. VIII) and the pruning orthogonality
extension — MLCNN vs data-movement-only fusion, and MLCNN + sparsity."""

import numpy as np

from repro.experiments import extension_pruning, related_fused_layer


def test_related_fused_layer(benchmark):
    report = benchmark.pedantic(related_fused_layer, rounds=1, iterations=1)
    report.show()
    for row in report.rows:
        fused_layer = float(row[1].rstrip("x"))
        mlcnn_whole = float(row[3].rstrip("x"))
        mlcnn_opt = float(row[4].rstrip("x"))
        # arithmetic elimination beats data-movement-only fusion
        assert mlcnn_whole >= fused_layer
        assert mlcnn_opt > 2.0
        # fused-layer execution is never a slowdown
        assert fused_layer >= 1.0


def test_extension_pruning(benchmark):
    report = benchmark.pedantic(extension_pruning, rounds=1, iterations=1)
    report.show()

    def pct(cell):
        return float(cell.rstrip("%"))

    for row in report.rows:
        mlcnn_only, combined = pct(row[2]), pct(row[4])
        sparsity = pct(row[1])
        # composition is multiplicative: combined = 1 - (1-s)(1-mlcnn)
        expected = 100 * (1 - (1 - sparsity / 100) * (1 - mlcnn_only / 100))
        assert abs(combined - expected) < 0.5
        assert combined >= mlcnn_only
