"""Fig. 3: accuracy of original vs reordered vs All-Conv networks.

Trains the same width-reduced architecture three ways on the synthetic
CIFAR stand-ins (10 and 100 classes).  Paper shape: reordering is
accuracy-neutral; All-Conv trails, especially with 100 classes.
Set REPRO_FULL=1 for the larger budget recorded in EXPERIMENTS.md.
"""

from repro.experiments import fig3_reordering_accuracy


def _pct(cell: str) -> float:
    return float(cell.rstrip("%"))


def test_fig3_reorder_accuracy(once, accuracy_budget):
    report = once(
        fig3_reordering_accuracy,
        models=("lenet5", "vgg16"),
        class_counts=(10,),
        budget=accuracy_budget,
    )
    report.show()
    for row in report.rows:
        original, reordered = _pct(row[2]), _pct(row[3])
        # both clearly above the 10% chance level
        assert original > 20 and reordered > 20, row
        # reordering is accuracy-neutral within the (wide) noise band of
        # the fast budget; the full budget (REPRO_FULL=1) tightens this —
        # and when the variants do differ, the reordered net tends to be
        # the better one, as the paper reports for its larger models
        assert reordered - original > -25, row
