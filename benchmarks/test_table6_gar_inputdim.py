"""Table VI + Eqs. 5-6: GAR vs input dimension — exact reproduction."""

import pytest

from repro.core import opcount as oc
from repro.experiments import table6_gar_inputdim
from repro.experiments.analytic import TABLE6_PAPER


def test_table6_gar_inputdim(benchmark, record_metric):
    report = benchmark(table6_gar_inputdim)
    report.show()
    for d, (wo, w, _rate) in TABLE6_PAPER.items():
        assert oc.gar_additions_without(d, 13) == wo
        assert oc.gar_additions_with(d, 13) == w
        record_metric("table6", "gar_reduction_rate", oc.gar_reduction_rate(d, 13), d=d)


def test_equation5_closed_form(benchmark):
    """Eq. 5: at K=13, adds are 337.5D - 4050 without and 123D - 1047
    with GAR (for even D-K+1)."""

    def check():
        for d in (28, 32, 64, 128, 224):
            assert oc.gar_additions_without(d, 13) == 337.5 * d - 4050
            assert oc.gar_additions_with(d, 13) == 123 * d - 1047
        return True

    assert benchmark(check)


def test_equation6_limit(benchmark, record_metric):
    limit = benchmark(oc.gar_limit_large_input, 13)
    record_metric("table6", "gar_limit_large_input", limit, k=13)
    assert round(100 * limit, 1) == 63.6
