"""Table I: conv-layer and parameter counts of the studied CNNs."""

from repro.experiments import table1_models


def test_table1_models(benchmark):
    report = benchmark.pedantic(table1_models, rounds=1, iterations=1)
    report.show()
    rows = {r[0]: r for r in report.rows}
    # LeNet-5 parameter count matches the paper's 62K
    assert abs(rows["lenet5"][2] - 62_000) < 1_500
    # conv-layer counts match Table I
    assert rows["lenet5"][1] == 3
    assert rows["vgg16"][1] == 13
    assert rows["vgg19"][1] == 16
    assert rows["googlenet"][1] == 57
