"""Table I: conv-layer and parameter counts of the studied CNNs."""

from repro.experiments import table1_models


def test_table1_models(benchmark, record_metric):
    report = benchmark.pedantic(table1_models, rounds=1, iterations=1)
    report.show()
    rows = {r[0]: r for r in report.rows}
    for model in ("lenet5", "vgg16", "vgg19", "googlenet"):
        record_metric("table1", "conv_layers", rows[model][1], model=model)
        record_metric("table1", "params", rows[model][2], model=model)
    # LeNet-5 parameter count matches the paper's 62K
    assert abs(rows["lenet5"][2] - 62_000) < 1_500
    # conv-layer counts match Table I
    assert rows["lenet5"][1] == 3
    assert rows["vgg16"][1] == 13
    assert rows["vgg19"][1] == 16
    assert rows["googlenet"][1] == 57
