"""Operating-point ablations: where MLCNN's advantage lives.

Not paper figures: sweeps DRAM bandwidth and inference batch to locate
the crossover between memory-bound (arithmetic elimination hidden) and
compute-bound (RME's 4x visible) operation — the modelling context for
Fig. 13's absolute numbers.
"""

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.analysis.sweep import speedup_vs_bandwidth, speedup_vs_batch, speedup_vs_pool_size


def test_bandwidth_crossover(benchmark, record_metric):
    def run():
        return speedup_vs_bandwidth((0.5, 1, 2, 4, 8, 16, 32, 64))

    bws, sp = benchmark.pedantic(run, rounds=1, iterations=1)
    rep = ExperimentReport(
        "Ablation", "whole-network VGG-16 MLCNN speedup vs DRAM bandwidth",
        headers=["bytes/cycle", "speedup"],
    )
    for b, s in zip(bws, sp):
        rep.add_row(b, f"{s:.2f}x")
        record_metric("operating", "speedup_vs_bandwidth", s, bytes_per_cycle=b)
    rep.show()
    assert (np.diff(sp) >= -1e-9).all()  # monotone: bandwidth unlocks RME
    assert sp[-1] / sp[0] > 1.3


def test_batch_amortization(benchmark, record_metric):
    def run():
        return speedup_vs_batch((1, 2, 4, 8, 16))

    bs, sp = benchmark.pedantic(run, rounds=1, iterations=1)
    rep = ExperimentReport(
        "Ablation", "whole-network VGG-16 MLCNN speedup vs batch size",
        headers=["batch", "speedup"],
    )
    for b, s in zip(bs, sp):
        rep.add_row(b, f"{s:.2f}x")
        record_metric("operating", "speedup_vs_batch", s, batch=int(b))
    rep.show()
    assert (np.diff(sp) >= -1e-9).all()


def test_pool_size_scaling(benchmark, record_metric):
    def run():
        return speedup_vs_pool_size((2, 3, 4, 6, 8))

    ps, sp = benchmark.pedantic(run, rounds=1, iterations=1)
    rep = ExperimentReport(
        "Ablation", "fused-layer speedup vs pooling window (isolated RME effect)",
        headers=["pool", "speedup", "RME bound (p^2)"],
    )
    for p, s in zip(ps, sp):
        rep.add_row(p, f"{s:.2f}x", int(p) ** 2)
        record_metric("operating", "speedup_vs_pool", s, pool=int(p))
    rep.show()
    assert (np.diff(sp) > 0).all()
    # speedup tracks the arithmetic bound p^2 (slightly above is
    # possible: the DCNN also pays pooling additions and scaling mults)
    for p, s in zip(ps, sp):
        assert s <= p * p * 1.05
