"""Telemetry runtime cost benchmarks.

Three headline numbers for the regression gate (area ``core``):

* ``telemetry.overhead_pct`` — **required**: enabled-vs-disabled
  wall-time delta of a full :class:`~repro.train.Trainer` fit with the
  per-batch latency histogram live.  The contract is "instrument the
  batch loop permanently, pay low single digits at most"; measured ≲1%
  on the reference host, gated ≤ baseline + 2.5 points.
* ``telemetry.p99_batch_ms[model=lenet5]`` — advisory, host-sensitive:
  the streaming p99 batch latency the histogram itself derived during
  the enabled fit (absolute host speed; trend line only).
* ``telemetry.profiler_overhead_pct`` — advisory, host-sensitive: the
  sampling profiler's measured duty cycle over a compiled lenet5
  forward loop at the default 5 ms interval.

Both relative measurements use best-of-N so one scheduler hiccup does
not fail CI.
"""

import time

import numpy as np
import pytest

from repro.data import SyntheticImageConfig, make_synth_cifar, train_val_split
from repro.models import build_model
from repro.obs.telemetry.profiler import SamplingProfiler
from repro.obs.telemetry.registry import get_telemetry
from repro.train import TrainConfig, Trainer

REPEATS = 5


def _fit_once(seed: int = 0) -> None:
    cfg = SyntheticImageConfig(
        num_classes=10, samples_per_class=16, image_size=32, seed=seed
    )
    train_set, val_set = train_val_split(make_synth_cifar(cfg), 0.25, seed=seed)
    model = build_model("lenet5", seed=seed)
    Trainer(
        model, train_set, val_set, TrainConfig(epochs=2, batch_size=16, seed=seed)
    ).fit()


def test_telemetry_enabled_fit_overhead(record_metric):
    """telemetry.overhead_pct (required) + telemetry.p99_batch_ms (advisory)."""
    reg = get_telemetry()
    assert not reg.enabled
    _fit_once()  # warm caches
    # interleave off/on measurements so slow host drift (thermal, noisy
    # CI neighbours) hits both sides equally; compare best-of-N
    base = watched = float("inf")
    snap = None
    try:
        for _ in range(REPEATS):
            reg.disable()
            t0 = time.perf_counter()
            _fit_once()
            base = min(base, time.perf_counter() - t0)
            reg.clear()
            reg.enable()
            t0 = time.perf_counter()
            _fit_once()
            watched = min(watched, time.perf_counter() - t0)
            snap = reg.snapshot()
    finally:
        reg.disable()
        reg.clear()
    overhead_pct = max(0.0, 100.0 * (watched / base - 1.0))
    fam = snap.find("train.batch_latency_ms")
    assert fam is not None and fam["series"], "enabled fit recorded no batches"
    p99 = fam["series"][0]["p99"]
    assert p99 is not None and p99 > 0
    print(
        f"\ntelemetry-on fit: {watched * 1e3:.1f} ms vs {base * 1e3:.1f} ms off "
        f"({overhead_pct:.2f}% overhead), streamed p99 batch {p99:.2f} ms"
    )
    assert overhead_pct <= 5.0, (
        f"telemetry overhead {overhead_pct:.2f}% breaks the low-single-digits "
        "contract"
    )
    record_metric("telemetry", "overhead_pct", overhead_pct)
    record_metric("telemetry", "p99_batch_ms", p99, model="lenet5")


def test_profiler_overhead(record_metric):
    """telemetry.profiler_overhead_pct (advisory): measured duty cycle
    while profiling a compiled lenet5 forward loop."""
    from repro.compiler import CompileContext, mlcnn_pipeline
    from repro.nn.tensor import Tensor, no_grad

    model = build_model("lenet5", seed=0)
    mlcnn_pipeline(bits=0, strict=False).run(model, CompileContext(quant_bits=0))
    model.eval()
    x = np.random.default_rng(0).normal(size=(16, 3, 32, 32))
    with no_grad():
        model(Tensor(x))  # warm
    with SamplingProfiler(interval_s=0.005) as prof:
        deadline = time.perf_counter() + 1.0
        with no_grad():
            while time.perf_counter() < deadline:
                model(Tensor(x))
    assert prof.sample_count > 50
    overhead_pct = 100.0 * prof.overhead_fraction
    top = prof.top_frame()
    print(
        f"\nprofiler: {prof.sample_count} samples, {overhead_pct:.3f}% duty "
        f"cycle, top frame {top}"
    )
    assert overhead_pct < 5.0, f"profiler duty cycle {overhead_pct:.2f}%"
    record_metric("telemetry", "profiler_overhead_pct", overhead_pct)
