"""Fig. 14: percentage of FLOPs reduced by MLCNN per optimized layer.

Paper shapes asserted: 75% multiplication reduction for all 2x2-pooled
layers, ~98% for GoogLeNet's 8x8-pooled stage; LeNet-5 (5x5 kernels)
has the highest addition reduction among the models; DenseNet's 1x1
transitions gain nothing from LAR/GAR.
"""

import numpy as np

from repro.analysis.flops import layer_table
from repro.core.opcount import mlcnn_layer_ops
from repro.experiments import fig14_flops_reduction
from repro.models import specs


def _reductions(model):
    rows = [r for r in layer_table(specs.get_specs(model)) if r["fusable"]]
    return rows


def test_fig14_flops_reduction(benchmark, record_metric):
    report = benchmark.pedantic(fig14_flops_reduction, rounds=1, iterations=1)
    report.show()

    # RME: 75% for 2x2 pools, ~98% for the 8x8 stage
    for model in ("lenet5", "vgg16", "densenet", "googlenet"):
        rows = _reductions(model)
        record_metric(
            "fig14",
            "mult_reduction",
            np.mean([r["mult_reduction"] for r in rows]),
            model=model,
        )
    for model in ("lenet5", "vgg16", "densenet"):
        for row in _reductions(model):
            assert abs(row["mult_reduction"] - 0.75) < 0.02, (model, row["layer"])
    goog = {r["layer"]: r for r in _reductions("googlenet")}
    for name, row in goog.items():
        if name.startswith("5b"):
            assert row["mult_reduction"] > 0.97, name
        else:
            assert abs(row["mult_reduction"] - 0.75) < 0.02, name


def test_fig14_addition_reduction_ordering(benchmark):
    """LeNet-5's 5x5 layers reuse the most additions; DenseNet's 1x1
    transitions get no LAR/GAR benefit at all."""

    def run():
        out = {}
        for model in ("lenet5", "vgg16", "densenet"):
            out[model] = {r["layer"]: r["add_reduction"] for r in _reductions(model)}
        return out

    red = benchmark.pedantic(run, rounds=1, iterations=1)
    lenet_avg = np.mean(list(red["lenet5"].values()))
    vgg_avg = np.mean(list(red["vgg16"].values()))
    assert lenet_avg >= vgg_avg - 0.02

    # DenseNet: no incremental benefit from the reuse mechanisms
    for spec in specs.fusable_layers(specs.get_specs("densenet")):
        with_reuse = mlcnn_layer_ops(spec, use_lar=True, use_gar=True)
        without = mlcnn_layer_ops(spec, use_lar=False, use_gar=False)
        assert with_reuse.preprocessing_additions == without.preprocessing_additions
