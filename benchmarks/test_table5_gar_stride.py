"""Table V: GAR addition reduction vs step size — exact reproduction."""

from repro.core import opcount as oc
from repro.experiments import table5_gar_stride
from repro.experiments.analytic import TABLE5_PAPER


def test_table5_gar_stride(benchmark, record_metric):
    report = benchmark(table5_gar_stride)
    report.show()
    for s, (wo, w, _rate) in TABLE5_PAPER.items():
        assert oc.gar_additions_without(28, 13, s) == wo
        assert oc.gar_additions_with(28, 13, s) == w
        record_metric("table5", "gar_reduction_rate", oc.gar_reduction_rate(28, 13, s), s=s)
    # paper: effectiveness "drops dramatically" with stride
    assert oc.gar_reduction_rate(28, 13, 1) > 3 * oc.gar_reduction_rate(28, 13, 5)
