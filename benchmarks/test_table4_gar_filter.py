"""Table IV: GAR addition reduction vs filter size — exact, plus a
measured cross-check from the instrumented fused kernel."""

import numpy as np

from repro.core import opcount as oc
from repro.core.fusion import fused_conv_pool_counted
from repro.experiments import table4_gar_filter
from repro.experiments.analytic import TABLE4_PAPER


def test_table4_gar_filter(benchmark, record_metric):
    report = benchmark.pedantic(table4_gar_filter, rounds=1, iterations=1)
    report.show()
    for k, (wo, w, _rate) in TABLE4_PAPER.items():
        assert oc.gar_additions_without(28, k) == wo
        assert oc.gar_additions_with(28, k) == w
        record_metric("table4", "gar_reduction_rate", oc.gar_reduction_rate(28, k), k=k)


def test_table4_measured_from_kernel(benchmark, record_metric):
    """Execute the fused kernel with row-GAR and count real additions."""

    def measure():
        rng = np.random.default_rng(0)
        out = {}
        for k in (3, 5, 13):
            x = rng.normal(size=(1, 28, 28))
            w = rng.normal(size=(1, 1, k, k))
            _, c = fused_conv_pool_counted(
                x, w, None, use_lar=False, use_gar_row=True, use_gar_col=False
            )
            rows = ((28 - k + 1) - 2) // 2 + 1
            out[k] = c.additions / rows
        return out

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    for k, per_row in measured.items():
        assert per_row == oc.gar_additions_with(28, k), k
        record_metric("table4", "measured_adds_per_row", per_row, k=k)
