"""Numerics health headline metrics (PR 5, rides on Fig. 3/12 claims).

Not a paper figure per se: tracks the quantized datapath's saturation
behaviour and the activation/pooling reorder divergence as first-class
regression-gated metrics.  DoReFa clip rates predict where the Fig. 12
accuracy cliff sits; the reorder divergence quantifies how "free" the
paper's reorder rewrite really is on avg-pooling networks.  All four
headline numbers are deterministic (fixed seeds, fixed probe batch),
so the CI gate holds them to a lower-is-better tolerance band.
"""

import numpy as np

from repro.compiler import CompileContext, Pipeline
from repro.compiler.passes import (
    QuantizePass,
    ReorderActivationPoolingPass,
    ReorderDivergenceProbePass,
    SetPoolingPass,
)
from repro.models import build_model
from repro.nn.tensor import Tensor, no_grad
from repro.obs.numerics import NumericsCollector

BITS = 8


def run_health(model_name):
    model = build_model(model_name, seed=0)
    ctx = CompileContext(seed=0, quant_bits=BITS)
    collector = NumericsCollector(watchdog="record")
    # same no-fuse lowering as the --numerics CLI: fused blocks can't be
    # DoReFa-wrapped, and the point here is quantization health
    pipeline = Pipeline(
        [
            SetPoolingPass("avg"),
            ReorderActivationPoolingPass(),
            ReorderDivergenceProbePass(),
            QuantizePass(BITS),
        ],
        name="numerics-health",
    )
    with collector:
        pipeline.run(model, ctx)
        model.eval()
        with no_grad():
            model(Tensor(ctx.probe_batch()))
    return {
        "act_clip_rate": collector.clip_rate("dorefa.act_clip"),
        "weight_sat_rate": collector.clip_rate("dorefa.weight_sat"),
        "reorder_divergence": ctx.state["reorder_divergence"]["end_to_end_max_abs"],
        "top1_flip_rate": ctx.state["reorder_divergence"]["top1_flip_rate"],
        "anomaly": collector.first_anomaly,
    }


def _check_and_record(model_name, health, record_metric):
    assert health["anomaly"] is None  # a healthy net produces no NaN/inf
    for key in ("act_clip_rate", "weight_sat_rate", "top1_flip_rate"):
        assert 0.0 <= health[key] <= 1.0, f"{key} out of range: {health[key]}"
    div = health["reorder_divergence"]
    assert np.isfinite(div)
    assert div > 0.0  # avg pooling: ReLU/avg genuinely do not commute
    for key in ("act_clip_rate", "weight_sat_rate"):
        record_metric("numerics", key, health[key], model=model_name, bits=BITS)
    record_metric("numerics", "reorder_divergence", div, model=model_name)
    record_metric("numerics", "top1_flip_rate", health["top1_flip_rate"], model=model_name)


def test_numerics_health_lenet5(benchmark, record_metric):
    health = benchmark.pedantic(run_health, args=("lenet5",), rounds=1, iterations=1)
    _check_and_record("lenet5", health, record_metric)


def test_numerics_health_vgg16(benchmark, record_metric):
    health = benchmark.pedantic(run_health, args=("vgg16",), rounds=1, iterations=1)
    _check_and_record("vgg16", health, record_metric)
