"""Fig. 15: energy breakdown (DRAM / Buffer / MAC / static).

Paper headlines: 2.9x (FP32), 5.9x (FP16), 11.3x (INT8) energy
efficiency over the optimized layers, with every component shrinking
and GoogLeNet's C9 best (>9x).  We assert the ordering and the
precision scaling; absolute ratios land within ~35%.
"""

import numpy as np

from repro.accel import get_config, simulate_network
from repro.experiments import fig15_energy
from repro.experiments.accelerator import EVALUATED_MODELS, _fused_layer_metrics
from repro.models import specs


def test_fig15_energy(benchmark, record_metric):
    report = benchmark.pedantic(fig15_energy, rounds=1, iterations=1)
    report.show()

    averages = {}
    for cand in ("mlcnn-fp32", "mlcnn-fp16", "mlcnn-int8"):
        vals = []
        for model in EVALUATED_MODELS:
            vals += [m[1] for m in _fused_layer_metrics(model, cand).values()]
        averages[cand] = np.mean(vals)
        record_metric("fig15", "energy_efficiency", averages[cand], config=cand)

    assert 2.0 <= averages["mlcnn-fp32"] <= 5.0    # paper: 2.9x
    assert 4.0 <= averages["mlcnn-fp16"] <= 10.0   # paper: 5.9x
    assert 8.0 <= averages["mlcnn-int8"] <= 20.0   # paper: 11.3x
    assert averages["mlcnn-int8"] > averages["mlcnn-fp16"] > averages["mlcnn-fp32"]


def test_fig15_components_all_shrink(benchmark):
    """Every component (DRAM, buffer, MAC, static) shrinks on MLCNN, as
    the paper observes."""

    def run():
        out = {}
        for model in EVALUATED_MODELS:
            sp = specs.get_specs(model)
            base = simulate_network(sp, get_config("dcnn-fp32")).energy
            fused = simulate_network(sp, get_config("mlcnn-fp32")).energy
            out[model] = (base, fused)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for model, (base, fused) in results.items():
        assert fused.dram_j <= base.dram_j, model
        assert fused.buffer_j < base.buffer_j, model
        assert fused.mac_j < base.mac_j, model
        assert fused.static_j < base.static_j, model
