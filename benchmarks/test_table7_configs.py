"""Table VII: accelerator configurations under one silicon budget."""

from repro.accel.area import config_area_mm2, slices_for_budget
from repro.accel.config import TABLE7_CONFIGS
from repro.experiments import table7_configs


def test_table7_configs(benchmark):
    report = benchmark(table7_configs)
    report.show()
    # the paper's slice counts fit the 1.52 mm^2 budget at 45 nm
    assert slices_for_budget(32) >= 32
    assert slices_for_budget(16) >= 64
    assert slices_for_budget(8) >= 128
    for cfg in TABLE7_CONFIGS.values():
        assert config_area_mm2(cfg.mac_slices, cfg.bitwidth) <= cfg.area_mm2 + 1e-9
        assert cfg.onchip_memory_kb == 134
