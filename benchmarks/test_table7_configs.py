"""Table VII: accelerator configurations under one silicon budget."""

from repro.accel.area import config_area_mm2, slices_for_budget
from repro.accel.config import TABLE7_CONFIGS
from repro.experiments import table7_configs


def test_table7_configs(benchmark, record_metric):
    report = benchmark(table7_configs)
    report.show()
    # the paper's slice counts fit the 1.52 mm^2 budget at 45 nm
    assert slices_for_budget(32) >= 32
    assert slices_for_budget(16) >= 64
    assert slices_for_budget(8) >= 128
    for bits in (32, 16, 8):
        record_metric("table7", "slices_for_budget", slices_for_budget(bits), bits=bits)
    for name, cfg in TABLE7_CONFIGS.items():
        area = config_area_mm2(cfg.mac_slices, cfg.bitwidth)
        record_metric("table7", "area_mm2", area, config=name)
        assert area <= cfg.area_mm2 + 1e-9
        assert cfg.onchip_memory_kb == 134
