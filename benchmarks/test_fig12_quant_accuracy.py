"""Fig. 12: DCNN vs MLCNN vs INT8-quantized MLCNN accuracy.

Paper shape: the three variants are equivalent within ~1% at full
scale; at this reduced scale we assert all three train well above
chance and the quantized model stays within training noise.
"""

from repro.experiments import fig12_quantization_accuracy


def _pct(cell: str) -> float:
    return float(cell.rstrip("%"))


def test_fig12_quant_accuracy(once, accuracy_budget):
    report = once(
        fig12_quantization_accuracy,
        models=("lenet5",),
        class_counts=(10,),
        bits=8,
        budget=accuracy_budget,
    )
    report.show()
    for row in report.rows:
        dcnn, mlcnn, q = _pct(row[2]), _pct(row[3]), _pct(row[4])
        assert dcnn > 20 and mlcnn > 20 and q > 20, row
        # the quantized model converges more slowly; under the fast
        # budget we only require it to stay within training noise
        # (REPRO_FULL=1 budgets close most of this gap — EXPERIMENTS.md)
        assert abs(mlcnn - q) < 45, row
