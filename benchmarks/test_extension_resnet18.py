"""Extension: MLCNN on ResNet-18 (the paper's conclusion claim)."""

from repro.experiments import extension_resnet18


def test_extension_resnet18(benchmark):
    report = benchmark.pedantic(extension_resnet18, rounds=1, iterations=1)
    report.show()
    rows = {r[0]: r for r in report.rows}
    # the pooled stem fuses and speeds up ~4x at FP32
    assert rows["stem"][1] == "yes"
    assert float(rows["stem"][2].rstrip("x")) > 2.5
    # the residual stages are untouched at FP32
    assert float(rows["L4.2b"][2].rstrip("x")) == 1.0
