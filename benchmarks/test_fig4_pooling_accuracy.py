"""Fig. 4: average vs max pooling accuracy.

Paper shape: average pooling matches or beats max pooling on most
models (it preserves more information from the feature maps), which is
why MLCNN standardizes on average pooling.
"""

from repro.experiments import fig4_pooling_accuracy


def _pct(cell: str) -> float:
    return float(cell.rstrip("%"))


def test_fig4_pooling_accuracy(once, accuracy_budget):
    report = once(
        fig4_pooling_accuracy,
        models=("lenet5",),
        class_counts=(10,),
        budget=accuracy_budget,
    )
    report.show()
    for row in report.rows:
        avg, mx = _pct(row[2]), _pct(row[3])
        assert avg > 20  # clearly above the 10% chance level
        # avg-pool is competitive with max-pool (within noise or better)
        assert avg >= mx - 20, row
