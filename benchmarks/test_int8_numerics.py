"""INT8 fixed-point datapath numerics (supports the Fig. 12 claim).

Not a paper figure per se: quantifies how far the integer fused kernel
(the arithmetic the INT8 accelerator performs) drifts from the FP32
fused kernel on realistic layer shapes — the numerical basis for the
paper's "quantized MLCNN is accuracy-equivalent" result.
"""

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.core.fixedpoint import fused_conv_pool_int, int_path_error_bound, quantize_tensor
from repro.core.fusion import fused_conv_pool
from repro.nn.tensor import Tensor, no_grad


def run_numerics():
    rng = np.random.default_rng(0)
    rep = ExperimentReport(
        "INT8 numerics",
        "integer fused kernel vs FP32 fused kernel",
        headers=["shape", "bits", "max |err|", "a-priori bound", "rel err"],
    )
    results = []
    for (c, h, k, m) in [(3, 16, 3, 8), (16, 16, 3, 16), (8, 28, 5, 8)]:
        x = rng.normal(size=(c, h, h))
        w = rng.normal(size=(m, c, k, k)) * 0.3
        with no_grad():
            ref = fused_conv_pool(Tensor(x[None]), Tensor(w), None, pool=2).data[0]
        for bits in (8, 16):
            qx, qw = quantize_tensor(x, bits), quantize_tensor(w, bits)
            got = fused_conv_pool_int(qx, qw, None)
            err = float(np.abs(got - ref).max())
            bound = int_path_error_bound(qx, qw)
            rel = err / (np.abs(ref).max() + 1e-12)
            rep.add_row(f"{c}x{h}x{h} K{k} M{m}", bits, f"{err:.2e}", f"{bound:.2e}", f"{rel:.2e}")
            results.append((bits, err, bound, rel))
    return rep, results


def test_int8_numerics(benchmark):
    rep, results = benchmark.pedantic(run_numerics, rounds=1, iterations=1)
    rep.show()
    for bits, err, bound, rel in results:
        assert err <= bound
        if bits == 8:
            assert rel < 0.05  # within a few percent of FP32 outputs
        else:
            assert rel < 1e-3
