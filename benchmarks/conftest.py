"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper and prints
it next to the paper's reference values.  Run with::

    pytest benchmarks/ --benchmark-only

Accuracy benchmarks (Figs. 3, 4, 12) train models; by default they use
a fast budget (a few minutes total).  Set ``REPRO_FULL=1`` for the full
budget used in EXPERIMENTS.md.

Trend tracking: pass ``--metrics-jsonl PATH`` and benches that use the
``record_metric`` fixture append one JSON object per headline number
(per-figure speedup, FLOP reduction, energy efficiency, ...), so CI can
diff the series across PRs::

    pytest benchmarks/ --metrics-jsonl metrics.jsonl
"""

import json
import os

import pytest

from repro.experiments.accuracy import FAST_BUDGET, AccuracyBudget
from repro.obs.metrics import provenance


def pytest_addoption(parser):
    parser.addoption(
        "--metrics-jsonl",
        default=None,
        metavar="PATH",
        help="append per-figure benchmark metrics to PATH as JSON lines",
    )


@pytest.fixture(scope="session")
def run_provenance():
    """One provenance stamp (git SHA, UTC time, host, ...) per session."""
    return provenance()


@pytest.fixture
def record_metric(request, run_provenance):
    """Emit ``{"figure", "metric", "value", ...}`` JSONL rows.

    No-op unless the run passed ``--metrics-jsonl``; benches call it
    unconditionally.  Every row carries the session's provenance stamp
    (git SHA, timestamp, host, user, python) so a metrics file is
    attributable on its own; provenance keys never enter the metric
    identity the regression gate compares (see
    :func:`repro.obs.metrics.metric_key`).
    """
    path = request.config.getoption("--metrics-jsonl")

    def _record(figure: str, metric: str, value: float, **extra) -> None:
        if not path:
            return
        row = {
            "figure": figure,
            "metric": metric,
            "value": float(value),
            **extra,
            **run_provenance,
        }
        with open(path, "a") as fh:
            fh.write(json.dumps(row) + "\n")

    return _record


def full_run() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def accuracy_budget() -> AccuracyBudget:
    return AccuracyBudget() if full_run() else FAST_BUDGET


@pytest.fixture
def once(benchmark):
    """Run a heavy experiment exactly once under the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
