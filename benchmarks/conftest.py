"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper and prints
it next to the paper's reference values.  Run with::

    pytest benchmarks/ --benchmark-only

Accuracy benchmarks (Figs. 3, 4, 12) train models; by default they use
a fast budget (a few minutes total).  Set ``REPRO_FULL=1`` for the full
budget used in EXPERIMENTS.md.
"""

import os

import pytest

from repro.experiments.accuracy import FAST_BUDGET, AccuracyBudget


def full_run() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def accuracy_budget() -> AccuracyBudget:
    return AccuracyBudget() if full_run() else FAST_BUDGET


@pytest.fixture
def once(benchmark):
    """Run a heavy experiment exactly once under the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
