"""Attribution / roofline headline metrics (PR 7 tentpole).

``attrib.span_coverage[model=...]`` is the attribution engine's
self-check: the fraction of the instrumented forward's wall time
explained by per-layer spans (worker-shard spans included).  It is a
property of the *instrumentation*, not of host speed — if coverage
drops, a subsystem stopped reporting (e.g. shard merge-back broke) —
so it gates as a required higher-is-better metric at >= 0.9.

``roofline.attained_fraction[model=...]`` (wall-weighted attained /
attainable FLOP/s over the classified layer rows) and
``roofline.ridge_flop_per_byte`` trend the measured roofline join;
both are host-properties and ride advisorily (and the gate downgrades
them automatically when the baseline's core count differs).
"""

import os

import pytest

from repro.obs.attrib import attribute_model_run
from repro.obs.roofline import get_roofline

#: the gate floor committed in BENCH_core.json (required, higher-better)
COVERAGE_FLOOR = 0.9


@pytest.fixture(scope="module")
def roofline(tmp_path_factory):
    cache = tmp_path_factory.mktemp("roofline") / "roofline.json"
    old = os.environ.get("REPRO_ROOFLINE_CACHE")
    os.environ["REPRO_ROOFLINE_CACHE"] = str(cache)
    try:
        yield get_roofline()
    finally:
        if old is None:
            os.environ.pop("REPRO_ROOFLINE_CACHE", None)
        else:
            os.environ["REPRO_ROOFLINE_CACHE"] = old


def _run_and_record(model_name, roofline, benchmark, record_metric):
    report = benchmark.pedantic(
        attribute_model_run,
        args=(model_name,),
        kwargs={"roofline": roofline, "root": model_name},
        rounds=1,
        iterations=1,
    )
    coverage = report.span_coverage
    assert coverage >= COVERAGE_FLOOR, (
        f"span coverage {coverage:.3f} below {COVERAGE_FLOOR} — "
        f"{report.unexplained_us / 1e3:.3f} ms of "
        f"{report.total_us / 1e3:.3f} ms unexplained"
    )
    # the join produced roofline-classified layer rows
    classified = [r for r in report.rows if r.bound in ("compute", "memory")]
    assert classified, "no rows were roofline-classified"
    record_metric("attrib", "span_coverage", coverage, model=model_name)
    frac = report.attained_fraction()
    assert frac is not None and 0.0 < frac <= 1.5
    record_metric("roofline", "attained_fraction", frac, model=model_name)
    return report


def test_attrib_lenet5(benchmark, roofline, record_metric):
    _run_and_record("lenet5", roofline, benchmark, record_metric)


def test_attrib_vgg16(benchmark, roofline, record_metric):
    report = _run_and_record("vgg16", roofline, benchmark, record_metric)
    # a vgg16 run must attribute the dominant conv stages individually
    names = {r.name for r in report.rows if r.kind == "layer"}
    assert any(".features." in n for n in names)


def test_roofline_ridge(roofline, record_metric):
    assert roofline.peak_flops > 0 and roofline.stream_bandwidth > 0
    record_metric("roofline", "ridge_flop_per_byte", roofline.ridge_intensity)
