"""FLOP auditing and report formatting."""

import numpy as np
import pytest

from repro.analysis.flops import count_model_macs, layer_table, model_flops
from repro.analysis.report import ExperimentReport, format_percent, format_table
from repro.models import build_model, specs


class TestModelFlops:
    def test_fused_less_than_dense(self):
        layer_specs = specs.get_specs("vgg16")
        assert model_flops(layer_specs, fused=True) < model_flops(layer_specs, fused=False)

    def test_positive_for_all_models(self):
        for model in specs.MODEL_SPECS:
            assert model_flops(specs.get_specs(model)) > 0


class TestCountModelMacs:
    def test_counts_known_conv(self):
        from repro.nn import Conv2d, Sequential

        model = Sequential(Conv2d(3, 8, 3, padding=1, rng=np.random.default_rng(0)))
        macs = count_model_macs(model, (1, 3, 16, 16))
        assert macs == 16 * 16 * 8 * 3 * 9

    def test_counts_linear(self):
        from repro.nn import Flatten, Linear, Sequential

        model = Sequential(Flatten(), Linear(12, 5, rng=np.random.default_rng(0)))
        macs = count_model_macs(model, (2, 3, 2, 2))
        assert macs == 12 * 5 * 2

    def test_restores_hooks_on_error(self):
        from repro.nn import Conv2d, Linear

        original_conv = Conv2d.forward
        model = build_model("lenet5")
        with pytest.raises(Exception):
            count_model_macs(model, (1, 3, 7))  # bad shape triggers error
        assert Conv2d.forward is original_conv

    def test_scales_with_batch(self):
        model = build_model("lenet5")
        m1 = count_model_macs(model, (1, 3, 32, 32))
        m4 = count_model_macs(model, (4, 3, 32, 32))
        assert m4 == 4 * m1


class TestLayerTable:
    def test_row_per_layer(self):
        layer_specs = specs.get_specs("lenet5")
        rows = layer_table(layer_specs)
        assert len(rows) == len(layer_specs)
        assert {r["layer"] for r in rows} == {s.name for s in layer_specs}

    def test_non_fusable_rows_report_zero_reduction(self):
        rows = layer_table(specs.get_specs("lenet5"))
        c3 = next(r for r in rows if r["layer"] == "C3")
        assert not c3["fusable"]
        assert c3["mult_reduction"] == 0.0

    def test_fusable_rows_report_75_percent_mults(self):
        rows = layer_table(specs.get_specs("lenet5"))
        c1 = next(r for r in rows if r["layer"] == "C1")
        assert c1["fusable"]
        assert abs(c1["mult_reduction"] - 0.75) < 0.02


class TestReportFormatting:
    def test_format_percent(self):
        assert format_percent(0.755) == "75.5%"
        assert format_percent(0.5, digits=0) == "50%"

    def test_format_table_aligned(self):
        text = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l.rstrip()) for l in lines[:2])) >= 1
        assert "333" in lines[3]

    def test_experiment_report_render(self):
        rep = ExperimentReport("Table X", "demo", headers=["col"])
        rep.add_row("val")
        rep.add_note("a note")
        text = rep.render()
        assert "Table X" in text and "val" in text and "a note" in text

    def test_show_prints(self, capsys):
        rep = ExperimentReport("T", "d", headers=["c"])
        rep.add_row(1)
        rep.show()
        assert "T" in capsys.readouterr().out
