"""Sweep series, FP16 numerics path, and model checkpointing."""

import numpy as np
import pytest

from repro.analysis.sweep import (
    addition_reduction_vs_kernel,
    gar_rate_vs_filter,
    gar_rate_vs_input,
    lar_rate_vs_filter,
    speedup_vs_pool_size,
)
from repro.core.fixedpoint import fused_conv_pool_fp16, fused_conv_pool_int, quantize_tensor
from repro.core.fusion import fused_conv_pool
from repro.models import build_model
from repro.nn import load_checkpoint, save_checkpoint
from repro.nn.tensor import Tensor, no_grad


class TestSweeps:
    def test_lar_rate_monotone_and_bounded(self):
        ks, rates = lar_rate_vs_filter(range(2, 41))
        assert (np.diff(rates) >= -1e-12).all()
        assert rates[-1] < 0.25

    def test_gar_rate_vs_filter_has_apex(self):
        ks, rates = gar_rate_vs_filter(d=28)
        apex = ks[np.argmax(rates)]
        assert 11 <= apex <= 19  # paper: apex near 15x15

    def test_gar_rate_vs_input_approaches_limit(self):
        from repro.core.opcount import gar_limit_large_input

        ds, rates = gar_rate_vs_input(k=13)
        assert rates[-1] < gar_limit_large_input(13)
        assert rates[-1] > 0.95 * gar_limit_large_input(13)

    def test_speedup_grows_with_pool_size(self):
        ps, speedups = speedup_vs_pool_size((2, 4, 8))
        assert (np.diff(speedups) > 0).all()
        assert speedups[0] > 1.5

    def test_addition_reduction_zero_at_1x1(self):
        ks, red = addition_reduction_vs_kernel((1, 3, 5))
        # 1x1: only the 4x MAC-accumulation saving, no extra reuse;
        # larger kernels amortize preprocessing better
        assert red[0] <= red[-1] + 0.05
        assert (red > 0).all()


class TestFP16Path:
    @pytest.fixture
    def rng(self):
        return np.random.default_rng(55)

    def test_close_to_fp32(self, rng):
        x = rng.normal(size=(3, 12, 12))
        w = rng.normal(size=(4, 3, 3, 3)) * 0.3
        with no_grad():
            ref = fused_conv_pool(Tensor(x[None]), Tensor(w), None, pool=2).data[0]
        got = fused_conv_pool_fp16(x, w, None)
        rel = np.abs(got - ref).max() / (np.abs(ref).max() + 1e-12)
        assert rel < 5e-3  # half precision: ~1e-3 relative

    def test_fp16_more_accurate_than_int8(self, rng):
        x = rng.normal(size=(2, 12, 12)) * 3
        w = rng.normal(size=(2, 2, 3, 3))
        with no_grad():
            ref = fused_conv_pool(Tensor(x[None]), Tensor(w), None, pool=2).data[0]
        e16 = np.abs(fused_conv_pool_fp16(x, w) - ref).max()
        e8 = np.abs(fused_conv_pool_int(quantize_tensor(x, 8), quantize_tensor(w, 8)) - ref).max()
        assert e16 < e8

    def test_relu_and_bias(self, rng):
        x = rng.normal(size=(1, 8, 8))
        w = rng.normal(size=(2, 1, 3, 3))
        b = rng.normal(size=2)
        out = fused_conv_pool_fp16(x, w, b, apply_relu=True)
        assert (out >= 0).all()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            fused_conv_pool_fp16(rng.normal(size=(2, 8, 8)), rng.normal(size=(1, 3, 3, 3)))


class TestCheckpointing:
    def test_roundtrip(self, tmp_path):
        src = build_model("lenet5", seed=1)
        dst = build_model("lenet5", seed=2)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(src, path)
        load_checkpoint(dst, path)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 3, 32, 32)))
        with no_grad():
            np.testing.assert_array_equal(src(x).data, dst(x).data)

    def test_includes_buffers(self, tmp_path):
        from repro.nn import BatchNorm2d, Sequential

        src = Sequential(BatchNorm2d(4))
        src[0].running_mean[:] = 7.0
        path = tmp_path / "bn.npz"
        save_checkpoint(src, path)
        dst = Sequential(BatchNorm2d(4))
        load_checkpoint(dst, path)
        assert (dst[0].running_mean == 7.0).all()

    def test_shape_mismatch_raises(self, tmp_path):
        src = build_model("lenet5", width_mult=1.0)
        dst = build_model("lenet5", width_mult=0.5)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(src, path)
        with pytest.raises((ValueError, KeyError)):
            load_checkpoint(dst, path)

    def test_version_guard(self, tmp_path):
        import numpy as np

        from repro.nn.serialization import FORMAT_KEY

        src = build_model("lenet5")
        path = tmp_path / "future.npz"
        state = src.state_dict()
        np.savez(path, **state, **{FORMAT_KEY: np.array(99)})
        with pytest.raises(ValueError):
            load_checkpoint(build_model("lenet5"), path)


class TestOperatingPointSweeps:
    def test_speedup_rises_with_bandwidth(self):
        from repro.analysis.sweep import speedup_vs_bandwidth

        bws, sp = speedup_vs_bandwidth((1, 4, 16, 64))
        assert (np.diff(sp) >= -1e-9).all()
        # starved: both memory-bound and nearly equal; ample: RME shows
        assert sp[0] < 1.2
        assert sp[-1] > 1.3

    def test_speedup_rises_with_batch(self):
        from repro.analysis.sweep import speedup_vs_batch

        bs, sp = speedup_vs_batch((1, 4, 16))
        assert (np.diff(sp) >= -1e-9).all()
