"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticImageConfig, make_synth_cifar, train_val_split


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def enabled_tracer():
    """The global repro.obs tracer, enabled and cleaned for one test."""
    from repro.obs import get_tracer

    tracer = get_tracer()
    tracer.clear()
    tracer.enable()
    try:
        yield tracer
    finally:
        tracer.disable()
        tracer.clear()


@pytest.fixture
def tiny_dataset():
    """A small 4-class dataset usable for fast training tests."""
    cfg = SyntheticImageConfig(
        num_classes=4, samples_per_class=16, image_size=16, max_shift=2, seed=7
    )
    return make_synth_cifar(cfg)


@pytest.fixture
def tiny_split(tiny_dataset):
    return train_val_split(tiny_dataset, val_fraction=0.25, seed=7)


def numeric_gradient(f, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` w.r.t. ``array``.

    ``f`` must read ``array`` afresh on each call (the helper mutates it
    in place and restores it).
    """
    grad = np.zeros_like(array)
    flat = array.ravel()
    gflat = grad.ravel()
    for i in range(array.size):
        old = flat[i]
        flat[i] = old + eps
        fp = f()
        flat[i] = old - eps
        fm = f()
        flat[i] = old
        gflat[i] = (fp - fm) / (2.0 * eps)
    return grad
