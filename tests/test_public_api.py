"""Public API surface: everything advertised in __all__ exists and docs
reference real symbols."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.nn",
    "repro.data",
    "repro.train",
    "repro.models",
    "repro.core",
    "repro.compiler",
    "repro.accel",
    "repro.analysis",
    "repro.experiments",
]


class TestPublicAPI:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_exports_resolve(self, name):
        mod = importlib.import_module(name)
        assert hasattr(mod, "__all__"), f"{name} lacks __all__"
        for symbol in mod.__all__:
            assert hasattr(mod, symbol), f"{name}.{symbol} missing"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_module_docstrings(self, name):
        mod = importlib.import_module(name)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 20, f"{name} undocumented"

    def test_public_callables_documented(self):
        """Every public function/class re-exported at the top level has
        a docstring."""
        import repro

        for symbol in repro.__all__:
            obj = getattr(repro, symbol)
            if callable(obj):
                assert obj.__doc__, f"repro.{symbol} lacks a docstring"

    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_registry_and_specs_agree(self):
        """Every zoo model has a matching full-size spec list."""
        from repro.models import MODEL_REGISTRY
        from repro.models.specs import MODEL_SPECS

        assert set(MODEL_REGISTRY) == set(MODEL_SPECS)
