"""Synthetic CIFAR-like generator: structure, determinism, learnability."""

import numpy as np
import pytest

from repro.data import SyntheticImageConfig, make_synth_cifar, synth_cifar10, synth_cifar100


class TestConfigValidation:
    def test_rejects_one_class(self):
        with pytest.raises(ValueError):
            SyntheticImageConfig(num_classes=1)

    def test_rejects_tiny_images(self):
        with pytest.raises(ValueError):
            SyntheticImageConfig(image_size=4)

    def test_rejects_huge_shift(self):
        with pytest.raises(ValueError):
            SyntheticImageConfig(image_size=16, max_shift=8)


class TestGeneratedData:
    def test_shapes_and_counts(self):
        ds = make_synth_cifar(SyntheticImageConfig(num_classes=5, samples_per_class=10, image_size=16))
        assert ds.images.shape == (50, 3, 16, 16)
        assert sorted(np.bincount(ds.labels)) == [10] * 5

    def test_standardized(self):
        ds = synth_cifar10(samples_per_class=20, image_size=16)
        assert abs(ds.images.mean()) < 1e-8
        assert abs(ds.images.std() - 1.0) < 1e-6

    def test_deterministic_given_seed(self):
        a = synth_cifar10(samples_per_class=4, image_size=16, seed=3)
        b = synth_cifar10(samples_per_class=4, image_size=16, seed=3)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_seed_changes_data(self):
        a = synth_cifar10(samples_per_class=4, image_size=16, seed=1)
        b = synth_cifar10(samples_per_class=4, image_size=16, seed=2)
        assert not np.allclose(a.images, b.images)

    def test_cifar100_has_100_classes(self):
        ds = synth_cifar100(samples_per_class=2, image_size=16)
        assert ds.num_classes == 100
        assert len(ds) == 200

    def test_classes_are_linearly_separable_enough(self):
        """A nearest-class-mean classifier must beat chance comfortably —
        otherwise the accuracy experiments would only measure noise."""
        ds = make_synth_cifar(
            SyntheticImageConfig(num_classes=5, samples_per_class=40, image_size=16, seed=0)
        )
        X = ds.images.reshape(len(ds), -1)
        # fit class means on the first half, evaluate on the second
        half = len(ds) // 2
        means = np.stack([X[:half][ds.labels[:half] == c].mean(axis=0) for c in range(5)])
        d = ((X[half:, None, :] - means[None, :, :]) ** 2).sum(axis=-1)
        acc = (d.argmin(axis=1) == ds.labels[half:]).mean()
        assert acc > 0.5  # chance is 0.2

    def test_harder_with_more_noise(self):
        def ncm_accuracy(noise):
            ds = make_synth_cifar(
                SyntheticImageConfig(
                    num_classes=5, samples_per_class=40, image_size=16,
                    noise_sigma=noise, seed=0,
                )
            )
            X = ds.images.reshape(len(ds), -1)
            half = len(ds) // 2
            means = np.stack([X[:half][ds.labels[:half] == c].mean(axis=0) for c in range(5)])
            d = ((X[half:, None, :] - means[None, :, :]) ** 2).sum(axis=-1)
            return (d.argmin(axis=1) == ds.labels[half:]).mean()

        assert ncm_accuracy(0.1) >= ncm_accuracy(2.0)

    def test_shift_jitter_applied(self):
        """With zero noise, samples of one class differ only by shifts —
        so pairwise differences are nonzero but norms match."""
        ds = make_synth_cifar(
            SyntheticImageConfig(
                num_classes=2, samples_per_class=8, image_size=16,
                noise_sigma=0.0, gain_jitter=0.0, max_shift=3, seed=0,
            )
        )
        cls0 = ds.images[ds.labels == 0]
        norms = np.linalg.norm(cls0.reshape(len(cls0), -1), axis=1)
        np.testing.assert_allclose(norms, norms[0], rtol=1e-6)
        assert not np.allclose(cls0[0], cls0[1])
