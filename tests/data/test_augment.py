"""Augmentation transforms and DataLoader integration."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    Augmentation,
    DataLoader,
    cutout,
    random_crop,
    random_horizontal_flip,
)


@pytest.fixture
def rng():
    return np.random.default_rng(13)


@pytest.fixture
def batch(rng):
    return rng.normal(size=(8, 3, 16, 16))


class TestFlip:
    def test_p_zero_identity(self, batch, rng):
        np.testing.assert_array_equal(random_horizontal_flip(batch, rng, p=0.0), batch)

    def test_p_one_flips_all(self, batch, rng):
        out = random_horizontal_flip(batch, rng, p=1.0)
        np.testing.assert_array_equal(out, batch[:, :, :, ::-1])

    def test_double_flip_is_identity(self, batch, rng):
        once = random_horizontal_flip(batch, np.random.default_rng(1), p=1.0)
        twice = random_horizontal_flip(once, np.random.default_rng(2), p=1.0)
        np.testing.assert_array_equal(twice, batch)

    def test_does_not_mutate_input(self, batch, rng):
        before = batch.copy()
        random_horizontal_flip(batch, rng, p=1.0)
        np.testing.assert_array_equal(batch, before)

    def test_invalid_p(self, batch, rng):
        with pytest.raises(ValueError):
            random_horizontal_flip(batch, rng, p=1.5)


class TestCrop:
    def test_shape_preserved(self, batch, rng):
        assert random_crop(batch, rng, padding=3).shape == batch.shape

    def test_each_output_is_a_window_of_the_padded_input(self, batch):
        """Every cropped image must appear verbatim somewhere in the
        reflect-padded original."""
        pad = 2
        out = random_crop(batch, np.random.default_rng(3), padding=pad)
        padded = np.pad(batch, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="reflect")
        h = batch.shape[2]
        for i in range(len(batch)):
            found = any(
                np.array_equal(out[i], padded[i, :, y : y + h, x : x + h])
                for y in range(2 * pad + 1)
                for x in range(2 * pad + 1)
            )
            assert found, f"crop {i} is not a window of its padded source"

    def test_invalid_padding(self, batch, rng):
        with pytest.raises(ValueError):
            random_crop(batch, rng, padding=0)

    def test_randomness_varies(self, batch):
        a = random_crop(batch, np.random.default_rng(1), padding=4)
        b = random_crop(batch, np.random.default_rng(2), padding=4)
        assert not np.array_equal(a, b)


class TestCutout:
    def test_zeroes_exactly_one_square(self, rng):
        x = np.ones((4, 2, 10, 10))
        out = cutout(x, rng, size=4)
        for img in out:
            assert (img == 0).sum() == 2 * 16

    def test_invalid_size(self, batch, rng):
        with pytest.raises(ValueError):
            cutout(batch, rng, size=17)
        with pytest.raises(ValueError):
            cutout(batch, rng, size=0)


class TestAugmentation:
    def test_compose_shape(self, batch):
        aug = Augmentation(flip=True, crop_padding=2, cutout_size=4, seed=0)
        assert aug(batch).shape == batch.shape

    def test_reproducible_given_seed(self, batch):
        a = Augmentation(crop_padding=3, seed=5)(batch)
        b = Augmentation(crop_padding=3, seed=5)(batch)
        np.testing.assert_array_equal(a, b)

    def test_rejects_non_batch(self, rng):
        with pytest.raises(ValueError):
            Augmentation()(rng.normal(size=(3, 16, 16)))

    def test_dataloader_integration(self, rng):
        ds = ArrayDataset(rng.normal(size=(20, 3, 16, 16)), rng.integers(0, 3, 20))
        aug = Augmentation(flip=True, crop_padding=2, seed=0)
        loader = DataLoader(ds, batch_size=10, shuffle=False, transform=aug)
        plain = DataLoader(ds, batch_size=10, shuffle=False)
        (aug_imgs, _), (raw_imgs, _) = next(iter(loader)), next(iter(plain))
        assert aug_imgs.shape == raw_imgs.shape
        assert not np.array_equal(aug_imgs, raw_imgs)

    def test_training_with_augmentation_still_learns(self, tiny_split):
        from repro.nn import AvgPool2d, Conv2d, Flatten, Linear, ReLU, Sequential
        from repro.nn import functional as F
        from repro.nn.optim import SGD
        from repro.nn.tensor import Tensor

        train_set, _ = tiny_split
        model = Sequential(
            Conv2d(3, 8, 3, padding=1, rng=np.random.default_rng(0)),
            ReLU(),
            AvgPool2d(4),
            Flatten(),
            Linear(8 * 4 * 4, 4, rng=np.random.default_rng(0)),
        )
        opt = SGD(model.parameters(), lr=0.05)
        aug = Augmentation(flip=True, crop_padding=1, seed=0)
        loader = DataLoader(train_set, batch_size=16, seed=0, transform=aug)
        losses = []
        for _ in range(6):
            for images, labels in loader:
                loss = F.cross_entropy(model(Tensor(images)), labels)
                opt.zero_grad()
                loss.backward()
                opt.step()
                losses.append(loss.item())
        assert np.mean(losses[-3:]) < np.mean(losses[:3])
