"""ArrayDataset / DataLoader / splits."""

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader, train_val_split


@pytest.fixture
def dataset():
    rng = np.random.default_rng(0)
    return ArrayDataset(rng.normal(size=(50, 3, 8, 8)), rng.integers(0, 5, size=50))


class TestArrayDataset:
    def test_len_and_getitem(self, dataset):
        assert len(dataset) == 50
        img, label = dataset[3]
        assert img.shape == (3, 8, 8)
        assert np.issubdtype(np.asarray(label).dtype, np.integer)

    def test_num_classes(self, dataset):
        assert dataset.num_classes == dataset.labels.max() + 1

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1, 2, 2)), np.zeros(4))

    def test_2d_labels_raise(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1, 2, 2)), np.zeros((3, 1)))

    def test_subset(self, dataset):
        sub = dataset.subset(np.array([0, 2, 4]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.images[1], dataset.images[2])


class TestTrainValSplit:
    def test_sizes(self, dataset):
        tr, va = train_val_split(dataset, 0.2, seed=1)
        assert len(va) == 10
        assert len(tr) == 40

    def test_disjoint_and_complete(self, dataset):
        dataset.images[:, 0, 0, 0] = np.arange(50)  # unique ids
        tr, va = train_val_split(dataset, 0.3, seed=2)
        ids = np.concatenate([tr.images[:, 0, 0, 0], va.images[:, 0, 0, 0]])
        assert sorted(ids) == list(range(50))

    def test_deterministic_given_seed(self, dataset):
        tr1, _ = train_val_split(dataset, 0.2, seed=5)
        tr2, _ = train_val_split(dataset, 0.2, seed=5)
        np.testing.assert_array_equal(tr1.labels, tr2.labels)

    def test_invalid_fraction(self, dataset):
        with pytest.raises(ValueError):
            train_val_split(dataset, 1.5)


class TestDataLoader:
    def test_batch_shapes(self, dataset):
        loader = DataLoader(dataset, batch_size=16, shuffle=False)
        batches = list(loader)
        assert len(batches) == 4  # 16+16+16+2
        assert batches[0][0].shape == (16, 3, 8, 8)
        assert batches[-1][0].shape == (2, 3, 8, 8)

    def test_len_matches_iteration(self, dataset):
        for bs, drop in [(16, False), (16, True), (50, False), (7, True)]:
            loader = DataLoader(dataset, batch_size=bs, drop_last=drop)
            assert len(list(loader)) == len(loader)

    def test_drop_last(self, dataset):
        loader = DataLoader(dataset, batch_size=16, drop_last=True)
        assert all(len(y) == 16 for _, y in loader)

    def test_covers_all_samples_without_drop(self, dataset):
        loader = DataLoader(dataset, batch_size=7, shuffle=True, seed=3)
        n = sum(len(y) for _, y in loader)
        assert n == 50

    def test_shuffle_changes_across_epochs(self, dataset):
        loader = DataLoader(dataset, batch_size=50, shuffle=True, seed=4)
        first = next(iter(loader))[1].copy()
        second = next(iter(loader))[1].copy()
        assert not np.array_equal(first, second)

    def test_no_shuffle_preserves_order(self, dataset):
        loader = DataLoader(dataset, batch_size=50, shuffle=False)
        _, labels = next(iter(loader))
        np.testing.assert_array_equal(labels, dataset.labels)

    def test_invalid_batch_size(self, dataset):
        with pytest.raises(ValueError):
            DataLoader(dataset, batch_size=0)
