"""Experiment report structure: rows, paper constants, cross-checks."""

import numpy as np
import pytest

from repro.experiments import (
    ablation_reuse,
    equation_limits,
    extension_pruning,
    extension_resnet18,
    fig14_flops_reduction,
    related_fused_layer,
    table1_models,
    table2_lar_filter,
    table3_lar_stride,
    table4_gar_filter,
    table5_gar_stride,
    table6_gar_inputdim,
    table7_configs,
)
from repro.experiments.analytic import (
    TABLE2_PAPER,
    TABLE3_PAPER,
    TABLE4_PAPER,
    TABLE5_PAPER,
    TABLE6_PAPER,
)


class TestAnalyticReports:
    def test_table2_full_agreement(self):
        rep = table2_lar_filter()
        assert len(rep.rows) == len(TABLE2_PAPER)
        for row in rep.rows:
            assert row[1] == row[4]  # ours == paper (w/o)
            assert row[2] == row[5]  # ours == paper (w/)

    def test_table3_full_agreement(self):
        rep = table3_lar_stride()
        for row in rep.rows:
            if row[4] != "-":
                assert row[2] == row[4]

    def test_table4_full_agreement(self):
        rep = table4_gar_filter()
        for row in rep.rows:
            assert row[1] == row[4] and row[2] == row[5]

    def test_table5_full_agreement(self):
        rep = table5_gar_stride()
        for row in rep.rows:
            assert row[1] == row[4] and row[2] == row[5]

    def test_table6_full_agreement(self):
        rep = table6_gar_inputdim()
        for row in rep.rows:
            assert row[1] == row[4] and row[2] == row[5]

    def test_equation_limits_rows(self):
        rep = equation_limits()
        assert len(rep.rows) == 5

    def test_table1_has_all_models(self):
        rep = table1_models()
        assert {r[0] for r in rep.rows} == {"lenet5", "vgg16", "vgg19", "googlenet"}


class TestAcceleratorReports:
    def test_table7_four_configs(self):
        rep = table7_configs()
        assert len(rep.rows) == 4

    def test_fig14_covers_all_fusable_layers(self):
        from repro.models import specs

        rep = fig14_flops_reduction()
        expected = sum(
            len(specs.fusable_layers(specs.get_specs(m)))
            for m in ("densenet", "vgg16", "googlenet", "lenet5")
        )
        assert len(rep.rows) == expected  # 2 + 5 + 12 + 3 = 22

    def test_ablation_monotone_columns(self):
        rep = ablation_reuse()

        def pct(cell):
            return float(cell.rstrip("%"))

        for row in rep.rows:
            rme, lar, gar, both = map(pct, row[2:6])
            assert rme <= lar + 1e-9
            assert rme <= gar + 1e-9
            assert max(lar, gar) <= both + 1e-9

    def test_resnet18_extension_rows(self):
        rep = extension_resnet18()
        assert rep.rows[-1][0] == "WHOLE NET"
        assert len(rep.rows) == 18  # 17 layers + total

    def test_pruning_extension_composition(self):
        rep = extension_pruning(sparsities=(0.5,))

        def pct(cell):
            return float(cell.rstrip("%"))

        for row in rep.rows:
            assert pct(row[4]) > pct(row[2])  # combined beats MLCNN alone

    def test_related_work_report(self):
        rep = related_fused_layer()
        assert len(rep.rows) == 4
        for row in rep.rows:
            assert float(row[4].rstrip("x")) > float(row[1].rstrip("x"))
