"""The ``--numerics`` CLI surface: one command, full health report.

Acceptance criterion of PR 5: ``python -m repro.experiments --numerics``
must produce a per-layer report covering forward *and* backward
statistics, quantized-path clip rates, and the measured reorder
divergence — and ``--numerics-report`` must persist it in both JSON
and JSONL shapes.
"""

import json

import pytest

from repro.experiments.__main__ import main


class TestNumericsCLI:
    def test_lenet_report_json(self, tmp_path, capsys):
        out = tmp_path / "numerics.json"
        rc = main(["--numerics", "lenet5", "--numerics-report", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "lenet5" in printed
        doc = json.loads(out.read_text())
        assert doc["bits"] == 8
        rep = doc["models"]["lenet5"]
        kinds = {row["kind"] for row in rep["layers"]}
        assert kinds == {"forward", "backward"}
        assert any(k.endswith("dorefa.act_clip") for k in rep["quant"])
        assert any(k.endswith("dorefa.weight_sat") for k in rep["quant"])
        div = rep["divergence"]
        assert div["layers"] == 2
        assert div["end_to_end_max_abs"] > 0.0  # avg pooling genuinely diverges
        assert rep["anomaly"] is None

    def test_jsonl_rows_typed_and_model_tagged(self, tmp_path):
        out = tmp_path / "numerics.jsonl"
        rc = main(["--numerics", "lenet5", "--numerics-report", str(out)])
        assert rc == 0
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        types = {row["type"] for row in rows}
        assert {"numerics", "quant_clip", "reorder_divergence"} <= types
        assert all(row["model"] == "lenet5" for row in rows)

    def test_honours_bits(self, tmp_path):
        out = tmp_path / "n.json"
        rc = main(["--numerics", "lenet5", "--bits", "4", "--numerics-report", str(out)])
        assert rc == 0
        assert json.loads(out.read_text())["bits"] == 4

    def test_unknown_model_rejected(self, capsys):
        rc = main(["--numerics", "resnet999"])
        assert rc == 2
        assert "unknown model" in capsys.readouterr().err
