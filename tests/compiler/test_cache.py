"""Plan cache: architecture signatures and re-validation skipping."""

import numpy as np
import pytest

from repro.compiler import (
    PLAN_CACHE,
    CompileContext,
    architecture_signature,
    clear_plan_cache,
    mlcnn_pipeline,
)
from repro.models import build_model


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestArchitectureSignature:
    def test_weights_do_not_enter_signature(self):
        a = build_model("lenet5", seed=1)
        b = build_model("lenet5", seed=2)  # same arch, different weights
        assert architecture_signature(a) == architecture_signature(b)

    def test_architecture_changes_signature(self):
        a = build_model("lenet5")
        b = build_model("vgg16", width_mult=0.125)
        c = build_model("lenet5", num_classes=100)
        assert architecture_signature(a) != architecture_signature(b)
        assert architecture_signature(a) != architecture_signature(c)

    def test_transforms_change_signature(self):
        a = build_model("lenet5")
        sig_before = architecture_signature(a)
        mlcnn_pipeline().run(a, CompileContext(validate=False, use_cache=False))
        assert architecture_signature(a) != sig_before


class TestPlanCache:
    def test_second_compilation_hits_cache(self):
        m1, report1 = mlcnn_pipeline(bits=8).run(
            build_model("lenet5", seed=1), CompileContext(quant_bits=8)
        )
        assert not report1.cached and report1.validated
        m2, report2 = mlcnn_pipeline(bits=8).run(
            build_model("lenet5", seed=2), CompileContext(quant_bits=8)
        )
        assert report2.cached and not report2.validated
        assert all(not r.validated for r in report2.records if r.ran)
        assert PLAN_CACHE.hits == 1

    def test_different_pipeline_spec_misses(self):
        mlcnn_pipeline(bits=8).run(build_model("lenet5"), CompileContext(quant_bits=8))
        _, report = mlcnn_pipeline(bits=4).run(
            build_model("lenet5"), CompileContext(quant_bits=4)
        )
        assert not report.cached

    def test_different_architecture_misses(self):
        mlcnn_pipeline().run(build_model("lenet5"))
        _, report = mlcnn_pipeline().run(build_model("vgg16", width_mult=0.125))
        assert not report.cached

    def test_cache_opt_out(self):
        mlcnn_pipeline().run(build_model("lenet5"))
        _, report = mlcnn_pipeline().run(
            build_model("lenet5"), CompileContext(use_cache=False)
        )
        assert not report.cached and report.validated

    def test_clear_plan_cache(self):
        mlcnn_pipeline().run(build_model("lenet5"))
        assert len(PLAN_CACHE) == 1
        clear_plan_cache()
        assert len(PLAN_CACHE) == 0
        _, report = mlcnn_pipeline().run(build_model("lenet5"))
        assert not report.cached

    def test_cached_compile_is_cheaper(self):
        _, cold = mlcnn_pipeline().run(build_model("lenet5", seed=1))
        _, warm = mlcnn_pipeline().run(build_model("lenet5", seed=2))
        assert warm.total_time_s < cold.total_time_s

    def test_cached_model_still_correct(self):
        from repro.core.transform import fused_blocks

        mlcnn_pipeline().run(build_model("lenet5", seed=1))
        model, report = mlcnn_pipeline().run(build_model("lenet5", seed=2))
        assert report.cached
        assert len(fused_blocks(model)) == 2
