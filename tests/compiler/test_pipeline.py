"""Pipeline execution: validation hooks, instrumentation, equivalence
with the historical prepare_mlcnn recipe."""

import numpy as np
import pytest

from repro.compiler import (
    CompileContext,
    PassValidationError,
    Pipeline,
    clear_plan_cache,
    mlcnn_pipeline,
)
from repro.compiler.pass_base import Pass
from repro.compiler.context import PassResult
from repro.core.transform import prepare_mlcnn
from repro.models import build_model
from repro.nn.tensor import Tensor, no_grad


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


@pytest.fixture
def x32():
    return Tensor(np.random.default_rng(8).normal(size=(2, 3, 32, 32)))


class TestMLCNNPipelineEquivalence:
    """Acceptance: prepare_mlcnn(model, bits) == mlcnn_pipeline(bits).run(model)."""

    @pytest.mark.parametrize("name,width", [("lenet5", 1.0), ("vgg16", 0.125)])
    @pytest.mark.parametrize("bits", [0, 8])
    def test_functionally_identical(self, name, width, bits, x32):
        a = build_model(name, width_mult=width, seed=4)
        b = build_model(name, width_mult=width, seed=4)
        prepare_mlcnn(a, quantize_bits=bits)
        b, _report = mlcnn_pipeline(bits=bits).run(b, CompileContext(quant_bits=bits))
        with no_grad():
            ya, yb = a(x32).data, b(x32).data
        np.testing.assert_allclose(ya, yb, atol=1e-12)

    def test_strict_failure_stays_loud(self):
        model = build_model("lenet5")
        prepare_mlcnn(model)
        with pytest.raises(ValueError):
            prepare_mlcnn(model)  # nothing left to fuse


class TestReportInstrumentation:
    def test_records_for_every_ran_pass(self):
        model = build_model("lenet5")
        _, report = mlcnn_pipeline(bits=8).run(model, CompileContext(quant_bits=8))
        ran = [r for r in report.records if r.ran]
        assert [r.name for r in ran] == ["set-pooling", "reorder", "fuse", "quantize", "lower"]
        for r in ran:
            assert r.wall_time_s >= 0.0
            assert r.rewrites >= 0
            assert r.validated
            assert r.flop_delta is not None
        assert report.record_for("fuse").rewrites == 2
        assert report.record_for("fuse").flop_delta < 0  # RME removes mults
        assert report.record_for("reorder").flop_delta == 0
        assert report.total_time_s > 0.0

    def test_fuse_preserves_probe_outputs(self):
        model = build_model("lenet5", order="pool_act")
        _, report = Pipeline(["fuse"]).run(model)
        dev = report.record_for("fuse").probe_max_dev
        assert dev is not None and dev < 1e-9

    def test_summary_and_experiment_report_render(self):
        model = build_model("lenet5")
        _, report = mlcnn_pipeline().run(model)
        text = report.summary()
        assert "fuse" in text and "rewrites" in text
        rep = report.to_experiment_report()
        assert len(rep.rows) == len(report.records)

    def test_inapplicable_pass_recorded_as_skipped(self):
        model = build_model("lenet5", order="pool_act")  # already reordered
        _, report = Pipeline(["reorder", "fuse"]).run(model)
        rec = report.record_for("reorder")
        assert not rec.ran and "not applicable" in rec.notes


class TestValidationHooks:
    def test_lying_semantics_pass_is_caught(self):
        class EvilPass(Pass):
            name = "evil"
            preserves_semantics = True  # a lie: it rescales a weight

            def run(self, model, ctx):
                next(iter(model.parameters())).data *= 3.0
                return PassResult(self.name, 1)

        model = build_model("lenet5")
        with pytest.raises(PassValidationError):
            Pipeline([EvilPass()]).run(model)

    def test_lying_param_pass_is_caught(self):
        class GrowPass(Pass):
            name = "grow"
            preserves_params = True  # a lie: it adds a conv

            def run(self, model, ctx):
                from repro.models.blocks import ConvBlock

                model.extra = ConvBlock(3, 3, 1, rng=ctx.rng)
                return PassResult(self.name, 1)

        model = build_model("lenet5")
        with pytest.raises(PassValidationError):
            Pipeline([GrowPass()]).run(model)

    def test_validation_off_skips_checks(self):
        model = build_model("lenet5")
        _, report = mlcnn_pipeline().run(model, CompileContext(validate=False))
        assert not report.validated
        assert all(not r.validated for r in report.records)

    def test_probe_mismatch_is_tolerated(self):
        # default probe is (2, 3, 32, 32); a 1-channel model can't eat it
        model = build_model("lenet5", in_channels=1)
        _, report = mlcnn_pipeline().run(model)
        assert report.notes and "probe forward failed" in report.notes[0]
        assert report.record_for("fuse").ran  # compilation still completed


class TestDeterminism:
    def test_same_context_seed_bitwise_identical(self, x32):
        outs = []
        for _ in range(2):
            model = build_model("googlenet", width_mult=0.25, seed=9)
            pipe = Pipeline(["set-pooling", "reorder", "to-allconv"])
            model, _ = pipe.run(model, CompileContext(seed=21))
            with no_grad():
                outs.append(model(x32).data)
        np.testing.assert_array_equal(outs[0], outs[1])


class TestPipelineTracing:
    def test_pass_spans_mirror_records(self, enabled_tracer):
        model = build_model("lenet5")
        _, report = mlcnn_pipeline(bits=8).run(model, CompileContext(quant_bits=8))
        spans = [ev for ev in enabled_tracer.events if ev.name.startswith("compile.pass.")]
        ran = [r for r in report.records if r.ran]
        assert [ev.name for ev in spans] == [f"compile.pass.{r.name}" for r in ran]
        for ev, record in zip(spans, ran):
            assert ev.attrs["rewrites"] == record.rewrites
            assert ev.parent == "compile.pipeline"

    def test_pipeline_span_attrs(self, enabled_tracer):
        model = build_model("lenet5")
        _, report = mlcnn_pipeline().run(model)
        pipe = next(ev for ev in enabled_tracer.events if ev.name == "compile.pipeline")
        assert pipe.attrs["passes_run"] == report.passes_run
        assert pipe.attrs["rewrites"] == report.total_rewrites
        assert pipe.attrs["cached"] is False
        # validation probes are traced too
        assert any(ev.name == "compile.probe" for ev in enabled_tracer.events)
