"""The built-in passes: registry, applicability, idempotence."""

import numpy as np
import pytest

from repro.compiler import (
    AllConvPass,
    CompileContext,
    FuseConvPoolPass,
    Pipeline,
    QuantizePass,
    ReorderActivationPoolingPass,
    ReorderDivergenceProbePass,
    RestoreOrderPass,
    SetPoolingPass,
    available_passes,
    get_pass,
    mlcnn_pipeline,
)
from repro.models import build_model
from repro.nn.tensor import Tensor, no_grad

BUILTIN = [
    "set-pooling",
    "reorder",
    "restore-order",
    "to-allconv",
    "fuse",
    "quantize",
    "prune",
    "reorder-probe",
]


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTIN) <= set(available_passes())

    def test_get_pass_builds_instances(self):
        p = get_pass("quantize", bits=4)
        assert isinstance(p, QuantizePass)
        assert p.bits == 4

    def test_unknown_pass_raises(self):
        with pytest.raises(KeyError):
            get_pass("constant-folding")

    def test_signatures_encode_config(self):
        assert SetPoolingPass("avg").signature() == "set-pooling(avg)"
        assert FuseConvPoolPass(strict=False).signature() == "fuse(strict=False)"
        assert QuantizePass(8).signature() == "quantize(8)"


class TestIdempotence:
    """Running the same pass twice is a no-op (zero rewrites)."""

    def test_set_pooling_second_run_is_noop(self):
        model = build_model("lenet5", pooling="max")
        ctx = CompileContext()
        p = SetPoolingPass("avg")
        assert p.run(model, ctx).rewrites == 2
        assert p.run(model, ctx).rewrites == 0

    def test_reorder_second_run_is_noop(self):
        model = build_model("lenet5")
        ctx = CompileContext()
        p = ReorderActivationPoolingPass()
        assert p.run(model, ctx).rewrites == 2
        assert not p.applies_to(model)
        assert p.run(model, ctx).rewrites == 0

    def test_restore_second_run_is_noop(self):
        model = build_model("lenet5", order="pool_act")
        ctx = CompileContext()
        p = RestoreOrderPass()
        assert p.run(model, ctx).rewrites == 2
        assert p.run(model, ctx).rewrites == 0

    def test_fuse_nonstrict_second_run_is_noop(self):
        model = build_model("lenet5", order="pool_act")
        ctx = CompileContext()
        p = FuseConvPoolPass(strict=False)
        assert p.run(model, ctx).rewrites == 2
        assert p.run(model, ctx).rewrites == 0

    def test_quantize_not_applicable_twice(self):
        model = build_model("lenet5")
        ctx = CompileContext()
        p = QuantizePass(8)
        assert p.applies_to(model)
        assert p.run(model, ctx).rewrites > 0
        assert not p.applies_to(model)  # no double-wrapping


class TestFuseStrictness:
    def test_strict_raises_on_unfusable(self):
        model = build_model("vgg16", width_mult=0.125)  # still ReLU+AP
        with pytest.raises(ValueError):
            FuseConvPoolPass(strict=True).run(model, CompileContext())

    def test_nonstrict_tolerates_unfusable(self):
        model = build_model("vgg16", width_mult=0.125)
        result = FuseConvPoolPass(strict=False).run(model, CompileContext())
        assert result.rewrites == 0


class TestAllConvDeterminism:
    def test_same_seed_identical_downsample_weights(self):
        x = Tensor(np.random.default_rng(3).normal(size=(2, 3, 32, 32)))
        outs = []
        for _ in range(2):
            model = build_model("googlenet", width_mult=0.25, seed=5)
            AllConvPass().run(model, CompileContext(seed=11))
            with no_grad():
                outs.append(model(x).data)
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_different_seed_differs(self):
        x = Tensor(np.random.default_rng(3).normal(size=(2, 3, 32, 32)))
        outs = []
        for seed in (11, 12):
            model = build_model("googlenet", width_mult=0.25, seed=5)
            AllConvPass().run(model, CompileContext(seed=seed))
            with no_grad():
                outs.append(model(x).data)
        assert not np.allclose(outs[0], outs[1])


class TestReorderDivergenceProbe:
    """The read-only reorder-probe pass (PR 5)."""

    def test_model_left_untouched(self):
        model = build_model("lenet5", seed=0, pooling="avg")
        ctx = CompileContext(seed=0)
        ref = model(Tensor(ctx.probe_batch())).data
        result = ReorderDivergenceProbePass().run(model, ctx)
        assert result.rewrites == 0
        np.testing.assert_array_equal(model(Tensor(ctx.probe_batch())).data, ref)

    def test_populates_ctx_state_and_details(self):
        model = build_model("lenet5", seed=0, pooling="avg")
        ctx = CompileContext(seed=0)
        result = ReorderDivergenceProbePass().run(model, ctx)
        for key in ("end_to_end_max_abs", "top1_flip_rate", "layers"):
            assert key in result.details
        stored = ctx.state["reorder_divergence"]
        assert stored["end_to_end_max_abs"] == result.details["end_to_end_max_abs"]
        assert stored["layers"] == 2
        assert stored["end_to_end_max_abs"] > 0.0  # avg pooling: real divergence

    def test_not_applicable_without_pooled_blocks(self):
        from repro.models.reorder import conv_pool_blocks

        model = build_model("lenet5", seed=0)
        for block in conv_pool_blocks(model):
            block.pool = None
        assert not ReorderDivergenceProbePass().applies_to(model)

    def test_passes_pipeline_validation(self):
        """The probe claims preserves_semantics — the pipeline's own
        probe-batch validation must agree (max|dev| 0)."""
        model = build_model("lenet5", seed=0, pooling="avg")
        pipe = Pipeline([ReorderDivergenceProbePass()], name="probe-only")
        _, report = pipe.run(model, CompileContext(seed=0))
        assert report.records[0].validated

    def test_mlcnn_pipeline_opt_in(self):
        names = [p.name for p in mlcnn_pipeline(bits=8, probe_divergence=True).passes]
        assert "reorder-probe" in names
        assert names.index("reorder-probe") > names.index("reorder")
        assert "reorder-probe" not in [p.name for p in mlcnn_pipeline(bits=8).passes]
