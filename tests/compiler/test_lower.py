"""The lowering pass: kernel selection, plan-cache replay, invalidation.

Satellite 2 of the lowering backend: the plan cache must replay a
stored kernel selection for repeated compilations of the same key, and
must *never* serve a stale selection when the shape class, bits, or
impl changes — every such change alters the cache key.
"""

import numpy as np
import pytest

from repro.compiler import (
    PLAN_CACHE,
    CompileContext,
    LowerFusedKernelPass,
    Pipeline,
    clear_plan_cache,
    lowered_kernels,
    mlcnn_pipeline,
)
from repro.core.fusion import FusedConvPool
from repro.core.kernels import KERNEL_REGISTRY
from repro.models import build_model
from repro.nn.tensor import Tensor, no_grad


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


@pytest.fixture
def x32():
    return Tensor(np.random.default_rng(3).normal(size=(2, 3, 32, 32)))


def _fused_modules(model):
    return [m for _, m in model.named_modules() if isinstance(m, FusedConvPool)]


class TestLoweringAttachment:
    def test_default_pipeline_attaches_f64_kernels(self):
        model, report = mlcnn_pipeline().run(build_model("lenet5"))
        bound = lowered_kernels(model)
        assert len(bound) == 2
        assert all(k.name == "fused-generic-f64" for _, k in bound)
        rec = report.record_for("lower")
        assert rec.ran and rec.rewrites == 2 and rec.validated

    def test_bits32_selects_nhwc_specialization(self):
        model, _ = mlcnn_pipeline(lower_bits=32).run(build_model("lenet5"))
        assert all(k.name == "fused-f32-nhwc" for _, k in lowered_kernels(model))

    def test_reference_impl_detaches_kernels(self, x32):
        model, _ = mlcnn_pipeline(lower_impl="reference").run(build_model("lenet5", seed=5))
        assert lowered_kernels(model) == []
        assert all(m.impl == "reference" for m in _fused_modules(model))
        twin, _ = mlcnn_pipeline().run(
            build_model("lenet5", seed=5), CompileContext(use_cache=False)
        )
        with no_grad():
            np.testing.assert_allclose(model(x32).data, twin(x32).data, atol=1e-9)

    def test_lower_false_omits_the_stage(self):
        model, report = mlcnn_pipeline(lower=False).run(build_model("lenet5"))
        assert lowered_kernels(model) == []
        with pytest.raises(KeyError):
            report.record_for("lower")

    def test_lowered_forward_matches_autograd_path(self, x32):
        model, _ = mlcnn_pipeline().run(build_model("lenet5", seed=7))
        with no_grad():
            lowered_out = model(x32).data
        for m in _fused_modules(model):
            m.attach_kernel(None)
        with no_grad():
            np.testing.assert_allclose(model(x32).data, lowered_out, atol=1e-12)

    def test_training_forward_ignores_bound_kernel(self, x32):
        model, _ = mlcnn_pipeline().run(build_model("lenet5", seed=7))
        out = model(x32)  # grad enabled: must use the autograd path
        out.sum().backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert grads, "lowered model must stay trainable"

    def test_kernel_plan_recorded_in_state_and_details(self):
        ctx = CompileContext()
        _, report = mlcnn_pipeline().run(build_model("lenet5"), ctx)
        plan = ctx.state["kernel_plan"]
        assert plan["impl"] == "vectorized" and plan["bits"] == 64
        assert not plan["from_cache"]
        assert set(plan["kernels"].values()) == {"fused-generic-f64"}
        assert report.record_for("lower").ran

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            LowerFusedKernelPass(impl="fast")
        with pytest.raises(ValueError):
            LowerFusedKernelPass(bits=16)

    def test_not_applicable_without_fused_modules(self):
        model = build_model("lenet5")  # nothing fused yet
        assert not LowerFusedKernelPass().applies_to(model)
        _, report = Pipeline([LowerFusedKernelPass()]).run(model)
        assert not report.record_for("lower").ran


class TestPlanCacheReplay:
    def test_second_compile_replays_without_selection(self):
        mlcnn_pipeline().run(build_model("lenet5", seed=1))
        before = KERNEL_REGISTRY.selections
        ctx = CompileContext()
        model, report = mlcnn_pipeline().run(build_model("lenet5", seed=2), ctx)
        assert report.cached
        assert KERNEL_REGISTRY.selections == before  # replayed by name
        assert ctx.state["kernel_plan"]["from_cache"]
        assert all(k.name == "fused-generic-f64" for _, k in lowered_kernels(model))

    def test_replayed_model_still_correct(self, x32):
        mlcnn_pipeline().run(build_model("lenet5", seed=1))
        model, report = mlcnn_pipeline().run(build_model("lenet5", seed=2))
        assert report.cached
        with no_grad():
            cached_out = model(x32).data
        for m in _fused_modules(model):
            m.attach_kernel(None)
        with no_grad():
            np.testing.assert_allclose(model(x32).data, cached_out, atol=1e-12)


class TestPlanCacheInvalidation:
    """Changing shape class, bits, or impl must change the key — the
    cache can never hand back a stale kernel selection."""

    def test_bits_change_is_a_different_key(self):
        mlcnn_pipeline().run(build_model("lenet5"))
        ctx = CompileContext()
        model, report = mlcnn_pipeline(lower_bits=32).run(build_model("lenet5"), ctx)
        assert not report.cached  # lower(bits=...) is in the pipeline spec
        assert not ctx.state["kernel_plan"]["from_cache"]
        assert all(k.name == "fused-f32-nhwc" for _, k in lowered_kernels(model))

    def test_impl_change_is_a_different_key(self):
        mlcnn_pipeline().run(build_model("lenet5"))
        ctx = CompileContext()
        model, report = mlcnn_pipeline(lower_impl="reference").run(
            build_model("lenet5"), ctx
        )
        assert not report.cached
        assert lowered_kernels(model) == []
        assert ctx.state["kernel_plan"]["kernels"]  # fresh plan, all "reference"
        assert set(ctx.state["kernel_plan"]["kernels"].values()) == {"reference"}

    def test_shape_class_change_is_a_different_key(self):
        """Different architecture (different k/pool per layer) — the
        architecture signature differs, so the stored plan is unused."""
        mlcnn_pipeline().run(build_model("lenet5"))
        ctx = CompileContext()
        _, report = mlcnn_pipeline().run(build_model("vgg16", width_mult=0.125), ctx)
        assert not report.cached
        assert not ctx.state["kernel_plan"]["from_cache"]

    def test_spec_strings_differ(self):
        specs = {
            mlcnn_pipeline().spec(),
            mlcnn_pipeline(lower_bits=32).spec(),
            mlcnn_pipeline(lower_impl="reference").spec(),
            mlcnn_pipeline(lower=False).spec(),
        }
        assert len(specs) == 4

    def test_cleared_cache_forgets_kernel_plans(self):
        ctx = CompileContext()
        mlcnn_pipeline().run(build_model("lenet5"), ctx)
        key = ctx.state["plan_cache_key"]
        assert PLAN_CACHE.kernel_plan(key) is not None
        clear_plan_cache()
        assert PLAN_CACHE.kernel_plan(key) is None

    def test_registry_change_invalidates_stored_plans(self):
        """Registering (or removing) a kernel spec changes the registry
        signature, so a plan selected under the old population is not
        replayed — the lowering pass re-selects from scratch."""
        from repro.core.kernels import KernelSpec

        ctx = CompileContext()
        mlcnn_pipeline().run(build_model("lenet5"), ctx)
        key = ctx.state["plan_cache_key"]
        sig_before = KERNEL_REGISTRY.signature()
        assert PLAN_CACHE.kernel_plan(key, sig_before) is not None

        spec = KernelSpec(
            "test-ephemeral", -100, lambda sc: None, lambda sc: False
        )
        KERNEL_REGISTRY.register(spec)
        try:
            sig_after = KERNEL_REGISTRY.signature()
            assert sig_after != sig_before
            # stale plan refused under the new signature...
            assert PLAN_CACHE.kernel_plan(key, sig_after) is None
            # ...and a recompilation re-selects rather than replaying
            ctx2 = CompileContext()
            mlcnn_pipeline().run(build_model("lenet5"), ctx2)
            assert not ctx2.state["kernel_plan"]["from_cache"]
        finally:
            KERNEL_REGISTRY.unregister("test-ephemeral")
        # removal restores the original signature: stored plans valid again
        assert KERNEL_REGISTRY.signature() == sig_before

    def test_signature_stable_across_reads(self):
        assert KERNEL_REGISTRY.signature() == KERNEL_REGISTRY.signature()
