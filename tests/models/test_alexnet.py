"""AlexNet: the paper's 11x11 LAR reference model."""

import numpy as np
import pytest

from repro.core import opcount as oc
from repro.models import build_model, specs
from repro.models.specs import get_specs
from repro.nn.tensor import Tensor, no_grad


class TestAlexNetModel:
    def test_forward_at_cifar_size(self):
        model = build_model("alexnet", width_mult=0.25)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 32, 32)))
        with no_grad():
            assert model(x).shape == (2, 10)

    def test_three_fusable_blocks(self):
        from repro.core.transform import fuse_network
        from repro.models import reorder_activation_pooling

        model = build_model("alexnet", width_mult=0.25)
        reorder_activation_pooling(model)
        _, replaced = fuse_network(model)
        assert len(replaced) == 3

    def test_rejects_bad_image_size(self):
        with pytest.raises(ValueError):
            build_model("alexnet", image_size=30)


class TestAlexNetSpecs:
    def test_imagenet_scale_keeps_11x11(self):
        """At 224x224 the first kernel is the paper's 11x11 reference."""
        sl = get_specs("alexnet", 224)
        assert sl[0].kernel == 11
        assert sl[0].is_fusable

    def test_kernel_scales_down_with_input(self):
        assert get_specs("alexnet", 64)[0].kernel == 7
        assert get_specs("alexnet", 32)[0].kernel == 5

    def test_conv1_lar_reduction_matches_table2(self):
        """Table II says an 11x11 filter reaches the best LAR rate
        (22.8%); AlexNet's conv1 is exactly that configuration."""
        sl = get_specs("alexnet", 224)
        k = sl[0].kernel
        assert round(100 * oc.lar_reduction_rate(k), 1) == 22.8

    def test_conv1_gar_reduction_at_imagenet_scale(self):
        """Table VI: large inputs push GAR towards its limit; at D=224
        with K=11 the reduction is well above the D=28 value."""
        assert oc.gar_reduction_rate(224, 11) > oc.gar_reduction_rate(28, 11)

    def test_fusable_count(self):
        assert len(specs.fusable_layers(get_specs("alexnet", 224))) == 3

    def test_accelerator_speedup_on_conv1(self):
        """The big fused first layer speeds up like the other 2x2-pooled
        layers (~4x at FP32)."""
        from repro.accel import compare_networks, get_config

        sl = get_specs("alexnet", 64)
        cmp = compare_networks(sl, get_config("dcnn-fp32"), get_config("mlcnn-fp32"))
        s = cmp.layer_speedups()
        assert s["C1"] > 2.0
