"""Transform round-trips: reorder → restore is exact, twice is a no-op."""

import numpy as np
import pytest

from repro.models import (
    build_model,
    conv_pool_blocks,
    reorder_activation_pooling,
    restore_original_order,
    to_allconv,
)
from repro.nn.tensor import Tensor, no_grad

SMALL = {"lenet5": 1.0, "vgg16": 0.125, "googlenet": 0.25, "resnet18": 0.125}


@pytest.fixture
def x32():
    return Tensor(np.random.default_rng(17).normal(size=(2, 3, 32, 32)))


class TestReorderRoundTrip:
    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_restore_recovers_outputs_exactly(self, name, x32):
        model = build_model(name, width_mult=SMALL[name], seed=3)
        with no_grad():
            before = model(x32).data
        reorder_activation_pooling(model)
        restore_original_order(model)
        with no_grad():
            after = model(x32).data
        # identical graph, identical float ops: bitwise equality
        np.testing.assert_array_equal(before, after)

    def test_reorder_twice_equals_once(self, x32):
        model = build_model("lenet5", seed=3)
        reorder_activation_pooling(model)
        with no_grad():
            once = model(x32).data
        reorder_activation_pooling(model)
        with no_grad():
            twice = model(x32).data
        np.testing.assert_array_equal(once, twice)
        assert all(b.order == "pool_act" for b in conv_pool_blocks(model))


class TestAllConvDeterminism:
    def test_explicit_seed_reproducible(self, x32):
        outs = []
        for _ in range(2):
            model = build_model("googlenet", width_mult=0.25, seed=5)
            to_allconv(model, seed=42)
            with no_grad():
                outs.append(model(x32).data)
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_explicit_rng_reproducible(self, x32):
        outs = []
        for _ in range(2):
            model = build_model("googlenet", width_mult=0.25, seed=5)
            to_allconv(model, rng=np.random.default_rng(7))
            with no_grad():
                outs.append(model(x32).data)
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_default_matches_seed_zero(self, x32):
        a = build_model("googlenet", width_mult=0.25, seed=5)
        b = build_model("googlenet", width_mult=0.25, seed=5)
        to_allconv(a)
        to_allconv(b, seed=0)
        with no_grad():
            np.testing.assert_array_equal(a(x32).data, b(x32).data)
