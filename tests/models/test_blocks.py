"""ConvBlock / PoolSpec / Inception / Dense / Transition / Res blocks."""

import numpy as np
import pytest

from repro.models.blocks import (
    BasicResBlock,
    ConvBlock,
    DenseBlock,
    Inception,
    PooledInception,
    PoolSpec,
    TransitionBlock,
)
from repro.nn import functional as F
from repro.nn.tensor import Tensor, no_grad


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestPoolSpec:
    def test_stride_defaults_to_kernel(self):
        p = PoolSpec("avg", 3)
        assert p.stride == 3

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            PoolSpec("median", 2)

    def test_rejects_bad_kernel(self):
        with pytest.raises(ValueError):
            PoolSpec("avg", 0)

    def test_apply_avg_and_max(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 4, 4)))
        assert np.allclose(PoolSpec("avg", 2).apply(x).data, F.avg_pool2d(x, 2).data)
        assert np.allclose(PoolSpec("max", 2).apply(x).data, F.max_pool2d(x, 2).data)


class TestConvBlock:
    def test_forward_act_pool_order(self, rng):
        blk = ConvBlock(1, 2, 3, pool=PoolSpec("avg", 2), order="act_pool", rng=rng)
        x = Tensor(rng.normal(size=(1, 1, 8, 8)))
        with no_grad():
            out = blk(x)
            ref = F.avg_pool2d(F.relu(blk.conv(x)), 2)
        np.testing.assert_allclose(out.data, ref.data)

    def test_forward_pool_act_order(self, rng):
        blk = ConvBlock(1, 2, 3, pool=PoolSpec("avg", 2), order="pool_act", rng=rng)
        x = Tensor(rng.normal(size=(1, 1, 8, 8)))
        with no_grad():
            out = blk(x)
            ref = F.relu(F.avg_pool2d(blk.conv(x), 2))
        np.testing.assert_allclose(out.data, ref.data)

    def test_no_pool(self, rng):
        blk = ConvBlock(1, 2, 3, rng=rng)
        with no_grad():
            out = blk(Tensor(rng.normal(size=(1, 1, 6, 6))))
        assert out.shape == (1, 2, 4, 4)
        assert (out.data >= 0).all()

    def test_activation_variants(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 5, 5)))
        for act in ("relu", "sigmoid", "tanh", "none"):
            blk = ConvBlock(1, 1, 3, activation=act, rng=rng)
            with no_grad():
                blk(x)

    def test_rejects_unknown_activation(self, rng):
        with pytest.raises(ValueError):
            ConvBlock(1, 1, 3, activation="gelu", rng=rng)

    def test_rejects_unknown_order(self, rng):
        with pytest.raises(ValueError):
            ConvBlock(1, 1, 3, order="pool_first", rng=rng)

    def test_batchnorm_included(self, rng):
        blk = ConvBlock(1, 4, 3, batchnorm=True, rng=rng)
        assert blk.bn is not None
        with no_grad():
            blk(Tensor(rng.normal(size=(2, 1, 6, 6))))

    def test_is_fusable_conditions(self, rng):
        fusable = ConvBlock(1, 1, 3, pool=PoolSpec("avg", 2), order="pool_act", rng=rng)
        assert fusable.is_fusable()
        # wrong order
        assert not ConvBlock(1, 1, 3, pool=PoolSpec("avg", 2), order="act_pool", rng=rng).is_fusable()
        # max pooling
        assert not ConvBlock(1, 1, 3, pool=PoolSpec("max", 2), order="pool_act", rng=rng).is_fusable()
        # strided conv
        assert not ConvBlock(1, 1, 3, stride=2, pool=PoolSpec("avg", 2), order="pool_act", rng=rng).is_fusable()
        # no pool
        assert not ConvBlock(1, 1, 3, rng=rng).is_fusable()
        # overlapping pool
        assert not ConvBlock(
            1, 1, 3, pool=PoolSpec("avg", 3, stride=2), order="pool_act", rng=rng
        ).is_fusable()


class TestInception:
    def test_output_channels(self, rng):
        inc = Inception(8, 4, 2, 6, 2, 3, 5, rng=rng)
        assert inc.out_channels == 4 + 6 + 3 + 5
        with no_grad():
            out = inc(Tensor(rng.normal(size=(1, 8, 8, 8))))
        assert out.shape == (1, 18, 8, 8)

    def test_forward_is_relu_of_preact(self, rng):
        inc = Inception(4, 2, 2, 2, 2, 2, 2, rng=rng)
        x = Tensor(rng.normal(size=(1, 4, 6, 6)))
        with no_grad():
            pre = inc.forward_preact(x)
            out = inc(x)
        np.testing.assert_allclose(out.data, np.maximum(pre.data, 0))

    def test_output_blocks_are_preactivation(self, rng):
        inc = Inception(4, 2, 2, 2, 2, 2, 2, rng=rng)
        assert all(b.activation == "none" for b in inc.output_blocks())


class TestPooledInception:
    def _make(self, order, rng):
        inc = Inception(4, 2, 2, 2, 2, 2, 2, rng=rng)
        return PooledInception(inc, PoolSpec("avg", 2), order=order, rng=rng)

    def test_act_pool_matches_manual(self, rng):
        pi = self._make("act_pool", rng)
        x = Tensor(rng.normal(size=(1, 4, 8, 8)))
        with no_grad():
            out = pi(x)
            ref = F.avg_pool2d(F.relu(pi.inception.forward_preact(x)), 2)
        np.testing.assert_allclose(out.data, ref.data)

    def test_pool_act_matches_manual(self, rng):
        pi = self._make("pool_act", rng)
        x = Tensor(rng.normal(size=(1, 4, 8, 8)))
        with no_grad():
            out = pi(x)
            ref = F.relu(F.avg_pool2d(pi.inception.forward_preact(x), 2))
        np.testing.assert_allclose(out.data, ref.data)

    def test_rejects_unknown_order(self, rng):
        inc = Inception(4, 2, 2, 2, 2, 2, 2, rng=rng)
        with pytest.raises(ValueError):
            PooledInception(inc, PoolSpec("avg", 2), order="sideways")

    def test_downsample_mode(self, rng):
        pi = self._make("act_pool", rng)
        from repro.models.blocks import ConvBlock

        pi.downsample = ConvBlock(pi.out_channels, pi.out_channels, 3, stride=2, padding=1, rng=rng)
        pi.pool = None
        with no_grad():
            out = pi(Tensor(rng.normal(size=(1, 4, 8, 8))))
        assert out.shape == (1, 8, 4, 4)


class TestDenseAndTransition:
    def test_dense_block_concat_growth(self, rng):
        db = DenseBlock(6, growth_rate=3, num_layers=4, rng=rng)
        assert db.out_channels == 6 + 4 * 3
        with no_grad():
            out = db(Tensor(rng.normal(size=(1, 6, 8, 8))))
        assert out.shape == (1, 18, 8, 8)

    def test_transition_halves_spatial(self, rng):
        tb = TransitionBlock(8, 4, rng=rng)
        with no_grad():
            out = tb(Tensor(rng.normal(size=(1, 8, 8, 8))))
        assert out.shape == (1, 4, 4, 4)

    def test_transition_default_order_is_reordered(self, rng):
        tb = TransitionBlock(8, 4, rng=rng)
        assert tb.block.order == "pool_act"
        assert tb.block.is_fusable()


class TestBasicResBlock:
    def test_identity_skip(self, rng):
        blk = BasicResBlock(4, 4, rng=rng)
        assert blk.proj is None
        with no_grad():
            out = blk(Tensor(rng.normal(size=(1, 4, 8, 8))))
        assert out.shape == (1, 4, 8, 8)

    def test_projection_on_stride(self, rng):
        blk = BasicResBlock(4, 8, stride=2, rng=rng)
        assert blk.proj is not None
        with no_grad():
            out = blk(Tensor(rng.normal(size=(1, 4, 8, 8))))
        assert out.shape == (1, 8, 4, 4)

    def test_gradients_flow_through_skip(self, rng):
        blk = BasicResBlock(2, 2, rng=rng)
        x = Tensor(rng.normal(size=(1, 2, 6, 6)), requires_grad=True)
        blk(x).sum().backward()
        assert x.grad is not None and np.abs(x.grad).sum() > 0
