"""Layer reordering and all-conv transforms (Section III)."""

import numpy as np
import pytest

from repro.models import (
    MODEL_REGISTRY,
    build_model,
    conv_pool_blocks,
    reorder_activation_pooling,
    restore_original_order,
    set_pooling,
    to_allconv,
)
from repro.models.blocks import ConvBlock, PoolSpec
from repro.nn import functional as F
from repro.nn.tensor import Tensor, no_grad

SMALL = {"alexnet": 0.25, "lenet5": 1.0, "vgg16": 0.125, "vgg19": 0.125, "googlenet": 0.0625,
         "densenet": 0.5, "resnet18": 0.125}


@pytest.fixture
def x32():
    return Tensor(np.random.default_rng(2).normal(size=(2, 3, 32, 32)))


class TestReorderTransform:
    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_reorder_flips_every_pooled_block(self, name):
        model = build_model(name, width_mult=SMALL[name])
        reorder_activation_pooling(model)
        for blk in conv_pool_blocks(model):
            assert blk.order == "pool_act"

    def test_restore_undoes_reorder(self):
        model = build_model("lenet5")
        reorder_activation_pooling(model)
        restore_original_order(model)
        assert all(b.order == "act_pool" for b in conv_pool_blocks(model))

    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_reorder_preserves_shapes(self, name, x32):
        model = build_model(name, width_mult=SMALL[name])
        with no_grad():
            before = model(x32).shape
        reorder_activation_pooling(model)
        with no_grad():
            after = model(x32).shape
        assert before == after

    def test_maxpool_reorder_is_exact(self, x32):
        """ReLU(maxpool(x)) == maxpool(ReLU(x)) — the reorder is lossless
        for max pooling (cited from Daultani et al.)."""
        model = build_model("vgg16", width_mult=0.125, pooling="max", seed=3)
        with no_grad():
            before = model(x32).data
        reorder_activation_pooling(model)
        with no_grad():
            after = model(x32).data
        np.testing.assert_allclose(before, after, atol=1e-10)

    def test_avgpool_reorder_jensen_inequality(self):
        """relu(avg(x)) <= avg(relu(x)) elementwise (ReLU convex), so a
        single reordered block is pointwise below the original."""
        rng = np.random.default_rng(4)
        blk = ConvBlock(2, 3, 3, pool=PoolSpec("avg", 2), order="act_pool", rng=rng)
        x = Tensor(rng.normal(size=(4, 2, 10, 10)))
        with no_grad():
            original = blk(x).data
            blk.order = "pool_act"
            reordered = blk(x).data
        assert (reordered <= original + 1e-12).all()
        # and they differ somewhere (mixed-sign windows exist)
        assert not np.allclose(original, reordered)

    def test_reorder_counts_match_paper(self):
        """Fusable layer counts after reordering: LeNet-5 2, VGG-16 5,
        GoogLeNet 3 pooled stages, DenseNet 3 transitions."""
        counts = {}
        for name in ("lenet5", "vgg16", "googlenet", "densenet"):
            model = build_model(name, width_mult=SMALL[name])
            reorder_activation_pooling(model)
            counts[name] = len(conv_pool_blocks(model))
        assert counts["lenet5"] == 2
        assert counts["vgg16"] == 5
        assert counts["googlenet"] == 3  # pooled inception stages (4 convs each)
        assert counts["densenet"] == 3


class TestSetPooling:
    def test_switches_kind(self):
        model = build_model("vgg16", width_mult=0.125, pooling="max")
        set_pooling(model, "avg")
        assert all(b.pool.kind == "avg" for b in conv_pool_blocks(model))

    def test_rejects_unknown_kind(self):
        model = build_model("lenet5")
        with pytest.raises(ValueError):
            set_pooling(model, "median")

    def test_changes_output(self, x32):
        model = build_model("lenet5", pooling="max", seed=1)
        with no_grad():
            a = model(x32).data
        set_pooling(model, "avg")
        with no_grad():
            b = model(x32).data
        assert not np.allclose(a, b)


class TestAllConv:
    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_allconv_preserves_output_shape(self, name, x32):
        model = build_model(name, width_mult=SMALL[name])
        with no_grad():
            before = model(x32).shape
        to_allconv(model)
        with no_grad():
            after = model(x32).shape
        assert before == after

    def test_allconv_removes_all_pools(self):
        model = build_model("vgg16", width_mult=0.125)
        to_allconv(model)
        assert conv_pool_blocks(model) == []

    def test_allconv_boosts_stride(self):
        model = build_model("lenet5")
        to_allconv(model)
        strides = [b.conv.stride for _, b in model.named_modules() if isinstance(b, ConvBlock)]
        assert (2, 2) in strides

    def test_allconv_googlenet_adds_downsample(self):
        from repro.models.blocks import PooledInception

        model = build_model("googlenet", width_mult=0.0625)
        to_allconv(model)
        pooled = [m for _, m in model.named_modules() if isinstance(m, PooledInception)]
        assert all(p.pool is None for p in pooled)
        assert all(p.downsample is not None for p in pooled)

    def test_allconv_reduces_or_equals_conv_outputs(self, x32):
        """All-conv computes strictly fewer conv outputs (that is its
        point: it skips the features pooling would discard)."""
        from repro.analysis.flops import count_model_macs

        dense = build_model("lenet5")
        allconv = to_allconv(build_model("lenet5"))
        macs_dense = count_model_macs(dense, (1, 3, 32, 32))
        macs_allconv = count_model_macs(allconv, (1, 3, 32, 32))
        assert macs_allconv < macs_dense
