"""Model zoo: every architecture builds, runs, trains; Table I params."""

import numpy as np
import pytest

from repro.models import MODEL_REGISTRY, build_model
from repro.nn import functional as F
from repro.nn.tensor import Tensor, no_grad

SMALL = {"alexnet": 0.25, "lenet5": 1.0, "vgg16": 0.125, "vgg19": 0.125, "googlenet": 0.0625,
         "densenet": 0.5, "resnet18": 0.125}


@pytest.fixture
def x32():
    return Tensor(np.random.default_rng(0).normal(size=(2, 3, 32, 32)))


class TestForwardPasses:
    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_forward_shape(self, name, x32):
        model = build_model(name, num_classes=7, width_mult=SMALL[name])
        with no_grad():
            out = model(x32)
        assert out.shape == (2, 7)
        assert np.isfinite(out.data).all()

    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_backward_reaches_every_parameter(self, name, x32):
        model = build_model(name, num_classes=4, width_mult=SMALL[name])
        out = model(x32)
        F.cross_entropy(out, np.array([0, 1])).backward()
        for pname, p in model.named_parameters():
            assert p.grad is not None, f"{name}: no grad for {pname}"
            assert np.isfinite(p.grad).all(), f"{name}: non-finite grad for {pname}"

    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_deterministic_given_seed(self, name, x32):
        a = build_model(name, width_mult=SMALL[name], seed=5)
        b = build_model(name, width_mult=SMALL[name], seed=5)
        with no_grad():
            np.testing.assert_array_equal(a(x32).data, b(x32).data)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("mobilenet")


class TestTableI:
    def test_lenet5_parameter_count_matches_paper(self):
        """Paper Table I: LeNet-5 has ~62K learnable parameters."""
        model = build_model("lenet5", num_classes=10, image_size=32)
        assert abs(model.num_parameters() - 62_000) < 1_500

    def test_vgg19_larger_than_vgg16(self):
        v16 = build_model("vgg16", width_mult=0.25)
        v19 = build_model("vgg19", width_mult=0.25)
        assert v19.num_parameters() > v16.num_parameters()

    def test_conv_layer_counts(self):
        """Table I conv-layer counts via the spec lists."""
        from repro.models import specs

        assert len(specs.get_specs("lenet5")) == 3  # 1+1+1
        assert len(specs.get_specs("vgg16")) == 13  # 2+2+3+3+3
        assert len(specs.get_specs("vgg19")) == 16  # 2+2+4+4+4
        assert len(specs.get_specs("googlenet")) == 57  # 3 stem + 9x6


class TestSizeValidation:
    def test_vgg_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            build_model("vgg16", image_size=24)

    def test_googlenet_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            build_model("googlenet", image_size=30)

    def test_lenet_rejects_tiny_images(self):
        with pytest.raises(ValueError):
            build_model("lenet5", image_size=8)

    def test_densenet_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            build_model("densenet", image_size=20)

    def test_resnet_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            build_model("resnet18", image_size=24)


class TestWidthScaling:
    def test_width_mult_scales_parameters(self):
        small = build_model("vgg16", width_mult=0.125)
        large = build_model("vgg16", width_mult=0.25)
        assert large.num_parameters() > 2 * small.num_parameters()

    def test_models_work_at_16px(self):
        x16 = Tensor(np.random.default_rng(1).normal(size=(1, 3, 16, 16)))
        for name in ("lenet5", "googlenet", "densenet", "resnet18"):
            model = build_model(name, image_size=16, width_mult=SMALL[name])
            with no_grad():
                assert model(x16).shape == (1, 10)


class TestPoolingAndOrderOptions:
    @pytest.mark.parametrize("name", ["lenet5", "vgg16", "googlenet", "resnet18"])
    def test_max_pooling_variant(self, name, x32):
        model = build_model(name, width_mult=SMALL[name], pooling="max")
        with no_grad():
            assert model(x32).shape == (2, 10)

    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_reordered_construction(self, name, x32):
        model = build_model(name, width_mult=SMALL[name], order="pool_act")
        with no_grad():
            assert model(x32).shape == (2, 10)
