"""Layer-spec lists: internal consistency and agreement with live models."""

import numpy as np
import pytest

from repro.models import build_model, specs
from repro.models.specs import LayerSpec, fusable_layers, get_specs
from repro.nn.tensor import Tensor, no_grad


class TestLayerSpec:
    def test_output_sizes(self):
        s = LayerSpec("c", 3, 8, 32, 5, pool=2)
        assert s.conv_output_size == 28
        assert s.output_size == 14

    def test_padding_preserves_size(self):
        s = LayerSpec("c", 3, 8, 32, 3, padding=1)
        assert s.conv_output_size == 32

    def test_pool_stride_defaults(self):
        s = LayerSpec("c", 1, 1, 8, 3, pool=2)
        assert s.pool_stride == 2

    def test_is_fusable(self):
        assert LayerSpec("c", 1, 1, 8, 3, pool=2).is_fusable
        assert not LayerSpec("c", 1, 1, 8, 3).is_fusable
        assert not LayerSpec("c", 1, 1, 8, 3, stride=2, pool=2).is_fusable

    def test_macs(self):
        s = LayerSpec("c", 2, 4, 6, 3)
        assert s.macs == 4 * 4 * 4 * 2 * 9

    def test_invalid_spec_raises(self):
        with pytest.raises(ValueError):
            LayerSpec("c", 0, 1, 8, 3)

    def test_empty_output_raises(self):
        with pytest.raises(ValueError):
            LayerSpec("c", 1, 1, 4, 7).conv_output_size


class TestModelSpecs:
    def test_fusable_counts_match_paper(self):
        """Section VII: LeNet-5 2, VGG-16 5, GoogLeNet 12, DenseNet 3."""
        assert len(fusable_layers(get_specs("lenet5"))) == 2
        assert len(fusable_layers(get_specs("vgg16"))) == 5
        assert len(fusable_layers(get_specs("googlenet"))) == 12
        assert len(fusable_layers(get_specs("densenet"))) == 3

    def test_googlenet_final_stage_has_8x8_pool(self):
        """The paper attributes GoogLeNet's 98% mult reduction to its 8x8
        final average pool."""
        stage5b = [s for s in get_specs("googlenet") if s.name.startswith("5b") and s.pool]
        assert stage5b and all(s.pool == 8 for s in stage5b)

    def test_densenet_transitions_are_1x1(self):
        transitions = fusable_layers(get_specs("densenet"))
        assert all(s.kernel == 1 for s in transitions)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_specs("mobilenet")

    def test_chained_spatial_dims_consistent(self):
        """Each layer's input size equals its producer's output size
        within sequential models."""
        for model in ("lenet5", "vgg16", "vgg19"):
            layer_specs = get_specs(model)
            for prev, cur in zip(layer_specs, layer_specs[1:]):
                assert cur.input_size == prev.output_size, (model, cur.name)

    @pytest.mark.parametrize("model", ["lenet5", "vgg16", "densenet"])
    def test_specs_agree_with_live_model_macs(self, model):
        """Conv MACs from specs match a MAC-counting forward pass of the
        full-width live model."""
        from repro.analysis.flops import count_model_macs

        spec_macs = sum(s.macs for s in get_specs(model))
        live = build_model(model, image_size=32, width_mult=1.0)
        live_macs = count_model_macs(live, (1, 3, 32, 32))
        # live includes the classifier Linear layers; conv MACs dominate
        assert spec_macs <= live_macs
        assert spec_macs > 0.5 * live_macs

    def test_googlenet_specs_agree_with_live_macs(self):
        from repro.analysis.flops import count_model_macs

        spec_macs = sum(s.macs for s in get_specs("googlenet"))
        live = build_model("googlenet", image_size=32, width_mult=1.0)
        live_macs = count_model_macs(live, (1, 3, 32, 32))
        # inception pool-branch maxpool has no MACs; convs must line up
        assert abs(spec_macs - live_macs) / live_macs < 0.05

    def test_resnet18_stage_progression(self):
        layer_specs = get_specs("resnet18")
        widths = [s.out_channels for s in layer_specs]
        assert widths[0] == 64 and widths[-1] == 512

    def test_image_size_parameter_respected(self):
        for model in specs.MODEL_SPECS:
            for size in (32, 64):
                layer_specs = get_specs(model, size)
                assert layer_specs[0].input_size == size
