"""Fused conv-pool kernel: functional equivalence and exact op counts.

The central invariant of the paper (Section IV): RME/LAR/GAR change
*how* the result is computed, never *what* is computed —
``fused(x, w, b) == relu(avgpool(conv(x, w, b)))`` for every shape.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fusion import (
    FusedConvPool,
    OpCounter,
    box_sum,
    dense_conv_pool_counted,
    fused_conv_pool,
    fused_conv_pool_counted,
)
from repro.core import opcount as oc
from repro.models.blocks import ConvBlock, PoolSpec
from repro.nn import functional as F
from repro.nn.tensor import Tensor, no_grad


def reference(x, w, b, pool, padding=0, activation="relu"):
    """Unfused Conv -> AvgPool -> activation."""
    out = F.avg_pool2d(F.conv2d(Tensor(x), Tensor(w), Tensor(b) if b is not None else None, padding=padding), pool)
    if activation == "relu":
        out = F.relu(out)
    return out.data


@pytest.fixture
def rng():
    return np.random.default_rng(21)


class TestBoxSum:
    def test_2x2_values(self):
        x = np.arange(9.0).reshape(3, 3)
        out = box_sum(x, 2)
        np.testing.assert_allclose(out, [[8, 12], [20, 24]])

    def test_p1_is_identity(self, rng):
        x = rng.normal(size=(2, 5, 5))
        assert box_sum(x, 1) is x

    def test_rejects_small_input(self):
        with pytest.raises(ValueError):
            box_sum(np.zeros((2, 2)), 3)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            box_sum(np.zeros((4, 4)), 0)

    def test_batched_leading_axes(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        out = box_sum(x, 2)
        assert out.shape == (2, 3, 5, 5)
        np.testing.assert_allclose(out[1, 2], box_sum(x[1, 2], 2))


class TestVectorizedEquivalence:
    @pytest.mark.parametrize("k,p,pad", [(2, 2, 0), (3, 2, 0), (3, 2, 1), (5, 2, 2), (1, 2, 0), (3, 4, 0), (2, 3, 0)])
    def test_matches_reference(self, rng, k, p, pad):
        c_in, c_out, h = 3, 4, 16
        x = rng.normal(size=(2, c_in, h, h))
        w = rng.normal(size=(c_out, c_in, k, k))
        b = rng.normal(size=c_out)
        with no_grad():
            fused = fused_conv_pool(Tensor(x), Tensor(w), Tensor(b), pool=p, padding=pad).data
        ref = reference(x, w, b, p, pad)
        np.testing.assert_allclose(fused, ref, atol=1e-10)

    def test_activation_variants(self, rng):
        x = rng.normal(size=(1, 1, 8, 8))
        w = rng.normal(size=(1, 1, 3, 3))
        with no_grad():
            none = fused_conv_pool(Tensor(x), Tensor(w), pool=2, activation="none").data
            relu = fused_conv_pool(Tensor(x), Tensor(w), pool=2, activation="relu").data
            sig = fused_conv_pool(Tensor(x), Tensor(w), pool=2, activation="sigmoid").data
            tanh = fused_conv_pool(Tensor(x), Tensor(w), pool=2, activation="tanh").data
        np.testing.assert_allclose(relu, np.maximum(none, 0))
        np.testing.assert_allclose(sig, 1 / (1 + np.exp(-none)))
        np.testing.assert_allclose(tanh, np.tanh(none))

    def test_rejects_unknown_activation(self, rng):
        with pytest.raises(ValueError):
            fused_conv_pool(
                Tensor(rng.normal(size=(1, 1, 6, 6))),
                Tensor(rng.normal(size=(1, 1, 2, 2))),
                activation="swish",
            )

    def test_overlapping_pool_matches_unfused(self, rng):
        """stride != pool is no longer rejected: it lowers to the
        strided gather (cumsum identity holds for any pool stride)."""
        x = Tensor(rng.normal(size=(1, 1, 8, 8)))
        w = Tensor(rng.normal(size=(1, 1, 3, 3)))
        with no_grad():
            fused = fused_conv_pool(x, w, pool=3, pool_stride=2).data
            ref = F.relu(F.avg_pool2d(F.conv2d(x, w), 3, stride=2)).data
        np.testing.assert_allclose(fused, ref, atol=1e-12)

    def test_rejects_invalid_pool_stride(self, rng):
        with pytest.raises(ValueError):
            fused_conv_pool(
                Tensor(rng.normal(size=(1, 1, 8, 8))),
                Tensor(rng.normal(size=(1, 1, 3, 3))),
                pool=3,
                pool_stride=0,
            )

    @settings(max_examples=25, deadline=None)
    @given(
        k=st.integers(1, 4),
        p=st.sampled_from([2, 3]),
        cin=st.integers(1, 3),
        cout=st.integers(1, 3),
        extra=st.integers(0, 4),
        seed=st.integers(0, 2 ** 16),
    )
    def test_property_equivalence(self, k, p, cin, cout, extra, seed):
        """For arbitrary shapes, fused == relu(avgpool(conv)) to fp
        tolerance (the paper's functional-correctness claim)."""
        g = np.random.default_rng(seed)
        h = k + p + extra  # always enough for one pooled output
        x = g.normal(size=(1, cin, h, h))
        w = g.normal(size=(cout, cin, k, k))
        b = g.normal(size=cout)
        with no_grad():
            fused = fused_conv_pool(Tensor(x), Tensor(w), Tensor(b), pool=p).data
        np.testing.assert_allclose(fused, reference(x, w, b, p), atol=1e-9)


class TestCountedExecutor:
    def test_output_matches_reference(self, rng):
        x = rng.normal(size=(2, 11, 11))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=3)
        out, _ = fused_conv_pool_counted(x, w, b)
        np.testing.assert_allclose(out, reference(x[None], w, b, 2)[0], atol=1e-10)

    def test_dense_reference_matches(self, rng):
        x = rng.normal(size=(1, 9, 9))
        w = rng.normal(size=(2, 1, 3, 3))
        b = rng.normal(size=2)
        out, _ = dense_conv_pool_counted(x, w, b)
        np.testing.assert_allclose(out, reference(x[None], w, b, 2)[0], atol=1e-10)

    @pytest.mark.parametrize("lar,gar_row,gar_col", [
        (False, False, False), (True, False, False), (False, True, False),
        (True, True, False), (True, True, True), (False, False, True),
    ])
    def test_reuse_options_preserve_output(self, rng, lar, gar_row, gar_col):
        x = rng.normal(size=(1, 9, 9))
        w = rng.normal(size=(1, 1, 3, 3))
        out, _ = fused_conv_pool_counted(
            x, w, None, use_lar=lar, use_gar_row=gar_row, use_gar_col=gar_col
        )
        np.testing.assert_allclose(out, reference(x[None], w, None, 2)[0], atol=1e-10)

    def test_rme_percentage(self, rng):
        """Fused executor performs exactly 1/4 of the dense mults
        (minus the pool-scaling mults) for 2x2 pooling."""
        x = rng.normal(size=(2, 10, 10))
        w = rng.normal(size=(3, 2, 3, 3))
        _, dense = dense_conv_pool_counted(x, w, None)
        _, fused = fused_conv_pool_counted(x, w, None)
        conv_only = dense.multiplications - dense.major_additions // 1 - 0
        # dense conv mults = 4 * fused mults (pool scaling mults excluded)
        pooled_outputs = 3 * 4 * 4
        assert fused.multiplications * 4 == dense.multiplications - pooled_outputs

    def test_lar_per_output_matches_table2(self, rng):
        """Measured per-output additions with LAR reproduce Table II."""
        for k in (2, 3, 5):
            d = 2 * k + 4
            x = rng.normal(size=(1, d, d))
            w = rng.normal(size=(1, 1, k, k))
            _, counter = fused_conv_pool_counted(
                x, w, None, use_lar=True, use_gar_row=False, use_gar_col=False
            )
            po = ((d - k + 1) - 2) // 2 + 1
            per_output = counter.additions / po ** 2
            assert per_output == oc.lar_additions_with(k)

    def test_no_reuse_per_output_matches_baseline(self, rng):
        for k in (2, 3, 5):
            d = 2 * k + 4
            x = rng.normal(size=(1, d, d))
            w = rng.normal(size=(1, 1, k, k))
            _, counter = fused_conv_pool_counted(
                x, w, None, use_lar=False, use_gar_row=False, use_gar_col=False
            )
            po = ((d - k + 1) - 2) // 2 + 1
            assert counter.additions / po ** 2 == oc.lar_additions_without(k)

    def test_gar_per_row_matches_table4(self, rng):
        """Measured per-row additions with row-GAR reproduce Table IV."""
        d, k = 28, 13
        x = rng.normal(size=(1, d, d))
        w = rng.normal(size=(1, 1, k, k))
        _, counter = fused_conv_pool_counted(
            x, w, None, use_lar=False, use_gar_row=True, use_gar_col=False
        )
        rows = ((d - k + 1) - 2) // 2 + 1
        assert counter.additions / rows == oc.gar_additions_with(d, k)

    def test_full_reuse_cheapest(self, rng):
        x = rng.normal(size=(1, 12, 12))
        w = rng.normal(size=(2, 1, 3, 3))
        counts = {}
        for lar, gr, gc in [(False, False, False), (True, False, False), (True, True, False), (True, True, True)]:
            _, c = fused_conv_pool_counted(x, w, None, use_lar=lar, use_gar_row=gr, use_gar_col=gc)
            counts[(lar, gr, gc)] = c.additions
        vals = [counts[(False, False, False)], counts[(True, False, False)],
                counts[(True, True, False)], counts[(True, True, True)]]
        assert vals == sorted(vals, reverse=True)

    def test_reuse_hits_accounted(self, rng):
        """additions + reuse_hits is invariant across reuse settings
        (a hit is exactly an addition avoided)."""
        x = rng.normal(size=(1, 9, 9))
        w = rng.normal(size=(1, 1, 3, 3))
        _, none = fused_conv_pool_counted(x, w, None, use_lar=False, use_gar_row=False, use_gar_col=False)
        _, full = fused_conv_pool_counted(x, w, None, use_lar=True, use_gar_row=True, use_gar_col=True)
        small_adds_none = none.half_additions + none.full_additions
        small_adds_full = full.half_additions + full.full_additions + full.reuse_hits
        assert small_adds_none == small_adds_full

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            fused_conv_pool_counted(rng.normal(size=(2, 8, 8)), rng.normal(size=(1, 3, 3, 3)), None)

    def test_bias_additions_counted(self, rng):
        x = rng.normal(size=(1, 8, 8))
        w = rng.normal(size=(2, 1, 3, 3))
        _, without = fused_conv_pool_counted(x, w, None)
        _, with_b = fused_conv_pool_counted(x, w, np.zeros(2))
        pooled = 2 * 3 * 3
        assert with_b.bias_additions - without.bias_additions == pooled


class TestFusedConvPoolModule:
    def test_matches_block(self, rng):
        blk = ConvBlock(2, 3, 3, padding=1, pool=PoolSpec("avg", 2), order="pool_act", rng=rng)
        fused = FusedConvPool(blk)
        x = Tensor(rng.normal(size=(2, 2, 8, 8)))
        with no_grad():
            np.testing.assert_allclose(fused(x).data, blk(x).data, atol=1e-10)

    def test_shares_parameters(self, rng):
        blk = ConvBlock(1, 1, 3, pool=PoolSpec("avg", 2), order="pool_act", rng=rng)
        fused = FusedConvPool(blk)
        assert fused.weight is blk.conv.weight
        assert fused.bias is blk.conv.bias

    def test_rejects_unfusable_block(self, rng):
        blk = ConvBlock(1, 1, 3, pool=PoolSpec("max", 2), order="pool_act", rng=rng)
        with pytest.raises(ValueError):
            FusedConvPool(blk)

    def test_rejects_batchnorm_block(self, rng):
        blk = ConvBlock(1, 2, 3, pool=PoolSpec("avg", 2), order="pool_act", batchnorm=True, rng=rng)
        with pytest.raises(ValueError):
            FusedConvPool(blk)

    def test_trainable_through_fusion(self, rng):
        blk = ConvBlock(1, 2, 3, pool=PoolSpec("avg", 2), order="pool_act", rng=rng)
        fused = FusedConvPool(blk)
        x = Tensor(rng.normal(size=(1, 1, 8, 8)))
        out = fused(x)
        (out ** 2).sum().backward()
        assert blk.conv.weight.grad is not None
        assert np.abs(blk.conv.weight.grad).sum() > 0


class TestGeneralPoolSizes:
    """The counted executor generalizes beyond 2x2 pooling."""

    def test_pool3_counted_matches_reference(self):
        rng = np.random.default_rng(77)
        x = rng.normal(size=(2, 13, 13))
        w = rng.normal(size=(2, 2, 3, 3))
        out, counter = fused_conv_pool_counted(x, w, None, pool=3)
        ref = reference(x[None], w, None, 3)[0]
        np.testing.assert_allclose(out, ref, atol=1e-10)
        assert counter.multiplications > 0

    def test_pool3_small_acc_costs_eight_adds(self):
        """A 3x3 small accumulation costs p^2-1 = 8 additions without
        reuse (2 per HA x 3 HAs + 2 FA additions with LAR)."""
        rng = np.random.default_rng(78)
        x = rng.normal(size=(1, 7, 7))
        w = rng.normal(size=(1, 1, 1, 1))  # K=1: one I_Acc per output
        _, counter = fused_conv_pool_counted(
            x, w, None, pool=3, use_lar=False, use_gar_row=False, use_gar_col=False
        )
        outputs = 2 * 2  # conv out 7x7, pool 3 -> 2x2
        assert counter.full_additions == outputs * 8

    def test_pool3_rme_factor_is_nine(self):
        """With the conv output divisible by the pool (11 - 3 + 1 = 9),
        dense needs exactly 9x the fused multiplications plus one
        scaling multiply per pooled output."""
        rng = np.random.default_rng(79)
        x = rng.normal(size=(1, 11, 11))
        w = rng.normal(size=(1, 1, 3, 3))
        _, fused = fused_conv_pool_counted(x, w, None, pool=3)
        _, dense = dense_conv_pool_counted(x, w, None, pool=3)
        pooled_outputs = 3 * 3
        assert fused.multiplications == pooled_outputs * 9  # K^2 each
        assert dense.multiplications == 9 * fused.multiplications + pooled_outputs
