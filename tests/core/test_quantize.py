"""DoReFa quantization (Eqs. 8-9): value properties and STE training."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.quantize import (
    QuantConfig,
    QuantizedConvBlock,
    quantize_activations,
    quantize_k,
    quantize_model,
    quantize_weights,
    ste_quantize_activations,
    ste_quantize_weights,
)
from repro.models import build_model
from repro.models.blocks import ConvBlock, PoolSpec
from repro.nn.tensor import Tensor, no_grad


@pytest.fixture
def rng():
    return np.random.default_rng(31)


class TestQuantizeK:
    def test_levels_count(self):
        """k-bit quantization admits exactly 2^k distinct values in [0,1]."""
        x = np.linspace(0, 1, 1000)
        for k in (1, 2, 4, 8):
            q = quantize_k(x, k)
            assert len(np.unique(q)) == 2 ** k

    def test_endpoints_preserved(self):
        for k in (1, 2, 8):
            assert quantize_k(np.array([0.0]), k) == 0.0
            assert quantize_k(np.array([1.0]), k) == 1.0

    @given(k=st.integers(1, 16), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_idempotent(self, k, seed):
        x = np.random.default_rng(seed).uniform(0, 1, size=20)
        q = quantize_k(x, k)
        np.testing.assert_allclose(quantize_k(q, k), q, atol=1e-12)

    @given(k=st.integers(1, 16), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_error_bounded_by_half_step(self, k, seed):
        x = np.random.default_rng(seed).uniform(0, 1, size=50)
        q = quantize_k(x, k)
        assert np.abs(q - x).max() <= 0.5 / (2 ** k - 1) + 1e-12

    def test_32_bit_is_identity(self, rng):
        x = rng.uniform(0, 1, size=10)
        np.testing.assert_array_equal(quantize_k(x, 32), x)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            quantize_k(np.zeros(1), 0)


class TestWeightQuantization:
    def test_output_range(self, rng):
        w = rng.normal(0, 2, size=100)
        q = quantize_weights(w, 8)
        assert q.min() >= -1.0 and q.max() <= 1.0

    def test_monotone(self, rng):
        w = np.sort(rng.normal(size=50))
        q = quantize_weights(w, 8)
        assert (np.diff(q) >= -1e-12).all()

    def test_sign_preserved(self, rng):
        w = rng.normal(size=100)
        w = w[np.abs(w) > 0.1]
        q = quantize_weights(w, 8)
        assert (np.sign(q) == np.sign(w)).all()

    def test_high_bits_approach_tanh_normalization(self, rng):
        w = rng.normal(size=50)
        q = quantize_weights(w, 16)
        t = np.tanh(w)
        expected = t / np.abs(t).max()
        np.testing.assert_allclose(q, expected, atol=1e-3)

    def test_fp32_identity(self, rng):
        w = rng.normal(size=10)
        np.testing.assert_array_equal(quantize_weights(w, 32), w)


class TestActivationQuantization:
    def test_clips_to_unit_interval(self, rng):
        x = rng.normal(0, 3, size=100)
        q = quantize_activations(x, 8)
        assert q.min() >= 0.0 and q.max() <= 1.0

    def test_negative_inputs_become_zero(self):
        assert (quantize_activations(np.array([-5.0, -0.1]), 8) == 0).all()


class TestSTE:
    def test_weight_ste_passes_gradient(self, rng):
        w = Tensor(rng.normal(size=(4,)), requires_grad=True)
        q = ste_quantize_weights(w, 8)
        (q * 2.0).sum().backward()
        np.testing.assert_allclose(w.grad, 2.0)

    def test_activation_ste_masks_out_of_range(self):
        x = Tensor(np.array([-1.0, 0.5, 2.0]), requires_grad=True)
        q = ste_quantize_activations(x, 8)
        q.sum().backward()
        np.testing.assert_allclose(x.grad, [0, 1, 0])


class TestQuantConfig:
    def test_labels(self):
        assert QuantConfig(32, 32).label == "FP32"
        assert QuantConfig(16, 16).label == "FP16"
        assert QuantConfig(8, 8).label == "INT8"

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            QuantConfig(0, 8)


class TestQuantizedModel:
    def test_wraps_every_conv_block(self):
        model = build_model("lenet5")
        quantize_model(model, QuantConfig(8, 8))
        blocks = [m for _, m in model.named_modules() if isinstance(m, QuantizedConvBlock)]
        raw = [m for _, m in model.named_modules() if isinstance(m, ConvBlock)]
        assert len(blocks) == 3
        # the original ConvBlocks survive as children of the wrappers
        assert len(raw) == 3

    def test_first_layer_input_unquantized(self):
        model = build_model("lenet5")
        quantize_model(model, QuantConfig(8, 8))
        blocks = [m for _, m in model.named_modules() if isinstance(m, QuantizedConvBlock)]
        assert blocks[0].quantize_input is False
        assert all(b.quantize_input for b in blocks[1:])

    def test_forward_shape_and_finite(self, rng):
        model = build_model("lenet5")
        quantize_model(model, QuantConfig(8, 8))
        with no_grad():
            out = model(Tensor(rng.normal(size=(2, 3, 32, 32))))
        assert out.shape == (2, 10)
        assert np.isfinite(out.data).all()

    def test_int8_close_to_fp32_forward(self, rng):
        """8-bit quantization perturbs logits only mildly (the paper's
        <1% accuracy story needs outputs to stay close)."""
        x = Tensor(rng.normal(size=(4, 3, 32, 32)))
        fp = build_model("lenet5", seed=3)
        with no_grad():
            ref = fp(x).data
        q = build_model("lenet5", seed=3)
        quantize_model(q, QuantConfig(8, 8))
        with no_grad():
            got = q(x).data
        # rank correlation of logits stays high
        ref_rank = np.argsort(ref, axis=1)
        got_rank = np.argsort(got, axis=1)
        agreement = (ref_rank[:, -1] == got_rank[:, -1]).mean()
        assert agreement >= 0.5

    def test_quantized_training_decreases_loss(self, tiny_split):
        from repro.train import TrainConfig, Trainer

        train_set, val_set = tiny_split
        model = build_model("lenet5", num_classes=4, image_size=16)
        quantize_model(model, QuantConfig(8, 8))
        trainer = Trainer(model, train_set, val_set, TrainConfig(epochs=3, batch_size=16, lr=0.05))
        hist = trainer.fit()
        assert hist[-1].train_loss < hist[0].train_loss

    def test_respects_block_order(self, rng):
        blk = ConvBlock(1, 2, 3, pool=PoolSpec("avg", 2), order="pool_act", rng=rng)
        q = QuantizedConvBlock(blk, QuantConfig(8, 8), quantize_input=False)
        x = Tensor(rng.normal(size=(1, 1, 8, 8)))
        with no_grad():
            out = q(x)
        assert (out.data >= 0).all()  # relu applied after pool
