"""Overlapping-pool (stride != pool) lowering: the strided f64 kernel.

Satellite of the parallel-execution PR: the MLCNN fused identity
``ReLU(AvgPool_{p,s}(Conv_K(x))) = ReLU((1/p^2) Conv_{K,stride=s}(BoxSum_p(x)))``
holds for *any* pool stride ``s`` — the stride only selects which
``I_Acc`` patches feed the GEMM.  These tests pin that identity against
an explicit loop-nest golden reference, exercise the
:class:`~repro.core.kernels.strided.StridedF64Kernel` directly, and
verify the lowering pass no longer hard-fails on overlapping-pool
models (it selects ``fused-strided-f64`` instead).
"""

import numpy as np
import pytest

import repro.nn.functional as F
from repro.compiler import (
    LowerFusedKernelPass,
    Pipeline,
    clear_plan_cache,
    lowered_kernels,
)
from repro.compiler.passes import FuseConvPoolPass, SetPoolingPass
from repro.core.fusion import FusedConvPool, fused_conv_pool
from repro.core.kernels import KERNEL_REGISTRY, ShapeClass, StridedF64Kernel
from repro.models.blocks import ConvBlock, PoolSpec
from repro.nn.layers import Module, Sequential
from repro.nn.tensor import Tensor, no_grad


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


@pytest.fixture
def rng():
    return np.random.default_rng(91)


def loopnest_fused(x, w, b, pool, stride, padding=0, activation="relu"):
    """Explicit loop-nest golden reference for overlapping pooling.

    Conv (stride 1, valid after optional zero padding) -> AvgPool with
    kernel ``pool`` and stride ``stride`` -> activation, computed with
    plain Python loops.  Small inputs only.
    """
    n, c, h, ww = x.shape
    m, _, k, _ = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        h, ww = h + 2 * padding, ww + 2 * padding
    ch, cw = h - k + 1, ww - k + 1
    conv = np.zeros((n, m, ch, cw))
    for ni in range(n):
        for mo in range(m):
            for i in range(ch):
                for j in range(cw):
                    acc = 0.0
                    for ci in range(c):
                        for ki in range(k):
                            for kj in range(k):
                                acc += x[ni, ci, i + ki, j + kj] * w[mo, ci, ki, kj]
                    conv[ni, mo, i, j] = acc + (0.0 if b is None else b[mo])
    po = (ch - pool) // stride + 1
    qo = (cw - pool) // stride + 1
    out = np.zeros((n, m, po, qo))
    for ni in range(n):
        for mo in range(m):
            for i in range(po):
                for j in range(qo):
                    window = conv[
                        ni, mo,
                        i * stride : i * stride + pool,
                        j * stride : j * stride + pool,
                    ]
                    out[ni, mo, i, j] = window.mean()
    if activation == "relu":
        out = np.maximum(out, 0.0)
    elif activation == "sigmoid":
        out = 1.0 / (1.0 + np.exp(-out))
    elif activation == "tanh":
        out = np.tanh(out)
    return out


class TestStridedEquivalence:
    """fused vectorized path == loop-nest golden, across the shape grid."""

    GRID = [
        # (kernel, pool, stride, padding)
        (3, 3, 2, 0),  # overlapping windows
        (3, 2, 3, 1),  # gapped windows (stride > pool)
        (5, 3, 1, 2),  # dense stride-1 pooling
        (2, 4, 2, 0),  # wide pool, half-step stride
        (3, 2, 2, 1),  # stride == pool sanity point on the same path
    ]

    @pytest.mark.parametrize("k,pool,stride,padding", GRID)
    def test_matches_loopnest_golden(self, rng, k, pool, stride, padding):
        x = rng.normal(size=(2, 2, 11, 11))
        w = rng.normal(size=(3, 2, k, k))
        b = rng.normal(size=3)
        with no_grad():
            got = fused_conv_pool(
                Tensor(x), Tensor(w), Tensor(b),
                pool=pool, pool_stride=stride, padding=padding,
            ).data
        want = loopnest_fused(x, w, b, pool, stride, padding)
        assert got.shape == want.shape
        np.testing.assert_allclose(got, want, atol=1e-12)

    @pytest.mark.parametrize("activation", ["relu", "sigmoid", "tanh", "none"])
    def test_activations(self, rng, activation):
        x = rng.normal(size=(1, 1, 9, 9))
        w = rng.normal(size=(2, 1, 3, 3))
        with no_grad():
            got = fused_conv_pool(
                Tensor(x), Tensor(w), pool=3, pool_stride=2, activation=activation
            ).data
        want = loopnest_fused(x, w, None, 3, 2, activation=activation)
        np.testing.assert_allclose(got, want, atol=1e-12)

    def test_reference_impl_agrees_on_overlap(self, rng):
        x = Tensor(rng.normal(size=(2, 1, 10, 10)))
        w = Tensor(rng.normal(size=(2, 1, 3, 3)))
        with no_grad():
            vec = fused_conv_pool(x, w, pool=3, pool_stride=2).data
            ref = fused_conv_pool(x, w, pool=3, pool_stride=2, impl="reference").data
        np.testing.assert_allclose(vec, ref, atol=1e-12)

    def test_backward_matches_reference_autograd(self, rng):
        for stride in (1, 2, 3):
            xv = rng.normal(size=(2, 2, 10, 10))
            wv = rng.normal(size=(3, 2, 3, 3))
            bv = rng.normal(size=3)
            grads = {}
            for impl in ("vectorized", "reference"):
                x, w, b = Tensor(xv), Tensor(wv), Tensor(bv)
                for t in (x, w, b):
                    t.requires_grad = True
                out = fused_conv_pool(x, w, b, pool=3, pool_stride=stride, impl=impl)
                out.sum().backward()
                grads[impl] = (x.grad.copy(), w.grad.copy(), b.grad.copy())
            for gv, gr in zip(grads["vectorized"], grads["reference"]):
                np.testing.assert_allclose(gv, gr, atol=1e-10)


class TestStridedKernelClass:
    def test_registry_selects_strided_for_overlap(self):
        spec = KERNEL_REGISTRY.select(ShapeClass(3, 3, 2, 64))
        assert spec.name == "fused-strided-f64"

    def test_registry_keeps_generic_for_non_overlap(self):
        spec = KERNEL_REGISTRY.select(ShapeClass(3, 2, 2, 64))
        assert spec.name == "fused-generic-f64"

    def test_rejects_non_overlapping_shape_class(self):
        with pytest.raises(ValueError):
            StridedF64Kernel(ShapeClass(3, 2, 2, 64))

    def test_kernel_call_matches_golden(self, rng):
        sc = ShapeClass(3, 3, 2, 64)
        kern = StridedF64Kernel(sc)
        assert kern.name == "fused-strided-f64"
        x = rng.normal(size=(1, 2, 9, 9))
        w = rng.normal(size=(2, 2, 3, 3))
        got = kern(x, w, None, padding=0, activation="relu")
        want = loopnest_fused(x, w, None, 3, 2)
        np.testing.assert_allclose(got, want, atol=1e-12)


def _overlap_model(rng):
    """conv3x3 + avg pool3 stride2 block, fusable only with overlap."""
    return Sequential(
        ConvBlock(
            1, 2, 3,
            pool=PoolSpec("avg", 3, stride=2),
            order="pool_act",
            rng=rng,
        )
    )


class TestOverlapLowering:
    """LowerFusedKernelPass no longer hard-fails on overlapping pools."""

    def _pipeline(self):
        return Pipeline(
            [SetPoolingPass("avg"), FuseConvPoolPass(overlap=True), LowerFusedKernelPass()],
            name="overlap",
        )

    def test_lowering_binds_strided_kernel(self, rng):
        model, report = self._pipeline().run(_overlap_model(rng))
        bound = lowered_kernels(model)
        assert [k.name for _, k in bound] == ["fused-strided-f64"]
        assert report.record_for("lower").ran

    def test_lowered_forward_matches_unfused(self, rng):
        x = Tensor(rng.normal(size=(2, 1, 12, 12)))
        model = _overlap_model(np.random.default_rng(5))
        block = model[0]
        w, b = block.conv.weight, block.conv.bias
        with no_grad():
            want = F.relu(F.avg_pool2d(F.conv2d(x, w, b), 3, stride=2)).data
        lowered, _ = self._pipeline().run(model)
        with no_grad():
            got = lowered(x).data
        np.testing.assert_allclose(got, want, atol=1e-12)

    def test_without_overlap_flag_block_stays_unfused(self, rng):
        model = _overlap_model(rng)
        pipe = Pipeline([SetPoolingPass("avg"), FuseConvPoolPass(strict=False)])
        fused, _ = pipe.run(model)
        assert not any(isinstance(m, FusedConvPool) for _, m in fused.named_modules())
