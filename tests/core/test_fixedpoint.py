"""Integer (fixed-point) fused kernel: INT8 datapath numerics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fixedpoint import (
    IntPathStats,
    QuantizedTensor,
    accumulator_bound,
    fused_conv_pool_int,
    int_path_error_bound,
    quantization_error_bound,
    quantize_tensor,
)
from repro.core.fusion import fused_conv_pool
from repro.nn.tensor import Tensor, no_grad
from repro.obs.numerics import NumericsCollector


@pytest.fixture
def rng():
    return np.random.default_rng(41)


class TestQuantizeTensor:
    def test_roundtrip_error_bounded(self, rng):
        x = rng.normal(size=(4, 8, 8))
        qt = quantize_tensor(x, bits=8)
        err = np.abs(qt.dequantize() - x).max()
        assert err <= quantization_error_bound(qt) + 1e-12

    def test_values_in_range(self, rng):
        qt = quantize_tensor(rng.normal(size=100) * 50, bits=8)
        assert np.abs(qt.values).max() <= 127

    def test_dtype_by_bits(self, rng):
        x = rng.normal(size=10)
        assert quantize_tensor(x, 8).values.dtype == np.int8
        assert quantize_tensor(x, 16).values.dtype == np.int16

    def test_zero_tensor(self):
        qt = quantize_tensor(np.zeros(5), bits=8)
        assert (qt.values == 0).all()
        assert qt.scale == 1.0

    def test_more_bits_less_error(self, rng):
        x = rng.normal(size=1000)
        e8 = np.abs(quantize_tensor(x, 8).dequantize() - x).max()
        e16 = np.abs(quantize_tensor(x, 16).dequantize() - x).max()
        assert e16 < e8

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            QuantizedTensor(np.array([200], dtype=np.int16), 1.0, 8)
        with pytest.raises(ValueError):
            QuantizedTensor(np.array([1], dtype=np.int8), -1.0, 8)
        with pytest.raises(ValueError):
            QuantizedTensor(np.array([1], dtype=np.int8), 1.0, 1)


class TestClippingSurfaced:
    """Satellite fix: symmetric-range clipping is counted and enters the
    error bound instead of being silently wrapped into it (same pattern
    as the PR 4 opcount cross-check: measured counter vs analytic
    prediction)."""

    def test_self_calibrated_never_clips(self, rng):
        qt = quantize_tensor(rng.normal(size=1000), bits=8)
        assert qt.clipped == 0
        assert qt.clip_excess == 0.0
        assert quantization_error_bound(qt) == 0.5 * qt.scale

    def test_calibrated_amax_counts_exact_clips(self, rng):
        """The measured clip counter equals the analytic count of values
        whose rounded magnitude exceeds qmax."""
        x = rng.normal(size=1000)
        amax = 1.0
        qt = quantize_tensor(x, bits=8, amax=amax)
        scale = amax / 127
        expected = int(np.count_nonzero(np.abs(np.round(x / scale)) > 127))
        assert qt.clipped == expected
        assert qt.clipped > 0  # normal samples do exceed |1| at n=1000
        assert qt.clip_excess == pytest.approx(np.abs(x).max() - amax)

    def test_error_bounded_by_widened_bound_only(self, rng):
        """Roundtrip error respects the clip-aware bound and *violates*
        the old rounding-only bound — proof the fix was needed."""
        x = rng.normal(size=1000)
        x[0] = 6.0  # guaranteed far outside the calibrated range
        qt = quantize_tensor(x, bits=8, amax=1.0)
        err = np.abs(qt.dequantize() - x).max()
        assert err <= quantization_error_bound(qt) + 1e-12
        assert err > 0.5 * qt.scale  # the old bound is insufficient

    def test_generous_amax_matches_self_calibration(self, rng):
        x = rng.normal(size=100)
        amax = float(np.abs(x).max())
        qt = quantize_tensor(x, bits=8, amax=amax)
        assert qt.clipped == 0
        np.testing.assert_array_equal(
            qt.values, quantize_tensor(x, bits=8).values
        )

    def test_invalid_amax_rejected(self, rng):
        with pytest.raises(ValueError):
            quantize_tensor(rng.normal(size=10), bits=8, amax=0.0)
        with pytest.raises(ValueError):
            quantize_tensor(rng.normal(size=10), bits=8, amax=-1.0)

    def test_clip_events_reach_enabled_collector(self, rng):
        x = rng.normal(size=1000)
        col = NumericsCollector()
        with col:
            qt = quantize_tensor(x, bits=8, amax=0.5)
        assert qt.clipped > 0
        counter = col.quant["fixedpoint.quantize"]
        assert counter.clipped == qt.clipped
        assert counter.total == x.size


class TestAccumulatorAndRequant:
    def test_acc_max_within_analytic_bound(self, rng):
        x = rng.normal(size=(3, 12, 12))
        w = rng.normal(size=(4, 3, 3, 3))
        qx, qw = quantize_tensor(x, 8), quantize_tensor(w, 8)
        stats = IntPathStats()
        fused_conv_pool_int(qx, qw, stats=stats)
        assert 0 < stats.acc_max_abs <= accumulator_bound(qx, qw, pool=2)
        assert stats.acc_overflows == 0  # 32-bit accumulators are ample here
        assert stats.acc_total > 0

    def test_adversarial_full_scale_reaches_bound_exactly(self):
        """All-ones-at-qmax tensors drive every accumulator to exactly
        the analytic bound — the measured/analytic cross-check is tight."""
        pool, k, c, m = 2, 3, 2, 1
        h = k + pool * 2 - 1  # two pooled outputs per side
        qx = QuantizedTensor(np.full((c, h, h), 127, dtype=np.int8), 0.01, 8)
        qw = QuantizedTensor(np.full((m, c, k, k), 127, dtype=np.int8), 0.01, 8)
        stats = IntPathStats()
        fused_conv_pool_int(qx, qw, stats=stats)
        assert stats.acc_max_abs == accumulator_bound(qx, qw, pool=pool)

    def test_narrow_accumulator_counts_overflows(self, rng):
        """With a deliberately narrow nominal accumulator, the would-be
        overflow counter fires (arithmetic stays exact in int64)."""
        x = rng.normal(size=(3, 12, 12))
        w = rng.normal(size=(4, 3, 3, 3))
        qx, qw = quantize_tensor(x, 8), quantize_tensor(w, 8)
        stats = IntPathStats()
        out = fused_conv_pool_int(qx, qw, acc_bits=8, stats=stats)
        assert stats.acc_bits == 8
        assert stats.acc_overflows > 0
        assert stats.overflow_rate <= 1.0
        # the result itself is unchanged by the nominal width
        np.testing.assert_array_equal(out, fused_conv_pool_int(qx, qw))

    def test_requantization_clipping_counted(self, rng):
        x = rng.normal(size=(3, 12, 12))
        w = rng.normal(size=(4, 3, 3, 3))
        qx, qw = quantize_tensor(x, 8), quantize_tensor(w, 8)
        ref = fused_conv_pool_int(qx, qw)
        # calibrated output range at half the actual max: must clip
        stats = IntPathStats()
        out = fused_conv_pool_int(
            qx, qw, out_bits=8, out_amax=float(ref.max()) / 2, stats=stats
        )
        assert stats.requant_clipped > 0
        assert stats.requant_total == ref.size
        assert out.max() <= float(ref.max()) / 2 + 1e-9
        # self-calibrated requantization does not clip
        stats2 = IntPathStats()
        fused_conv_pool_int(qx, qw, out_bits=8, stats=stats2)
        assert stats2.requant_clipped == 0

    def test_counters_reach_enabled_collector(self, rng):
        x = rng.normal(size=(3, 12, 12))
        w = rng.normal(size=(4, 3, 3, 3))
        qx, qw = quantize_tensor(x, 8), quantize_tensor(w, 8)
        col = NumericsCollector()
        with col:
            fused_conv_pool_int(qx, qw, acc_bits=8, out_bits=4)
        assert "fixedpoint.acc_overflow" in col.quant
        assert "fixedpoint.requant_clip" in col.quant
        assert col.quant["fixedpoint.acc_overflow"].clipped > 0

    def test_int_path_bound_still_holds_with_stats(self, rng):
        """Collecting stats must not perturb the arithmetic: the
        measured error stays within int_path_error_bound."""
        x = rng.normal(size=(3, 12, 12))
        w = rng.normal(size=(4, 3, 3, 3)) * 0.5
        qx, qw = quantize_tensor(x, 8), quantize_tensor(w, 8)
        got = fused_conv_pool_int(qx, qw, stats=IntPathStats())
        with no_grad():
            ref = fused_conv_pool(Tensor(x[None]), Tensor(w), None, pool=2).data[0]
        assert np.abs(got - ref).max() <= int_path_error_bound(qx, qw)


class TestIntFusedKernel:
    def _float_ref(self, x, w, b, pool=2):
        with no_grad():
            return fused_conv_pool(
                Tensor(x[None]), Tensor(w), Tensor(b) if b is not None else None, pool=pool
            ).data[0]

    def test_tracks_float_path_within_bound(self, rng):
        x = rng.normal(size=(3, 12, 12))
        w = rng.normal(size=(4, 3, 3, 3)) * 0.5
        b = rng.normal(size=4) * 0.1
        qx, qw = quantize_tensor(x, 8), quantize_tensor(w, 8)
        got = fused_conv_pool_int(qx, qw, b)
        ref = self._float_ref(x, w, b)
        bound = int_path_error_bound(qx, qw)
        assert np.abs(got - ref).max() <= bound

    def test_exact_when_inputs_are_grid_points(self, rng):
        """Integers scaled by the quantization step reproduce exactly —
        the integer path is exact arithmetic."""
        xi = rng.integers(-127, 128, size=(2, 10, 10))
        wi = rng.integers(-127, 128, size=(3, 2, 3, 3))
        qx = QuantizedTensor(xi.astype(np.int8), 0.01, 8)
        qw = QuantizedTensor(wi.astype(np.int8), 0.02, 8)
        got = fused_conv_pool_int(qx, qw, None)
        ref = self._float_ref(qx.dequantize(), qw.dequantize(), None)
        np.testing.assert_allclose(got, ref, atol=1e-9)

    def test_16_bit_closer_than_8_bit(self, rng):
        x = rng.normal(size=(2, 12, 12))
        w = rng.normal(size=(2, 2, 3, 3))
        ref = self._float_ref(x, w, None)
        e8 = np.abs(fused_conv_pool_int(quantize_tensor(x, 8), quantize_tensor(w, 8)) - ref).max()
        e16 = np.abs(fused_conv_pool_int(quantize_tensor(x, 16), quantize_tensor(w, 16)) - ref).max()
        assert e16 < e8

    def test_relu_optional(self, rng):
        x = rng.normal(size=(1, 8, 8))
        w = rng.normal(size=(1, 1, 3, 3))
        raw = fused_conv_pool_int(quantize_tensor(x), quantize_tensor(w), apply_relu=False)
        act = fused_conv_pool_int(quantize_tensor(x), quantize_tensor(w), apply_relu=True)
        np.testing.assert_allclose(act, np.maximum(raw, 0.0))

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            fused_conv_pool_int(
                quantize_tensor(rng.normal(size=(2, 8, 8))),
                quantize_tensor(rng.normal(size=(1, 3, 3, 3))),
            )

    def test_too_small_input_raises(self, rng):
        with pytest.raises(ValueError):
            fused_conv_pool_int(
                quantize_tensor(rng.normal(size=(1, 3, 3))),
                quantize_tensor(rng.normal(size=(1, 1, 3, 3))),
            )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2 ** 16), st.integers(1, 3), st.integers(1, 3), st.sampled_from([2, 3]))
    def test_property_bound_holds(self, seed, cin, cout, k):
        g = np.random.default_rng(seed)
        h = k + 5
        x = g.normal(size=(cin, h, h))
        w = g.normal(size=(cout, cin, k, k))
        qx, qw = quantize_tensor(x, 8), quantize_tensor(w, 8)
        got = fused_conv_pool_int(qx, qw, None, pool=2)
        ref = self._float_ref(x, w, None, pool=2)
        assert np.abs(got - ref).max() <= int_path_error_bound(qx, qw, pool=2)


class TestImplBitExactness:
    """The vectorized int lowering must be indistinguishable from the
    per-tap reference loop — outputs and saturation stats bitwise."""

    def _both(self, qx, qw, b=None, **kw):
        outs, stats = [], []
        for impl in ("vectorized", "reference"):
            s = IntPathStats()
            outs.append(fused_conv_pool_int(qx, qw, b, stats=s, impl=impl, **kw))
            stats.append(s)
        return outs, stats

    def test_outputs_and_stats_identical(self, rng):
        qx = quantize_tensor(rng.normal(size=(3, 14, 14)), 8)
        qw = quantize_tensor(rng.normal(size=(5, 3, 3, 3)), 8)
        (a, b), (sa, sb) = self._both(qx, qw, rng.normal(size=5), acc_bits=16, out_bits=8)
        assert np.array_equal(a, b)
        assert (sa.acc_max_abs, sa.acc_overflows, sa.acc_total) == (
            sb.acc_max_abs, sb.acc_overflows, sb.acc_total
        )
        assert (sa.requant_clipped, sa.requant_total) == (
            sb.requant_clipped, sb.requant_total
        )

    def test_identical_under_saturation_pressure(self, rng):
        """Tight accumulator: overflow/clip counters must still agree."""
        qx = quantize_tensor(rng.normal(size=(4, 12, 12)) * 30, 8)
        qw = quantize_tensor(rng.normal(size=(4, 4, 3, 3)) * 30, 8)
        (a, b), (sa, sb) = self._both(qx, qw, acc_bits=10, out_bits=4, pool=3)
        assert sa.acc_overflows > 0  # the pressure actually bit
        assert np.array_equal(a, b)
        assert sa.acc_overflows == sb.acc_overflows
        assert sa.requant_clipped == sb.requant_clipped

    def test_default_impl_is_vectorized(self, rng):
        qx = quantize_tensor(rng.normal(size=(2, 10, 10)), 8)
        qw = quantize_tensor(rng.normal(size=(2, 2, 3, 3)), 8)
        default = fused_conv_pool_int(qx, qw)
        explicit = fused_conv_pool_int(qx, qw, impl="vectorized")
        assert np.array_equal(default, explicit)
