"""Integer (fixed-point) fused kernel: INT8 datapath numerics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fixedpoint import (
    QuantizedTensor,
    fused_conv_pool_int,
    int_path_error_bound,
    quantization_error_bound,
    quantize_tensor,
)
from repro.core.fusion import fused_conv_pool
from repro.nn.tensor import Tensor, no_grad


@pytest.fixture
def rng():
    return np.random.default_rng(41)


class TestQuantizeTensor:
    def test_roundtrip_error_bounded(self, rng):
        x = rng.normal(size=(4, 8, 8))
        qt = quantize_tensor(x, bits=8)
        err = np.abs(qt.dequantize() - x).max()
        assert err <= quantization_error_bound(qt) + 1e-12

    def test_values_in_range(self, rng):
        qt = quantize_tensor(rng.normal(size=100) * 50, bits=8)
        assert np.abs(qt.values).max() <= 127

    def test_dtype_by_bits(self, rng):
        x = rng.normal(size=10)
        assert quantize_tensor(x, 8).values.dtype == np.int8
        assert quantize_tensor(x, 16).values.dtype == np.int16

    def test_zero_tensor(self):
        qt = quantize_tensor(np.zeros(5), bits=8)
        assert (qt.values == 0).all()
        assert qt.scale == 1.0

    def test_more_bits_less_error(self, rng):
        x = rng.normal(size=1000)
        e8 = np.abs(quantize_tensor(x, 8).dequantize() - x).max()
        e16 = np.abs(quantize_tensor(x, 16).dequantize() - x).max()
        assert e16 < e8

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            QuantizedTensor(np.array([200], dtype=np.int16), 1.0, 8)
        with pytest.raises(ValueError):
            QuantizedTensor(np.array([1], dtype=np.int8), -1.0, 8)
        with pytest.raises(ValueError):
            QuantizedTensor(np.array([1], dtype=np.int8), 1.0, 1)


class TestIntFusedKernel:
    def _float_ref(self, x, w, b, pool=2):
        with no_grad():
            return fused_conv_pool(
                Tensor(x[None]), Tensor(w), Tensor(b) if b is not None else None, pool=pool
            ).data[0]

    def test_tracks_float_path_within_bound(self, rng):
        x = rng.normal(size=(3, 12, 12))
        w = rng.normal(size=(4, 3, 3, 3)) * 0.5
        b = rng.normal(size=4) * 0.1
        qx, qw = quantize_tensor(x, 8), quantize_tensor(w, 8)
        got = fused_conv_pool_int(qx, qw, b)
        ref = self._float_ref(x, w, b)
        bound = int_path_error_bound(qx, qw)
        assert np.abs(got - ref).max() <= bound

    def test_exact_when_inputs_are_grid_points(self, rng):
        """Integers scaled by the quantization step reproduce exactly —
        the integer path is exact arithmetic."""
        xi = rng.integers(-127, 128, size=(2, 10, 10))
        wi = rng.integers(-127, 128, size=(3, 2, 3, 3))
        qx = QuantizedTensor(xi.astype(np.int8), 0.01, 8)
        qw = QuantizedTensor(wi.astype(np.int8), 0.02, 8)
        got = fused_conv_pool_int(qx, qw, None)
        ref = self._float_ref(qx.dequantize(), qw.dequantize(), None)
        np.testing.assert_allclose(got, ref, atol=1e-9)

    def test_16_bit_closer_than_8_bit(self, rng):
        x = rng.normal(size=(2, 12, 12))
        w = rng.normal(size=(2, 2, 3, 3))
        ref = self._float_ref(x, w, None)
        e8 = np.abs(fused_conv_pool_int(quantize_tensor(x, 8), quantize_tensor(w, 8)) - ref).max()
        e16 = np.abs(fused_conv_pool_int(quantize_tensor(x, 16), quantize_tensor(w, 16)) - ref).max()
        assert e16 < e8

    def test_relu_optional(self, rng):
        x = rng.normal(size=(1, 8, 8))
        w = rng.normal(size=(1, 1, 3, 3))
        raw = fused_conv_pool_int(quantize_tensor(x), quantize_tensor(w), apply_relu=False)
        act = fused_conv_pool_int(quantize_tensor(x), quantize_tensor(w), apply_relu=True)
        np.testing.assert_allclose(act, np.maximum(raw, 0.0))

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            fused_conv_pool_int(
                quantize_tensor(rng.normal(size=(2, 8, 8))),
                quantize_tensor(rng.normal(size=(1, 3, 3, 3))),
            )

    def test_too_small_input_raises(self, rng):
        with pytest.raises(ValueError):
            fused_conv_pool_int(
                quantize_tensor(rng.normal(size=(1, 3, 3))),
                quantize_tensor(rng.normal(size=(1, 1, 3, 3))),
            )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2 ** 16), st.integers(1, 3), st.integers(1, 3), st.sampled_from([2, 3]))
    def test_property_bound_holds(self, seed, cin, cout, k):
        g = np.random.default_rng(seed)
        h = k + 5
        x = g.normal(size=(cin, h, h))
        w = g.normal(size=(cout, cin, k, k))
        qx, qw = quantize_tensor(x, 8), quantize_tensor(w, 8)
        got = fused_conv_pool_int(qx, qw, None, pool=2)
        ref = self._float_ref(x, w, None, pool=2)
        assert np.abs(got - ref).max() <= int_path_error_bound(qx, qw, pool=2)
