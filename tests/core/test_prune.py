"""Magnitude pruning and MLCNN composition."""

import numpy as np
import pytest

from repro.core.prune import (
    capture_masks,
    combined_reduction,
    magnitude_prune,
    restore_masks,
    sparse_layer_multiplications,
)
from repro.models import build_model
from repro.models.specs import LayerSpec
from repro.nn.tensor import Tensor, no_grad


class TestMagnitudePrune:
    def test_sparsity_achieved(self):
        model = build_model("lenet5", seed=1)
        report = magnitude_prune(model, 0.5)
        assert abs(report.sparsity - 0.5) < 0.02

    def test_zero_sparsity_noop(self):
        model = build_model("lenet5", seed=1)
        before = [p.data.copy() for p in model.parameters()]
        report = magnitude_prune(model, 0.0)
        assert report.pruned_weights == 0
        for b, p in zip(before, model.parameters()):
            np.testing.assert_array_equal(b, p.data)

    def test_prunes_smallest_magnitudes(self):
        model = build_model("lenet5", seed=1)
        mags_before = np.concatenate(
            [np.abs(m.weight.data).ravel() for _, m in model.named_modules()
             if hasattr(m, "weight") and m.weight is not None and m.weight.ndim == 4]
        )
        threshold = np.quantile(mags_before, 0.3)
        magnitude_prune(model, 0.3)
        for _, mod in model.named_modules():
            w = getattr(mod, "weight", None)
            if w is not None and w.ndim == 4:
                surviving = np.abs(w.data[w.data != 0])
                if surviving.size:
                    assert surviving.min() >= threshold - 1e-12

    def test_biases_untouched(self):
        model = build_model("lenet5", seed=1)
        biases_before = {
            n: p.data.copy() for n, p in model.named_parameters() if n.endswith("bias")
        }
        magnitude_prune(model, 0.8)
        for n, p in model.named_parameters():
            if n.endswith("bias"):
                np.testing.assert_array_equal(p.data, biases_before[n])

    def test_model_still_runs(self):
        model = build_model("lenet5", seed=1)
        magnitude_prune(model, 0.7)
        with no_grad():
            out = model(Tensor(np.random.default_rng(0).normal(size=(1, 3, 32, 32))))
        assert np.isfinite(out.data).all()

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            magnitude_prune(build_model("lenet5"), 1.0)

    def test_no_convs_raises(self):
        from repro.nn import Linear, Sequential

        with pytest.raises(ValueError):
            magnitude_prune(Sequential(Linear(4, 2)), 0.5)


class TestMasks:
    def test_capture_and_restore(self, tiny_split):
        from repro.nn import functional as F
        from repro.nn.optim import SGD

        model = build_model("lenet5", num_classes=4, image_size=16, seed=1)
        magnitude_prune(model, 0.5)
        masks = capture_masks(model)
        # one training step moves pruned weights off zero...
        train_set, _ = tiny_split
        opt = SGD(model.parameters(), lr=0.1)
        logits = model(Tensor(train_set.images[:8]))
        F.cross_entropy(logits, train_set.labels[:8]).backward()
        opt.step()
        # ...and restore_masks puts them back
        reset = restore_masks(model, masks)
        assert reset > 0
        for name, mod in model.named_modules():
            if name in masks:
                assert (mod.weight.data[masks[name]] == 0).all()


class TestSparseOpCounts:
    def _spec(self):
        return LayerSpec("c", 8, 8, 16, 3, padding=1, pool=2)

    def test_sparse_mults_scale_linearly(self):
        spec = self._spec()
        full = sparse_layer_multiplications(spec, 0.0, fused=True)
        half = sparse_layer_multiplications(spec, 0.5, fused=True)
        assert half == pytest.approx(full / 2)

    def test_combined_reduction_composes(self):
        """MLCNN (75%) + 50% sparsity -> 87.5% of baseline mults gone."""
        spec = self._spec()
        assert combined_reduction(spec, 0.5) == pytest.approx(0.875, abs=0.01)
        assert combined_reduction(spec, 0.0) == pytest.approx(0.75, abs=0.01)

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            sparse_layer_multiplications(self._spec(), 1.5, fused=True)


class TestFusedLayerBaseline:
    def test_never_slower_than_dcnn(self):
        from repro.accel import get_config, simulate_network, simulate_network_layer_fused
        from repro.models import specs

        for model in ("lenet5", "vgg16"):
            layer_specs = specs.get_specs(model)
            cfg = get_config("dcnn-fp32")
            base = simulate_network(layer_specs, cfg)
            alwani = simulate_network_layer_fused(layer_specs, cfg)
            assert alwani.cycles <= base.cycles + 1e-9

    def test_same_arithmetic_as_dcnn(self):
        """Fused-layer execution moves less data but computes the same."""
        from repro.accel import get_config, simulate_network, simulate_network_layer_fused
        from repro.models import specs

        layer_specs = specs.get_specs("lenet5")
        cfg = get_config("dcnn-fp32")
        base = simulate_network(layer_specs, cfg)
        alwani = simulate_network_layer_fused(layer_specs, cfg)
        for b, a in zip(base.layers, alwani.layers):
            assert a.ops == b.ops
            assert a.dram_bytes <= b.dram_bytes

    def test_mlcnn_beats_fused_layer(self):
        """The paper's Section VIII claim: arithmetic elimination beats
        data-movement-only fusion."""
        from repro.accel import (
            get_config,
            simulate_network,
            simulate_network_layer_fused,
        )
        from repro.models import specs

        layer_specs = specs.get_specs("lenet5")
        base = simulate_network(layer_specs, get_config("dcnn-fp32"))
        alwani = simulate_network_layer_fused(layer_specs, get_config("dcnn-fp32"))
        mlcnn = simulate_network(layer_specs, get_config("mlcnn-fp32"))
        assert base.cycles / mlcnn.cycles > base.cycles / alwani.cycles
