"""Network fusion transform: semantics preservation across the zoo."""

import numpy as np
import pytest

from repro.core.fusion import FusedConvPool
from repro.core.transform import fuse_network, fused_blocks
from repro.models import build_model, reorder_activation_pooling, set_pooling
from repro.nn.tensor import Tensor, no_grad

SMALL = {"lenet5": 1.0, "vgg16": 0.125, "vgg19": 0.125, "densenet": 0.5, "resnet18": 0.125}


@pytest.fixture
def x32():
    return Tensor(np.random.default_rng(8).normal(size=(2, 3, 32, 32)))


class TestFuseNetwork:
    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_fusion_preserves_outputs(self, name, x32):
        model = build_model(name, width_mult=SMALL[name], seed=2)
        reorder_activation_pooling(model)
        with no_grad():
            before = model(x32).data
        fuse_network(model)
        with no_grad():
            after = model(x32).data
        np.testing.assert_allclose(before, after, atol=1e-9)

    def test_expected_fusion_counts(self, x32):
        """LeNet-5 fuses 2 blocks, VGG-16 fuses 5, DenseNet fuses 3."""
        for name, expected in [("lenet5", 2), ("vgg16", 5), ("densenet", 3)]:
            model = build_model(name, width_mult=SMALL[name])
            reorder_activation_pooling(model)
            _, replaced = fuse_network(model)
            assert len(replaced) == expected, name

    def test_fused_blocks_discoverable(self):
        model = build_model("lenet5")
        reorder_activation_pooling(model)
        fuse_network(model)
        assert len(fused_blocks(model)) == 2
        assert all(isinstance(b, FusedConvPool) for b in fused_blocks(model))

    def test_unreordered_model_raises(self):
        model = build_model("vgg16", width_mult=0.125)  # still ReLU+AP
        with pytest.raises(ValueError):
            fuse_network(model)

    def test_max_pooled_model_raises(self):
        model = build_model("vgg16", width_mult=0.125, pooling="max", order="pool_act")
        with pytest.raises(ValueError):
            fuse_network(model)

    def test_parameters_shared_after_fusion(self):
        model = build_model("lenet5")
        reorder_activation_pooling(model)
        _, replaced = fuse_network(model)
        for _, fused in replaced:
            assert fused.weight is fused.source.conv.weight

    def test_fused_model_remains_trainable(self, x32, tiny_split):
        from repro.train import TrainConfig, Trainer

        train_set, val_set = tiny_split
        model = build_model("lenet5", num_classes=4, image_size=16)
        reorder_activation_pooling(model)
        fuse_network(model)
        trainer = Trainer(model, train_set, val_set, TrainConfig(epochs=5, batch_size=16, lr=0.01))
        before = [p.data.copy() for p in model.parameters()]
        hist = trainer.fit()
        assert min(h.train_loss for h in hist) < hist[0].train_loss
        assert any(
            not np.allclose(b, p.data) for b, p in zip(before, model.parameters())
        )

    def test_fusion_after_set_pooling(self, x32):
        """max-pool model becomes fusable after set_pooling + reorder —
        the paper's preparation pipeline."""
        model = build_model("vgg16", width_mult=0.125, pooling="max")
        set_pooling(model, "avg")
        reorder_activation_pooling(model)
        _, replaced = fuse_network(model)
        assert len(replaced) == 5

    def test_double_fusion_raises(self):
        model = build_model("lenet5")
        reorder_activation_pooling(model)
        fuse_network(model)
        with pytest.raises(ValueError):
            fuse_network(model)  # nothing left to fuse


class TestPrepareMLCNN:
    def test_pipeline_from_maxpool_model(self, x32):
        from repro.core.transform import fused_blocks, prepare_mlcnn

        model = build_model("vgg16", width_mult=0.125, pooling="max")
        prepare_mlcnn(model)
        assert len(fused_blocks(model)) == 5
        with no_grad():
            out = model(x32)
        assert out.shape == (2, 10)

    def test_pipeline_with_quantization(self, x32):
        from repro.core.quantize import QuantizedConvBlock
        from repro.core.transform import prepare_mlcnn

        model = build_model("lenet5")
        prepare_mlcnn(model, quantize_bits=8)
        qblocks = [m for _, m in model.named_modules() if isinstance(m, QuantizedConvBlock)]
        assert qblocks  # the non-fused conv got wrapped
        with no_grad():
            out = model(x32)
        assert np.isfinite(out.data).all()

    def test_idempotent_failure_is_loud(self):
        from repro.core.transform import prepare_mlcnn

        model = build_model("lenet5")
        prepare_mlcnn(model)
        with pytest.raises(ValueError):
            prepare_mlcnn(model)  # nothing left to fuse
