"""The multi-core parallel execution engine.

Three layers of coverage:

* pure planning/arena logic (no processes) — shard geometry, arena
  recycling, counter merge/round-trip semantics;
* the counter-merge regression bar — two disjoint shard collections
  merged must sum to within 1% of the serial analytic model, the same
  bar ``tests/obs/test_counters_crosscheck.py`` holds serial runs to;
* live worker-pool execution — equivalence to the serial kernels
  (exact for int, float round-off for floats), counter and tracer
  flow-back, the ``parallelize`` compiler stage, and the full-plan
  executor.  These spawn real processes; the pools persist across the
  module and are torn down once at the end.
"""

import numpy as np
import pytest

from repro.compiler import (
    CompileContext,
    ParallelizePass,
    PLAN_CACHE,
    clear_plan_cache,
    lowered_kernels,
    mlcnn_pipeline,
)
from repro.core.fixedpoint import QuantizedTensor, fused_conv_pool_int, quantize_tensor
from repro.core.fusion import fused_conv_pool, fused_conv_pool_counted
from repro.core.parallel import (
    ArenaPool,
    ParallelKernel,
    ParallelPlanExecutor,
    SharedArena,
    Shard,
    available_workers,
    parallel_fused_conv_pool,
    parallel_fused_conv_pool_int,
    plan_shards,
    shutdown_pools,
)
from repro.core.opcount import mlcnn_layer_ops
from repro.models import build_model
from repro.models.specs import LayerSpec
from repro.nn.tensor import Tensor, no_grad
from repro.obs.metrics import OpCounters, collect_counters
from repro.obs.tracer import get_tracer

RTOL = 0.01  # the crosscheck suite's 1% acceptance bar


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    shutdown_pools()


@pytest.fixture
def rng():
    return np.random.default_rng(17)


# ---------------------------------------------------------------------------
# Planning (no processes)
# ---------------------------------------------------------------------------

class TestPlanShards:
    def test_batch_axis_preferred(self):
        shards = plan_shards(8, 16, 4)
        assert all(s.axis == "images" for s in shards)
        assert [s.size for s in shards] == [2, 2, 2, 2]

    def test_uneven_batch_split_covers_everything(self):
        shards = plan_shards(7, 16, 3)
        assert [(s.start, s.stop) for s in shards] == [(0, 3), (3, 5), (5, 7)]

    def test_small_batch_falls_back_to_channels(self):
        shards = plan_shards(2, 6, 4)
        assert all(s.axis == "channels" for s in shards)
        assert sum(s.size for s in shards) == 6

    def test_single_worker_is_one_shard(self):
        assert plan_shards(8, 16, 1) == [Shard("images", 0, 8)]

    def test_never_more_shards_than_units(self):
        assert len(plan_shards(2, 3, 8)) == 3  # channels axis, 3 units


class TestArenas:
    def test_put_view_round_trip(self, rng):
        a = rng.normal(size=(3, 4, 5))
        arena = SharedArena(a.nbytes)
        try:
            arena.put(a)
            np.testing.assert_array_equal(arena.view(a.shape, a.dtype), a)
        finally:
            arena.close()

    def test_view_rejects_overflow(self):
        arena = SharedArena(64)
        try:
            with pytest.raises(ValueError):
                arena.view((100,), np.float64)
        finally:
            arena.close()

    def test_pool_recycles_by_name(self):
        pool = ArenaPool()
        try:
            a = pool.acquire(1024)
            name = a.name
            pool.release(a)
            b = pool.acquire(512)  # smaller request reuses the segment
            assert b.name == name
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# Counter merge semantics (satellite: OpCounters.merge in the reducer)
# ---------------------------------------------------------------------------

class TestCounterMerge:
    def test_from_dict_tolerates_derived_keys(self):
        oc = OpCounters(mults=5, half_additions=3)
        doc = oc.as_dict(include_derived=True)  # adds additions/reuse_hits
        back = OpCounters.from_dict(doc)
        assert back == oc

    def test_merge_is_fieldwise_sum(self):
        a = OpCounters(mults=2, dram_bytes=1.5)
        b = OpCounters(mults=3, lar_reuse_hits=7)
        merged = OpCounters.from_dict(a.as_dict()).merge(b)
        assert merged.mults == 5
        assert merged.dram_bytes == 1.5
        assert merged.lar_reuse_hits == 7

    def test_disjoint_shards_merge_to_analytic_model(self):
        """The parallel reducer's contract: counters collected from two
        disjoint image shards, merged, must sum to within 1% of the
        serial analytic model for the whole batch."""
        spec = LayerSpec(
            "k3p2", in_channels=3, out_channels=4, input_size=12, kernel=3, pool=2
        )
        rng = np.random.default_rng(0)
        batch = rng.normal(size=(4, spec.in_channels, spec.input_size, spec.input_size))
        w = rng.normal(
            size=(spec.out_channels, spec.in_channels, spec.kernel, spec.kernel)
        )
        b = rng.normal(size=spec.out_channels)

        shard_counts = []
        for lo, hi in ((0, 2), (2, 4)):
            with collect_counters() as oc:
                for i in range(lo, hi):
                    fused_conv_pool_counted(batch[i], w, b, pool=spec.pool)
            shard_counts.append(OpCounters.from_dict(oc.as_dict(include_derived=False)))

        merged = OpCounters()
        for part in shard_counts:
            merged.merge(part)

        ml = mlcnn_layer_ops(spec)
        n = len(batch)
        assert merged.mults == pytest.approx(n * ml.multiplications, rel=RTOL)
        assert merged.half_additions + merged.full_additions == pytest.approx(
            n * ml.preprocessing_additions, rel=RTOL
        )
        assert merged.major_additions + merged.bias_additions == pytest.approx(
            n * ml.additions, rel=RTOL
        )


# ---------------------------------------------------------------------------
# Live worker-pool execution
# ---------------------------------------------------------------------------

WORKERS = 2


class TestParallelKernelExecution:
    def test_batch_shard_matches_serial(self, rng):
        x = rng.normal(size=(6, 3, 16, 16))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        with no_grad():
            serial = fused_conv_pool(Tensor(x), Tensor(w), Tensor(b), pool=2).data
        par = parallel_fused_conv_pool(x, w, b, pool=2, workers=WORKERS)
        np.testing.assert_allclose(par, serial, atol=1e-12)

    def test_channel_shard_matches_serial(self, rng):
        x = rng.normal(size=(1, 3, 16, 16))  # batch < workers -> channel axis
        w = rng.normal(size=(4, 3, 3, 3))
        with no_grad():
            serial = fused_conv_pool(Tensor(x), Tensor(w), pool=2).data
        par = parallel_fused_conv_pool(x, w, None, pool=2, workers=WORKERS)
        np.testing.assert_allclose(par, serial, atol=1e-12)

    def test_strided_kernel_shards_too(self, rng):
        x = rng.normal(size=(4, 2, 13, 13))
        w = rng.normal(size=(3, 2, 3, 3))
        with no_grad():
            serial = fused_conv_pool(Tensor(x), Tensor(w), pool=3, pool_stride=2).data
        par = parallel_fused_conv_pool(x, w, None, pool=3, pool_stride=2, workers=WORKERS)
        np.testing.assert_allclose(par, serial, atol=1e-12)

    def test_int_kernel_is_bit_identical(self, rng):
        x = rng.normal(size=(5, 2, 12, 12))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=3)
        xq, wq = quantize_tensor(x, bits=8), quantize_tensor(w, bits=8)
        serial = np.stack(
            [
                fused_conv_pool_int(
                    QuantizedTensor(xq.values[i], xq.scale, xq.bits), wq, b, pool=2
                )
                for i in range(len(x))
            ]
        )
        par = parallel_fused_conv_pool_int(xq, wq, b, pool=2, workers=WORKERS)
        assert (par == serial).all()  # integer addition is associative

    def test_workers_arg_on_fused_conv_pool(self, rng):
        x = rng.normal(size=(4, 2, 12, 12))
        w = rng.normal(size=(3, 2, 3, 3))
        with no_grad():
            serial = fused_conv_pool(Tensor(x), Tensor(w), pool=2).data
            par = fused_conv_pool(Tensor(x), Tensor(w), pool=2, workers=WORKERS).data
        np.testing.assert_allclose(par, serial, atol=1e-12)

    def test_grad_path_stays_serial_and_trainable(self, rng):
        x = Tensor(rng.normal(size=(2, 1, 8, 8)))
        w = Tensor(rng.normal(size=(2, 1, 3, 3)))
        x.requires_grad = w.requires_grad = True
        out = fused_conv_pool(x, w, pool=2, workers=WORKERS)
        out.sum().backward()  # would fail if the sharded leaf were returned
        assert x.grad is not None and w.grad is not None

    def test_serial_fallback_workers_1(self, rng):
        x = rng.normal(size=(4, 2, 12, 12))
        w = rng.normal(size=(3, 2, 3, 3))
        with no_grad():
            serial = fused_conv_pool(Tensor(x), Tensor(w), pool=2).data
        assert (parallel_fused_conv_pool(x, w, None, pool=2, workers=1) == serial).all()

    def test_worker_counters_merge_into_parent(self, rng):
        x = rng.normal(size=(4, 2, 12, 12))
        w = rng.normal(size=(3, 2, 3, 3))
        with collect_counters() as serial_oc:
            parallel_fused_conv_pool(x, w, None, pool=2, workers=1)
        with collect_counters() as par_oc:
            parallel_fused_conv_pool(x, w, None, pool=2, workers=WORKERS)
        assert par_oc.mults == serial_oc.mults > 0
        assert par_oc.mults_eliminated == serial_oc.mults_eliminated

    def test_parent_reemits_shard_spans(self, rng):
        x = rng.normal(size=(4, 2, 12, 12))
        w = rng.normal(size=(3, 2, 3, 3))
        tracer = get_tracer()
        tracer.enable()
        tracer.clear()
        try:
            parallel_fused_conv_pool(x, w, None, pool=2, workers=WORKERS)
            names = [e.name for e in tracer.events]
            shard_events = [
                e for e in tracer.events if e.name == "parallel.shard.kernel"
            ]
            assert "parallel.fused_conv_pool" in names
            assert len(shard_events) == WORKERS
            assert all(e.attrs["wall_time_s"] > 0 for e in shard_events)
        finally:
            tracer.disable()
            tracer.clear()

    def test_available_workers_positive(self):
        assert available_workers() >= 1


class TestParallelizePass:
    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        clear_plan_cache()
        yield
        clear_plan_cache()

    def test_pipeline_wraps_kernels_and_records_plan(self):
        ctx = CompileContext()
        model, report = mlcnn_pipeline(parallel_workers=WORKERS).run(
            build_model("lenet5", seed=3), ctx
        )
        rec = report.record_for("parallelize")
        assert rec.ran and rec.rewrites == 2 and rec.validated
        for _, kern in lowered_kernels(model):
            assert isinstance(kern, ParallelKernel)
            assert kern.workers == WORKERS
        stored = PLAN_CACHE.parallel_plan(ctx.state["plan_cache_key"])
        assert stored is not None
        assert all(d["workers"] == WORKERS for d in stored.values())
        assert ctx.state["parallel_plan"] == stored

    def test_parallel_pipeline_output_matches_serial(self, rng):
        model, _ = mlcnn_pipeline(parallel_workers=WORKERS).run(
            build_model("lenet5", seed=3)
        )
        serial, _ = mlcnn_pipeline().run(
            build_model("lenet5", seed=3), CompileContext(use_cache=False)
        )
        x = Tensor(rng.normal(size=(4, 3, 32, 32)))
        with no_grad():
            np.testing.assert_allclose(
                model(x).data, serial(x).data, atol=1e-12
            )

    def test_workers_1_omits_the_stage(self):
        pipe = mlcnn_pipeline(parallel_workers=1)
        assert pipe.spec() == mlcnn_pipeline().spec()  # byte-for-byte serial
        model, report = pipe.run(build_model("lenet5", seed=3))
        with pytest.raises(KeyError):
            report.record_for("parallelize")
        for _, kern in lowered_kernels(model):
            assert not isinstance(kern, ParallelKernel)

    def test_signature_carries_worker_count(self):
        assert ParallelizePass(3).signature() == "parallelize(workers=3)"
        specs = {
            mlcnn_pipeline(parallel_workers=2).spec(),
            mlcnn_pipeline(parallel_workers=4).spec(),
            mlcnn_pipeline().spec(),
        }
        assert len(specs) == 3  # worker count enters the plan-cache key


class TestParallelPlanExecutor:
    def test_matches_serial_within_float_bound(self, rng):
        model, _ = mlcnn_pipeline().run(build_model("lenet5", seed=3))
        x = rng.normal(size=(6, 3, 32, 32))
        with no_grad():
            want = model(Tensor(x)).data
        ex = ParallelPlanExecutor(model, workers=WORKERS)
        np.testing.assert_allclose(ex.run(x), want, atol=1e-12)

    def test_small_batch_runs_serial(self, rng):
        model, _ = mlcnn_pipeline().run(build_model("lenet5", seed=3))
        x = rng.normal(size=(1, 3, 32, 32))
        ex = ParallelPlanExecutor(model, workers=WORKERS)
        with no_grad():
            want = model(Tensor(x)).data
        assert (ex.run(x) == want).all()

    def test_parallel_compiled_plan_ships_serial_kernels(self):
        # a plan compiled with ParallelizePass carries ParallelKernel
        # bindings; the executor must unwrap them in the shipped blob
        # (workers own whole-batch shards — nested pools would
        # oversubscribe or wedge the host) without touching the
        # caller's model
        import pickle

        model, _ = mlcnn_pipeline(parallel_workers=WORKERS).run(
            build_model("lenet5", seed=3)
        )
        ex = ParallelPlanExecutor(model, workers=WORKERS)
        shipped = [
            mod.kernel
            for _, mod in pickle.loads(ex._blob).named_modules()
            if getattr(mod, "kernel", None) is not None
        ]
        assert shipped and not any(isinstance(k, ParallelKernel) for k in shipped)
        kept = [
            mod.kernel
            for _, mod in model.named_modules()
            if getattr(mod, "kernel", None) is not None
        ]
        assert kept and all(isinstance(k, ParallelKernel) for k in kept)
