"""The paper's worked example (Figs. 5-6): 5x5 input, 2x2 filter.

Section IV walks one pooled output feature P00 through the original and
the weight-factorized computation: 16 multiplications per pooled output
originally, 4 after RME (75% eliminated), and small accumulations of 3
additions each for 2x2 pooling.
"""

import numpy as np
import pytest

from repro.core.fusion import dense_conv_pool_counted, fused_conv_pool_counted


@pytest.fixture
def example():
    rng = np.random.default_rng(2022)
    x = rng.normal(size=(1, 5, 5))
    w = rng.normal(size=(1, 1, 2, 2))
    return x, w


class TestWorkedExample:
    def test_dense_16_multiplications_per_pooled_output(self, example):
        """Fig. 5(a): four conv windows x four weights = 16 mults feed
        one pooled output (plus the pooling scale)."""
        x, w = example
        _, counter = dense_conv_pool_counted(x, w, None)
        pooled_outputs = 2 * 2  # conv out 4x4, pooled 2x2
        conv_mults = counter.multiplications - pooled_outputs  # minus scales
        assert conv_mults / pooled_outputs == 16

    def test_dense_16_additions_with_bias(self, example):
        """The paper counts 16 additions including the bias adjustment:
        4 windows x 3 accumulations + 3 pooling adds + 1 bias."""
        x, w = example
        _, counter = dense_conv_pool_counted(x, w, np.zeros(1))
        pooled_outputs = 4
        per_output = (
            counter.major_additions / pooled_outputs
            + counter.bias_additions / (4 * pooled_outputs)  # one bias per conv out
        )
        # 4*(K^2-1) + (p^2-1) = 15 accumulation adds + 4 bias adds per pooled output
        assert counter.major_additions / pooled_outputs == 15
        assert counter.bias_additions == 16  # one per conv output

    def test_fused_4_multiplications_per_pooled_output(self, example):
        """Fig. 5(b): after weight factorization each weight multiplies
        the accumulated inputs once -> 4 mults per pooled output."""
        x, w = example
        _, counter = fused_conv_pool_counted(x, w, None)
        pooled_outputs = 4
        assert counter.multiplications / pooled_outputs == 4

    def test_75_percent_eliminated(self, example):
        x, w = example
        _, dense = dense_conv_pool_counted(x, w, None)
        _, fused = fused_conv_pool_counted(x, w, None)
        pooled_outputs = 4
        dense_conv_mults = dense.multiplications - pooled_outputs
        assert 1 - fused.multiplications / dense_conv_mults == 0.75

    def test_functional_value_identical(self, example):
        """'The value of P00 is the same, and thus the functional
        correctness of CNN is preserved.'"""
        x, w = example
        out_dense, _ = dense_conv_pool_counted(x, w, None)
        out_fused, _ = fused_conv_pool_counted(x, w, None)
        np.testing.assert_allclose(out_dense, out_fused, atol=1e-12)

    def test_small_accumulation_is_3_additions(self, example):
        """Each 2x2 small accumulation = 1 half addition pair + ... = 3
        additions (the paper's '3 additions in each small accumulation')."""
        x, w = example
        _, counter = fused_conv_pool_counted(
            x, w, None, use_lar=False, use_gar_row=False, use_gar_col=False
        )
        pooled_outputs = 4
        small_acc_adds = counter.half_additions + counter.full_additions
        iaccs = pooled_outputs * 4  # K^2 = 4 I_Acc values per output
        assert small_acc_adds / iaccs == 3
