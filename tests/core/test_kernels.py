"""The lowering kernels: box-sum formulations, vectorized-vs-reference
equivalence across shape classes, int-path bit-exactness, registry.

Satellite coverage for the lowering backend:

* the prefix-sum ``box_sum`` against the naive windowed version for
  non-square inputs and ``p`` not dividing the spatial size;
* the equivalence property suite — vectorized vs reference kernels
  agree to 1e-6 (float64) and bit-exactly (int path, counters
  included) across a randomized grid of ``(k, p, stride, bits,
  channels)``;
* deterministic shape-class selection in the kernel registry.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fixedpoint import IntPathStats, fused_conv_pool_int, quantize_tensor
from repro.core.fusion import box_sum, fused_conv_pool
from repro.core.kernels import (
    KERNEL_REGISTRY,
    F32NHWCKernel,
    GenericF64Kernel,
    KernelRegistry,
    KernelSpec,
    ShapeClass,
    box_sum_cumsum,
    box_sum_windows,
    fused_backward,
    fused_forward,
)
from repro.models.specs import LayerSpec
from repro.core.opcount import dcnn_layer_ops, mlcnn_layer_ops
from repro.nn.tensor import Tensor, no_grad
from repro.obs.metrics import collect_counters


@pytest.fixture
def rng():
    return np.random.default_rng(11)


# ---------------------------------------------------------------------------
# box sum: prefix-sum vs windowed reference (satellite 1)
# ---------------------------------------------------------------------------


class TestBoxSumFormulations:
    @pytest.mark.parametrize(
        "shape,p",
        [
            ((5, 9), 2),  # non-square
            ((9, 5), 3),  # non-square, p does not divide either dim
            ((2, 3, 7, 11), 4),  # batched leading axes, p ∤ size
            ((1, 13, 6), 5),
            ((6, 6), 6),  # box exactly covers the plane
        ],
    )
    def test_matches_windowed_reference(self, rng, shape, p):
        x = rng.normal(size=shape)
        np.testing.assert_allclose(
            box_sum_cumsum(x, p), box_sum_windows(x, p), atol=1e-9
        )

    def test_integer_inputs_are_exact(self, rng):
        x = rng.integers(-1000, 1000, size=(3, 17, 10)).astype(np.int64)
        out = box_sum_cumsum(x, 3)
        assert out.dtype == np.int64
        assert np.array_equal(out, box_sum_windows(x, 3))

    def test_p1_identity_and_validation(self, rng):
        x = rng.normal(size=(4, 4))
        assert box_sum_cumsum(x, 1) is x
        with pytest.raises(ValueError):
            box_sum_cumsum(x, 0)
        with pytest.raises(ValueError):
            box_sum_cumsum(x, 5)

    def test_fusion_box_sum_is_the_cumsum_formulation(self, rng):
        """core.fusion.box_sum delegates to the prefix-sum kernel."""
        x = rng.normal(size=(2, 8, 12))
        np.testing.assert_array_equal(box_sum(x, 3), box_sum_cumsum(x, 3))

    @settings(max_examples=40, deadline=None)
    @given(
        h=st.integers(1, 12),
        w=st.integers(1, 12),
        p=st.integers(1, 6),
        batch=st.integers(0, 2),
        seed=st.integers(0, 2**16),
    )
    def test_property_equivalence(self, h, w, p, batch, seed):
        g = np.random.default_rng(seed)
        shape = (2,) * batch + (h, w)
        x = g.normal(size=shape)
        if p > 1 and (h < p or w < p):
            with pytest.raises(ValueError):
                box_sum_cumsum(x, p)
            return
        np.testing.assert_allclose(
            box_sum_cumsum(x, p), box_sum_windows(x, p), atol=1e-9
        )


# ---------------------------------------------------------------------------
# float equivalence grid: vectorized vs reference (satellite 3)
# ---------------------------------------------------------------------------


def _reference_out(x, w, b, pool, padding=0, activation="relu"):
    with no_grad():
        return fused_conv_pool(
            Tensor(x), Tensor(w), None if b is None else Tensor(b),
            pool=pool, padding=padding, activation=activation, impl="reference",
        ).data


class TestFloatEquivalenceGrid:
    @settings(max_examples=30, deadline=None)
    @given(
        k=st.integers(1, 4),
        p=st.sampled_from([2, 3]),
        cin=st.integers(1, 4),
        cout=st.integers(1, 4),
        pad=st.integers(0, 2),
        extra=st.integers(0, 4),
        seed=st.integers(0, 2**16),
    )
    def test_f64_agrees_to_1e6(self, k, p, cin, cout, pad, extra, seed):
        """The ISSUE bar: float kernels agree to 1e-6 across the
        randomized (k, p, stride=p, bits=64, channels) grid."""
        g = np.random.default_rng(seed)
        h = k + p + extra
        x = g.normal(size=(2, cin, h, h))
        w = g.normal(size=(cout, cin, k, k))
        b = g.normal(size=cout)
        out, _ = fused_forward(x, w, b, pool=p, padding=pad)
        np.testing.assert_allclose(out, _reference_out(x, w, b, p, pad), atol=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(
        k=st.integers(1, 3),
        p=st.sampled_from([2, 3]),
        cin=st.integers(1, 3),
        cout=st.integers(1, 3),
        seed=st.integers(0, 2**16),
    )
    def test_f32_nhwc_within_single_precision(self, k, p, cin, cout, seed):
        """The fp32 specialization tracks the f64 reference within its
        documented single-precision bound (not 1e-6 — that is why the
        lowering pass declares it non-semantics-preserving)."""
        g = np.random.default_rng(seed)
        h = k + 2 * p + 2
        x = g.normal(size=(2, cin, h, h))
        w = g.normal(size=(cout, cin, k, k))
        b = g.normal(size=cout)
        kern = F32NHWCKernel(ShapeClass(k, p, p, 32))
        out = kern.run_nchw(x, w, b, padding=1)
        np.testing.assert_allclose(out, _reference_out(x, w, b, p, 1), atol=1e-3)

    @pytest.mark.parametrize("activation", ["relu", "sigmoid", "tanh", "none"])
    def test_activations_match_reference(self, rng, activation):
        x = rng.normal(size=(2, 3, 12, 12))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out, _ = fused_forward(x, w, b, pool=2, padding=1, activation=activation)
        ref = _reference_out(x, w, b, 2, 1, activation)
        np.testing.assert_allclose(out, ref, atol=1e-10)
        kern = F32NHWCKernel(ShapeClass(3, 2, 2, 32))
        out32 = kern.run_nchw(x, w, b, padding=1, activation=activation)
        np.testing.assert_allclose(out32, ref, atol=1e-3)

    def test_nhwc_plan_reuse_is_consistent(self, rng):
        """Repeated calls through the cached plan stay bit-identical."""
        x = rng.normal(size=(2, 3, 10, 10))
        w = rng.normal(size=(4, 3, 3, 3))
        kern = F32NHWCKernel(ShapeClass(3, 2, 2, 32))
        first = kern.run_nchw(x, w, None, padding=1)
        second = kern.run_nchw(x, w, None, padding=1)
        assert len(kern._plans) == 1
        np.testing.assert_array_equal(first, second)

    def test_pool3_general_path(self, rng):
        x = rng.normal(size=(1, 2, 15, 15))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=3)
        kern = F32NHWCKernel(ShapeClass(3, 3, 3, 32))
        out = kern.run_nchw(x, w, b, padding=2)
        np.testing.assert_allclose(out, _reference_out(x, w, b, 3, 2), atol=1e-3)


class TestBackwardEquivalence:
    @pytest.mark.parametrize("activation", ["relu", "sigmoid", "tanh", "none"])
    def test_gradients_match_reference_composition(self, rng, activation):
        x = rng.normal(size=(2, 3, 12, 12))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        grads = {}
        for impl in ("vectorized", "reference"):
            xt = Tensor(x, requires_grad=True)
            wt = Tensor(w, requires_grad=True)
            bt = Tensor(b, requires_grad=True)
            out = fused_conv_pool(
                xt, wt, bt, pool=2, padding=1, activation=activation, impl=impl
            )
            (out ** 2).sum().backward()
            grads[impl] = (xt.grad, wt.grad, bt.grad)
        for gv, gr in zip(grads["vectorized"], grads["reference"]):
            np.testing.assert_allclose(gv, gr, atol=1e-8)

    def test_fused_backward_rejects_nothing_without_bias(self, rng):
        x = rng.normal(size=(1, 2, 8, 8))
        w = rng.normal(size=(2, 2, 3, 3))
        out, res = fused_forward(x, w, None, pool=2)
        gx, gw, gb = fused_backward(np.ones_like(out), res)
        assert gx.shape == x.shape and gw.shape == w.shape and gb.shape == (2,)


class TestVectorizedCounters:
    def test_f32_kernel_reports_rme(self, rng):
        """Both lowered kernels report the analytic RME tallies."""
        spec = LayerSpec("v", in_channels=3, out_channels=4, input_size=12, kernel=3, pool=2)
        x = rng.normal(size=(2, 3, 12, 12))
        w = rng.normal(size=(4, 3, 3, 3))
        ml, dc = mlcnn_layer_ops(spec), dcnn_layer_ops(spec)
        for kern in (
            GenericF64Kernel(ShapeClass(3, 2, 2, 64)),
            F32NHWCKernel(ShapeClass(3, 2, 2, 32)),
        ):
            with collect_counters() as oc:
                kern.run_nchw(x, w, None)
            assert oc.mults == 2 * ml.multiplications
            assert oc.mults_eliminated == 2 * (dc.multiplications - ml.multiplications)


# ---------------------------------------------------------------------------
# int path: bit-exact, counters included (satellite 3)
# ---------------------------------------------------------------------------


class TestIntPathBitExact:
    @settings(max_examples=25, deadline=None)
    @given(
        k=st.integers(1, 4),
        p=st.sampled_from([2, 3]),
        c=st.integers(1, 4),
        m=st.integers(1, 4),
        bits=st.sampled_from([4, 8, 16]),
        acc_bits=st.sampled_from([12, 16, 32]),
        out_bits=st.sampled_from([0, 8]),
        seed=st.integers(0, 2**16),
    )
    def test_vectorized_equals_reference_bitwise(
        self, k, p, c, m, bits, acc_bits, out_bits, seed
    ):
        """Across the (k, p, bits, channels) grid the two accumulation
        schedules produce identical outputs AND identical saturation
        counters (overflows, requant clipping, max accumulator)."""
        g = np.random.default_rng(seed)
        h = k + 2 * p + int(g.integers(0, 4))
        xq = quantize_tensor(g.normal(size=(c, h, h)), bits)
        wq = quantize_tensor(g.normal(size=(m, c, k, k)), bits)
        b = g.normal(size=m)
        results, stats = [], []
        for impl in ("vectorized", "reference"):
            s = IntPathStats()
            out = fused_conv_pool_int(
                xq, wq, b, pool=p, acc_bits=acc_bits, out_bits=out_bits,
                stats=s, impl=impl,
            )
            results.append(out)
            stats.append(s)
        assert np.array_equal(results[0], results[1])
        a, b_ = stats
        assert (a.acc_max_abs, a.acc_overflows, a.acc_total) == (
            b_.acc_max_abs, b_.acc_overflows, b_.acc_total
        )
        assert (a.requant_clipped, a.requant_total) == (
            b_.requant_clipped, b_.requant_total
        )

    def test_registry_int_kernel_is_the_vectorized_path(self, rng):
        xq = quantize_tensor(rng.normal(size=(3, 12, 12)), 8)
        wq = quantize_tensor(rng.normal(size=(4, 3, 3, 3)), 8)
        kern = KERNEL_REGISTRY.make(ShapeClass(3, 2, 2, 8, kind="int"))
        out = kern(xq, wq, None, apply_relu=True)
        ref = fused_conv_pool_int(xq, wq, None, pool=2, impl="reference")
        assert np.array_equal(out, ref)

    def test_bad_impl_rejected(self, rng):
        xq = quantize_tensor(rng.normal(size=(1, 8, 8)), 8)
        wq = quantize_tensor(rng.normal(size=(1, 1, 3, 3)), 8)
        with pytest.raises(ValueError):
            fused_conv_pool_int(xq, wq, impl="fast")


# ---------------------------------------------------------------------------
# registry selection
# ---------------------------------------------------------------------------


class TestKernelRegistry:
    def test_builtin_selection_by_bits(self):
        assert KERNEL_REGISTRY.select(ShapeClass(3, 2, 2, 64)).name == "fused-generic-f64"
        assert KERNEL_REGISTRY.select(ShapeClass(3, 2, 2, 32)).name == "fused-f32-nhwc"
        assert KERNEL_REGISTRY.select(ShapeClass(5, 2, 2, 8, kind="int")).name == "fused-int64-acc"

    def test_selection_is_deterministic(self):
        sc = ShapeClass(3, 2, 2, 32)
        names = {KERNEL_REGISTRY.select(sc).name for _ in range(5)}
        assert names == {"fused-f32-nhwc"}

    def test_overlapping_pool_selects_strided_kernel(self):
        spec = KERNEL_REGISTRY.select(ShapeClass(3, 3, 2, 64))
        assert spec.name == "fused-strided-f64"

    def test_unregistered_shape_class_error_names_shape_class(self):
        reg = KernelRegistry()
        sc = ShapeClass(3, 3, 2, 64)
        with pytest.raises(LookupError, match=r"ShapeClass\("):
            reg.select(sc)
        try:
            reg.select(sc)
        except LookupError as exc:
            assert repr(sc) in str(exc)

    def test_duplicate_registration_rejected(self):
        reg = KernelRegistry()
        spec = KernelSpec("k", 0, lambda sc: None, lambda sc: True)
        reg.register(spec)
        with pytest.raises(ValueError):
            reg.register(spec)

    def test_priority_then_name_ordering(self):
        reg = KernelRegistry()
        reg.register(KernelSpec("b-low", 0, lambda sc: "b", lambda sc: True))
        reg.register(KernelSpec("a-high", 5, lambda sc: "a", lambda sc: True))
        reg.register(KernelSpec("c-high", 5, lambda sc: "c", lambda sc: True))
        assert reg.select(ShapeClass(3, 2, 2)).name == "a-high"

    def test_shape_class_validation(self):
        with pytest.raises(ValueError):
            ShapeClass(0, 2, 2)
        with pytest.raises(ValueError):
            ShapeClass(3, 2, 2, bits=12)
        with pytest.raises(ValueError):
            ShapeClass(3, 2, 2, kind="complex")
        assert ShapeClass(3, 2, 2, 32).describe() == "k3p2s2-float32"
