"""Op-count models: exact reproduction of Tables II-VI and Eqs. 1-7."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import opcount as oc
from repro.models.specs import LayerSpec

# Paper reference data (IPDPS'22 Tables II-VI).
TABLE2 = {11: (483, 373), 9: (323, 251), 7: (195, 153), 5: (99, 79), 3: (35, 29), 2: (15, 13)}
TABLE3 = {1: 373, 2: 384, 3: 395, 4: 406, 5: 417, 6: 428, 11: 483}
TABLE4 = {3: (455, 347), 5: (1188, 693), 13: (5400, 2397), 15: (6293, 2783), 17: (6930, 3105)}
TABLE5 = {1: (5400, 2397), 3: (2025, 1479), 5: (1350, 1233)}
TABLE6 = {28: (5400, 2397), 32: (6750, 2889), 224: (71550, 26505)}


class TestTableII:
    @pytest.mark.parametrize("k,expected", sorted(TABLE2.items()))
    def test_exact_counts(self, k, expected):
        assert oc.lar_additions_without(k) == expected[0]
        assert oc.lar_additions_with(k) == expected[1]

    @pytest.mark.parametrize("k,rate", [(11, 22.8), (9, 22.3), (7, 21.5), (5, 20.2), (3, 17.1), (2, 13.3)])
    def test_reduction_rates(self, k, rate):
        assert round(100 * oc.lar_reduction_rate(k), 1) == rate


class TestTableIII:
    @pytest.mark.parametrize("s,expected", sorted(TABLE3.items()))
    def test_exact_counts(self, s, expected):
        assert oc.lar_additions_with(11, s) == expected

    def test_reduction_zero_at_stride_equal_filter(self):
        assert oc.lar_reduction_rate(11, 11) == 0.0

    def test_monotone_decreasing_in_stride(self):
        rates = [oc.lar_reduction_rate(11, s) for s in range(1, 12)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))


class TestTableIV:
    @pytest.mark.parametrize("k,expected", sorted(TABLE4.items()))
    def test_exact_counts(self, k, expected):
        assert oc.gar_additions_without(28, k) == expected[0]
        assert oc.gar_additions_with(28, k) == expected[1]

    def test_apex_near_k15(self):
        """Paper: the reduction rate peaks around a 15x15 filter."""
        rates = {k: oc.gar_reduction_rate(28, k) for k in (3, 5, 13, 15, 17)}
        assert rates[15] == max(rates.values())


class TestTableV:
    @pytest.mark.parametrize("s,expected", sorted(TABLE5.items()))
    def test_exact_counts(self, s, expected):
        assert oc.gar_additions_without(28, 13, s) == expected[0]
        assert oc.gar_additions_with(28, 13, s) == expected[1]

    def test_rate_drops_with_stride(self):
        assert oc.gar_reduction_rate(28, 13, 1) > oc.gar_reduction_rate(28, 13, 3) > oc.gar_reduction_rate(28, 13, 5)


class TestTableVI:
    @pytest.mark.parametrize("d,expected", sorted(TABLE6.items()))
    def test_exact_counts(self, d, expected):
        assert oc.gar_additions_without(d, 13) == expected[0]
        assert oc.gar_additions_with(d, 13) == expected[1]

    def test_rate_grows_with_input_dim(self):
        assert (
            oc.gar_reduction_rate(28, 13)
            < oc.gar_reduction_rate(32, 13)
            < oc.gar_reduction_rate(224, 13)
        )

    def test_limit_is_63_6_percent(self):
        assert round(100 * oc.gar_limit_large_input(13), 1) == 63.6
        # and large finite D approaches it from below
        assert oc.gar_reduction_rate(10_000, 13) == pytest.approx(
            oc.gar_limit_large_input(13), abs=1e-3
        )


class TestEquationLimits:
    def test_lar_limit_25_percent(self):
        assert oc.lar_reduction_rate(100_000) == pytest.approx(0.25, abs=1e-4)

    def test_combined_limit_75_percent(self):
        assert oc.combined_reduction_rate(100_000) == pytest.approx(0.75, abs=1e-4)
        assert oc.combined_reduction_limit() == 0.75

    def test_rme_percentages(self):
        assert oc.rme_multiplication_reduction(2) == 0.75
        assert oc.rme_multiplication_reduction(8) == pytest.approx(0.984, abs=1e-3)
        assert oc.rme_multiplication_reduction(1) == 0.0


class TestValidation:
    def test_lar_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            oc.lar_additions_without(0)
        with pytest.raises(ValueError):
            oc.lar_additions_with(3, 0)

    def test_gar_rejects_filter_larger_than_input(self):
        with pytest.raises(ValueError):
            oc.gar_additions_with(5, 7)

    def test_rme_rejects_bad_pool(self):
        with pytest.raises(ValueError):
            oc.rme_multiplication_reduction(0)


class TestPropertyBased:
    @given(k=st.integers(1, 40), s=st.integers(1, 40))
    def test_lar_with_never_exceeds_without(self, k, s):
        assert oc.lar_additions_with(k, s) <= oc.lar_additions_without(k)

    @given(k=st.integers(1, 30), s=st.integers(1, 10), d=st.integers(1, 300))
    def test_gar_with_never_exceeds_without(self, k, s, d):
        if d < k:
            return
        assert oc.gar_additions_with(d, k, s) <= oc.gar_additions_without(d, k, s)

    @given(k=st.integers(2, 40))
    def test_lar_rate_below_limit(self, k):
        assert 0 <= oc.lar_reduction_rate(k) < 0.25

    @given(p=st.integers(1, 64))
    def test_rme_reduction_in_unit_interval(self, p):
        assert 0.0 <= oc.rme_multiplication_reduction(p) < 1.0


class TestLayerOps:
    def _spec(self, **kw):
        defaults = dict(name="c", in_channels=4, out_channels=8, input_size=16, kernel=3, pool=2)
        defaults.update(kw)
        return LayerSpec(**defaults)

    def test_rme_mult_reduction_75_for_2x2(self):
        spec = self._spec()
        assert oc.layer_multiplication_reduction(spec) == pytest.approx(0.75, abs=0.02)

    def test_rme_mult_reduction_98_for_8x8(self):
        spec = self._spec(input_size=15, kernel=8, pool=8)
        assert oc.layer_multiplication_reduction(spec) > 0.97

    def test_non_fusable_layer_identical(self):
        spec = self._spec(pool=0)
        assert oc.mlcnn_layer_ops(spec) == oc.dcnn_layer_ops(spec)

    def test_fused_reduces_both_op_kinds(self):
        spec = self._spec()
        base = oc.dcnn_layer_ops(spec)
        fused = oc.mlcnn_layer_ops(spec)
        assert fused.multiplications < base.multiplications
        assert fused.additions + fused.preprocessing_additions < base.additions

    def test_reuse_options_monotone(self):
        """RME-only >= +LAR >= ... >= +LAR+GAR in total additions."""
        spec = self._spec(input_size=32, kernel=5)
        totals = {
            (lar, gar): (lambda o: o.additions + o.preprocessing_additions)(
                oc.mlcnn_layer_ops(spec, use_lar=lar, use_gar=gar)
            )
            for lar in (False, True)
            for gar in (False, True)
        }
        assert totals[(True, True)] <= totals[(True, False)] <= totals[(False, False)]
        assert totals[(True, True)] <= totals[(False, True)] <= totals[(False, False)]

    def test_1x1_layer_has_no_reuse_benefit(self):
        """Paper: a 1x1 filter disables addition reuse (DenseNet)."""
        spec = self._spec(kernel=1)
        no_reuse = oc.mlcnn_layer_ops(spec, use_lar=False, use_gar=False)
        full = oc.mlcnn_layer_ops(spec, use_lar=True, use_gar=True)
        assert full.preprocessing_additions == no_reuse.preprocessing_additions

    def test_network_ops_sum(self):
        specs = [self._spec(), self._spec(name="c2", pool=0)]
        total = oc.network_ops(specs, fused=True)
        parts = oc.mlcnn_layer_ops(specs[0]) + oc.mlcnn_layer_ops(specs[1])
        assert total == parts

    def test_layer_ops_add(self):
        a = oc.LayerOps(1, 2, 3)
        b = oc.LayerOps(10, 20, 30)
        assert (a + b) == oc.LayerOps(11, 22, 33)
        assert (a + b).total == 66
