"""Regression gate: tolerance policies, verdicts, and the CLI exit code."""

import json

import pytest

from repro.experiments.__main__ import main
from repro.obs.metrics import MetricRegistry
from repro.obs.regress import (
    RegressionReport,
    TolerancePolicy,
    compare_metrics,
    gate_jsonl,
    policy_for,
)


def _one(verdicts, key):
    matches = [v for v in verdicts if v.metric == key]
    assert len(matches) == 1
    return matches[0]


class TestTolerancePolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="direction"):
            TolerancePolicy(direction="sideways")
        with pytest.raises(ValueError, match="non-negative"):
            TolerancePolicy(rel_tol=-0.1)

    def test_margin_abs_floor_near_zero(self):
        p = TolerancePolicy(rel_tol=0.05, abs_tol=0.5)
        assert p.margin(0.0) == 0.5       # abs floor dominates
        assert p.margin(100.0) == 5.0     # rel dominates

    def test_policy_resolution(self):
        # prefix override: kernel.* is advisory higher-better
        p = policy_for("kernel.fused_samples_per_sec")
        assert p.direction == "higher" and not p.required
        # exact key beats prefix
        exact = {"kernel.x": TolerancePolicy(direction="lower")}
        assert policy_for("kernel.x", exact).direction == "lower"
        # longest prefix wins
        longer = {
            "fig15.": TolerancePolicy(direction="lower"),
            "fig15.energy_detail": TolerancePolicy(direction="higher"),
        }
        assert policy_for("fig15.energy_detail[m=a]", longer).direction == "higher"
        assert policy_for("fig15.other", longer).direction == "lower"
        # keyword heuristic: energy/cycles/bytes/... are lower-better
        assert policy_for("fig15.energy_nj[model=vgg16]").direction == "lower"
        assert policy_for("fig13.total_cycles").direction == "lower"
        # default: higher-better, required
        d = policy_for("fig13.speedup[config=mlcnn]")
        assert d.direction == "higher" and d.required


class TestCompareMetrics:
    BASE = {"fig13.speedup": 4.0, "fig15.energy_nj": 100.0}

    def test_within_tolerance_is_ok(self):
        vs = compare_metrics("accel", self.BASE,
                             {"fig13.speedup": 3.9, "fig15.energy_nj": 103.0})
        assert _one(vs, "fig13.speedup").status == "ok"
        assert _one(vs, "fig15.energy_nj").status == "ok"
        assert not RegressionReport(vs).failed

    def test_higher_better_directions(self):
        vs = compare_metrics("accel", self.BASE, {"fig13.speedup": 5.0})
        assert _one(vs, "fig13.speedup").status == "improved"
        vs = compare_metrics("accel", self.BASE, {"fig13.speedup": 3.0})
        v = _one(vs, "fig13.speedup")
        assert v.status == "regressed" and v.fails
        assert v.delta_rel == pytest.approx(-0.25)

    def test_lower_better_directions(self):
        # energy dropping is an improvement; rising is a regression
        vs = compare_metrics("accel", self.BASE, {"fig15.energy_nj": 80.0})
        assert _one(vs, "fig15.energy_nj").status == "improved"
        vs = compare_metrics("accel", self.BASE, {"fig15.energy_nj": 120.0})
        assert _one(vs, "fig15.energy_nj").status == "regressed"

    def test_missing_baseline_passes(self):
        # whole area unseeded
        vs = compare_metrics("core", None, {"table2.rate": 0.5})
        assert _one(vs, "table2.rate").status == "missing_baseline"
        assert not RegressionReport(vs).failed
        # single new metric in a seeded area
        vs = compare_metrics("accel", self.BASE,
                             {"fig13.speedup": 4.0, "fig13.new_metric": 1.0})
        assert _one(vs, "fig13.new_metric").status == "missing_baseline"

    def test_missing_current_is_reported_not_fatal(self):
        vs = compare_metrics("accel", self.BASE, {"fig13.speedup": 4.0})
        v = _one(vs, "fig15.energy_nj")
        assert v.status == "missing_current" and not v.fails

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_nan_inf_always_fails(self, bad):
        vs = compare_metrics("accel", self.BASE, {"fig13.speedup": bad})
        v = _one(vs, "fig13.speedup")
        assert v.status == "invalid" and v.fails
        # even under an advisory policy: a NaN benchmark is broken, not noisy
        vs = compare_metrics(
            "accel", {"kernel.x": 1.0}, {"kernel.x": float("nan")},
            overrides={"kernel.x": TolerancePolicy(required=False)},
        )
        assert _one(vs, "kernel.x").fails

    def test_nan_baseline_treated_as_missing(self):
        vs = compare_metrics("accel", {"fig13.speedup": float("nan")},
                             {"fig13.speedup": 4.0})
        assert _one(vs, "fig13.speedup").status == "missing_baseline"

    def test_advisory_regression_does_not_fail(self):
        base = {"kernel.fused_samples_per_sec": 1000.0}
        vs = compare_metrics("accel", base, {"kernel.fused_samples_per_sec": 10.0})
        v = _one(vs, "kernel.fused_samples_per_sec")
        assert v.status == "regressed" and not v.fails
        assert not RegressionReport(vs).failed

    def test_report_render(self):
        vs = compare_metrics("accel", self.BASE,
                             {"fig13.speedup": 3.0, "fig15.energy_nj": 80.0})
        rep = RegressionReport(vs)
        text = rep.render()
        assert "REGRESSION GATE: FAIL" in text
        assert "regressed" in text and "improved" in text
        assert rep.counts() == {"regressed": 1, "improved": 1}


def _write_jsonl(path, rows):
    path.write_text("\n".join(json.dumps(r) for r in rows) + "\n")


def _seed(tmp_path, **metrics):
    MetricRegistry(str(tmp_path)).update("accel", metrics, stamp={"git_sha": "seed"})


class TestGateEndToEnd:
    def test_gate_jsonl(self, tmp_path):
        _seed(tmp_path, **{"fig13.speedup[config=a]": 4.0})
        m = tmp_path / "m.jsonl"
        _write_jsonl(m, [{"figure": "fig13", "metric": "speedup", "value": 2.0, "config": "a"}])
        report = gate_jsonl(str(m), root=str(tmp_path))
        assert report.failed

    def test_cli_fails_on_injected_regression(self, tmp_path, capsys):
        """Acceptance criterion: --bench-compare exits non-zero on a
        synthetic regression injected against a seeded baseline."""
        _seed(tmp_path, **{"fig13.speedup[config=a]": 4.0})
        m = tmp_path / "m.jsonl"
        _write_jsonl(m, [{"figure": "fig13", "metric": "speedup", "value": 2.0,
                          "config": "a", "git_sha": "x", "host": "ci"}])
        rc = main(["--bench-compare", str(m), "--bench-root", str(tmp_path)])
        assert rc == 1
        assert "REGRESSION GATE: FAIL" in capsys.readouterr().out

    def test_cli_passes_within_tolerance(self, tmp_path, capsys):
        _seed(tmp_path, **{"fig13.speedup[config=a]": 4.0})
        m = tmp_path / "m.jsonl"
        _write_jsonl(m, [{"figure": "fig13", "metric": "speedup", "value": 3.95,
                          "config": "a"}])
        rc = main(["--bench-compare", str(m), "--bench-root", str(tmp_path)])
        assert rc == 0
        assert "regression gate: pass" in capsys.readouterr().out

    def test_cli_update_refreshes_baseline_then_passes(self, tmp_path, capsys):
        _seed(tmp_path, **{"fig13.speedup[config=a]": 4.0})
        m = tmp_path / "m.jsonl"
        _write_jsonl(m, [{"figure": "fig13", "metric": "speedup", "value": 2.0,
                          "config": "a"}])
        rc = main(["--bench-compare", str(m), "--bench-root", str(tmp_path),
                   "--bench-update"])
        assert rc == 0
        assert MetricRegistry(str(tmp_path)).baseline("accel") == {
            "fig13.speedup[config=a]": 2.0
        }
        # the previous baseline rotated into history
        assert len(MetricRegistry(str(tmp_path)).history("accel")) == 2
        # the formerly-regressing value now gates clean
        assert main(["--bench-compare", str(m), "--bench-root", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_cli_empty_metrics_is_an_error(self, tmp_path, capsys):
        m = tmp_path / "empty.jsonl"
        m.write_text("")
        rc = main(["--bench-compare", str(m), "--bench-root", str(tmp_path)])
        assert rc == 2
        capsys.readouterr()

    def test_cli_writes_dashboard(self, tmp_path, capsys):
        _seed(tmp_path, **{"fig13.speedup[config=a]": 4.0})
        m = tmp_path / "m.jsonl"
        _write_jsonl(m, [{"figure": "fig13", "metric": "speedup", "value": 4.1,
                          "config": "a"}])
        dash = tmp_path / "dash.md"
        rc = main(["--bench-compare", str(m), "--bench-root", str(tmp_path),
                   "--bench-dashboard", str(dash)])
        assert rc == 0
        text = dash.read_text()
        assert "# Benchmark dashboard" in text
        assert "fig13.speedup[config=a]" in text
        capsys.readouterr()


class TestHostMismatchGating:
    """Host-shape-aware gating: a baseline recorded on a different (or
    unknown) core count must not fail the build on host-sensitive
    metrics, while host-independent required metrics keep gating."""

    FORCE_REQUIRED = {
        "roofline.": TolerancePolicy(direction="higher", rel_tol=0.05, required=True)
    }

    def _gate(self, tmp_path, stamp, current=None):
        from repro.obs.regress import gate_metrics

        registry = MetricRegistry(str(tmp_path))
        registry.update(
            "core",
            {"roofline.attained_fraction": 0.9, "attrib.span_coverage": 0.95},
            stamp=stamp,
        )
        current = current or {
            "core": {"roofline.attained_fraction": 0.1, "attrib.span_coverage": 0.5}
        }
        return gate_metrics(current, registry, self.FORCE_REQUIRED)

    def test_host_mismatch_reasons(self):
        from repro.obs.regress import host_mismatch

        cur = {"cpu_count": "1", "machine": "x86_64"}
        assert host_mismatch({"cpu_count": "1"}, cur) is None
        assert "cpu_count=64" in host_mismatch({"cpu_count": "64"}, cur)
        # a pre-provenance baseline has unknown host shape -> mismatch
        assert "no cpu_count" in host_mismatch({"git_sha": "old"}, cur)
        assert host_mismatch(None, cur) is not None

    def test_mismatch_downgrades_host_sensitive_only(self, tmp_path):
        import os

        foreign = {"git_sha": "seed", "cpu_count": str((os.cpu_count() or 1) + 64)}
        report = self._gate(tmp_path, foreign)
        roofline = _one(report.verdicts, "roofline.attained_fraction")
        coverage = _one(report.verdicts, "attrib.span_coverage")
        # the huge roofline regression is advisory: noted, cannot fail
        assert not roofline.fails
        assert not roofline.policy.required
        assert "host mismatch" in roofline.note
        # span coverage is instrumentation health, not host speed:
        # it keeps its required policy and fails the gate
        assert coverage.fails and coverage.note == ""
        assert report.failed

    def test_missing_cpu_count_counts_as_mismatch(self, tmp_path):
        report = self._gate(tmp_path, {"git_sha": "pre-provenance-seed"})
        roofline = _one(report.verdicts, "roofline.attained_fraction")
        assert not roofline.fails and "host mismatch" in roofline.note

    def test_same_host_keeps_required_policy(self, tmp_path):
        from repro.obs.metrics import provenance

        report = self._gate(tmp_path, provenance())
        roofline = _one(report.verdicts, "roofline.attained_fraction")
        assert roofline.fails and roofline.note == ""
        assert roofline.policy.required
