"""Histogram-derived quantiles vs the independent P² estimators.

Satellite guard for the telemetry tentpole: the bucket-interpolation
quantiles (:meth:`_HistogramChild.quantile`) and the
:class:`repro.obs.numerics.P2Quantile` streams see the same
observations through two unrelated algorithms — fixed exponential
buckets vs five adaptive markers.  On adversarial latency shapes
(bimodal mixtures, heavy tails) they must agree to within the
histogram's bucket resolution at that point (plus the documented P²
CDF tolerance), or one of the estimators is lying.

Distributions are chosen so the checked quantiles land inside a dense
mode, not in the empty valley between modes, where *any*
five-marker summary is legitimately ambiguous.
"""

import numpy as np
import pytest

from repro.obs.telemetry.registry import TelemetryRegistry, exponential_buckets

QUANTILES = (0.5, 0.95, 0.99)
N = 20_000

#: P² is CDF-accurate to a few percent of rank on hard shapes; translate
#: that into a value-space allowance relative to the local bucket width.
P2_SLACK = 2.0


def _check_agreement(samples: np.ndarray, buckets) -> None:
    reg = TelemetryRegistry(enabled=True)
    h = reg.histogram("lat", buckets=buckets, crosscheck=QUANTILES)
    for v in samples:
        h.observe(float(v))
    child = h.labels()
    for q in QUANTILES:
        bucket_q = child.quantile(q)
        p2_q = child.p2_quantile(q)
        exact_q = float(np.quantile(samples, q))
        tol = P2_SLACK * max(
            child.bucket_resolution(exact_q), 0.02 * abs(exact_q)
        )
        assert abs(bucket_q - p2_q) <= tol, (
            f"q={q}: bucket {bucket_q:.4f} vs P2 {p2_q:.4f} "
            f"(exact {exact_q:.4f}, tol {tol:.4f})"
        )
        # both estimators must also track the exact empirical quantile
        assert abs(bucket_q - exact_q) <= tol
        assert abs(p2_q - exact_q) <= tol


def test_crosscheck_bimodal_fast_slow_path():
    """70% fast path (~2 ms), 30% slow path (~40 ms): p50 in the fast
    mode, p95/p99 in the slow mode."""
    rng = np.random.default_rng(0)
    fast = rng.lognormal(mean=np.log(2.0), sigma=0.15, size=int(N * 0.7))
    slow = rng.lognormal(mean=np.log(40.0), sigma=0.15, size=N - len(fast))
    samples = rng.permutation(np.concatenate([fast, slow]))
    _check_agreement(samples, exponential_buckets(0.1, 1.3, 40))


def test_crosscheck_heavy_tailed_lognormal():
    """sigma=1.2 lognormal: the p99/p50 ratio is ~16x."""
    rng = np.random.default_rng(1)
    samples = rng.lognormal(mean=np.log(5.0), sigma=1.2, size=N)
    _check_agreement(samples, exponential_buckets(0.05, 1.4, 40))


def test_crosscheck_pareto_tail():
    """Pareto(alpha=2) shifted to ms scale — the classic tail-latency
    shape where mean-based summaries fail."""
    rng = np.random.default_rng(2)
    samples = 1.0 + rng.pareto(2.0, size=N) * 3.0
    _check_agreement(samples, exponential_buckets(0.5, 1.35, 40))


def test_crosscheck_near_constant_latency():
    """Degenerate-but-common case: essentially constant latency with
    timer jitter.  Both estimators must sit on the single mode."""
    rng = np.random.default_rng(3)
    samples = 10.0 + rng.normal(0.0, 0.05, size=N)
    _check_agreement(samples, exponential_buckets(0.1, 1.3, 40))


@pytest.mark.parametrize("q", QUANTILES)
def test_bucket_quantile_error_bounded_by_resolution(q):
    """Against exact numpy quantiles the bucket estimate is off by at
    most one bucket width — the advertised contract."""
    rng = np.random.default_rng(4)
    samples = rng.gamma(2.0, 3.0, size=N)
    reg = TelemetryRegistry(enabled=True)
    h = reg.histogram("lat", buckets=exponential_buckets(0.05, 1.3, 45))
    for v in samples:
        h.observe(float(v))
    child = h.labels()
    exact = float(np.quantile(samples, q))
    assert abs(child.quantile(q) - exact) <= child.bucket_resolution(exact)
