"""Streaming estimators vs exact numpy references (satellite of PR 5).

Welford mean/std (batched updates and cross-shard merges) must match
``numpy`` to floating-point accuracy on adversarial distributions;
P² percentile estimates must land close to the exact quantile in
empirical-CDF terms.  TensorStats must keep NaN/inf contamination out
of the finite-value statistics while counting it exactly.
"""

import numpy as np
import pytest

from repro.obs.numerics import P2Quantile, TensorStats, Welford

RNG = np.random.default_rng(1234)


def _distributions():
    n = 20_000
    return {
        "normal": RNG.normal(size=n),
        "constant": np.full(n, 3.25),
        "bimodal": np.concatenate(
            [RNG.normal(-5.0, 0.3, n // 2), RNG.normal(5.0, 0.3, n - n // 2)]
        ),
        "heavy_tailed": RNG.standard_cauchy(size=n),
        "uniform": RNG.uniform(-1.0, 2.0, size=n),
    }


DISTS = _distributions()


@pytest.mark.parametrize("name", sorted(DISTS))
class TestWelford:
    def test_batched_updates_match_numpy(self, name):
        data = DISTS[name]
        w = Welford()
        for chunk in np.array_split(data, 13):
            w.update(chunk)
        assert w.n == data.size
        assert w.mean == pytest.approx(data.mean(), rel=1e-10, abs=1e-10)
        assert w.std == pytest.approx(data.std(), rel=1e-9, abs=1e-12)
        assert w.minimum == data.min()
        assert w.maximum == data.max()

    def test_merge_across_shards_is_exact(self, name):
        """Independently built per-shard estimators merge to the global
        statistics — the property that makes per-batch collection valid."""
        data = DISTS[name]
        shards = np.array_split(data, 7)
        parts = []
        for shard in shards:
            w = Welford()
            # uneven sub-batches inside each shard
            for chunk in np.array_split(shard, 3):
                w.update(chunk)
            parts.append(w)
        merged = parts[0]
        for other in parts[1:]:
            merged.merge(other)
        assert merged.n == data.size
        assert merged.mean == pytest.approx(data.mean(), rel=1e-10, abs=1e-10)
        assert merged.std == pytest.approx(data.std(), rel=1e-9, abs=1e-12)
        assert merged.minimum == data.min()
        assert merged.maximum == data.max()


def test_welford_empty_and_single():
    w = Welford()
    assert w.n == 0 and w.mean == 0.0 and w.std == 0.0
    w.update(np.array([]))
    assert w.n == 0
    w.update(np.array([7.0]))
    assert w.n == 1
    assert w.mean == 7.0
    assert w.std == 0.0
    assert w.minimum == w.maximum == 7.0


def test_welford_merge_empty_is_identity():
    w = Welford()
    w.update(np.arange(10.0))
    before = (w.n, w.mean, w.std)
    w.merge(Welford())
    assert (w.n, w.mean, w.std) == before


class TestP2Quantile:
    @pytest.mark.parametrize("q", [0.01, 0.5, 0.99])
    @pytest.mark.parametrize("name", ["normal", "bimodal", "uniform"])
    def test_estimate_close_in_cdf_terms(self, name, q):
        """The estimate's empirical CDF position is within 0.08 of the
        target quantile (the standard way to judge P² accuracy — the
        *value* error is unbounded on heavy tails, the rank error isn't)."""
        data = DISTS[name]
        est = P2Quantile(q)
        est.update(data)
        assert est.n == data.size
        cdf_at_estimate = np.mean(data <= est.value)
        assert abs(cdf_at_estimate - q) < 0.08

    def test_median_on_heavy_tailed(self):
        """Cauchy samples: the median estimate must stay near 0 even
        though mean/extremes explode."""
        est = P2Quantile(0.5)
        est.update(DISTS["heavy_tailed"])
        cdf_at_estimate = np.mean(DISTS["heavy_tailed"] <= est.value)
        assert abs(cdf_at_estimate - 0.5) < 0.08

    def test_constant_stream(self):
        est = P2Quantile(0.5)
        est.update(np.full(1000, 4.5))
        assert est.value == 4.5

    def test_exact_for_small_n(self):
        est = P2Quantile(0.5)
        for v in [3.0, 1.0, 2.0]:
            est.add(v)
        assert est.value == 2.0

    def test_empty_is_nan(self):
        assert np.isnan(P2Quantile(0.25).value)

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_monotone_markers(self):
        """Estimates for increasing q from the same stream are ordered."""
        data = DISTS["normal"]
        values = []
        for q in (0.1, 0.5, 0.9):
            est = P2Quantile(q)
            est.update(data)
            values.append(est.value)
        assert values == sorted(values)


class TestTensorStats:
    def test_counts_and_moments_match_numpy(self):
        data = DISTS["normal"]
        ts = TensorStats(percentiles=(0.5,), sample_limit=data.size)
        for chunk in np.array_split(data, 9):
            ts.update(chunk)
        assert ts.count == data.size
        assert ts.nan_count == 0 and ts.inf_count == 0
        assert ts.moments.mean == pytest.approx(data.mean(), rel=1e-10)
        assert ts.moments.std == pytest.approx(data.std(), rel=1e-9)

    def test_inf_contamination_kept_out_of_moments(self):
        """One inf and one NaN: counted exactly, and mean/std/min/max of
        the *finite* part are untouched by them."""
        data = DISTS["uniform"].copy()
        data[10] = np.inf
        data[20] = -np.inf
        data[30] = np.nan
        finite = data[np.isfinite(data)]
        ts = TensorStats()
        nan, inf = ts.update(data)
        assert (nan, inf) == (1, 2)
        assert ts.nan_count == 1 and ts.inf_count == 2
        assert ts.count == data.size
        assert ts.finite_count == finite.size
        assert ts.moments.mean == pytest.approx(finite.mean(), rel=1e-10)
        assert ts.moments.std == pytest.approx(finite.std(), rel=1e-9)
        assert ts.moments.maximum == finite.max()
        assert np.isfinite(ts.percentile(0.5))

    def test_zero_fraction(self):
        arr = np.array([0.0, 0.0, 1.0, -1.0])
        ts = TensorStats()
        ts.update(arr)
        assert ts.zero_fraction == 0.5

    def test_sample_limit_bounds_percentile_work(self):
        """Huge arrays feed the P² estimators at most sample_limit
        values per update; moments still see everything."""
        data = RNG.normal(size=100_000)
        ts = TensorStats(percentiles=(0.5,), sample_limit=256)
        ts.update(data)
        assert ts.moments.n == data.size
        assert ts.quantiles[0.5].n <= 256
        # strided subsample of a shuffled stream still estimates well
        assert abs(np.mean(data <= ts.percentile(0.5)) - 0.5) < 0.1

    def test_no_percentiles_mode(self):
        ts = TensorStats(percentiles=())
        ts.update(RNG.normal(size=1000))
        assert ts.quantiles == {}
        d = ts.as_dict()
        assert "p50" not in d
        assert d["count"] == 1000

    def test_as_dict_round_trips_through_json(self):
        import json

        ts = TensorStats()
        ts.update(DISTS["uniform"][:100])
        doc = json.loads(json.dumps(ts.as_dict()))
        assert doc["count"] == 100

    def test_empty_update(self):
        ts = TensorStats()
        assert ts.update(np.array([])) == (0, 0)
        assert ts.count == 0
        assert ts.zero_fraction == 0.0
