"""Overhead guard: disabled numerics collection must cost (almost)
nothing (satellite of PR 5, mirroring the tracer overhead guard).

A model instrumented with ``numerics=collector`` but with the collector
*disabled* must stay within a small factor of the plain forward, and
the disabled observe/record paths must be bounded per call — so models
can stay permanently instrumented for training-time monitoring.
"""

import time

import numpy as np

from repro.nn.tensor import Tensor, no_grad
from repro.obs.instrument import instrument_model
from repro.obs.numerics import NumericsCollector, record_quant_event
from repro.obs.tracer import Tracer

from tests.obs.test_overhead import min_wall, small_model


class TestDisabledNumericsOverhead:
    def test_disabled_observe_per_call_cost_is_tiny(self):
        col = NumericsCollector()
        arr = np.zeros(64)
        n = 10_000
        t0 = time.perf_counter()
        for _ in range(n):
            col.observe("layer", "forward", arr)
        per_call = (time.perf_counter() - t0) / n
        assert per_call < 20e-6, f"disabled observe costs {per_call * 1e6:.2f} us/call"
        assert col.stats == {}

    def test_disabled_record_quant_event_per_call_cost_is_tiny(self):
        n = 10_000
        t0 = time.perf_counter()
        for _ in range(n):
            record_quant_event("dorefa.act_clip", 1, 100)
        per_call = (time.perf_counter() - t0) / n
        assert per_call < 20e-6, f"inactive quant event costs {per_call * 1e6:.2f} us/call"

    def test_instrumented_disabled_forward_within_a_few_percent(self):
        x = Tensor(np.random.default_rng(1).normal(size=(4, 3, 32, 32)))
        plain = small_model()
        col = NumericsCollector()
        instrumented = instrument_model(
            small_model(), tracer=Tracer(enabled=False), numerics=col
        )
        plain.eval()
        instrumented.eval()

        def run_plain():
            with no_grad():
                plain(x)

        def run_instrumented():
            with no_grad():
                instrumented(x)

        run_plain()  # warm up caches/allocations
        run_instrumented()
        base = min_wall(run_plain, repeats=7)
        watched = min_wall(run_instrumented, repeats=7)
        overhead = watched / base - 1.0
        # same bar as the disabled tracer: a few percent, with CI headroom
        assert overhead < 0.15, f"disabled-numerics overhead {overhead:.1%}"
        assert col.stats == {}
        assert col.quant == {}
