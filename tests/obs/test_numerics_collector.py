"""NumericsCollector end-to-end: instrumented collection, the NaN/inf
watchdog, quantized-path attribution, and the reorder-divergence probe.
"""

import logging

import numpy as np
import pytest

from repro.core.quantize import QuantConfig, quantize_activations, quantize_model
from repro.models.registry import build_model
from repro.models.reorder import conv_pool_blocks, set_pooling
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.obs.instrument import deinstrument_model, instrument_model
from repro.obs.numerics import (
    NumericsCollector,
    NumericsError,
    active_collectors,
    record_quant_event,
    reorder_divergence,
)


@pytest.fixture
def lenet():
    return build_model("lenet5", seed=0)


@pytest.fixture
def probe():
    return np.random.default_rng(0).normal(size=(2, 3, 32, 32))


def _forward_backward(model, probe):
    logits = model(Tensor(probe))
    loss = F.cross_entropy(logits, np.zeros(len(probe), dtype=np.int64))
    loss.backward()
    return logits


class TestCollection:
    def test_forward_and_backward_streams(self, lenet, probe):
        col = NumericsCollector()
        instrument_model(lenet, numerics=col)
        with col:
            _forward_backward(lenet, probe)
        kinds = {kind for _, kind in col.stats}
        assert kinds == {"forward", "backward"}
        layers = {layer for layer, _ in col.stats}
        assert "fc_out" in layers
        fwd = col.stats[("fc_out", "forward")]
        assert fwd.count == 2 * 10  # batch x classes
        assert np.isfinite(fwd.moments.mean)
        bwd = col.stats[("fc_out", "backward")]
        assert bwd.count == 2 * 10

    def test_disabled_collector_records_nothing(self, lenet, probe):
        col = NumericsCollector()
        instrument_model(lenet, numerics=col)
        _forward_backward(lenet, probe)  # never enabled
        assert col.stats == {}
        assert col.quant == {}
        col.observe("x", "forward", probe)  # direct call, still disabled
        assert col.stats == {}

    def test_deinstrument_restores_forward(self, lenet, probe):
        col = NumericsCollector()
        ref = lenet(Tensor(probe)).data
        instrument_model(lenet, numerics=col)
        deinstrument_model(lenet)
        with col:
            out = lenet(Tensor(probe)).data
        np.testing.assert_array_equal(out, ref)
        assert col.stats == {}

    def test_report_and_jsonl_shapes(self, lenet, probe):
        col = NumericsCollector()
        instrument_model(lenet, numerics=col)
        with col:
            _forward_backward(lenet, probe)
        doc = col.report()
        assert doc["layers"]
        row = doc["layers"][0]
        for key in ("layer", "kind", "count", "mean", "std", "zero_fraction"):
            assert key in row
        lines = col.to_jsonl().strip().splitlines()
        assert len(lines) == len(doc["layers"])

    def test_enable_disable_registry(self):
        col = NumericsCollector()
        assert col not in active_collectors()
        with col:
            assert col in active_collectors()
            assert col.enabled
        assert col not in active_collectors()
        assert not col.enabled


class TestWatchdog:
    def test_raise_policy_names_layer_and_batch(self, lenet, probe):
        col = NumericsCollector(watchdog="raise")
        instrument_model(lenet, numerics=col)
        # inject a NaN into the first conv's weights: the forward output
        # of that layer is the first non-finite tensor the model produces
        lenet.features[0].conv.weight.data[0, 0, 0, 0] = np.nan
        with col, pytest.raises(NumericsError) as err:
            col.set_context(epoch=3, batch=7)
            lenet(Tensor(probe))
        assert "features.0" in str(err.value)
        assert "epoch 3" in str(err.value)
        assert "batch 7" in str(err.value)
        assert err.value.layer.endswith("features.0.conv")
        assert err.value.kind == "forward"

    def test_record_policy_stores_first_anomaly(self, lenet, probe):
        col = NumericsCollector(watchdog="record")
        instrument_model(lenet, numerics=col)
        lenet.features[0].conv.weight.data[0, 0, 0, 0] = np.nan
        with col:
            lenet(Tensor(probe))  # must not raise
        assert col.first_anomaly is not None
        assert col.first_anomaly["layer"].endswith("features.0.conv")
        assert col.first_anomaly["nan"] > 0

    def test_warn_policy_logs_once_per_stream(self, lenet, probe, caplog):
        col = NumericsCollector(watchdog="warn")
        instrument_model(lenet, numerics=col)
        lenet.features[0].conv.weight.data[0, 0, 0, 0] = np.nan
        with caplog.at_level(logging.WARNING, logger="repro.obs.numerics"), col:
            lenet(Tensor(probe))
            lenet(Tensor(probe))  # second pass: same streams, no new warning
        conv_warnings = [
            r for r in caplog.records if "features.0.conv" in r.getMessage()
        ]
        assert len(conv_warnings) == 1

    def test_check_value_scalar(self):
        col = NumericsCollector(watchdog="raise")
        with col:
            col.check_value("train", "loss", 1.5)  # finite: fine
            with pytest.raises(NumericsError) as err:
                col.check_value("train", "loss", float("nan"))
        assert "train.loss" in str(err.value)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            NumericsCollector(watchdog="explode")


class TestQuantAttribution:
    def test_events_attributed_to_running_layer(self, probe):
        model = build_model("lenet5", seed=0)
        set_pooling(model, "avg")
        quantize_model(model, QuantConfig(8, 8))
        col = NumericsCollector()
        instrument_model(model, numerics=col)
        with col:
            model.eval()
            from repro.nn.tensor import no_grad

            with no_grad():
                model(Tensor(probe))
        attributed = [k for k in col.quant if "/" in k]
        assert any(k.endswith("dorefa.weight_sat") for k in attributed)
        assert any(k.endswith("dorefa.act_clip") for k in attributed)
        for counter in col.quant.values():
            assert 0.0 <= counter.rate <= 1.0
            assert counter.clipped <= counter.total

    def test_unattributed_events_without_instrumentation(self):
        col = NumericsCollector()
        with col:
            quantize_activations(np.array([-0.5, 0.5, 1.5]), 8)
        assert "dorefa.act_clip" in col.quant
        counter = col.quant["dorefa.act_clip"]
        assert counter.clipped == 2
        assert counter.low == 1 and counter.high == 1
        assert counter.total == 3

    def test_record_quant_event_noop_when_nothing_enabled(self):
        assert active_collectors() == []
        record_quant_event("dorefa.act_clip", 1, 10)  # must not blow up

    def test_clip_rate_aggregation(self):
        col = NumericsCollector()
        with col:
            col.record_quant("a/dorefa.act_clip", clipped=1, total=10)
            col.record_quant("b/dorefa.act_clip", clipped=3, total=10)
            col.record_quant("b/dorefa.weight_sat", clipped=9, total=10)
        assert col.clip_rate("dorefa.act_clip") == pytest.approx(0.2)
        assert col.clip_rate("dorefa.weight_sat") == pytest.approx(0.9)
        assert col.clip_rate("nonexistent") == 0.0


class TestReorderDivergence:
    def test_max_pooling_diverges_exactly_zero(self, probe):
        """ReLU and max-pool commute: the reorder is *exact* for max
        pooling — the probe must report 0 everywhere."""
        model = build_model("lenet5", seed=0)
        set_pooling(model, "max")
        result = reorder_divergence(model, probe)
        assert result["layers"] == 2
        assert result["end_to_end_max_abs"] == 0.0
        assert result["top1_flip_rate"] == 0.0
        assert all(v == 0.0 for v in result["per_layer"].values())

    def test_avg_pooling_genuinely_diverges(self, probe):
        """ReLU(avg(x)) != avg(ReLU(x)) whenever a window mixes signs
        (Jensen): avg-pool LeNet must show nonzero divergence."""
        model = build_model("lenet5", seed=0)
        set_pooling(model, "avg")
        result = reorder_divergence(model, probe)
        assert result["end_to_end_max_abs"] > 0.0
        assert all(v > 0.0 for v in result["per_layer"].values())

    def test_model_state_fully_restored(self, probe):
        model = build_model("lenet5", seed=0)
        set_pooling(model, "avg")
        orders_before = [b.order for b in conv_pool_blocks(model)]
        model.train()
        ref = None
        reorder_divergence(model, probe)
        assert [b.order for b in conv_pool_blocks(model)] == orders_before
        assert model.training
        # forward is byte-identical to an untouched model
        model.eval()
        out = model(Tensor(probe)).data
        fresh = build_model("lenet5", seed=0)
        set_pooling(fresh, "avg")
        fresh.eval()
        np.testing.assert_array_equal(out, fresh(Tensor(probe)).data)

    def test_quantized_model_supported(self, probe):
        model = build_model("lenet5", seed=0)
        set_pooling(model, "avg")
        quantize_model(model, QuantConfig(8, 8))
        col = NumericsCollector()
        result = reorder_divergence(model, probe, collector=col)
        assert result["layers"] == 2
        assert result["end_to_end_max_abs"] > 0.0
        assert col.divergence is result

    def test_composes_with_instrumentation(self, probe):
        """The probe's temporary capture hooks must not clobber
        instrument_model wrappers."""
        model = build_model("lenet5", seed=0)
        set_pooling(model, "avg")
        col = NumericsCollector()
        instrument_model(model, numerics=col)
        reorder_divergence(model, probe)
        with col:
            model(Tensor(probe))
        assert any(kind == "forward" for _, kind in col.stats)

    def test_model_without_pooled_blocks(self, probe):
        model = build_model("lenet5", seed=0)
        for b in conv_pool_blocks(model):
            b.pool = None
        result = reorder_divergence(model, probe)
        assert result["layers"] == 0
        assert result["end_to_end_max_abs"] == 0.0
