"""Host roofline calibration: roofs, classification, cache provenance."""

import json

import pytest

from repro.obs.roofline import (
    Roofline,
    calibrate,
    get_roofline,
    load_cached,
    measure_peak_flops,
    measure_stream_bandwidth,
    roofline_cache_path,
)


@pytest.fixture
def cache_path(tmp_path, monkeypatch):
    path = tmp_path / "roofline.json"
    monkeypatch.setenv("REPRO_ROOFLINE_CACHE", str(path))
    return str(path)


class TestRooflineModel:
    def test_ridge_and_classification(self):
        roof = Roofline(peak_flops=100.0, stream_bandwidth=10.0)
        assert roof.ridge_intensity == pytest.approx(10.0)
        assert roof.classify(20.0) == "compute"
        assert roof.classify(5.0) == "memory"
        # below the ridge the cap is the memory roof
        assert roof.attainable_flops(5.0) == pytest.approx(50.0)
        # above it, the compute roof
        assert roof.attainable_flops(20.0) == pytest.approx(100.0)
        assert roof.attainable_flops(0.0) == 0.0

    def test_attained_fraction(self):
        roof = Roofline(peak_flops=100.0, stream_bandwidth=10.0)
        assert roof.attained_fraction(25.0, 5.0) == pytest.approx(0.5)
        assert roof.attained_fraction(1.0, 0.0) == 0.0

    def test_positive_roofs_required(self):
        with pytest.raises(ValueError):
            Roofline(peak_flops=0.0, stream_bandwidth=1.0)
        with pytest.raises(ValueError):
            Roofline(peak_flops=1.0, stream_bandwidth=-1.0)

    def test_round_trip(self):
        roof = Roofline(peak_flops=2.0, stream_bandwidth=3.0, provenance={"host": "x"})
        again = Roofline.from_dict(roof.as_dict())
        assert again.peak_flops == roof.peak_flops
        assert again.stream_bandwidth == roof.stream_bandwidth
        assert again.provenance["host"] == "x"


class TestCalibration:
    def test_microbenchmarks_positive(self):
        # tiny sizes: this is a smoke test, not a measurement
        assert measure_peak_flops(n=64, repeats=1) > 0
        assert measure_stream_bandwidth(nbytes=1 << 16, repeats=1) > 0

    def test_calibrate_stamps_provenance(self):
        roof = calibrate(gemm_n=64, stream_bytes=1 << 16, repeats=1)
        for key in ("host", "machine", "cpu_count", "numpy", "timestamp"):
            assert key in roof.provenance
        assert roof.ridge_intensity > 0


class TestCache:
    def test_env_override_controls_path(self, cache_path):
        assert roofline_cache_path() == cache_path

    def test_get_roofline_writes_and_reuses_cache(self, cache_path):
        first = get_roofline()
        with open(cache_path) as fh:
            doc = json.load(fh)
        assert doc["peak_flops"] == first.peak_flops
        # second call must hit the cache (identical values, no re-measure)
        second = get_roofline()
        assert second.peak_flops == first.peak_flops
        assert second.stream_bandwidth == first.stream_bandwidth

    def test_absent_and_corrupt_cache(self, cache_path, tmp_path):
        assert load_cached(cache_path) is None
        with open(cache_path, "w") as fh:
            fh.write("{not json")
        assert load_cached(cache_path) is None

    def test_foreign_host_cache_discarded(self, cache_path):
        roof = get_roofline()
        with open(cache_path) as fh:
            doc = json.load(fh)
        doc["provenance"]["cpu_count"] = str(int(doc["provenance"]["cpu_count"]) + 64)
        with open(cache_path, "w") as fh:
            json.dump(doc, fh)
        # same file, wrong core count -> treated as absent
        assert load_cached(cache_path) is None
        assert roof.peak_flops > 0
