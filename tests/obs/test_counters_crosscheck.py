"""Measured counters vs analytic predictions (the audit loop).

The acceptance bar for the measured-counter layer: counters collected
from a *real* instrumented fused-kernel execution and a simulator run
must agree with the closed-form :mod:`repro.core.opcount` predictions
within 1%.  (They actually agree exactly — the tolerance is slack for
future model refinements.)
"""

import numpy as np
import pytest

from repro.accel import get_config
from repro.accel.simulator import simulate_network
from repro.core.fusion import (
    dense_conv_pool_counted,
    fused_conv_pool,
    fused_conv_pool_counted,
)
from repro.core.opcount import dcnn_layer_ops, mlcnn_layer_ops
from repro.models.specs import LayerSpec
from repro.nn.tensor import Tensor, no_grad
from repro.obs.metrics import collect_counters

RTOL = 0.01  # the 1% acceptance bar


def _workload(spec: LayerSpec, seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(spec.in_channels, spec.input_size, spec.input_size))
    w = rng.normal(size=(spec.out_channels, spec.in_channels, spec.kernel, spec.kernel))
    b = rng.normal(size=spec.out_channels)
    return x, w, b


CASES = [
    LayerSpec("k3p2", in_channels=3, out_channels=4, input_size=12, kernel=3, pool=2),
    LayerSpec("k5p2", in_channels=2, out_channels=3, input_size=15, kernel=5, pool=2),
    LayerSpec("k2p3", in_channels=1, out_channels=2, input_size=14, kernel=2, pool=3),
]


@pytest.mark.parametrize("spec", CASES, ids=lambda s: s.name)
class TestFusedKernelVsAnalytic:
    def test_rme_lar_gar_counters_within_1pct(self, spec):
        """The headline cross-check: mults, RME elimination, LAR/GAR
        preprocessing additions and major accumulations, all measured
        from an instrumented execution, match the analytic layer model."""
        x, w, b = _workload(spec)
        with collect_counters() as oc:
            fused_conv_pool_counted(x, w, b, pool=spec.pool)
        ml = mlcnn_layer_ops(spec)
        dc = dcnn_layer_ops(spec)

        # RME: multiplications performed and eliminated
        assert oc.mults == pytest.approx(ml.multiplications, rel=RTOL)
        assert oc.mults_eliminated == pytest.approx(
            dc.multiplications - ml.multiplications, rel=RTOL
        )
        # LAR+GAR: preprocessing additions actually spent building I_Acc
        assert oc.half_additions + oc.full_additions == pytest.approx(
            ml.preprocessing_additions, rel=RTOL
        )
        # major accumulation + bias additions
        assert oc.major_additions + oc.bias_additions == pytest.approx(
            ml.additions, rel=RTOL
        )
        # grand total of measured additions
        assert oc.additions == pytest.approx(
            ml.additions + ml.preprocessing_additions, rel=RTOL
        )

    def test_reuse_hits_account_for_avoided_additions(self, spec):
        """additions + reuse hits is invariant: a full-reuse run spends
        what a no-reuse run spends minus exactly its recorded hits."""
        x, w, b = _workload(spec)
        with collect_counters() as with_reuse:
            fused_conv_pool_counted(x, w, b, pool=spec.pool)
        with collect_counters() as no_reuse:
            fused_conv_pool_counted(
                x, w, b, pool=spec.pool,
                use_lar=False, use_gar_row=False, use_gar_col=False,
            )
        small_with = (
            with_reuse.half_additions + with_reuse.full_additions + with_reuse.reuse_hits
        )
        small_without = no_reuse.half_additions + no_reuse.full_additions
        assert small_with == small_without
        assert with_reuse.lar_reuse_hits + with_reuse.gar_reuse_hits == with_reuse.reuse_hits
        assert with_reuse.gar_reuse_hits > 0

    def test_dense_execution_eliminates_nothing(self, spec):
        x, w, b = _workload(spec)
        with collect_counters() as oc:
            dense_conv_pool_counted(x, w, b, pool=spec.pool)
        dc = dcnn_layer_ops(spec)
        assert oc.mults_eliminated == 0
        assert oc.mults == pytest.approx(dc.multiplications, rel=RTOL)
        assert oc.additions == pytest.approx(dc.additions, rel=RTOL)


def test_vectorized_kernel_records_rme():
    """The production (vectorized) fused kernel reports the same RME
    multiplication counts as the analytic model, scaled by batch."""
    spec = LayerSpec("v", in_channels=3, out_channels=4, input_size=12, kernel=3, pool=2)
    batch = 2
    rng = np.random.default_rng(1)
    x = Tensor(rng.normal(size=(batch, 3, 12, 12)))
    w = Tensor(rng.normal(size=(4, 3, 3, 3)))
    with no_grad(), collect_counters() as oc:
        fused_conv_pool(x, w, pool=2)
    ml, dc = mlcnn_layer_ops(spec), dcnn_layer_ops(spec)
    assert oc.mults == batch * ml.multiplications
    assert oc.mults_eliminated == batch * (dc.multiplications - ml.multiplications)


def test_simulator_memory_counters_match_results():
    """Simulator-side counters: DRAM bytes and buffer accesses recorded
    during a run equal the per-layer attribution it returns."""
    from repro.models import specs as model_specs

    layer_specs = model_specs.get_specs("lenet5")
    with collect_counters() as oc:
        res = simulate_network(layer_specs, get_config("mlcnn-fp32"))
    assert oc.dram_bytes == pytest.approx(sum(l.dram_bytes for l in res.layers), rel=1e-12)
    assert oc.buffer_accesses == pytest.approx(
        sum(l.buffer_accesses for l in res.layers), rel=1e-12
    )


def test_counters_identical_across_collections():
    """Same workload, two separate collections: identical measurements
    (the counters are deterministic, so they can gate regressions)."""
    spec = CASES[0]
    x, w, b = _workload(spec)
    snapshots = []
    for _ in range(2):
        with collect_counters() as oc:
            fused_conv_pool_counted(x, w, b, pool=spec.pool)
        snapshots.append(oc.as_dict())
    assert snapshots[0] == snapshots[1]
