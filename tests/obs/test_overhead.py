"""Overhead guard: a disabled tracer must cost (almost) nothing.

The promise the whole subsystem rests on: leaving models instrumented
and subsystems traced is free when tracing is off, so instrumentation
never has to be ripped out for production runs.  Guarded two ways —
an absolute per-call bound on the disabled span path, and an end-to-end
ratio between a plain and an instrumented-but-disabled forward pass.
"""

import time

import numpy as np

from repro.nn import AvgPool2d, Conv2d, Flatten, Linear, ReLU, Sequential
from repro.nn.tensor import Tensor, no_grad
from repro.obs.instrument import instrument_model
from repro.obs.tracer import Tracer


def small_model(rng=None):
    rng = rng or np.random.default_rng(0)
    return Sequential(
        Conv2d(3, 16, 3, padding=1, rng=rng),
        ReLU(),
        AvgPool2d(2),
        Conv2d(16, 16, 3, padding=1, rng=rng),
        ReLU(),
        AvgPool2d(2),
        Flatten(),
        Linear(16 * 8 * 8, 10, rng=rng),
    )


def min_wall(fn, repeats: int) -> float:
    """Best-of-N wall time — robust against scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestDisabledOverhead:
    def test_disabled_span_per_call_cost_is_tiny(self):
        t = Tracer(enabled=False)
        n = 10_000
        span = t.span
        t0 = time.perf_counter()
        for _ in range(n):
            with span("hot"):
                pass
        per_call = (time.perf_counter() - t0) / n
        # "near-zero": microseconds, not tens of microseconds
        assert per_call < 20e-6, f"disabled span costs {per_call * 1e6:.2f} us/call"
        assert t.events == []

    def test_instrumented_disabled_forward_within_a_few_percent(self):
        x = Tensor(np.random.default_rng(1).normal(size=(4, 3, 32, 32)))
        plain = small_model()
        tracer = Tracer(enabled=False)
        instrumented = instrument_model(small_model(), tracer=tracer)
        plain.eval()
        instrumented.eval()

        def run_plain():
            with no_grad():
                plain(x)

        def run_instrumented():
            with no_grad():
                instrumented(x)

        run_plain()  # warm up caches/allocations
        run_instrumented()
        base = min_wall(run_plain, repeats=7)
        traced = min_wall(run_instrumented, repeats=7)
        overhead = traced / base - 1.0
        # target is "a few percent"; the bound leaves headroom for CI noise
        assert overhead < 0.15, f"disabled-tracer overhead {overhead:.1%}"
        assert tracer.events == []
