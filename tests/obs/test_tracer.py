"""Tracer core: nesting, exception safety, thread safety, metrics."""

import threading

import pytest

from repro.obs.tracer import NULL_SPAN, Tracer


class TestSpans:
    def test_span_records_duration(self):
        t = Tracer(enabled=True)
        with t.span("work"):
            pass
        (ev,) = t.events
        assert ev.name == "work"
        assert ev.is_span
        assert ev.dur_us >= 0.0

    def test_nesting_depth_and_parent(self):
        t = Tracer(enabled=True)
        with t.span("outer"):
            with t.span("inner"):
                with t.span("leaf"):
                    pass
        by_name = {ev.name: ev for ev in t.events}
        assert by_name["outer"].depth == 0 and by_name["outer"].parent is None
        assert by_name["inner"].depth == 1 and by_name["inner"].parent == "outer"
        assert by_name["leaf"].depth == 2 and by_name["leaf"].parent == "inner"

    def test_completion_order_inner_first(self):
        t = Tracer(enabled=True)
        with t.span("outer"):
            with t.span("inner"):
                pass
        assert [ev.name for ev in t.events] == ["inner", "outer"]

    def test_sibling_spans_share_parent(self):
        t = Tracer(enabled=True)
        with t.span("parent"):
            with t.span("a"):
                pass
            with t.span("b"):
                pass
        by_name = {ev.name: ev for ev in t.events}
        assert by_name["a"].parent == by_name["b"].parent == "parent"
        assert by_name["a"].depth == by_name["b"].depth == 1

    def test_span_timestamps_are_ordered(self):
        t = Tracer(enabled=True)
        with t.span("first"):
            pass
        with t.span("second"):
            pass
        first, second = t.events
        assert second.ts_us >= first.ts_us + first.dur_us

    def test_attrs_and_set(self):
        t = Tracer(enabled=True)
        with t.span("s", bytes=128) as sp:
            sp.set(rewrites=3)
        (ev,) = t.events
        assert ev.attrs == {"bytes": 128, "rewrites": 3}

    def test_category_recorded(self):
        t = Tracer(enabled=True)
        with t.span("s", category="compiler"):
            pass
        assert t.events[0].category == "compiler"

    def test_exception_closes_span(self):
        t = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with t.span("risky"):
                raise ValueError("boom")
        (ev,) = t.events
        assert ev.name == "risky"
        assert ev.attrs["error"] == "ValueError"
        # the stack unwound: the next span is a root again
        with t.span("after"):
            pass
        assert t.events[-1].depth == 0

    def test_instant_event(self):
        t = Tracer(enabled=True)
        with t.span("ctx"):
            t.event("marker", layer="conv1", cycles=42)
        instants = [ev for ev in t.events if not ev.is_span]
        (ev,) = instants
        assert ev.dur_us is None
        assert ev.parent == "ctx" and ev.depth == 1
        assert ev.attrs == {"layer": "conv1", "cycles": 42}


class TestDisabled:
    def test_disabled_span_is_shared_noop(self):
        t = Tracer(enabled=False)
        assert t.span("x") is NULL_SPAN
        with t.span("x") as sp:
            sp.set(anything=1)
        assert t.events == []

    def test_disabled_event_counter_histogram_noop(self):
        t = Tracer(enabled=False)
        t.event("e")
        t.add("c", 5)
        t.observe("h", 1.0)
        assert t.events == [] and t.counters == {} and t.histograms == {}

    def test_enable_disable_roundtrip(self):
        t = Tracer(enabled=False)
        t.enable()
        with t.span("on"):
            pass
        t.disable()
        with t.span("off"):
            pass
        assert [ev.name for ev in t.events] == ["on"]

    def test_clear_resets_everything(self):
        t = Tracer(enabled=True)
        with t.span("s"):
            t.add("c")
            t.observe("h", 2.0)
        t.clear()
        assert t.events == [] and t.counters == {} and t.histograms == {}


class TestMetrics:
    def test_counters_accumulate(self):
        t = Tracer(enabled=True)
        t.add("samples", 32)
        t.add("samples", 16)
        t.add("steps")
        assert t.counters == {"samples": 48.0, "steps": 1.0}

    def test_histogram_stats(self):
        t = Tracer(enabled=True)
        for v in (1.0, 2.0, 3.0):
            t.observe("loss", v)
        s = t.histogram_stats("loss")
        assert s["count"] == 3
        assert s["total"] == 6.0
        assert s["mean"] == 2.0
        assert s["min"] == 1.0 and s["max"] == 3.0

    def test_missing_histogram_stats_are_zero(self):
        t = Tracer(enabled=True)
        assert t.histogram_stats("nope")["count"] == 0


class TestThreadSafety:
    def test_concurrent_nested_spans(self):
        t = Tracer(enabled=True)
        n_threads, n_iters = 8, 25
        errors = []

        def work(tid):
            try:
                for i in range(n_iters):
                    with t.span(f"outer-{tid}"):
                        with t.span(f"inner-{tid}"):
                            t.add("iterations")
                            t.observe("value", float(i))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(k,)) for k in range(n_threads)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()

        assert not errors
        events = t.events
        assert len(events) == n_threads * n_iters * 2
        assert t.counters["iterations"] == n_threads * n_iters
        assert len(t.histograms["value"]) == n_threads * n_iters
        # nesting is tracked per thread: every inner span has depth 1
        # and its own thread's outer as parent
        for ev in events:
            if ev.name.startswith("inner-"):
                tid = ev.name.split("-")[1]
                assert ev.depth == 1
                assert ev.parent == f"outer-{tid}"
            else:
                assert ev.depth == 0 and ev.parent is None
