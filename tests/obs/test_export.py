"""Exporters: JSONL, Chrome trace schema, summary table."""

import json

from repro.obs.export import (
    summary,
    summary_report,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracer import Tracer


def populated_tracer() -> Tracer:
    t = Tracer(enabled=True)
    with t.span("compile.pipeline", category="compiler", pipeline="mlcnn"):
        with t.span("compile.pass.fuse", category="compiler") as sp:
            sp.set(rewrites=4)
        t.event("sim.layer", category="accel", layer="conv1", cycles=123.0)
    t.add("train.samples", 64)
    t.observe("train.loss", 1.5)
    t.observe("train.loss", 0.5)
    return t


class TestChromeTrace:
    def test_valid_json_with_required_fields(self, tmp_path):
        t = populated_tracer()
        path = tmp_path / "trace.json"
        n = write_chrome_trace(str(path), t)
        doc = json.loads(path.read_text())  # must round-trip as JSON
        events = doc["traceEvents"]
        assert n == len(events) == 3
        for ev in events:
            assert {"ph", "ts", "name", "pid", "tid"} <= set(ev)
        complete = [ev for ev in events if ev["ph"] == "X"]
        for ev in complete:
            assert "dur" in ev and ev["dur"] >= 0
        assert {ev["name"] for ev in complete} == {
            "compile.pipeline",
            "compile.pass.fuse",
        }

    def test_instants_and_args(self):
        doc = to_chrome_trace(populated_tracer())
        instant = next(ev for ev in doc["traceEvents"] if ev["ph"] == "i")
        assert instant["name"] == "sim.layer"
        assert instant["args"]["cycles"] == 123.0
        fuse = next(ev for ev in doc["traceEvents"] if ev["name"] == "compile.pass.fuse")
        assert fuse["args"]["rewrites"] == 4

    def test_thread_ids_remapped_to_ordinals(self):
        doc = to_chrome_trace(populated_tracer())
        assert {ev["tid"] for ev in doc["traceEvents"]} == {0}

    def test_nonserializable_attrs_coerced(self):
        import numpy as np

        t = Tracer(enabled=True)
        with t.span("s", arr=np.float64(2.5), obj=object()):
            pass
        json.dumps(to_chrome_trace(t))  # must not raise


class TestJsonl:
    def test_each_line_parses(self, tmp_path):
        t = populated_tracer()
        path = tmp_path / "trace.jsonl"
        write_jsonl(str(path), t)
        lines = path.read_text().strip().split("\n")
        docs = [json.loads(line) for line in lines]
        types = [d["type"] for d in docs]
        assert types.count("span") == 2
        assert types.count("instant") == 1
        assert types.count("counter") == 1
        assert types.count("histogram") == 1

    def test_span_fields(self):
        docs = [json.loads(l) for l in to_jsonl(populated_tracer()).strip().split("\n")]
        fuse = next(d for d in docs if d.get("name") == "compile.pass.fuse")
        assert fuse["type"] == "span"
        assert fuse["parent"] == "compile.pipeline"
        assert fuse["depth"] == 1
        assert fuse["dur_us"] >= 0
        assert fuse["attrs"]["rewrites"] == 4

    def test_aggregate_lines(self):
        docs = [json.loads(l) for l in to_jsonl(populated_tracer()).strip().split("\n")]
        counter = next(d for d in docs if d["type"] == "counter")
        assert counter == {"type": "counter", "name": "train.samples", "value": 64}
        hist = next(d for d in docs if d["type"] == "histogram")
        assert hist["name"] == "train.loss"
        assert hist["count"] == 2 and hist["mean"] == 1.0

    def test_empty_tracer_exports_empty(self):
        assert to_jsonl(Tracer(enabled=True)) == ""


class TestSummary:
    def test_top_spans_by_total_time(self):
        rep = summary_report(populated_tracer(), top=5)
        rendered = rep.render()
        assert "compile.pipeline" in rendered
        assert "compile.pass.fuse" in rendered
        assert "counter train.samples = 64" in rendered
        assert "histogram train.loss" in rendered

    def test_top_limit_respected(self):
        t = Tracer(enabled=True)
        for i in range(20):
            with t.span(f"span-{i}"):
                pass
        rep = summary_report(t, top=3)
        assert len(rep.rows) == 3

    def test_summary_text_helper(self):
        text = summary(populated_tracer())
        assert text.startswith("== Trace:")
