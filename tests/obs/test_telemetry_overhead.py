"""Overhead guard: telemetry fully off must cost (almost) nothing.

The Trainer batch loop and the fused kernels are *permanently*
instrumented — the telemetry calls sit in the hot paths whether or not
anyone is watching.  This mirrors the tracer and numerics
disabled-overhead guards: with the process-wide registry disabled,
every instrument call must be bounded per call, and the end-to-end
cost on a real training fit / kernel call must be lost in the noise.
"""

import time

import numpy as np

from repro.core.fusion import fused_conv_pool
from repro.data import SyntheticImageConfig, make_synth_cifar, train_val_split
from repro.models import build_model
from repro.obs.telemetry.registry import TelemetryRegistry, get_telemetry
from repro.train import TrainConfig, Trainer

from tests.obs.test_overhead import min_wall


class TestDisabledInstrumentCost:
    def test_disabled_observe_per_call_cost_is_tiny(self):
        reg = TelemetryRegistry(enabled=False)
        h = reg.histogram("lat")
        n = 10_000
        t0 = time.perf_counter()
        for _ in range(n):
            h.observe(1.25)
        per_call = (time.perf_counter() - t0) / n
        assert per_call < 20e-6, f"disabled observe costs {per_call * 1e6:.2f} us/call"
        assert not h.series()

    def test_disabled_counter_and_gauge_per_call_cost_is_tiny(self):
        reg = TelemetryRegistry(enabled=False)
        c = reg.counter("c")
        g = reg.gauge("g")
        n = 10_000
        t0 = time.perf_counter()
        for _ in range(n):
            c.inc()
            g.set(3.0, pool="plan")
        per_call = (time.perf_counter() - t0) / (2 * n)
        assert per_call < 20e-6, f"disabled inc/set costs {per_call * 1e6:.2f} us/call"
        assert c.value == 0 and not g.series()


def _fit_once(seed: int = 0) -> None:
    cfg = SyntheticImageConfig(
        num_classes=10, samples_per_class=6, image_size=32, seed=seed
    )
    train_set, val_set = train_val_split(make_synth_cifar(cfg), 0.25, seed=seed)
    model = build_model("lenet5", seed=seed)
    Trainer(
        model,
        train_set,
        val_set,
        TrainConfig(epochs=1, batch_size=16, seed=seed),
    ).fit()


class TestTrainerDisabledOverhead:
    def test_trainer_batch_loop_unaffected_when_telemetry_off(self):
        """The batch loop's telemetry hooks reduce to one enabled-check
        per fit plus one None-check per batch while the registry is off."""
        reg = get_telemetry()
        assert not reg.enabled  # the suite never leaves it on
        _fit_once()  # warm numpy/BLAS caches
        base = min_wall(_fit_once, repeats=3)
        # the instrumented path IS the only path; re-measure to bound
        # run-to-run noise, then assert a fit stays within that band
        again = min_wall(_fit_once, repeats=3)
        drift = abs(again - base) / base
        assert drift < 0.25, f"timing noise {drift:.1%} — host too unstable"
        snap = reg.snapshot()
        assert not snap.find("train.batch_latency_ms"), (
            "disabled telemetry must not create instruments"
        )

    def test_enabled_trainer_overhead_is_small(self):
        """Even fully ON, per-batch telemetry (one histogram observe +
        two counter incs, ~us) must vanish inside a ~ms batch."""
        reg = get_telemetry()
        _fit_once()
        base = min_wall(_fit_once, repeats=3)
        reg.clear()
        reg.enable()
        try:
            watched = min_wall(_fit_once, repeats=3)
        finally:
            reg.disable()
            reg.clear()
        overhead = watched / base - 1.0
        assert overhead < 0.15, f"enabled-telemetry fit overhead {overhead:.1%}"


class TestKernelDisabledOverhead:
    def test_fused_conv_pool_unaffected_by_registry_state(self):
        """The kernel path only touches telemetry at the parallel
        submit/absorb sites; serial fused_conv_pool must be identical
        wall time with the registry enabled or disabled."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, 3, 32, 32))
        w = rng.normal(size=(8, 3, 5, 5))

        def run():
            fused_conv_pool(x, w, pool=2)

        reg = get_telemetry()
        run()
        base = min_wall(run, repeats=7)
        reg.enable()
        try:
            enabled = min_wall(run, repeats=7)
        finally:
            reg.disable()
            reg.clear()
        overhead = enabled / base - 1.0
        assert overhead < 0.15, f"fused_conv_pool telemetry overhead {overhead:.1%}"
