"""Telemetry registry semantics: instruments, labels, export formats."""

import json
import math
import os

import pytest

from repro.obs.telemetry.registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    TelemetryExporter,
    TelemetryRegistry,
    exponential_buckets,
    get_telemetry,
    parse_prometheus,
    read_telemetry_jsonl,
)


@pytest.fixture
def reg():
    return TelemetryRegistry(enabled=True)


# ---------------------------------------------------------------------------
# buckets
# ---------------------------------------------------------------------------

def test_exponential_buckets_shape():
    b = exponential_buckets(0.1, 2.0, 5)
    assert b == (0.1, 0.2, 0.4, 0.8, 1.6)


def test_exponential_buckets_validation():
    with pytest.raises(ValueError):
        exponential_buckets(0.0, 2.0, 5)
    with pytest.raises(ValueError):
        exponential_buckets(0.1, 1.0, 5)
    with pytest.raises(ValueError):
        exponential_buckets(0.1, 2.0, 0)


def test_default_buckets_cover_latency_range():
    assert DEFAULT_LATENCY_BUCKETS_MS[0] <= 0.05
    assert DEFAULT_LATENCY_BUCKETS_MS[-1] > 10_000  # > 10 s


# ---------------------------------------------------------------------------
# instruments
# ---------------------------------------------------------------------------

def test_counter_monotone(reg):
    c = reg.counter("c")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.labels().inc(-1)


def test_gauge_set_inc_dec(reg):
    g = reg.gauge("g")
    g.set(10)
    g.inc(5)
    g.dec(2)
    assert g.value == 13


def test_labeled_children_are_distinct_series(reg):
    c = reg.counter("shards")
    c.inc(pool="kernel")
    c.inc(pool="kernel")
    c.inc(pool="plan")
    assert c.labels(pool="kernel").value == 2
    assert c.labels(pool="plan").value == 1
    assert c.value == 3  # family total sums children
    assert len(c.series()) == 2


def test_label_order_does_not_matter(reg):
    g = reg.gauge("g")
    g.set(1, a="x", b="y")
    assert g.labels(b="y", a="x").value == 1
    assert len(g.series()) == 1


def test_family_idempotent_and_type_checked(reg):
    assert reg.counter("m") is reg.counter("m")
    with pytest.raises(ValueError):
        reg.gauge("m")


def test_disabled_registry_drops_everything():
    reg = TelemetryRegistry(enabled=False)
    c = reg.counter("c")
    h = reg.histogram("h")
    c.inc()
    h.observe(1.0)
    assert c.value == 0
    assert not h.series()


def test_enable_disable_context_manager():
    reg = TelemetryRegistry()
    assert not reg.enabled
    with reg:
        assert reg.enabled
        reg.counter("c").inc()
    assert not reg.enabled
    assert reg.counter("c").value == 1


def test_process_wide_singleton_disabled_by_default():
    assert get_telemetry() is get_telemetry()
    assert not get_telemetry().enabled


# ---------------------------------------------------------------------------
# histogram quantiles
# ---------------------------------------------------------------------------

def test_histogram_quantiles_uniform(reg):
    h = reg.histogram("lat", buckets=exponential_buckets(1, 1.5, 24))
    for i in range(1, 1001):
        h.observe(i / 10.0)  # uniform on (0, 100]
    child = h.labels()
    for q, expect in [(0.5, 50.0), (0.95, 95.0), (0.99, 99.0)]:
        got = child.quantile(q)
        assert abs(got - expect) <= child.bucket_resolution(expect)


def test_histogram_quantile_clamped_to_observed_range(reg):
    h = reg.histogram("lat")
    for v in (5.0, 5.1, 5.2):
        h.observe(v)
    child = h.labels()
    assert child.quantile(0.0) >= 5.0
    assert child.quantile(1.0) <= 5.2
    assert child.quantile(0.5) == pytest.approx(5.1, abs=child.bucket_resolution(5.1))


def test_histogram_empty_quantile_is_nan(reg):
    h = reg.histogram("lat")
    assert math.isnan(h.labels().quantile(0.5))
    assert math.isnan(h.quantile(0.5))


def test_histogram_quantile_validation(reg):
    h = reg.histogram("lat")
    h.observe(1.0)
    with pytest.raises(ValueError):
        h.labels().quantile(1.5)


def test_histogram_overflow_bucket(reg):
    h = reg.histogram("lat", buckets=(1.0, 2.0))
    h.observe(100.0)
    child = h.labels()
    assert child.counts[-1] == 1
    assert child.quantile(0.99) == 100.0  # clamped to observed max


def test_histogram_rejects_unsorted_buckets(reg):
    with pytest.raises(ValueError):
        reg.histogram("bad", buckets=(2.0, 1.0))
    with pytest.raises(ValueError):
        reg.histogram("dup", buckets=(1.0, 1.0))


def test_histogram_cumulative_le_semantics(reg):
    h = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.0, 1.5, 3.0, 9.0):
        h.observe(v)
    cum = h.labels().cumulative_buckets()
    # le=1.0 holds 0.5 and the boundary value 1.0
    assert cum == [(1.0, 2), (2.0, 3), (4.0, 4), (math.inf, 5)]


def test_histogram_p2_crosscheck_disabled_by_default(reg):
    h = reg.histogram("lat")
    h.observe(1.0)
    assert math.isnan(h.labels().p2_quantile(0.5))


# ---------------------------------------------------------------------------
# snapshot + prometheus export
# ---------------------------------------------------------------------------

def _populated_registry():
    reg = TelemetryRegistry(enabled=True)
    reg.counter("train.batches_total", "batches").inc(7)
    reg.gauge("parallel.queue_depth", "depth").set(3, pool="plan")
    h = reg.histogram("train.batch_latency_ms", "latency", buckets=(1.0, 10.0, 100.0))
    for v in (0.5, 5.0, 50.0):
        h.observe(v)
    return reg


def test_snapshot_document_shape():
    snap = _populated_registry().snapshot(ts=123.0)
    assert snap.ts == 123.0
    fam = snap.find("train.batch_latency_ms")
    row = fam["series"][0]
    assert row["count"] == 3
    assert row["min"] == 0.5 and row["max"] == 50.0
    assert row["p50"] is not None and row["p99"] is not None
    assert snap.find("missing") is None


def test_prometheus_round_trip():
    prom = _populated_registry().snapshot().to_prometheus()
    parsed = parse_prometheus(prom)
    # dots sanitized to underscores
    assert parsed["train_batches_total"] == [({}, 7.0)]
    assert parsed["parallel_queue_depth"] == [({"pool": "plan"}, 3.0)]
    buckets = dict(
        (labels["le"], v) for labels, v in parsed["train_batch_latency_ms_bucket"]
    )
    assert buckets["+Inf"] == 3.0
    assert parsed["train_batch_latency_ms_count"] == [({}, 3.0)]
    assert parsed["train_batch_latency_ms_sum"][0][1] == pytest.approx(55.5)


def test_prometheus_help_and_type_lines():
    prom = _populated_registry().snapshot().to_prometheus()
    assert "# HELP train_batches_total batches" in prom
    assert "# TYPE train_batch_latency_ms histogram" in prom


def test_parse_prometheus_rejects_garbage():
    with pytest.raises(ValueError):
        parse_prometheus("this is not prometheus\n")


def test_jsonl_round_trip(tmp_path):
    reg = _populated_registry()
    path = str(tmp_path / "t.jsonl")
    with open(path, "w") as fh:
        fh.write(reg.snapshot(ts=1.0).to_jsonl_line() + "\n")
        fh.write(reg.snapshot(ts=2.0).to_jsonl_line() + "\n")
    snaps = read_telemetry_jsonl(path)
    assert [s.ts for s in snaps] == [1.0, 2.0]
    assert snaps[0].find("train.batches_total")["series"][0]["value"] == 7


def test_read_telemetry_jsonl_rejects_corruption(tmp_path):
    path = str(tmp_path / "bad.jsonl")
    with open(path, "w") as fh:
        fh.write('{"ts": 1.0, "metrics": []}\n{oops\n')
    with pytest.raises(ValueError):
        read_telemetry_jsonl(path)


# ---------------------------------------------------------------------------
# exporter
# ---------------------------------------------------------------------------

def test_exporter_writes_jsonl_and_prom(tmp_path):
    reg = _populated_registry()
    jp, pp = str(tmp_path / "t.jsonl"), str(tmp_path / "t.prom")
    exporter = TelemetryExporter(reg, jsonl_path=jp, prom_path=pp, period_s=0.02)
    with exporter:
        reg.counter("train.batches_total").inc()
    assert exporter.scrapes >= 1  # stop() always takes a final scrape
    snaps = read_telemetry_jsonl(jp)
    assert snaps
    assert snaps[-1].find("train.batches_total")["series"][0]["value"] == 8
    assert parse_prometheus(open(pp).read())
    assert not os.path.exists(pp + ".tmp")  # atomic rewrite cleaned up


def test_exporter_drives_alert_engine(tmp_path):
    from repro.obs.telemetry.rules import AlertEngine, SloRule

    reg = TelemetryRegistry(enabled=True)
    reg.gauge("depth").set(50)
    engine = AlertEngine([SloRule("deep", "depth", threshold=10.0)], reg)
    exporter = TelemetryExporter(reg, period_s=5.0, engine=engine)
    exporter.scrape(now=1.0)
    assert len(engine.active()) == 1
